//! Build a custom workload with the program builder and measure how each
//! recovery scheme handles a *deliberately treacherous* value pattern.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```
//!
//! The workload's hot loop loads a configuration value that is constant
//! for long stretches and then switches (think: a phase change in an
//! application). Baseline 3-bit confidence gets burned at every switch;
//! FPC rarely bets on the value at all. The example prints the §3.1
//! trade-off live: squash-at-commit vs selective reissue × baseline vs
//! FPC counters.

use vpsim::core::{ConfidenceScheme, PredictorKind};
use vpsim::isa::{Program, ProgramBuilder, Reg};
use vpsim::stats::table::{fmt_f, fmt_pct, Table};
use vpsim::uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};

/// A loop whose loaded value is constant within 48-iteration phases and
/// jumps pseudo-randomly between phases.
fn phase_change_workload() -> Program {
    let mut b = ProgramBuilder::new();
    let (i, phase, v, addr, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
    let acc = Reg::int(6);
    let slot = 0x10_0000u64;
    b.data(slot, 7);
    b.load_imm(addr, slot as i64);
    b.load_imm(Reg::int(9), i64::MAX);
    let top = b.bind_label();
    // The hot, predictable-until-it-isn't load.
    b.load(v, addr, 0);
    // A consumer chain long enough that a wrong value matters.
    b.mul(t, v, v);
    b.add(acc, acc, t);
    b.shri(t, acc, 3);
    b.xor(acc, acc, t);
    // Every 48th iteration, mutate the configuration value.
    b.addi(i, i, 1);
    b.andi(t, i, 47);
    let keep = b.label();
    let zero = Reg::int(0);
    b.bne(t, zero, keep);
    b.load_imm(Reg::int(7), 6364136223846793005);
    b.mul(phase, i, Reg::int(7));
    b.shri(phase, phase, 40);
    b.store(addr, phase, 0);
    b.bind(keep);
    b.blt(i, Reg::int(9), top);
    b.halt();
    b.build().expect("valid workload")
}

fn main() {
    let program = phase_change_workload();
    let budget = 300_000;
    let baseline = Simulator::new(CoreConfig::default()).run(&program, budget);

    let mut t = Table::new(vec![
        "Recovery × counters".into(),
        "Speedup".into(),
        "Coverage".into(),
        "Accuracy".into(),
        "Squashes".into(),
        "Reissued µops".into(),
    ]);
    for (label, recovery, scheme) in [
        ("squash@commit, 3-bit", RecoveryPolicy::SquashAtCommit, ConfidenceScheme::baseline()),
        ("squash@commit, FPC", RecoveryPolicy::SquashAtCommit, ConfidenceScheme::fpc_squash()),
        ("reissue, 3-bit", RecoveryPolicy::SelectiveReissue, ConfidenceScheme::baseline()),
        ("reissue, FPC", RecoveryPolicy::SelectiveReissue, ConfidenceScheme::fpc_reissue()),
    ] {
        let r = Simulator::new(CoreConfig::default().with_vp(VpConfig {
            kind: PredictorKind::Lvp,
            scheme,
            recovery,
        }))
        .run(&program, budget);
        t.row(vec![
            label.into(),
            fmt_f(vpsim::stats::speedup(&baseline.metrics, &r.metrics), 3),
            fmt_pct(r.vp.coverage(), 1),
            if r.vp.used > 0 { fmt_pct(r.vp.accuracy(), 2) } else { "-".into() },
            r.vp_squashes.to_string(),
            r.reissued_uops.to_string(),
        ]);
    }
    println!("Phase-change workload, LVP predictor:");
    println!("{t}");
    println!("Expected shape (paper §3.1/§5): with 3-bit counters, squash-at-commit");
    println!("pays heavily for each phase change while reissue shrugs them off;");
    println!("with FPC both recovery schemes converge because mispredictions");
    println!("almost disappear.");
}
