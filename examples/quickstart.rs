//! Quickstart: simulate a small workload with and without value prediction.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a strided-reduction microkernel, runs it on the paper's Table 2
//! core without VP, with the paper's headline hybrid (VTAGE + 2D-Stride,
//! FPC, squash-at-commit), and with a perfect oracle, then prints the
//! comparison.

use vpsim::core::PredictorKind;
use vpsim::stats::table::{fmt_f, fmt_pct, Table};
use vpsim::uarch::{CoreConfig, RecoveryPolicy, RunResult, Simulator, VpConfig};
use vpsim::workloads::microkernels;

fn main() {
    // A serialized FP reduction: the accumulator chain limits the baseline.
    let program = microkernels::fp_reduction(256);
    let budget = 200_000;

    let baseline = Simulator::new(CoreConfig::default()).run(&program, budget);

    let hybrid = Simulator::new(
        CoreConfig::default()
            .with_vp(VpConfig::enabled(PredictorKind::VtageStride, RecoveryPolicy::SquashAtCommit)),
    )
    .run(&program, budget);

    let oracle = Simulator::new(
        CoreConfig::default()
            .with_vp(VpConfig::enabled(PredictorKind::Oracle, RecoveryPolicy::SquashAtCommit)),
    )
    .run(&program, budget);

    let mut t = Table::new(vec![
        "Configuration".into(),
        "IPC".into(),
        "Speedup".into(),
        "Coverage".into(),
        "Accuracy".into(),
    ]);
    let row = |name: &str, r: &RunResult, base: &RunResult| {
        vec![
            name.to_string(),
            fmt_f(r.metrics.ipc(), 2),
            fmt_f(vpsim::stats::speedup(&base.metrics, &r.metrics), 2),
            if r.vp.eligible > 0 { fmt_pct(r.vp.coverage(), 1) } else { "-".into() },
            if r.vp.used > 0 { fmt_pct(r.vp.accuracy(), 2) } else { "-".into() },
        ]
    };
    t.row(row("no VP", &baseline, &baseline));
    t.row(row("VTAGE + 2D-Stride (FPC)", &hybrid, &baseline));
    t.row(row("oracle", &oracle, &baseline));
    println!("{t}");

    assert!(
        hybrid.metrics.ipc() >= baseline.metrics.ipc(),
        "value prediction must not slow down a predictable workload"
    );
}
