//! Predictor playground: feed canonical value streams to every predictor
//! and watch who captures what.
//!
//! ```sh
//! cargo run --release --example predictor_playground
//! ```
//!
//! Streams:
//! * `constant`   — same value every occurrence (LVP's home turf)
//! * `strided`    — arithmetic sequence (stride predictors)
//! * `period-4`   — repeating pattern with no constant stride (FCM)
//! * `branch-dep` — value correlated with the last branch direction (VTAGE)
//! * `chaotic`    — LCG noise (nobody should predict this — watch accuracy,
//!   not coverage)
//!
//! This example drives the predictors directly through the
//! [`vpsim::core::Predictor`] trait — no pipeline involved — which is also
//! how you would unit-test a new predictor of your own.

use vpsim::core::{ConfidenceScheme, HistoryState, PredictCtx, PredictorKind};
use vpsim::stats::table::{fmt_pct, Table};

/// One canonical stream: returns (value, branch_direction) per occurrence.
/// `state` carries the chaotic stream's LCG (a *stateful* recurrence — an
/// affine function of `k` would secretly be strided!).
fn stream(kind: &str, k: u64, state: &mut u64) -> (u64, bool) {
    match kind {
        "constant" => (42, true),
        "strided" => (1000 + 24 * k, true),
        "period-4" => ([11u64, 22, 7, 99][(k % 4) as usize], true),
        "branch-dep" => {
            let taken = (k / 3).is_multiple_of(2); // direction flips every 3rd
            (if taken { 500 } else { 900 }, taken)
        }
        _ => {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (*state, *state & 1 == 0)
        }
    }
}

fn main() {
    let streams = ["constant", "strided", "period-4", "branch-dep", "chaotic"];
    let kinds = [
        PredictorKind::Lvp,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Fcm4,
        PredictorKind::Vtage,
        PredictorKind::VtageStride,
        PredictorKind::GDiffVtage,
    ];
    let occurrences = 4_000u64;

    let mut headers = vec!["Stream".to_string()];
    headers.extend(kinds.iter().map(|k| k.label().to_string()));
    let mut cov_table = Table::new(headers.clone());
    let mut acc_table = Table::new(headers);

    for s in streams {
        let mut cov_row = vec![s.to_string()];
        let mut acc_row = vec![s.to_string()];
        for kind in kinds {
            let mut p = kind.build(ConfidenceScheme::baseline(), 42);
            let mut hist = HistoryState::default();
            let (mut used, mut correct) = (0u64, 0u64);
            let mut state = 7u64;
            for k in 0..occurrences {
                let (value, taken) = stream(s, k, &mut state);
                let ctx = PredictCtx { seq: k, pc: 0x40, hist, actual: None };
                if let Some(guess) = p.predict(&ctx).confident_value() {
                    used += 1;
                    if guess == value {
                        correct += 1;
                    }
                }
                p.train(k, value);
                hist.push_branch(0x80, taken);
            }
            cov_row.push(fmt_pct(used as f64 / occurrences as f64, 1));
            acc_row.push(if used > 0 {
                fmt_pct(correct as f64 / used as f64, 1)
            } else {
                "-".into()
            });
        }
        cov_table.row(cov_row);
        acc_table.row(acc_row);
    }

    println!("Coverage (fraction of occurrences confidently predicted):");
    println!("{cov_table}");
    println!("Accuracy of used predictions:");
    println!("{acc_table}");
}
