//! The scenario layer, end to end: load every `.vps` file shipped under
//! `examples/scenarios/`, check each parses and matches its preset twin
//! where it has one, then run the smoke scenario and show that `--set`
//! style overrides layer on top of a loaded file.
//!
//! Run with `cargo run --example scenario_files`.

use vpsim::bench::scenario::{preset, Scenario};

fn main() -> Result<(), String> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/scenarios");

    // Every shipped scenario file must load and validate.
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "vps"))
        .collect();
    paths.sort();
    for path in &paths {
        let sc = Scenario::load(path.to_str().expect("utf8 path"))?;
        println!(
            "{:<24} {:>2} grid point(s) x {:>2} workload(s)",
            path.file_name().unwrap().to_string_lossy(),
            sc.grid_points().len(),
            sc.benches.len(),
        );
    }

    // Files that mirror a named preset stay in sync with it (the file adds
    // comments and omits defaulted keys; the grid must be identical).
    for (file, name) in
        [("counters.vps", "counters"), ("fpc-sweep.vps", "fpc-sweep"), ("kernels.vps", "kernels")]
    {
        let from_file = Scenario::load(&format!("{dir}/{file}"))?;
        let from_preset = preset(name)?;
        assert_eq!(from_file.grid_points(), from_preset.grid_points(), "{file} vs {name}");
    }
    println!("\nfile grids match their presets");

    // Layering: the loaded file is a base; later assignments replace keys.
    let mut sc = Scenario::load(&format!("{dir}/smoke.vps"))?;
    sc.set("measure=5000")?;
    sc.set("benchmarks=gzip")?;
    sc.set("threads=2")?;
    sc.validate()?;
    println!("\nsmoke scenario with overrides:\n{sc}");

    let results = sc.run();
    println!("{}", results.table());
    Ok(())
}
