//! Run a small (predictor × recovery × benchmark) grid on the parallel
//! sweep engine and print both output views.
//!
//! The grid here is deliberately tiny so the example finishes in seconds;
//! the `sweep` binary runs the same machinery over the full Table 3 suite
//! (`cargo run --release --bin sweep`).

use vpsim::bench::sweep::{SchemeChoice, SweepSpec};
use vpsim::bench::RunSettings;
use vpsim::core::PredictorKind;
use vpsim::uarch::RecoveryPolicy;
use vpsim::workloads::benchmark;

fn main() {
    let mut spec = SweepSpec {
        settings: RunSettings {
            warmup: 5_000,
            measure: 20_000,
            threads: 2,
            ..RunSettings::default()
        },
        predictors: vec![PredictorKind::TwoDeltaStride, PredictorKind::Vtage],
        schemes: vec![SchemeChoice::Fpc],
        recoveries: vec![RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue],
        benches: ["gzip", "mcf", "h264ref"].iter().map(|n| benchmark(n).unwrap()).collect(),
        ..SweepSpec::default()
    };
    println!(
        "{} jobs ({} benchmark(s) x {} grid point(s) + baseline)\n",
        spec.job_count(),
        spec.benches.len(),
        spec.points().len(),
    );

    // Any worker count produces byte-identical output; use two here.
    let results = spec.run();

    println!("Long form:\n{}", results.table());
    println!("Speedup matrix:\n{}", results.matrix());

    // The determinism guarantee, demonstrated:
    spec.settings.threads = 1;
    assert_eq!(spec.run().table().to_csv(), results.table().to_csv());
    println!("serial and 2-thread runs rendered byte-identical tables");
}
