//! Sweep FPC probability vectors and watch the accuracy/coverage frontier
//! move (the run-time adaptation opportunity the paper's §5 points at).
//!
//! ```sh
//! cargo run --release --example fpc_tuning
//! ```
//!
//! Evaluates a VTAGE predictor under several forward-probability vectors,
//! from "plain 3-bit" (all transitions certain) to vectors mimicking 8-bit
//! counters, on a workload whose values break just often enough to hurt.

use vpsim::core::{ConfidenceScheme, PredictorKind};
use vpsim::stats::table::{fmt_f, fmt_pct, Table};
use vpsim::uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};
use vpsim::workloads::{benchmark, WorkloadParams};

fn main() {
    // h264ref's analogue has the occasional residual glitches that
    // punish overconfidence.
    let bench = benchmark("h264ref").expect("h264ref is in Table 3");
    let program = (bench.build)(&WorkloadParams::default());
    let (warmup, measure) = (50_000, 200_000);

    let baseline = Simulator::new(CoreConfig::default()).run_with_warmup(&program, warmup, measure);

    // Vectors: log2 denominators of the 7 forward transition probabilities.
    let vectors: [(&str, [u8; 7]); 5] = [
        ("plain 3-bit (≈7 steps)", [0, 0, 0, 0, 0, 0, 0]),
        ("mimic 5-bit (≈33 steps)", [0, 2, 2, 2, 2, 3, 3]),
        ("mimic 6-bit / reissue", [0, 3, 3, 3, 3, 4, 4]),
        ("mimic 7-bit / squash", [0, 4, 4, 4, 4, 5, 5]),
        ("mimic 8-bit (≈257 steps)", [0, 5, 5, 5, 5, 6, 6]),
    ];

    let mut t = Table::new(vec![
        "FPC vector".into(),
        "E[steps]".into(),
        "Speedup".into(),
        "Coverage".into(),
        "Accuracy".into(),
        "Misp/Kinst".into(),
    ]);
    for (label, probs) in vectors {
        let scheme = ConfidenceScheme::fpc(probs);
        let steps = scheme.expected_steps_to_saturation();
        let r = Simulator::new(CoreConfig::default().with_vp(VpConfig {
            kind: PredictorKind::Vtage,
            scheme,
            recovery: RecoveryPolicy::SquashAtCommit,
        }))
        .run_with_warmup(&program, warmup, measure);
        t.row(vec![
            label.into(),
            fmt_f(steps, 0),
            fmt_f(vpsim::stats::speedup(&baseline.metrics, &r.metrics), 3),
            fmt_pct(r.vp.coverage(), 1),
            if r.vp.used > 0 { fmt_pct(r.vp.accuracy(), 2) } else { "-".into() },
            fmt_f(r.vp.mispredictions_per_kinst(r.metrics.instructions), 2),
        ]);
    }
    println!("VTAGE on h264ref's analogue, squash-at-commit:");
    println!("{t}");
    println!("Reading the frontier: slower counters trade coverage for");
    println!("accuracy, and under expensive commit-time squashes accuracy");
    println!("wins — hence the paper pairs the 7-bit-equivalent vector with");
    println!("squashing and the cheaper 6-bit-equivalent with reissue.");
}
