//! The shared discrete-event core of the simulator: two drain disciplines
//! over the same "payload due at an absolute cycle" abstraction
//! ([`Timed`]), factored out of the cycle-level core so the pipeline and
//! the memory hierarchy schedule completions on one substrate.
//!
//! * [`TimingWheel`] — the **dense** discipline: events bucketed by cycle
//!   in a power-of-two ring that grows to the largest in-flight latency.
//!   The consumer drains one bucket per cycle (`take_due`), so a cycle
//!   with nothing due costs one empty-bucket probe. This is the engine
//!   behind the pipeline's completion stage (`vpsim-uarch`), where some
//!   event is due almost every cycle.
//! * [`EventSet`] — the **sparse** discipline: a flat list of in-flight
//!   events behind a `next_due` watermark. Expiry is O(1) while nothing is
//!   due — the common case for MSHR files, where a query-driven model
//!   touches the set on *accesses* (thousands of cycles apart under cache
//!   hits), not cycles. The list doubles as the registry of in-flight
//!   payloads (an MSHR's outstanding misses), so membership queries walk
//!   the same storage the completions are scheduled in.
//!
//! Both structures allocate only at construction/high-water growth and
//! reuse their buffers afterwards, preserving the zero-allocation
//! steady-state discipline of the hot loops that embed them
//! (`crates/uarch/tests/zero_alloc.rs`).

#![warn(missing_docs)]

/// A payload schedulable on the event core: anything that knows the
/// absolute cycle it becomes due.
pub trait Timed {
    /// The absolute cycle at which this event fires.
    fn due_at(&self) -> u64;
}

/// Events bucketed by cycle — a timing wheel (the dense discipline).
///
/// The wheel grows to the largest in-flight latency (power of two), so a
/// bucket only ever holds events for one cycle. `carry` holds events that
/// were due but deferred: scheduled at or before the current cycle, or
/// postponed by the consumer mid-drain ([`TimingWheel::defer`]).
///
/// # Examples
///
/// ```
/// use vpsim_event::{Timed, TimingWheel};
///
/// #[derive(Clone, Copy)]
/// struct Fill(u64);
/// impl Timed for Fill {
///     fn due_at(&self) -> u64 {
///         self.0
///     }
/// }
///
/// let mut wheel = TimingWheel::new(16);
/// wheel.schedule(0, Fill(3));
/// assert!(wheel.take_due(2).is_empty());
/// let due = wheel.take_due(3);
/// assert_eq!(due.len(), 1);
/// wheel.recycle(due);
/// ```
#[derive(Debug)]
pub struct TimingWheel<E> {
    buckets: Vec<Vec<E>>,
    carry: Vec<E>,
    due: Vec<E>,
}

impl<E: Timed + Copy> TimingWheel<E> {
    /// A wheel with an initial horizon of `horizon` cycles (rounded up to
    /// a power of two; grows on demand).
    pub fn new(horizon: usize) -> Self {
        let n = horizon.next_power_of_two().max(64);
        TimingWheel { buckets: vec![Vec::new(); n], carry: Vec::new(), due: Vec::new() }
    }

    /// Schedule `ev` for cycle `ev.due_at()`; events due at or before
    /// `now` land in the carry list and are processed next cycle (a
    /// same-cycle completion is never visible to the cycle that issued it).
    pub fn schedule(&mut self, now: u64, ev: E) {
        let at = ev.due_at();
        if at <= now {
            self.carry.push(ev);
            return;
        }
        let dist = (at - now) as usize;
        if dist >= self.buckets.len() {
            self.grow(now, dist);
        }
        let slot = (at as usize) & (self.buckets.len() - 1);
        self.buckets[slot].push(ev);
    }

    fn grow(&mut self, now: u64, dist: usize) {
        let new_len = (dist + 1).next_power_of_two();
        let mut buckets = vec![Vec::new(); new_len];
        for old in &mut self.buckets {
            for ev in old.drain(..) {
                debug_assert!(ev.due_at() > now);
                buckets[(ev.due_at() as usize) & (new_len - 1)].push(ev);
            }
        }
        self.buckets = buckets;
    }

    /// Drain everything due at `now` (this cycle's bucket plus the carry
    /// list) into the reusable due buffer and hand it out by value; return
    /// it with [`TimingWheel::recycle`] to keep its capacity.
    pub fn take_due(&mut self, now: u64) -> Vec<E> {
        self.due.clear();
        let slot = (now as usize) & (self.buckets.len() - 1);
        for ev in self.buckets[slot].drain(..) {
            debug_assert_eq!(ev.due_at(), now, "wheel lap: event outlived its bucket");
            self.due.push(ev);
        }
        self.due.append(&mut self.carry);
        std::mem::take(&mut self.due)
    }

    /// Return the buffer [`TimingWheel::take_due`] handed out, so its
    /// capacity is reused next cycle (zero-allocation steady state).
    pub fn recycle(&mut self, due: Vec<E>) {
        self.due = due;
    }

    /// Defer a due event to the next cycle (the consumer aborted its drain
    /// pass before reaching it).
    pub fn defer(&mut self, ev: E) {
        self.carry.push(ev);
    }

    /// The earliest cycle `>= now` at which [`TimingWheel::take_due`]
    /// would return anything, or `None` when the wheel is empty. Carried
    /// events surface at the next drain, so a non-empty carry list reports
    /// `now` itself. Every scheduled event lies within one lap of `now`
    /// (the wheel grows at schedule time), so the first non-empty bucket
    /// in a forward ring scan is exact, and the scan costs at most the
    /// distance to the next event — the consumer's license to fast-forward
    /// idle cycles instead of draining empty buckets one by one.
    pub fn next_due_at_or_after(&self, now: u64) -> Option<u64> {
        if !self.carry.is_empty() {
            return Some(now);
        }
        let len = self.buckets.len();
        (0..len as u64)
            .find(|&k| !self.buckets[(now.wrapping_add(k) as usize) & (len - 1)].is_empty())
            .map(|k| now + k)
    }
}

/// A flat set of in-flight events behind a `next_due` watermark — the
/// sparse discipline.
///
/// Designed for query-driven models (MSHR files, writeback queues) where
/// the set is small and bounded, consulted on *accesses* rather than every
/// cycle, and "nothing due yet" must cost O(1): [`EventSet::expire`]
/// returns immediately while `now` is below the watermark and compacts the
/// list (recomputing the watermark) only when something actually fired.
/// The live entries stay iterable ([`EventSet::iter`]) so the set doubles
/// as the registry of outstanding payloads.
///
/// # Examples
///
/// ```
/// use vpsim_event::{EventSet, Timed};
///
/// #[derive(Clone, Copy)]
/// struct Miss {
///     line: u64,
///     ready: u64,
/// }
/// impl Timed for Miss {
///     fn due_at(&self) -> u64 {
///         self.ready
///     }
/// }
///
/// let mut set = EventSet::with_capacity(4);
/// set.push(Miss { line: 0x40, ready: 100 });
/// assert_eq!(set.next_due(), Some(100));
/// set.expire(99); // O(1): below the watermark
/// assert_eq!(set.len(), 1);
/// set.expire(100);
/// assert!(set.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventSet<E> {
    events: Vec<E>,
    /// Earliest `due_at` among live entries; `u64::MAX` when empty.
    next_due: u64,
}

impl<E: Timed> EventSet<E> {
    /// An empty set preallocated for `capacity` in-flight events (the set
    /// itself does not enforce the bound; embedders like an MSHR file do).
    pub fn with_capacity(capacity: usize) -> Self {
        EventSet { events: Vec::with_capacity(capacity), next_due: u64::MAX }
    }

    /// Add an in-flight event, advancing the watermark if it is the new
    /// earliest completion.
    pub fn push(&mut self, ev: E) {
        self.next_due = self.next_due.min(ev.due_at());
        self.events.push(ev);
    }

    /// Drop every event due at or before `now`. O(1) while `now` is below
    /// the watermark; otherwise compacts in place (order-preserving, no
    /// allocation) and recomputes the watermark.
    pub fn expire(&mut self, now: u64) {
        if now < self.next_due {
            return;
        }
        let mut min = u64::MAX;
        self.events.retain(|e| {
            let due = e.due_at();
            if due > now {
                min = min.min(due);
                true
            } else {
                false
            }
        });
        self.next_due = min;
    }

    /// The earliest completion among live events, or `None` when empty.
    pub fn next_due(&self) -> Option<u64> {
        (!self.events.is_empty()).then_some(self.next_due)
    }

    /// Iterate the live events (insertion order).
    pub fn iter(&self) -> std::slice::Iter<'_, E> {
        self.events.iter()
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<'a, E: Timed> IntoIterator for &'a EventSet<E> {
    type Item = &'a E;
    type IntoIter = std::slice::Iter<'a, E>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ev {
        at: u64,
        id: u32,
    }

    impl Timed for Ev {
        fn due_at(&self) -> u64 {
            self.at
        }
    }

    #[test]
    fn wheel_delivers_at_the_right_cycle_and_grows() {
        let mut wh = TimingWheel::new(4);
        wh.schedule(0, Ev { at: 3, id: 1 });
        wh.schedule(0, Ev { at: 1000, id: 2 }); // forces growth
        wh.schedule(0, Ev { at: 0, id: 3 }); // due now → carry
        let due = wh.take_due(0);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].id, 3);
        assert!(wh.take_due(1).is_empty());
        assert!(wh.take_due(2).is_empty());
        let due = wh.take_due(3);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].id, 1);
        for n in 4..1000 {
            assert!(wh.take_due(n).is_empty(), "cycle {n}");
        }
        assert_eq!(wh.take_due(1000).len(), 1);
        // Deferred events resurface next cycle.
        wh.defer(Ev { at: 1000, id: 9 });
        assert_eq!(wh.take_due(1001).len(), 1);
    }

    #[test]
    fn wheel_reports_the_next_due_cycle_exactly() {
        let mut wh = TimingWheel::new(8);
        assert_eq!(wh.next_due_at_or_after(0), None, "empty wheel has nothing due");
        wh.schedule(10, Ev { at: 17, id: 1 });
        wh.schedule(10, Ev { at: 300, id: 2 });
        assert_eq!(wh.next_due_at_or_after(11), Some(17));
        assert_eq!(wh.next_due_at_or_after(17), Some(17), "due now is reported as now");
        assert_eq!(wh.take_due(17).len(), 1);
        assert_eq!(wh.next_due_at_or_after(18), Some(300), "scan crosses the grown ring");
        // A deferred event is due at the very next drain.
        wh.defer(Ev { at: 17, id: 3 });
        assert_eq!(wh.next_due_at_or_after(18), Some(18));
    }

    #[test]
    fn wheel_recycled_buffer_keeps_capacity() {
        let mut wh = TimingWheel::new(8);
        for id in 0..32 {
            wh.schedule(0, Ev { at: 5, id });
        }
        let due = wh.take_due(5);
        assert_eq!(due.len(), 32);
        let cap = due.capacity();
        wh.recycle(due);
        assert!(wh.take_due(6).capacity() >= cap, "recycled buffer lost its capacity");
    }

    #[test]
    fn set_expire_is_gated_by_the_watermark() {
        let mut s = EventSet::with_capacity(4);
        s.push(Ev { at: 50, id: 1 });
        s.push(Ev { at: 30, id: 2 });
        s.push(Ev { at: 90, id: 3 });
        assert_eq!(s.next_due(), Some(30));
        s.expire(29);
        assert_eq!(s.len(), 3, "nothing due yet");
        s.expire(50);
        assert_eq!(s.len(), 1);
        assert_eq!(s.next_due(), Some(90), "watermark recomputed after compaction");
        s.expire(90);
        assert!(s.is_empty());
        assert_eq!(s.next_due(), None);
    }

    #[test]
    fn set_preserves_insertion_order_across_expiry() {
        let mut s = EventSet::with_capacity(4);
        for (at, id) in [(10, 1), (99, 2), (10, 3), (99, 4)] {
            s.push(Ev { at, id });
        }
        s.expire(10);
        let ids: Vec<u32> = s.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 4]);
    }

    #[test]
    fn set_push_after_expiry_restores_the_watermark() {
        let mut s = EventSet::with_capacity(2);
        s.push(Ev { at: 10, id: 1 });
        s.expire(10);
        assert!(s.is_empty());
        s.push(Ev { at: 7, id: 2 });
        assert_eq!(s.next_due(), Some(7));
        s.expire(7);
        assert!(s.is_empty());
    }
}
