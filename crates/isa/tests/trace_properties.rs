//! Property test for the trace layer's core guarantee: capture → replay
//! reproduces the [`Executor`]'s dynamic instruction stream *exactly*,
//! record for record, for arbitrary programs and capture limits.

use proptest::prelude::*;
use vpsim_isa::{Executor, InstSource, Program, ProgramBuilder, Reg, Trace};

/// Assemble a terminating random program: a counted loop whose body is
/// drawn from the op pool (ALU, memory, forward branches, calls, FP), plus
/// a callee function. Covers every record shape the trace encodes.
fn random_program(ops: &[(u8, u8, u8, i64)], iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (i, n, base) = (Reg::int(30), Reg::int(29), Reg::int(28));
    let lr = Reg::int(27);
    b.load_imm(n, iters);
    b.load_imm(base, 0x1000);
    b.data(0x1000, 7);
    let func = b.label();
    let top = b.bind_label();
    for &(op, ra, rb, imm) in ops {
        let d = Reg::int(1 + (ra % 8));
        let s1 = Reg::int(1 + (rb % 8));
        let s2 = Reg::int(1 + ((ra ^ rb) % 8));
        match op % 10 {
            0 => {
                b.addi(d, s1, imm);
            }
            1 => {
                b.add(d, s1, s2);
            }
            2 => {
                b.sub(d, s1, s2);
            }
            3 => {
                b.mul(d, s1, s2);
            }
            4 => {
                b.xor(d, s1, s2);
            }
            5 => {
                b.load(d, base, imm & 0xF8);
            }
            6 => {
                b.store(base, s1, imm & 0xF8);
            }
            7 => {
                // Forward branch over one µop: data-dependent direction.
                let skip = b.label();
                b.beq(s1, s2, skip);
                b.addi(d, d, 1);
                b.bind(skip);
            }
            8 => {
                b.call(lr, func);
            }
            _ => {
                let f = Reg::float(1 + (ra % 8));
                b.icvtf(f, s1);
            }
        }
    }
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.bind(func);
    b.ret(lr);
    b.build().expect("generated programs are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn capture_replay_reproduces_the_dyninst_stream(
        ops in prop::collection::vec((0u8..10, 0u8..16, 0u8..16, -64i64..64), 1..24),
        iters in 1i64..40,
        limit in 0u64..4_000,
    ) {
        let program = random_program(&ops, iters);
        let executed: Vec<_> = Executor::new(&program).collect();

        // Full capture: the replayed stream is the executed stream.
        let full = Trace::capture(&program, u64::MAX);
        prop_assert_eq!(full.len(), executed.len());
        let replayed: Vec<_> = full.cursor().collect();
        prop_assert_eq!(&replayed, &executed);

        // Truncated capture: an exact prefix, through both the Iterator
        // and the InstSource faces.
        let cut = Trace::capture(&program, limit);
        prop_assert_eq!(cut.len(), (limit as usize).min(executed.len()));
        let mut cursor = cut.cursor();
        for want in &executed[..cut.len()] {
            prop_assert_eq!(cursor.next_inst().as_ref(), Some(want));
        }
        prop_assert_eq!(cursor.next_inst(), None);
    }

    /// The service layer's persistence guarantee: serialize → deserialize
    /// is the identity for any captured program, both structurally (`Eq`)
    /// and behaviourally (the replayed stream is unchanged).
    #[test]
    fn serialize_deserialize_round_trips_exactly(
        ops in prop::collection::vec((0u8..10, 0u8..16, 0u8..16, -64i64..64), 1..24),
        iters in 1i64..40,
        limit in 0u64..4_000,
    ) {
        let program = random_program(&ops, iters);
        let trace = Trace::capture(&program, limit);
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("own serialization must decode");
        prop_assert_eq!(&back, &trace);
        let original: Vec<_> = trace.cursor().collect();
        let replayed: Vec<_> = back.cursor().collect();
        prop_assert_eq!(replayed, original);
        // Serialization is canonical: re-encoding yields the same bytes.
        prop_assert_eq!(back.to_bytes(), bytes);
    }
}
