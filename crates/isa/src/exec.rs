//! Architectural (functional) execution producing dynamic instruction traces.

use crate::inst::{Inst, Opcode};
use crate::memory::SparseMemory;
use crate::program::Program;
use crate::reg::{Reg, NUM_ARCH_REGS};

/// One dynamic instruction, as observed by the cycle-level core.
///
/// The functional executor computes everything the timing model needs up
/// front: the architectural result (the value a value predictor must guess),
/// effective addresses, and the branch outcome. The out-of-order core in
/// `vpsim-uarch` replays this stream and charges time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DynInst {
    /// Global dynamic sequence number, starting at 0.
    pub seq: u64,
    /// Byte PC of the instruction.
    pub pc: u64,
    /// Static instruction index in the program.
    pub index: u32,
    /// The static µop.
    pub inst: Inst,
    /// Value written to `inst.dst`, if any — the target of value prediction.
    pub result: Option<u64>,
    /// Effective address, for loads and stores.
    pub mem_addr: Option<u64>,
    /// Value stored, for stores (enables store-to-load forwarding).
    pub store_value: Option<u64>,
    /// Whether a control µop left the fall-through path.
    pub taken: bool,
    /// Architectural next PC.
    pub next_pc: u64,
}

impl DynInst {
    /// `true` if this µop is eligible for value prediction (writes a
    /// register). Matches the paper's §7.2 policy: every µop producing a
    /// register is predicted; branches are not predicted but their input
    /// values are (they flow in via producing µops).
    pub fn vp_eligible(&self) -> bool {
        self.inst.has_dst()
    }
}

/// Architectural executor for a [`Program`].
///
/// Implements `Iterator<Item = DynInst>`: each call to `next` executes one
/// µop and returns its dynamic record. Iteration ends after [`Opcode::Halt`]
/// executes (the `Halt` µop itself is yielded) or when the PC falls past the
/// end of the program.
///
/// # Examples
///
/// ```
/// use vpsim_isa::{Executor, ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// b.load_imm(Reg::int(1), 7);
/// b.halt();
/// let p = b.build()?;
/// let trace: Vec<_> = Executor::new(&p).collect();
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace[0].result, Some(7));
/// # Ok::<(), vpsim_isa::ProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    program: &'a Program,
    regs: [u64; NUM_ARCH_REGS],
    mem: SparseMemory,
    pc: u64,
    seq: u64,
    halted: bool,
}

impl<'a> Executor<'a> {
    /// Start execution at PC 0 with the program's initial memory image.
    pub fn new(program: &'a Program) -> Self {
        Executor {
            program,
            regs: [0; NUM_ARCH_REGS],
            mem: program.initial_mem().iter().copied().collect(),
            pc: 0,
            seq: 0,
            halted: false,
        }
    }

    /// Current value of an architectural register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Overwrite an architectural register (useful in tests).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// The current memory state.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// `true` once `Halt` has executed or the PC fell off the program.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.seq
    }

    fn src(&self, r: Option<Reg>) -> u64 {
        r.map(|r| self.regs[r.index()]).unwrap_or(0)
    }
}

impl Iterator for Executor<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        if self.halted {
            return None;
        }
        let index = match self.program.index_of_pc(self.pc) {
            Some(i) => i,
            None => {
                self.halted = true;
                return None;
            }
        };
        let inst = self.program.insts()[index];
        let pc = self.pc;
        let a = self.src(inst.src1);
        let b = self.src(inst.src2);
        let imm = inst.imm;
        let fall_through = pc + 4;

        let mut result = None;
        let mut mem_addr = None;
        let mut store_value = None;
        let mut taken = false;
        let mut next_pc = fall_through;

        use Opcode::*;
        match inst.op {
            Add => result = Some(a.wrapping_add(b)),
            Sub => result = Some(a.wrapping_sub(b)),
            And => result = Some(a & b),
            Or => result = Some(a | b),
            Xor => result = Some(a ^ b),
            Shl => result = Some(a.wrapping_shl((b & 63) as u32)),
            Shr => result = Some(a.wrapping_shr((b & 63) as u32)),
            SetLt => result = Some(((a as i64) < (b as i64)) as u64),
            AddI => result = Some(a.wrapping_add(imm as u64)),
            AndI => result = Some(a & imm as u64),
            OrI => result = Some(a | imm as u64),
            XorI => result = Some(a ^ imm as u64),
            ShlI => result = Some(a.wrapping_shl((imm & 63) as u32)),
            ShrI => result = Some(a.wrapping_shr((imm & 63) as u32)),
            SetLtI => result = Some(((a as i64) < imm) as u64),
            LoadImm => result = Some(imm as u64),
            Mov => result = Some(a),
            Mul => result = Some(a.wrapping_mul(b)),
            Div => result = Some(a.checked_div(b).unwrap_or(u64::MAX)),
            Rem => result = Some(a.checked_rem(b).unwrap_or(a)),
            FAdd => result = Some(fop(a, b, |x, y| x + y)),
            FSub => result = Some(fop(a, b, |x, y| x - y)),
            FMul => result = Some(fop(a, b, |x, y| x * y)),
            FDiv => result = Some(fop(a, b, |x, y| x / y)),
            ICvtF => result = Some((a as i64 as f64).to_bits()),
            FCvtI => result = Some(f64::from_bits(a) as i64 as u64),
            Load => {
                let addr = a.wrapping_add(imm as u64) & !7;
                mem_addr = Some(addr);
                result = Some(self.mem.read(addr));
            }
            Store => {
                let addr = a.wrapping_add(imm as u64) & !7;
                mem_addr = Some(addr);
                store_value = Some(b);
                self.mem.write(addr, b);
            }
            Beq | Bne | Blt | Bge => {
                let cond = match inst.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i64) < (b as i64),
                    _ => (a as i64) >= (b as i64),
                };
                taken = cond;
                if cond {
                    next_pc = imm as u64;
                }
            }
            Jump => {
                taken = true;
                next_pc = imm as u64;
            }
            JumpInd => {
                taken = true;
                next_pc = a;
            }
            Call => {
                taken = true;
                result = Some(fall_through);
                next_pc = imm as u64;
            }
            Ret => {
                taken = true;
                next_pc = a;
            }
            Nop => {}
            Halt => {
                self.halted = true;
            }
        }

        if let (Some(dst), Some(v)) = (inst.dst, result) {
            self.regs[dst.index()] = v;
        }
        self.pc = next_pc;
        let seq = self.seq;
        self.seq += 1;

        Some(DynInst {
            seq,
            pc,
            index: index as u32,
            inst,
            result,
            mem_addr,
            store_value,
            taken,
            next_pc,
        })
    }
}

fn fop(a: u64, b: u64, f: impl Fn(f64, f64) -> f64) -> u64 {
    f(f64::from_bits(a), f64::from_bits(b)).to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn run(b: ProgramBuilder) -> (Vec<DynInst>, SparseMemory, [u64; NUM_ARCH_REGS]) {
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let trace: Vec<_> = e.by_ref().collect();
        (trace, e.mem.clone(), e.regs)
    }

    #[test]
    fn integer_alu_semantics() {
        let mut b = ProgramBuilder::new();
        let (r1, r2, r3) = (Reg::int(1), Reg::int(2), Reg::int(3));
        b.load_imm(r1, 10);
        b.load_imm(r2, 3);
        b.add(r3, r1, r2); // 13
        b.sub(r3, r3, r2); // 10
        b.mul(r3, r3, r2); // 30
        b.div(r3, r3, r2); // 10
        b.rem(r3, r3, r2); // 1
        b.halt();
        let (_, _, regs) = run(b);
        assert_eq!(regs[3], 1);
    }

    #[test]
    fn division_by_zero_is_all_ones() {
        let mut b = ProgramBuilder::new();
        let (r1, r2, r3, r4) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        b.load_imm(r1, 5);
        b.load_imm(r2, 0);
        b.div(r3, r1, r2);
        b.rem(r4, r1, r2);
        b.halt();
        let (_, _, regs) = run(b);
        assert_eq!(regs[3], u64::MAX);
        assert_eq!(regs[4], 5);
    }

    #[test]
    fn shifts_mask_their_amount() {
        let mut b = ProgramBuilder::new();
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        b.load_imm(r1, 1);
        b.shli(r2, r1, 65); // 65 & 63 == 1
        b.halt();
        let (_, _, regs) = run(b);
        assert_eq!(regs[2], 2);
    }

    #[test]
    fn float_semantics_round_trip_through_bits() {
        let mut b = ProgramBuilder::new();
        let (r1, f1, f2, f3) = (Reg::int(1), Reg::float(1), Reg::float(2), Reg::float(3));
        b.load_imm(r1, 3);
        b.icvtf(f1, r1); // 3.0
        b.fadd(f2, f1, f1); // 6.0
        b.fmul(f3, f2, f1); // 18.0
        b.fdiv(f3, f3, f2); // 3.0
        b.fsub(f3, f3, f1); // 0.0
        b.fcvti(r1, f2); // 6
        b.halt();
        let (_, _, regs) = run(b);
        assert_eq!(f64::from_bits(regs[Reg::float(3).index()]), 0.0);
        assert_eq!(regs[1], 6);
    }

    #[test]
    fn loads_and_stores_round_trip_and_record_addresses() {
        let mut b = ProgramBuilder::new();
        let (base, v, out) = (Reg::int(1), Reg::int(2), Reg::int(3));
        b.load_imm(base, 0x1000);
        b.load_imm(v, 99);
        b.store(base, v, 16);
        b.load(out, base, 16);
        b.halt();
        let (trace, mem, regs) = run(b);
        assert_eq!(regs[3], 99);
        assert_eq!(mem.read(0x1010), 99);
        let store = &trace[2];
        assert_eq!(store.mem_addr, Some(0x1010));
        assert_eq!(store.store_value, Some(99));
        let load = &trace[3];
        assert_eq!(load.mem_addr, Some(0x1010));
        assert_eq!(load.result, Some(99));
    }

    #[test]
    fn unaligned_effective_addresses_are_aligned_down() {
        let mut b = ProgramBuilder::new();
        let (base, v, out) = (Reg::int(1), Reg::int(2), Reg::int(3));
        b.load_imm(base, 0x1003);
        b.load_imm(v, 5);
        b.store(base, v, 0); // 0x1003 & !7 == 0x1000
        b.load(out, base, 4); // 0x1007 & !7 == 0x1000
        b.halt();
        let (_, _, regs) = run(b);
        assert_eq!(regs[3], 5);
    }

    #[test]
    fn branch_records_taken_and_next_pc() {
        let mut b = ProgramBuilder::new();
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        b.load_imm(r1, 1);
        b.load_imm(r2, 2);
        let t = b.label();
        b.blt(r1, r2, t); // taken
        b.nop(); // skipped
        b.bind(t);
        b.bge(r1, r2, t); // not taken
        b.halt();
        let (trace, _, _) = run(b);
        let taken_branch = &trace[2];
        assert!(taken_branch.taken);
        assert_eq!(taken_branch.next_pc, 16);
        let not_taken = &trace[3];
        assert!(!not_taken.taken);
        assert_eq!(not_taken.next_pc, not_taken.pc + 4);
    }

    #[test]
    fn call_produces_link_value() {
        let mut b = ProgramBuilder::new();
        let lr = Reg::int(31);
        let f = b.label();
        b.call(lr, f);
        b.halt();
        b.bind(f);
        b.ret(lr);
        let (trace, _, _) = run(b);
        assert_eq!(trace[0].result, Some(4));
        assert!(trace[0].vp_eligible());
        assert!(!trace[1].vp_eligible() || trace[1].inst.op != Opcode::Ret);
    }

    #[test]
    fn falling_off_the_end_halts() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.nop();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.by_ref().count(), 2);
        assert!(e.is_halted());
        assert_eq!(e.next(), None);
    }

    #[test]
    fn seq_numbers_are_dense_from_zero() {
        let mut b = ProgramBuilder::new();
        let r = Reg::int(1);
        b.load_imm(r, 0);
        for _ in 0..5 {
            b.addi(r, r, 1);
        }
        b.halt();
        let (trace, _, _) = run(b);
        for (i, d) in trace.iter().enumerate() {
            assert_eq!(d.seq, i as u64);
        }
    }

    #[test]
    fn executor_counts_executed_instructions() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.executed(), 0);
        e.by_ref().for_each(drop);
        assert_eq!(e.executed(), 2);
    }

    #[test]
    fn initial_memory_is_visible() {
        let mut b = ProgramBuilder::new();
        let (base, out) = (Reg::int(1), Reg::int(2));
        b.data(0x2000, 1234);
        b.load_imm(base, 0x2000);
        b.load(out, base, 0);
        b.halt();
        let (_, _, regs) = run(b);
        assert_eq!(regs[2], 1234);
    }
}
