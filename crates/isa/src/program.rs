//! Validated static programs.

use crate::inst::{Inst, Opcode};
use std::fmt;

/// Byte size of one µop; PCs advance by this amount.
pub(crate) const INST_BYTES: u64 = 4;

/// A validated static program: the µop sequence plus an initial memory image.
///
/// Construct with [`crate::ProgramBuilder`] (or [`Program::from_parts`]);
/// validation has already run, so every branch target points at a real
/// instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    initial_mem: Vec<(u64, u64)>,
}

impl Program {
    /// Build from raw parts, validating control-flow targets and operand
    /// shape.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if the program is empty, a direct branch
    /// target is misaligned or out of range, or a µop is missing a required
    /// operand.
    pub fn from_parts(
        insts: Vec<Inst>,
        initial_mem: Vec<(u64, u64)>,
    ) -> Result<Self, ProgramError> {
        let p = Program { insts, initial_mem };
        p.validate()?;
        Ok(p)
    }

    /// The static µop sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Initial memory image as `(address, value)` pairs.
    pub fn initial_mem(&self) -> &[(u64, u64)] {
        &self.initial_mem
    }

    /// Number of static µops.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Byte PC of the instruction at `index`.
    pub fn pc_of(&self, index: usize) -> u64 {
        index as u64 * INST_BYTES
    }

    /// Instruction index for a byte PC, or `None` if out of range or
    /// misaligned.
    pub fn index_of_pc(&self, pc: u64) -> Option<usize> {
        if !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = (pc / INST_BYTES) as usize;
        (idx < self.insts.len()).then_some(idx)
    }

    /// The instruction at byte PC `pc`, if any.
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        self.index_of_pc(pc).map(|i| &self.insts[i])
    }

    /// Render the program as assembler-like text, one µop per line with its
    /// byte PC — a debugging aid for generated workloads.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_isa::{ProgramBuilder, Reg};
    /// let mut b = ProgramBuilder::new();
    /// b.load_imm(Reg::int(1), 7);
    /// b.halt();
    /// let text = b.build().unwrap().disassemble();
    /// assert!(text.contains("0x0000: LoadImm r1 #7"));
    /// assert!(text.contains("0x0004: Halt"));
    /// ```
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{:#06x}: {inst}", self.pc_of(i));
        }
        out
    }

    fn validate(&self) -> Result<(), ProgramError> {
        if self.insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        let limit = self.insts.len() as u64 * INST_BYTES;
        for (index, inst) in self.insts.iter().enumerate() {
            // Direct control flow must land on a real instruction.
            let direct_target = match inst.op {
                Opcode::Beq
                | Opcode::Bne
                | Opcode::Blt
                | Opcode::Bge
                | Opcode::Jump
                | Opcode::Call => Some(inst.imm),
                _ => None,
            };
            if let Some(t) = direct_target {
                if t < 0 || t as u64 >= limit || !(t as u64).is_multiple_of(INST_BYTES) {
                    return Err(ProgramError::BadBranchTarget { index, target: t });
                }
            }
            // Operand-shape checks.
            let (need1, need2) = required_sources(inst.op);
            if (need1 && inst.src1.is_none()) || (need2 && inst.src2.is_none()) {
                return Err(ProgramError::MissingOperand { index });
            }
            if produces_value(inst.op) && inst.dst.is_none() {
                return Err(ProgramError::MissingOperand { index });
            }
        }
        Ok(())
    }
}

/// `(needs_src1, needs_src2)` for each opcode.
fn required_sources(op: Opcode) -> (bool, bool) {
    use Opcode::*;
    match op {
        Add | Sub | And | Or | Xor | Shl | Shr | SetLt | Mul | Div | Rem | FAdd | FSub | FMul
        | FDiv | Beq | Bne | Blt | Bge | Store => (true, true),
        AddI | AndI | OrI | XorI | ShlI | ShrI | SetLtI | Mov | ICvtF | FCvtI | Load | JumpInd
        | Ret => (true, false),
        LoadImm | Jump | Call | Nop | Halt => (false, false),
    }
}

/// `true` if the opcode must have a destination register.
fn produces_value(op: Opcode) -> bool {
    use Opcode::*;
    !matches!(op, Store | Beq | Bne | Blt | Bge | Jump | JumpInd | Ret | Nop | Halt)
    // Call produces the link register.
}

/// Errors returned by [`Program::from_parts`] (and therefore by
/// [`crate::ProgramBuilder::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A direct branch/jump/call target is out of range or misaligned.
    BadBranchTarget {
        /// Index of the offending instruction.
        index: usize,
        /// The invalid byte-PC target.
        target: i64,
    },
    /// A µop is missing a register operand its opcode requires.
    MissingOperand {
        /// Index of the offending instruction.
        index: usize,
    },
    /// A label was referenced but never bound (builder-level error).
    UnboundLabel {
        /// The label id.
        label: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program is empty"),
            ProgramError::BadBranchTarget { index, target } => {
                write!(f, "instruction {index} has invalid branch target {target}")
            }
            ProgramError::MissingOperand { index } => {
                write!(f, "instruction {index} is missing a required operand")
            }
            ProgramError::UnboundLabel { label } => {
                write!(f, "label {label} was referenced but never bound")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn halt_program() -> Vec<Inst> {
        vec![Inst::bare(Opcode::Halt, 0)]
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(Program::from_parts(vec![], vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn valid_program_round_trips() {
        let p = Program::from_parts(halt_program(), vec![(8, 1)]).unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.initial_mem(), &[(8, 1)]);
        assert_eq!(p.pc_of(0), 0);
        assert_eq!(p.index_of_pc(0), Some(0));
        assert_eq!(p.index_of_pc(4), None);
        assert_eq!(p.index_of_pc(2), None);
        assert!(p.fetch(0).is_some());
    }

    #[test]
    fn out_of_range_branch_target_is_rejected() {
        let insts = vec![
            Inst::rr_i(Opcode::Beq, Reg::int(0), Reg::int(0), 400),
            Inst::bare(Opcode::Halt, 0),
        ];
        assert!(matches!(
            Program::from_parts(insts, vec![]),
            Err(ProgramError::BadBranchTarget { index: 0, target: 400 })
        ));
    }

    #[test]
    fn misaligned_branch_target_is_rejected() {
        let insts =
            vec![Inst::rr_i(Opcode::Beq, Reg::int(0), Reg::int(0), 2), Inst::bare(Opcode::Halt, 0)];
        assert!(matches!(
            Program::from_parts(insts, vec![]),
            Err(ProgramError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn negative_branch_target_is_rejected() {
        let insts = vec![
            Inst::rr_i(Opcode::Beq, Reg::int(0), Reg::int(0), -4),
            Inst::bare(Opcode::Halt, 0),
        ];
        assert!(matches!(
            Program::from_parts(insts, vec![]),
            Err(ProgramError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn missing_source_operand_is_rejected() {
        let bad = Inst {
            op: Opcode::Add,
            dst: Some(Reg::int(1)),
            src1: Some(Reg::int(2)),
            src2: None,
            imm: 0,
        };
        assert!(matches!(
            Program::from_parts(vec![bad], vec![]),
            Err(ProgramError::MissingOperand { index: 0 })
        ));
    }

    #[test]
    fn missing_destination_is_rejected() {
        let bad = Inst {
            op: Opcode::Add,
            dst: None,
            src1: Some(Reg::int(2)),
            src2: Some(Reg::int(3)),
            imm: 0,
        };
        assert!(matches!(
            Program::from_parts(vec![bad], vec![]),
            Err(ProgramError::MissingOperand { index: 0 })
        ));
    }

    #[test]
    fn disassemble_lists_every_instruction_with_pc() {
        let insts = vec![
            Inst::rrr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3)),
            Inst::bare(Opcode::Halt, 0),
        ];
        let p = Program::from_parts(insts, vec![]).unwrap();
        let text = p.disassemble();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("0x0000: Add r1 r2 r3"), "{text}");
        assert!(text.contains("0x0004: Halt"), "{text}");
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            ProgramError::Empty,
            ProgramError::BadBranchTarget { index: 1, target: 3 },
            ProgramError::MissingOperand { index: 2 },
            ProgramError::UnboundLabel { label: 0 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
