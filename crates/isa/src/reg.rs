//! Architectural registers.

use std::fmt;

/// Number of architectural registers: 32 integer + 32 floating-point.
pub const NUM_ARCH_REGS: usize = 64;

/// Register class: integer or floating point.
///
/// The out-of-order core keeps separate physical register files per class
/// (256 INT / 256 FP in the paper's Table 2 configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer register (`r0`–`r31`).
    Int,
    /// Floating-point register (`f0`–`f31`).
    Float,
}

/// An architectural register.
///
/// Indices `0..32` are the integer registers, `32..64` the floating-point
/// registers. Use [`Reg::int`] / [`Reg::float`] rather than raw indices.
///
/// # Examples
///
/// ```
/// use vpsim_isa::{Reg, RegClass};
/// let r5 = Reg::int(5);
/// assert_eq!(r5.class(), RegClass::Int);
/// assert_eq!(r5.to_string(), "r5");
/// let f2 = Reg::float(2);
/// assert_eq!(f2.class(), RegClass::Float);
/// assert_eq!(f2.index(), 34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The `n`-th integer register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn int(n: u8) -> Self {
        assert!(n < 32, "integer register index out of range (0..32)");
        Reg(n)
    }

    /// The `n`-th floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn float(n: u8) -> Self {
        assert!(n < 32, "float register index out of range (0..32)");
        Reg(32 + n)
    }

    /// Construct from a flat index in `0..NUM_ARCH_REGS`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < NUM_ARCH_REGS, "register index {index} out of range");
        Reg(index as u8)
    }

    /// Flat index in `0..NUM_ARCH_REGS` (usable as an array index).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The register's class.
    pub fn class(self) -> RegClass {
        if self.0 < 32 {
            RegClass::Int
        } else {
            RegClass::Float
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.0),
            RegClass::Float => write!(f, "f{}", self.0 - 32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_float_ranges_do_not_overlap() {
        for n in 0..32 {
            assert_eq!(Reg::int(n).class(), RegClass::Int);
            assert_eq!(Reg::float(n).class(), RegClass::Float);
            assert_ne!(Reg::int(n).index(), Reg::float(n).index());
        }
    }

    #[test]
    fn from_index_round_trips() {
        for i in 0..NUM_ARCH_REGS {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_out_of_range_panics() {
        let _ = Reg::from_index(NUM_ARCH_REGS);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::int(0).to_string(), "r0");
        assert_eq!(Reg::int(31).to_string(), "r31");
        assert_eq!(Reg::float(0).to_string(), "f0");
        assert_eq!(Reg::float(31).to_string(), "f31");
    }
}
