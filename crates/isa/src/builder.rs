//! Assembler-like program construction with labels.

use crate::inst::{Inst, Opcode};
use crate::program::{Program, ProgramError, INST_BYTES};
use crate::reg::Reg;

/// A forward-referencable code label.
///
/// Created with [`ProgramBuilder::label`] (unbound) or
/// [`ProgramBuilder::bind_label`] (bound at the current position); bound to a
/// position with [`ProgramBuilder::bind`]. Branch emitters take a `Label`,
/// and [`ProgramBuilder::build`] resolves every reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Immediate operand: either a literal or a label reference to patch later.
#[derive(Debug, Clone, Copy)]
enum Imm {
    Lit(i64),
    Ref(Label),
}

/// Builder for [`Program`]s with an assembler-like API.
///
/// Emitter methods append one µop and return its static index; control-flow
/// emitters accept [`Label`]s which may be bound before or after use.
///
/// # Examples
///
/// ```
/// use vpsim_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let r1 = Reg::int(1);
/// b.load_imm(r1, 3);
/// let skip = b.label();
/// b.beq(r1, r1, skip); // always taken
/// b.load_imm(r1, 99);  // skipped
/// b.bind(skip);
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.len(), 4);
/// # Ok::<(), vpsim_isa::ProgramError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<(Inst, Imm)>,
    labels: Vec<Option<usize>>,
    mem: Vec<(u64, u64)>,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the position of the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (each label marks one place).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len());
    }

    /// Create a label bound at the current position (common loop-top idiom).
    pub fn bind_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Current number of emitted µops (the index of the next one).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if no µops have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Add an initial-memory word.
    pub fn data(&mut self, addr: u64, value: u64) {
        self.mem.push((addr, value));
    }

    /// Add consecutive initial-memory words starting at `addr`.
    pub fn data_block(&mut self, addr: u64, values: &[u64]) {
        for (i, &v) in values.iter().enumerate() {
            self.mem.push((addr + 8 * i as u64, v));
        }
    }

    fn emit(&mut self, inst: Inst) -> usize {
        self.insts.push((inst, Imm::Lit(inst.imm)));
        self.insts.len() - 1
    }

    fn emit_ref(&mut self, inst: Inst, label: Label) -> usize {
        self.insts.push((inst, Imm::Ref(label)));
        self.insts.len() - 1
    }

    /// Resolve all labels and validate, producing a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if a referenced label was never
    /// bound, or any validation error from [`Program::from_parts`].
    pub fn build(self) -> Result<Program, ProgramError> {
        let labels = self.labels;
        let insts: Result<Vec<Inst>, ProgramError> = self
            .insts
            .into_iter()
            .map(|(mut inst, imm)| {
                match imm {
                    Imm::Lit(v) => inst.imm = v,
                    Imm::Ref(Label(id)) => {
                        let pos = labels[id].ok_or(ProgramError::UnboundLabel { label: id })?;
                        inst.imm = (pos as u64 * INST_BYTES) as i64;
                    }
                }
                Ok(inst)
            })
            .collect();
        Program::from_parts(insts?, self.mem)
    }
}

macro_rules! rrr_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, dst: Reg, src1: Reg, src2: Reg) -> usize {
                    self.emit(Inst::rrr(Opcode::$op, dst, src1, src2))
                }
            )+
        }
    };
}

rrr_ops! {
    /// `dst = src1 + src2`
    add => Add,
    /// `dst = src1 - src2`
    sub => Sub,
    /// `dst = src1 & src2`
    and => And,
    /// `dst = src1 | src2`
    or => Or,
    /// `dst = src1 ^ src2`
    xor => Xor,
    /// `dst = src1 << (src2 & 63)`
    shl => Shl,
    /// `dst = src1 >> (src2 & 63)`
    shr => Shr,
    /// `dst = (src1 as i64) < (src2 as i64)`
    setlt => SetLt,
    /// `dst = src1 * src2`
    mul => Mul,
    /// `dst = src1 / src2` (unsigned; `/0` yields `u64::MAX`)
    div => Div,
    /// `dst = src1 % src2` (unsigned; `%0` yields `src1`)
    rem => Rem,
    /// `dst = src1 +. src2` (f64)
    fadd => FAdd,
    /// `dst = src1 -. src2` (f64)
    fsub => FSub,
    /// `dst = src1 *. src2` (f64)
    fmul => FMul,
    /// `dst = src1 /. src2` (f64)
    fdiv => FDiv,
}

macro_rules! rri_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, dst: Reg, src1: Reg, imm: i64) -> usize {
                    self.emit(Inst::rri(Opcode::$op, dst, src1, imm))
                }
            )+
        }
    };
}

rri_ops! {
    /// `dst = src1 + imm`
    addi => AddI,
    /// `dst = src1 & imm`
    andi => AndI,
    /// `dst = src1 | imm`
    ori => OrI,
    /// `dst = src1 ^ imm`
    xori => XorI,
    /// `dst = src1 << (imm & 63)`
    shli => ShlI,
    /// `dst = src1 >> (imm & 63)`
    shri => ShrI,
    /// `dst = (src1 as i64) < imm`
    setlti => SetLtI,
    /// `dst = mem[src1 + imm]`
    load => Load,
}

macro_rules! branch_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, src1: Reg, src2: Reg, target: Label) -> usize {
                    self.emit_ref(Inst::rr_i(Opcode::$op, src1, src2, 0), target)
                }
            )+
        }
    };
}

branch_ops! {
    /// Branch to `target` if `src1 == src2`
    beq => Beq,
    /// Branch to `target` if `src1 != src2`
    bne => Bne,
    /// Branch to `target` if `(src1 as i64) < (src2 as i64)`
    blt => Blt,
    /// Branch to `target` if `(src1 as i64) >= (src2 as i64)`
    bge => Bge,
}

impl ProgramBuilder {
    /// `dst = imm`
    pub fn load_imm(&mut self, dst: Reg, imm: i64) -> usize {
        self.emit(Inst::ri(Opcode::LoadImm, dst, imm))
    }

    /// `dst =` byte PC of `target` — materialize a code address, e.g. to
    /// drive a [`ProgramBuilder::jump_ind`] through a computed jump table.
    pub fn load_label_addr(&mut self, dst: Reg, target: Label) -> usize {
        self.emit_ref(Inst::ri(Opcode::LoadImm, dst, 0), target)
    }

    /// `dst = src1`
    pub fn mov(&mut self, dst: Reg, src1: Reg) -> usize {
        self.emit(Inst::rri(Opcode::Mov, dst, src1, 0))
    }

    /// `dst = f64::from(src1 as i64)`
    pub fn icvtf(&mut self, dst: Reg, src1: Reg) -> usize {
        self.emit(Inst::rri(Opcode::ICvtF, dst, src1, 0))
    }

    /// `dst = (src1 as f64) as i64`
    pub fn fcvti(&mut self, dst: Reg, src1: Reg) -> usize {
        self.emit(Inst::rri(Opcode::FCvtI, dst, src1, 0))
    }

    /// `mem[base + offset] = value`
    pub fn store(&mut self, base: Reg, value: Reg, offset: i64) -> usize {
        self.emit(Inst {
            op: Opcode::Store,
            dst: None,
            src1: Some(base),
            src2: Some(value),
            imm: offset,
        })
    }

    /// Unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) -> usize {
        self.emit_ref(Inst::bare(Opcode::Jump, 0), target)
    }

    /// Indirect jump to the byte PC held in `addr_reg`.
    pub fn jump_ind(&mut self, addr_reg: Reg) -> usize {
        self.emit(Inst { op: Opcode::JumpInd, dst: None, src1: Some(addr_reg), src2: None, imm: 0 })
    }

    /// Direct call to `target`; the return address is written to `link`.
    pub fn call(&mut self, link: Reg, target: Label) -> usize {
        self.emit_ref(
            Inst { op: Opcode::Call, dst: Some(link), src1: None, src2: None, imm: 0 },
            target,
        )
    }

    /// Return to the byte PC held in `link`.
    pub fn ret(&mut self, link: Reg) -> usize {
        self.emit(Inst { op: Opcode::Ret, dst: None, src1: Some(link), src2: None, imm: 0 })
    }

    /// No-op.
    pub fn nop(&mut self) -> usize {
        self.emit(Inst::bare(Opcode::Nop, 0))
    }

    /// Stop the program.
    pub fn halt(&mut self) -> usize {
        self.emit(Inst::bare(Opcode::Halt, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let r1 = Reg::int(1);
        let fwd = b.label();
        b.load_imm(r1, 1);
        b.jump(fwd); // forward reference
        b.load_imm(r1, 2); // skipped
        b.bind(fwd);
        b.halt();
        let p = b.build().unwrap();
        // Jump at index 1 targets instruction 3 (byte PC 12).
        assert_eq!(p.insts()[1].imm, 12);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let dangling = b.label();
        b.jump(dangling);
        b.halt();
        assert!(matches!(b.build(), Err(ProgramError::UnboundLabel { label: 0 })));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_block_lays_out_consecutive_words() {
        let mut b = ProgramBuilder::new();
        b.data_block(0x100, &[10, 20, 30]);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.initial_mem(), &[(0x100, 10), (0x108, 20), (0x110, 30)]);
    }

    #[test]
    fn emitters_return_instruction_indices() {
        let mut b = ProgramBuilder::new();
        let r = Reg::int(0);
        assert_eq!(b.load_imm(r, 0), 0);
        assert_eq!(b.addi(r, r, 1), 1);
        assert_eq!(b.nop(), 2);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn built_program_executes_loop() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg::int(1), Reg::int(2));
        b.load_imm(i, 0);
        b.load_imm(n, 5);
        let top = b.bind_label();
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let count = e.by_ref().count();
        assert_eq!(e.reg(i), 5);
        // 2 setup + 5 iterations * 2 + halt
        assert_eq!(count, 2 + 10 + 1);
    }

    #[test]
    fn call_and_ret_round_trip() {
        let mut b = ProgramBuilder::new();
        let (lr, x) = (Reg::int(31), Reg::int(1));
        let func = b.label();
        b.call(lr, func);
        b.halt();
        b.bind(func);
        b.load_imm(x, 77);
        b.ret(lr);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.by_ref().for_each(drop);
        assert_eq!(e.reg(x), 77);
    }
}
