//! Word-granular sparse memory.

use std::collections::HashMap;

/// Sparse 64-bit-word memory.
///
/// All loads and stores in the µop ISA are 64-bit and are aligned down to an
/// 8-byte boundary by the executor, so memory is stored as a map from word
/// index to value. Unwritten locations read as zero, which keeps workload
/// setup cheap (no explicit zero-fill).
///
/// # Examples
///
/// ```
/// use vpsim_isa::SparseMemory;
/// let mut m = SparseMemory::new();
/// m.write(0x1000, 42);
/// assert_eq!(m.read(0x1000), 42);
/// assert_eq!(m.read(0x1003), 42); // same word, unaligned address
/// assert_eq!(m.read(0x2000), 0);  // untouched memory reads zero
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMemory {
    words: HashMap<u64, u64>,
}

impl SparseMemory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the 64-bit word containing `addr`.
    pub fn read(&self, addr: u64) -> u64 {
        self.words.get(&(addr >> 3)).copied().unwrap_or(0)
    }

    /// Write the 64-bit word containing `addr`. Writing zero removes the
    /// backing entry so the map only holds nonzero state.
    pub fn write(&mut self, addr: u64, value: u64) {
        if value == 0 {
            self.words.remove(&(addr >> 3));
        } else {
            self.words.insert(addr >> 3, value);
        }
    }

    /// Number of nonzero words currently stored.
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }
}

impl FromIterator<(u64, u64)> for SparseMemory {
    /// Build a memory image from `(address, value)` pairs.
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut m = SparseMemory::new();
        for (addr, value) in iter {
            m.write(addr, value);
        }
        m
    }
}

impl Extend<(u64, u64)> for SparseMemory {
    fn extend<I: IntoIterator<Item = (u64, u64)>>(&mut self, iter: I) {
        for (addr, value) in iter {
            self.write(addr, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = SparseMemory::new();
        m.write(64, 0xdead_beef);
        assert_eq!(m.read(64), 0xdead_beef);
    }

    #[test]
    fn unaligned_addresses_alias_the_same_word() {
        let mut m = SparseMemory::new();
        m.write(0x10, 7);
        for off in 0..8 {
            assert_eq!(m.read(0x10 + off), 7);
        }
        assert_eq!(m.read(0x18), 0);
    }

    #[test]
    fn writing_zero_reclaims_storage() {
        let mut m = SparseMemory::new();
        m.write(8, 5);
        assert_eq!(m.footprint_words(), 1);
        m.write(8, 0);
        assert_eq!(m.footprint_words(), 0);
        assert_eq!(m.read(8), 0);
    }

    #[test]
    fn from_iterator_builds_image() {
        let m: SparseMemory = [(0u64, 1u64), (8, 2), (16, 3)].into_iter().collect();
        assert_eq!(m.read(0), 1);
        assert_eq!(m.read(8), 2);
        assert_eq!(m.read(16), 3);
        assert_eq!(m.footprint_words(), 3);
    }

    #[test]
    fn extend_overwrites_existing_words() {
        let mut m: SparseMemory = [(0u64, 1u64)].into_iter().collect();
        m.extend([(0u64, 9u64), (8, 4)]);
        assert_eq!(m.read(0), 9);
        assert_eq!(m.read(8), 4);
    }
}
