//! Capture-once / replay-many: compact dynamic-instruction traces.
//!
//! The paper's methodology is trace-driven — the architectural instruction
//! stream is fixed while the timing model (predictor, confidence, recovery)
//! varies across a study. Re-running the functional [`Executor`] inline
//! inside every timing run therefore repeats identical work once per grid
//! cell. This module splits the two concerns:
//!
//! * [`Trace`] — a struct-of-arrays record of the dynamic stream, captured
//!   **once** per (program, length) from the executor.
//! * [`TraceCursor`] — a cheap replay iterator that reconstructs the exact
//!   [`DynInst`] sequence from a `&Trace` with no register file, no sparse
//!   memory and no per-µop semantics.
//! * [`InstSource`] — the abstraction the cycle-level core consumes: both
//!   `Executor` (streaming, capture path) and `TraceCursor` (replay path)
//!   implement it, and the two produce byte-identical streams.
//!
//! # Memory footprint
//!
//! The layout exploits the µop encoding: `seq` is the record position,
//! `pc = index * 4` (µops are 4 bytes), `next_pc` defaults to the
//! fall-through and is stored only for diverging control flow, and the
//! optional payloads (result, effective address, store value) live in
//! dense side-streams gated by a per-record flag byte. A record costs
//! 5 bytes fixed (static index + flags) plus 8 bytes per present payload —
//! ≈ 14–22 bytes for typical ALU/branch mixes versus the 88-byte in-memory
//! [`DynInst`], so a 250 k-µop capture (the default sweep sizing plus
//! in-flight slack) is ≈ 4–6 MB per workload. [`Trace::approx_bytes`]
//! reports the concrete number.
//!
//! # Examples
//!
//! ```
//! use vpsim_isa::{Executor, ProgramBuilder, Reg, Trace};
//!
//! let mut b = ProgramBuilder::new();
//! let (i, n) = (Reg::int(1), Reg::int(2));
//! b.load_imm(n, 10);
//! let top = b.bind_label();
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.halt();
//! let program = b.build()?;
//!
//! // Capture once…
//! let trace = Trace::capture(&program, 1_000);
//! // …replay many times: the cursor yields the exact executor stream.
//! let replayed: Vec<_> = trace.cursor().collect();
//! let executed: Vec<_> = Executor::new(&program).collect();
//! assert_eq!(replayed, executed);
//! # Ok::<(), vpsim_isa::ProgramError>(())
//! ```

use crate::exec::{DynInst, Executor};
use crate::inst::{Inst, Opcode};
use crate::program::{Program, INST_BYTES};
use crate::reg::{Reg, NUM_ARCH_REGS};
use std::fmt;

/// A source of dynamic instructions for the cycle-level core.
///
/// Implemented by [`Executor`] (functional execution, streaming) and
/// [`TraceCursor`] (replay of a captured [`Trace`]). Both yield the same
/// stream for the same program, so a timing model driven through this
/// trait produces byte-identical results on either path.
pub trait InstSource {
    /// The next dynamic instruction, or `None` once the stream ends
    /// (program halted, fell off the end, or the trace is exhausted).
    fn next_inst(&mut self) -> Option<DynInst>;
}

impl InstSource for Executor<'_> {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next()
    }
}

impl InstSource for TraceCursor<'_> {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next()
    }
}

impl InstSource for ViewCursor<'_> {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next()
    }
}

// Per-record flag bits.
const HAS_RESULT: u8 = 1 << 0;
const HAS_MEM_ADDR: u8 = 1 << 1;
const HAS_STORE_VALUE: u8 = 1 << 2;
const TAKEN: u8 = 1 << 3;
/// `next_pc != pc + 4`: the architectural successor is stored explicitly.
const DIVERGES: u8 = 1 << 4;
/// The flag bits that each carry one slot in the payload stream.
const PAYLOAD_BITS: u8 = HAS_RESULT | HAS_MEM_ADDR | HAS_STORE_VALUE | DIVERGES;

/// A captured dynamic instruction stream in struct-of-arrays form.
///
/// Self-contained: the static µop table is copied in, so a trace outlives
/// the [`Program`] it came from and can be shared across threads (e.g. via
/// `Arc<Trace>`) without lifetime ties. The source module's header
/// comment walks through the layout and footprint arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Static µop table; `index` entries point into it.
    insts: Vec<Inst>,
    /// Static instruction index per dynamic record.
    index: Vec<u32>,
    /// Presence/outcome flag byte per dynamic record.
    flags: Vec<u8>,
    /// One interleaved stream of the optional payloads, in flag-bit order
    /// per record (result, effective address, store value, diverging
    /// `next_pc`) — replay consumes it strictly sequentially, so the
    /// cursor needs a single position and the prefetcher a single stream.
    payload: Vec<u64>,
}

impl Trace {
    /// Capture up to `limit` dynamic instructions of `program` from a
    /// fresh [`Executor`] (fewer if the program halts first).
    ///
    /// A trace replayed into a timing model is byte-identical to inline
    /// execution as long as it covers every µop the model would fetch;
    /// for a run measuring `warmup + measure` commits that bound is
    /// `warmup + measure` plus the core's maximum in-flight capacity
    /// (`vpsim-uarch` exposes it as `CoreConfig::trace_budget`).
    pub fn capture(program: &Program, limit: u64) -> Trace {
        let mut trace = Trace {
            insts: program.insts().to_vec(),
            index: Vec::new(),
            flags: Vec::new(),
            payload: Vec::new(),
        };
        let limit = usize::try_from(limit).unwrap_or(usize::MAX);
        for di in Executor::new(program).take(limit) {
            trace.push(&di);
        }
        trace
    }

    fn push(&mut self, di: &DynInst) {
        debug_assert_eq!(di.seq, self.index.len() as u64, "records must be dense from 0");
        let mut flags = 0u8;
        if let Some(v) = di.result {
            flags |= HAS_RESULT;
            self.payload.push(v);
        }
        if let Some(a) = di.mem_addr {
            flags |= HAS_MEM_ADDR;
            self.payload.push(a);
        }
        if let Some(v) = di.store_value {
            flags |= HAS_STORE_VALUE;
            self.payload.push(v);
        }
        if di.taken {
            flags |= TAKEN;
        }
        if di.next_pc != di.pc + INST_BYTES {
            flags |= DIVERGES;
            self.payload.push(di.next_pc);
        }
        self.index.push(di.index);
        self.flags.push(flags);
    }

    /// Number of dynamic instructions captured.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Approximate heap footprint in bytes (the SoA payloads plus the
    /// static µop table).
    pub fn approx_bytes(&self) -> usize {
        self.insts.len() * std::mem::size_of::<Inst>()
            + self.index.len() * std::mem::size_of::<u32>()
            + self.flags.len()
            + self.payload.len() * std::mem::size_of::<u64>()
    }

    /// A replay iterator over the captured stream, starting at `seq` 0.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor { trace: self, pos: 0, payload_pos: 0 }
    }

    /// Payload-stream position corresponding to record position `pos`:
    /// the number of payload slots consumed by all earlier records (each
    /// contributes one slot per payload-bearing flag bit).
    fn payload_pos_at(&self, pos: usize) -> usize {
        self.flags[..pos].iter().map(|f| (f & PAYLOAD_BITS).count_ones() as usize).sum()
    }

    /// A replay cursor positioned at record `pos` (clamped to the trace
    /// length), as if a fresh cursor had consumed the first `pos` records.
    /// Costs one popcount pass over the flag bytes up to `pos`; use
    /// [`Trace::cursor_resume`] with a checkpointed payload position to
    /// seek in O(1).
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_isa::{ProgramBuilder, Reg, Trace};
    /// let mut b = ProgramBuilder::new();
    /// b.load_imm(Reg::int(1), 3);
    /// b.addi(Reg::int(2), Reg::int(1), 1);
    /// b.halt();
    /// let trace = Trace::capture(&b.build()?, 100);
    /// let mut skipped = trace.cursor();
    /// skipped.next();
    /// assert_eq!(trace.cursor_at(1).collect::<Vec<_>>(), skipped.collect::<Vec<_>>());
    /// # Ok::<(), vpsim_isa::ProgramError>(())
    /// ```
    pub fn cursor_at(&self, pos: usize) -> TraceCursor<'_> {
        let pos = pos.min(self.len());
        TraceCursor { trace: self, pos, payload_pos: self.payload_pos_at(pos) }
    }

    /// Rebuild a cursor from checkpointed `(pos, payload_pos)` coordinates
    /// in O(1) — the seek half of the sampling layer's serialized
    /// checkpoints. The coordinates are bounds-checked (and, in debug
    /// builds, verified against the flag stream); mismatched coordinates
    /// from a stale or foreign checkpoint are an error, never an
    /// out-of-bounds replay.
    pub fn cursor_resume(
        &self,
        pos: usize,
        payload_pos: usize,
    ) -> Result<TraceCursor<'_>, &'static str> {
        if pos > self.len() {
            return Err("checkpoint position past the end of the trace");
        }
        if payload_pos > self.payload.len() {
            return Err("checkpoint payload position past the payload stream");
        }
        debug_assert_eq!(
            payload_pos,
            self.payload_pos_at(pos),
            "checkpoint coordinates must be mutually consistent"
        );
        Ok(TraceCursor { trace: self, pos, payload_pos })
    }

    /// Serialize into the checksummed binary format described in the
    /// [`Trace`] docs: a magic/version header, the four SoA sections each
    /// prefixed with a little-endian `u64` element count, and a trailing
    /// FNV-1a 64 checksum over everything before it.
    ///
    /// [`Trace::from_bytes`] round-trips the result exactly:
    ///
    /// ```
    /// use vpsim_isa::{ProgramBuilder, Reg, Trace};
    /// let mut b = ProgramBuilder::new();
    /// b.load_imm(Reg::int(1), 7);
    /// b.halt();
    /// let trace = Trace::capture(&b.build()?, 100);
    /// assert_eq!(Trace::from_bytes(&trace.to_bytes()).unwrap(), trace);
    /// # Ok::<(), vpsim_isa::ProgramError>(())
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAGIC.len() + self.approx_bytes() + 5 * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.insts.len() as u64).to_le_bytes());
        for inst in &self.insts {
            out.push(inst.op.code());
            out.push(encode_reg(inst.dst));
            out.push(encode_reg(inst.src1));
            out.push(encode_reg(inst.src2));
            out.extend_from_slice(&inst.imm.to_le_bytes());
        }
        out.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        for &index in &self.index {
            out.extend_from_slice(&index.to_le_bytes());
        }
        out.extend_from_slice(&(self.flags.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.flags);
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        for &payload in &self.payload {
            out.extend_from_slice(&payload.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialize a trace produced by [`Trace::to_bytes`].
    ///
    /// Every failure mode is an error, never a panic: bad magic, any
    /// truncation or trailing garbage, checksum mismatch (a single flipped
    /// bit anywhere is caught), unknown opcode/register codes, and
    /// cross-section inconsistencies (record counts that disagree, a
    /// record pointing past the µop table, a payload stream whose length
    /// does not match the flag bits).
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceDecodeError> {
        TraceBlob::parse(bytes).map(TraceBlob::into_trace)
    }
}

/// A validated serialized trace over any byte container, replayable
/// without materializing the owned [`Trace`] form.
///
/// [`TraceBlob::parse`] performs **all** of [`Trace::from_bytes`]'
/// validation once — magic, checksum, per-section decode checks, and
/// cross-section consistency — but keeps the three big dynamic sections
/// (record index, flags, payload) as byte ranges into the original
/// buffer instead of copying them into vectors. Only the small static
/// µop table is decoded eagerly (its opcode/register bytes need
/// validation anyway).
///
/// [`TraceBlob::view`] then hands out a cheap borrowed [`TraceView`]
/// whose [`ViewCursor`] replays the exact [`DynInst`] stream straight
/// from the serialized bytes — the zero-copy half of the trace store's
/// mmap-backed load path. `B` is any byte container (`&[u8]`, `Vec<u8>`,
/// a memory mapping…), so the blob can own the backing storage and be
/// shared across threads.
///
/// # Examples
///
/// ```
/// use vpsim_isa::{ProgramBuilder, Reg, Trace, TraceBlob};
/// let mut b = ProgramBuilder::new();
/// b.load_imm(Reg::int(1), 7);
/// b.halt();
/// let trace = Trace::capture(&b.build()?, 100);
/// let blob = TraceBlob::parse(trace.to_bytes()).unwrap();
/// let replayed: Vec<_> = blob.view().cursor().collect();
/// assert_eq!(replayed, trace.cursor().collect::<Vec<_>>());
/// # Ok::<(), vpsim_isa::ProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceBlob<B> {
    bytes: B,
    /// Decoded static µop table (small; validated eagerly).
    insts: Vec<Inst>,
    /// Byte range of the record-index section (4 bytes per record, LE).
    index: std::ops::Range<usize>,
    /// Byte range of the flag section (1 byte per record).
    flags: std::ops::Range<usize>,
    /// Byte range of the payload section (8 bytes per slot, LE).
    payload: std::ops::Range<usize>,
}

impl<B: AsRef<[u8]>> TraceBlob<B> {
    /// Validate a serialized trace (produced by [`Trace::to_bytes`]) and
    /// index its sections without copying them. Rejects exactly what
    /// [`Trace::from_bytes`] rejects; the two share this implementation.
    pub fn parse(bytes: B) -> Result<TraceBlob<B>, TraceDecodeError> {
        use TraceDecodeError::*;
        let buf = bytes.as_ref();
        let mut r = Reader { bytes: buf, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(BadMagic);
        }
        // The static table is decoded in place with `chunks_exact` —
        // exactly one allocation; the dynamic sections are only
        // bounds-checked and recorded as ranges.
        let n_insts = r.len_prefix(12)?;
        let inst_bytes = r.take(n_insts * 12)?;
        let mut insts = Vec::with_capacity(n_insts);
        for rec in inst_bytes.chunks_exact(12) {
            insts.push(Inst {
                op: Opcode::from_code(rec[0]).ok_or(BadOpcode(rec[0]))?,
                dst: decode_reg(rec[1])?,
                src1: decode_reg(rec[2])?,
                src2: decode_reg(rec[3])?,
                imm: i64::from_le_bytes(rec[4..12].try_into().unwrap()),
            });
        }
        let n_index = r.len_prefix(4)?;
        let index_start = r.pos;
        let index_bytes = r.take(n_index * 4)?;
        let index = index_start..r.pos;
        let n_flags = r.len_prefix(1)?;
        let flags_start = r.pos;
        let flag_bytes = r.take(n_flags)?;
        let flags = flags_start..r.pos;
        let n_payload = r.len_prefix(8)?;
        let payload_start = r.pos;
        r.take(n_payload * 8)?;
        let payload = payload_start..r.pos;
        let body_end = r.pos;
        let found = u64::from_le_bytes(r.take(8)?.try_into().unwrap());
        if r.pos != buf.len() {
            return Err(TrailingBytes(buf.len() - r.pos));
        }
        let expected = fnv1a(&buf[..body_end]);
        if found != expected {
            return Err(ChecksumMismatch { expected, found });
        }
        // Cross-section consistency: replay must never index out of
        // bounds, so a structurally broken (but checksum-valid) buffer is
        // rejected here rather than panicking in the cursor.
        if n_index != n_flags {
            return Err(Inconsistent("record index and flag sections differ in length"));
        }
        if index_bytes
            .chunks_exact(4)
            .any(|c| u32::from_le_bytes(c.try_into().unwrap()) as usize >= insts.len())
        {
            return Err(Inconsistent("record points past the static µop table"));
        }
        let want_payload: usize =
            flag_bytes.iter().map(|f| (f & PAYLOAD_BITS).count_ones()).sum::<u32>() as usize;
        if n_payload != want_payload {
            return Err(Inconsistent("payload stream length does not match flag bits"));
        }
        Ok(TraceBlob { bytes, insts, index, flags, payload })
    }

    /// Number of dynamic records in the serialized trace.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// `true` if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// The backing byte container the blob was parsed from.
    pub fn bytes(&self) -> &B {
        &self.bytes
    }

    /// A borrowed struct-of-arrays view over the validated sections.
    /// Cheap (slice arithmetic only); any number of views and cursors can
    /// replay the same blob concurrently.
    pub fn view(&self) -> TraceView<'_> {
        let buf = self.bytes.as_ref();
        TraceView {
            insts: &self.insts,
            index: &buf[self.index.clone()],
            flags: &buf[self.flags.clone()],
            payload: &buf[self.payload.clone()],
        }
    }

    /// Materialize the owned [`Trace`], consuming the blob (the static
    /// table moves; only the dynamic sections are decoded — one exact
    /// allocation each, same as the historical decode path).
    pub fn into_trace(self) -> Trace {
        let buf = self.bytes.as_ref();
        let index_bytes = &buf[self.index.clone()];
        let mut index = Vec::with_capacity(index_bytes.len() / 4);
        index
            .extend(index_bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())));
        let flags = buf[self.flags.clone()].to_vec();
        let payload_bytes = &buf[self.payload.clone()];
        let mut payload = Vec::with_capacity(payload_bytes.len() / 8);
        payload.extend(
            payload_bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())),
        );
        Trace { insts: self.insts, index, flags, payload }
    }

    /// Materialize the owned [`Trace`] without consuming the blob (clones
    /// the static table in addition to decoding the dynamic sections).
    pub fn to_trace(&self) -> Trace {
        let mut trace = TraceBlob {
            bytes: self.bytes.as_ref(),
            insts: Vec::new(),
            index: self.index.clone(),
            flags: self.flags.clone(),
            payload: self.payload.clone(),
        }
        .into_trace();
        trace.insts = self.insts.clone();
        trace
    }
}

/// A borrowed struct-of-arrays view over a serialized trace, obtained
/// from [`TraceBlob::view`]. The three dynamic sections stay in their
/// little-endian wire form and are decoded per access (`from_le_bytes`
/// on byte chunks — alignment-free, so the backing buffer can sit at any
/// offset of a mapped file).
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    insts: &'a [Inst],
    index: &'a [u8],
    flags: &'a [u8],
    payload: &'a [u8],
}

impl<'a> TraceView<'a> {
    /// Number of dynamic records.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// `true` if the view holds no records.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// A replay iterator over the serialized stream, starting at `seq` 0.
    /// Yields exactly what [`Trace::cursor`] yields for the trace these
    /// bytes serialize.
    pub fn cursor(&self) -> ViewCursor<'a> {
        ViewCursor {
            insts: self.insts,
            index: self.index,
            flags: self.flags,
            payload: self.payload,
            pos: 0,
            payload_pos: 0,
        }
    }

    /// A replay cursor positioned at record `pos` (clamped to the view
    /// length), as if a fresh cursor had consumed the first `pos`
    /// records. Costs one popcount pass over the flag bytes up to `pos` —
    /// the mirror of [`Trace::cursor_at`].
    pub fn cursor_at(&self, pos: usize) -> ViewCursor<'a> {
        let pos = pos.min(self.len());
        let payload_pos: usize =
            self.flags[..pos].iter().map(|f| (f & PAYLOAD_BITS).count_ones() as usize).sum();
        let mut cursor = self.cursor();
        cursor.pos = pos;
        cursor.payload_pos = payload_pos;
        cursor
    }
}

/// Magic + format version prefix of the [`Trace`] binary form. Bump the
/// trailing digit on any incompatible layout change.
const MAGIC: &[u8; 8] = b"vpstrc1\n";

/// Register slot encoding: `0xFF` is `None`, anything else a flat index.
const NO_REG: u8 = 0xFF;

fn encode_reg(reg: Option<Reg>) -> u8 {
    reg.map_or(NO_REG, |r| r.index() as u8)
}

fn decode_reg(code: u8) -> Result<Option<Reg>, TraceDecodeError> {
    match code {
        NO_REG => Ok(None),
        n if (n as usize) < NUM_ARCH_REGS => Ok(Some(Reg::from_index(n as usize))),
        n => Err(TraceDecodeError::BadReg(n)),
    }
}

/// FNV-1a 64 over a byte slice — the integrity checksum of the serialized
/// trace form. Not cryptographic; it guards against storage corruption
/// (bit flips, truncation), not adversaries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Bounds-checked little-endian reader over the serialized buffer.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceDecodeError> {
        let end = self.pos.checked_add(n).ok_or(TraceDecodeError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(TraceDecodeError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// A section's element count, validated against the bytes actually
    /// remaining (`elem_size` bytes per element) — so a corrupt count can
    /// never drive a huge allocation before the bounds check.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, TraceDecodeError> {
        let n = u64::from_le_bytes(self.take(8)?.try_into().unwrap());
        let n = usize::try_from(n).map_err(|_| TraceDecodeError::Truncated)?;
        let need = n.checked_mul(elem_size).ok_or(TraceDecodeError::Truncated)?;
        if need > self.bytes.len() - self.pos {
            return Err(TraceDecodeError::Truncated);
        }
        Ok(n)
    }
}

/// Why [`Trace::from_bytes`] rejected a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The buffer does not start with the trace magic/version prefix.
    BadMagic,
    /// The buffer ended before a declared section did.
    Truncated,
    /// Bytes remain after the checksum (count attached).
    TrailingBytes(usize),
    /// The FNV-1a 64 integrity checksum did not match the body.
    ChecksumMismatch {
        /// Checksum recomputed from the body.
        expected: u64,
        /// Checksum stored in the buffer.
        found: u64,
    },
    /// An opcode byte outside [`Opcode::ALL`].
    BadOpcode(u8),
    /// A register byte that is neither `0xFF` (none) nor a valid index.
    BadReg(u8),
    /// Sections are individually well-formed but mutually inconsistent.
    Inconsistent(&'static str),
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "bad magic (not a serialized trace)"),
            TraceDecodeError::Truncated => write!(f, "truncated buffer"),
            TraceDecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after checksum")
            }
            TraceDecodeError::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch: computed {expected:#018x}, stored {found:#018x}")
            }
            TraceDecodeError::BadOpcode(code) => write!(f, "unknown opcode code {code}"),
            TraceDecodeError::BadReg(code) => write!(f, "unknown register code {code}"),
            TraceDecodeError::Inconsistent(why) => write!(f, "inconsistent sections: {why}"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// Replay iterator over a [`Trace`]: yields the captured [`DynInst`]
/// stream exactly, in order, at a few loads per µop.
///
/// Obtain one with [`Trace::cursor`]; any number of cursors may replay the
/// same shared trace concurrently.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    /// Next record position (== the `seq` it will yield).
    pos: usize,
    /// Next unconsumed slot of the interleaved payload stream.
    payload_pos: usize,
}

impl<'a> TraceCursor<'a> {
    /// Record position — the `seq` the next [`InstSource::next_inst`] call
    /// will yield.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Position in the interleaved payload stream. Serialize it next to
    /// [`TraceCursor::pos`] in a checkpoint and hand both back to
    /// [`Trace::cursor_resume`] to seek in O(1).
    pub fn payload_pos(&self) -> usize {
        self.payload_pos
    }

    /// The trace this cursor replays.
    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Seek to the start of interval `index` of a `period`-sized
    /// partitioning that begins at record `base` — the addressing scheme
    /// of the sampling layer (`base` is the end of the global warm-up,
    /// interval `i` covers records `[base + i·period, base + (i+1)·period)`).
    /// Positions past the end of the trace clamp to the end. Costs one
    /// popcount pass over the flag bytes up to the target.
    pub fn seek_interval(&mut self, base: u64, period: u64, index: u64) {
        let target = base.saturating_add(index.saturating_mul(period));
        let target = usize::try_from(target).unwrap_or(usize::MAX);
        *self = self.trace.cursor_at(target);
    }
}

impl Iterator for TraceCursor<'_> {
    type Item = DynInst;

    #[inline]
    fn next(&mut self) -> Option<DynInst> {
        let t = self.trace;
        let index = *t.index.get(self.pos)?;
        let flags = t.flags[self.pos];
        let pc = index as u64 * INST_BYTES;
        // Payloads were pushed in flag-bit order; consume them the same
        // way from the single sequential stream.
        let mut p = self.payload_pos;
        let mut pull = |bit: u8| {
            if flags & bit != 0 {
                let v = t.payload[p];
                p += 1;
                Some(v)
            } else {
                None
            }
        };
        let result = pull(HAS_RESULT);
        let mem_addr = pull(HAS_MEM_ADDR);
        let store_value = pull(HAS_STORE_VALUE);
        let next_pc = match pull(DIVERGES) {
            Some(target) => target,
            None => pc + INST_BYTES,
        };
        self.payload_pos = p;
        let seq = self.pos as u64;
        self.pos += 1;
        Some(DynInst {
            seq,
            pc,
            index,
            inst: t.insts[index as usize],
            result,
            mem_addr,
            store_value,
            taken: flags & TAKEN != 0,
            next_pc,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceCursor<'_> {}

/// Replay iterator over a borrowed [`TraceView`]: yields the identical
/// [`DynInst`] stream a [`TraceCursor`] would for the owned decode of
/// the same bytes, but reads the record index and payload sections
/// straight out of their little-endian wire form (`from_le_bytes` on
/// byte chunks — no alignment requirement on the backing buffer).
///
/// Obtain one with [`TraceView::cursor`]; any number of cursors may
/// replay the same view concurrently.
#[derive(Debug, Clone)]
pub struct ViewCursor<'a> {
    insts: &'a [Inst],
    index: &'a [u8],
    flags: &'a [u8],
    payload: &'a [u8],
    /// Next record position (== the `seq` it will yield).
    pos: usize,
    /// Next unconsumed slot of the interleaved payload stream.
    payload_pos: usize,
}

impl Iterator for ViewCursor<'_> {
    type Item = DynInst;

    #[inline]
    fn next(&mut self) -> Option<DynInst> {
        let flags = *self.flags.get(self.pos)?;
        let index = u32::from_le_bytes(self.index[self.pos * 4..][..4].try_into().unwrap());
        let pc = index as u64 * INST_BYTES;
        // Payloads were pushed in flag-bit order; consume them the same
        // way from the single sequential stream.
        let mut p = self.payload_pos;
        let payload = self.payload;
        let mut pull = |bit: u8| {
            if flags & bit != 0 {
                let v = u64::from_le_bytes(payload[p * 8..][..8].try_into().unwrap());
                p += 1;
                Some(v)
            } else {
                None
            }
        };
        let result = pull(HAS_RESULT);
        let mem_addr = pull(HAS_MEM_ADDR);
        let store_value = pull(HAS_STORE_VALUE);
        let next_pc = match pull(DIVERGES) {
            Some(target) => target,
            None => pc + INST_BYTES,
        };
        self.payload_pos = p;
        let seq = self.pos as u64;
        self.pos += 1;
        Some(DynInst {
            seq,
            pc,
            index,
            inst: self.insts[index as usize],
            result,
            mem_addr,
            store_value,
            taken: flags & TAKEN != 0,
            next_pc,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.flags.len() - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ViewCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    /// A program exercising every record shape: ALU, loads, stores, taken
    /// and not-taken branches, calls/returns, an indirect jump, and halt.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let (i, n, acc, addr, t) =
            (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
        let lr = Reg::int(31);
        b.load_imm(n, 40);
        b.load_imm(addr, 0x1000);
        let f = b.label();
        let top = b.bind_label();
        b.add(acc, acc, i);
        b.store(addr, acc, 0);
        b.load(t, addr, 0);
        b.call(lr, f);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        b.bind(f);
        b.ret(lr);
        b.build().unwrap()
    }

    #[test]
    fn capture_then_replay_is_the_executor_stream() {
        let p = mixed_program();
        let executed: Vec<_> = Executor::new(&p).collect();
        let trace = Trace::capture(&p, u64::MAX);
        assert_eq!(trace.len(), executed.len());
        let replayed: Vec<_> = trace.cursor().collect();
        assert_eq!(replayed, executed);
    }

    #[test]
    fn truncated_capture_is_a_prefix() {
        let p = mixed_program();
        let executed: Vec<_> = Executor::new(&p).collect();
        for limit in [0usize, 1, 7, 50] {
            let trace = Trace::capture(&p, limit as u64);
            assert_eq!(trace.len(), limit.min(executed.len()));
            let replayed: Vec<_> = trace.cursor().collect();
            assert_eq!(replayed[..], executed[..trace.len()]);
        }
    }

    #[test]
    fn cursor_is_restartable_and_sized() {
        let p = mixed_program();
        let trace = Trace::capture(&p, 25);
        let first: Vec<_> = trace.cursor().collect();
        let mut cursor = trace.cursor();
        assert_eq!(cursor.len(), 25);
        cursor.next();
        assert_eq!(cursor.len(), 24);
        let second: Vec<_> = trace.cursor().collect();
        assert_eq!(first, second, "cursors are independent");
    }

    #[test]
    fn inst_source_paths_agree() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let mut exec = Executor::new(&p);
        let mut cursor = trace.cursor();
        loop {
            let (a, b) = (exec.next_inst(), cursor.next_inst());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn footprint_is_compact_and_reported() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let bytes = trace.approx_bytes();
        assert!(bytes > 0);
        // The SoA form must undercut materializing the DynInst stream.
        let materialized = trace.len() * std::mem::size_of::<DynInst>();
        assert!(bytes < materialized, "{bytes} vs {materialized}");
    }

    #[test]
    fn serialized_trace_round_trips_exactly() {
        let p = mixed_program();
        for limit in [0u64, 1, 7, u64::MAX] {
            let trace = Trace::capture(&p, limit);
            let bytes = trace.to_bytes();
            let back = Trace::from_bytes(&bytes).unwrap();
            assert_eq!(back, trace, "limit {limit}");
            let replayed: Vec<_> = back.cursor().collect();
            let original: Vec<_> = trace.cursor().collect();
            assert_eq!(replayed, original, "limit {limit}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let p = mixed_program();
        let bytes = Trace::capture(&p, 30).to_bytes();
        // Flip one bit per byte across the whole buffer: whatever the
        // position (magic, section, checksum itself), decode must fail.
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            assert!(Trace::from_bytes(&corrupt).is_err(), "flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let p = mixed_program();
        let bytes = Trace::capture(&p, 30).to_bytes();
        for cut in [0, 1, MAGIC.len(), bytes.len() / 2, bytes.len() - 1] {
            assert!(Trace::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(Trace::from_bytes(&extended), Err(TraceDecodeError::TrailingBytes(1)));
        assert_eq!(Trace::from_bytes(b"not a trace at all"), Err(TraceDecodeError::BadMagic));
    }

    #[test]
    fn checksum_error_reports_both_values() {
        let p = mixed_program();
        let mut bytes = Trace::capture(&p, 10).to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match Trace::from_bytes(&bytes) {
            Err(TraceDecodeError::ChecksumMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn cursor_at_matches_a_skipped_fresh_cursor() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        for pos in [0, 1, 7, trace.len() / 2, trace.len() - 1, trace.len(), trace.len() + 10] {
            let mut skipped = trace.cursor();
            for _ in 0..pos.min(trace.len()) {
                skipped.next();
            }
            let seeked = trace.cursor_at(pos);
            assert_eq!(seeked.pos(), pos.min(trace.len()));
            assert_eq!(seeked.collect::<Vec<_>>(), skipped.collect::<Vec<_>>(), "pos {pos}");
        }
    }

    #[test]
    fn seek_interval_addresses_fixed_size_intervals() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let (base, period) = (5u64, 16u64);
        let mut cursor = trace.cursor();
        for i in 0..4 {
            cursor.seek_interval(base, period, i);
            let want = ((base + i * period) as usize).min(trace.len());
            assert_eq!(cursor.pos(), want, "interval {i}");
            assert_eq!(
                cursor.clone().collect::<Vec<_>>(),
                trace.cursor_at(want).collect::<Vec<_>>()
            );
        }
        // Seeking far past the end clamps to an exhausted cursor.
        cursor.seek_interval(base, period, u64::MAX);
        assert_eq!(cursor.next(), None);
    }

    #[test]
    fn cursor_resume_restores_checkpointed_coordinates() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let mut cursor = trace.cursor();
        for _ in 0..trace.len() / 2 {
            cursor.next();
        }
        let (pos, payload_pos) = (cursor.pos(), cursor.payload_pos());
        let resumed = trace.cursor_resume(pos, payload_pos).unwrap();
        assert_eq!(resumed.collect::<Vec<_>>(), cursor.collect::<Vec<_>>());
        // Out-of-bounds coordinates are rejected, never replayed.
        assert!(trace.cursor_resume(trace.len() + 1, 0).is_err());
        assert!(trace.cursor_resume(0, usize::MAX).is_err());
    }

    #[test]
    fn empty_capture_is_empty() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let trace = Trace::capture(&p, 0);
        assert!(trace.is_empty());
        assert_eq!(trace.cursor().next(), None);
    }

    #[test]
    fn view_cursor_replays_the_owned_stream_exactly() {
        let p = mixed_program();
        for limit in [0u64, 1, 7, u64::MAX] {
            let trace = Trace::capture(&p, limit);
            let blob = TraceBlob::parse(trace.to_bytes()).unwrap();
            assert_eq!(blob.len(), trace.len(), "limit {limit}");
            let view = blob.view();
            assert_eq!(view.len(), trace.len());
            let mut cursor = view.cursor();
            assert_eq!(cursor.len(), trace.len());
            let replayed: Vec<_> = view.cursor().collect();
            let owned: Vec<_> = trace.cursor().collect();
            assert_eq!(replayed, owned, "limit {limit}");
            // The InstSource path agrees with the Iterator path.
            let mut trace_cursor = trace.cursor();
            loop {
                let (a, b) = (cursor.next_inst(), trace_cursor.next_inst());
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn view_cursor_at_matches_owned_cursor_at() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let blob = TraceBlob::parse(trace.to_bytes()).unwrap();
        let view = blob.view();
        for pos in [0, 1, 7, trace.len() / 2, trace.len(), trace.len() + 10] {
            assert_eq!(
                view.cursor_at(pos).collect::<Vec<_>>(),
                trace.cursor_at(pos).collect::<Vec<_>>(),
                "pos {pos}"
            );
        }
    }

    #[test]
    fn blob_rejects_exactly_what_from_bytes_rejects() {
        let p = mixed_program();
        let bytes = Trace::capture(&p, 30).to_bytes();
        // Every single-bit flip, truncation, and extension is rejected by
        // both decode paths with the same error (they share the parser).
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            let owned = Trace::from_bytes(&corrupt);
            let blob = TraceBlob::parse(corrupt.as_slice());
            assert_eq!(owned.as_ref().err(), blob.as_ref().err(), "flip at byte {pos}");
            assert!(blob.is_err(), "flip at byte {pos} went undetected");
        }
        for cut in [0, 1, MAGIC.len(), bytes.len() / 2, bytes.len() - 1] {
            assert!(TraceBlob::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn blob_into_trace_and_to_trace_match_the_owned_decode() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let bytes = trace.to_bytes();
        let blob = TraceBlob::parse(bytes.as_slice()).unwrap();
        assert_eq!(blob.to_trace(), trace);
        assert_eq!(blob.into_trace(), trace);
    }

    #[test]
    fn blob_owns_its_buffer_and_views_are_shareable() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let blob = TraceBlob::parse(trace.to_bytes()).unwrap();
        // Two simultaneous cursors over one blob replay independently.
        let (a, b) = (blob.view().cursor(), blob.view().cursor());
        assert_eq!(a.collect::<Vec<_>>(), b.collect::<Vec<_>>());
    }
}
