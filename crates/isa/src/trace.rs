//! Capture-once / replay-many: compact dynamic-instruction traces.
//!
//! The paper's methodology is trace-driven — the architectural instruction
//! stream is fixed while the timing model (predictor, confidence, recovery)
//! varies across a study. Re-running the functional [`Executor`] inline
//! inside every timing run therefore repeats identical work once per grid
//! cell. This module splits the two concerns:
//!
//! * [`Trace`] — a struct-of-arrays record of the dynamic stream, captured
//!   **once** per (program, length) from the executor.
//! * [`TraceCursor`] — a cheap replay iterator that reconstructs the exact
//!   [`DynInst`] sequence from a `&Trace` with no register file, no sparse
//!   memory and no per-µop semantics.
//! * [`InstSource`] — the abstraction the cycle-level core consumes: both
//!   `Executor` (streaming, capture path) and `TraceCursor` (replay path)
//!   implement it, and the two produce byte-identical streams.
//!
//! # Memory footprint
//!
//! The layout exploits the µop encoding: `seq` is the record position,
//! `pc = index * 4` (µops are 4 bytes), `next_pc` defaults to the
//! fall-through and is stored only for diverging control flow, and the
//! optional payloads (result, effective address, store value) live in
//! dense side-streams gated by a per-record flag byte. A record costs
//! 5 bytes fixed (static index + flags) plus 8 bytes per present payload —
//! ≈ 14–22 bytes for typical ALU/branch mixes versus the 88-byte in-memory
//! [`DynInst`], so a 250 k-µop capture (the default sweep sizing plus
//! in-flight slack) is ≈ 4–6 MB per workload. [`Trace::approx_bytes`]
//! reports the concrete number.
//!
//! # Examples
//!
//! ```
//! use vpsim_isa::{Executor, ProgramBuilder, Reg, Trace};
//!
//! let mut b = ProgramBuilder::new();
//! let (i, n) = (Reg::int(1), Reg::int(2));
//! b.load_imm(n, 10);
//! let top = b.bind_label();
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.halt();
//! let program = b.build()?;
//!
//! // Capture once…
//! let trace = Trace::capture(&program, 1_000);
//! // …replay many times: the cursor yields the exact executor stream.
//! let replayed: Vec<_> = trace.cursor().collect();
//! let executed: Vec<_> = Executor::new(&program).collect();
//! assert_eq!(replayed, executed);
//! # Ok::<(), vpsim_isa::ProgramError>(())
//! ```

use crate::exec::{DynInst, Executor};
use crate::inst::Inst;
use crate::program::{Program, INST_BYTES};

/// A source of dynamic instructions for the cycle-level core.
///
/// Implemented by [`Executor`] (functional execution, streaming) and
/// [`TraceCursor`] (replay of a captured [`Trace`]). Both yield the same
/// stream for the same program, so a timing model driven through this
/// trait produces byte-identical results on either path.
pub trait InstSource {
    /// The next dynamic instruction, or `None` once the stream ends
    /// (program halted, fell off the end, or the trace is exhausted).
    fn next_inst(&mut self) -> Option<DynInst>;
}

impl InstSource for Executor<'_> {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next()
    }
}

impl InstSource for TraceCursor<'_> {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.next()
    }
}

// Per-record flag bits.
const HAS_RESULT: u8 = 1 << 0;
const HAS_MEM_ADDR: u8 = 1 << 1;
const HAS_STORE_VALUE: u8 = 1 << 2;
const TAKEN: u8 = 1 << 3;
/// `next_pc != pc + 4`: the architectural successor is stored explicitly.
const DIVERGES: u8 = 1 << 4;

/// A captured dynamic instruction stream in struct-of-arrays form.
///
/// Self-contained: the static µop table is copied in, so a trace outlives
/// the [`Program`] it came from and can be shared across threads (e.g. via
/// `Arc<Trace>`) without lifetime ties. The source module's header
/// comment walks through the layout and footprint arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Static µop table; `index` entries point into it.
    insts: Vec<Inst>,
    /// Static instruction index per dynamic record.
    index: Vec<u32>,
    /// Presence/outcome flag byte per dynamic record.
    flags: Vec<u8>,
    /// One interleaved stream of the optional payloads, in flag-bit order
    /// per record (result, effective address, store value, diverging
    /// `next_pc`) — replay consumes it strictly sequentially, so the
    /// cursor needs a single position and the prefetcher a single stream.
    payload: Vec<u64>,
}

impl Trace {
    /// Capture up to `limit` dynamic instructions of `program` from a
    /// fresh [`Executor`] (fewer if the program halts first).
    ///
    /// A trace replayed into a timing model is byte-identical to inline
    /// execution as long as it covers every µop the model would fetch;
    /// for a run measuring `warmup + measure` commits that bound is
    /// `warmup + measure` plus the core's maximum in-flight capacity
    /// (`vpsim-uarch` exposes it as `CoreConfig::trace_budget`).
    pub fn capture(program: &Program, limit: u64) -> Trace {
        let mut trace = Trace {
            insts: program.insts().to_vec(),
            index: Vec::new(),
            flags: Vec::new(),
            payload: Vec::new(),
        };
        let limit = usize::try_from(limit).unwrap_or(usize::MAX);
        for di in Executor::new(program).take(limit) {
            trace.push(&di);
        }
        trace
    }

    fn push(&mut self, di: &DynInst) {
        debug_assert_eq!(di.seq, self.index.len() as u64, "records must be dense from 0");
        let mut flags = 0u8;
        if let Some(v) = di.result {
            flags |= HAS_RESULT;
            self.payload.push(v);
        }
        if let Some(a) = di.mem_addr {
            flags |= HAS_MEM_ADDR;
            self.payload.push(a);
        }
        if let Some(v) = di.store_value {
            flags |= HAS_STORE_VALUE;
            self.payload.push(v);
        }
        if di.taken {
            flags |= TAKEN;
        }
        if di.next_pc != di.pc + INST_BYTES {
            flags |= DIVERGES;
            self.payload.push(di.next_pc);
        }
        self.index.push(di.index);
        self.flags.push(flags);
    }

    /// Number of dynamic instructions captured.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Approximate heap footprint in bytes (the SoA payloads plus the
    /// static µop table).
    pub fn approx_bytes(&self) -> usize {
        self.insts.len() * std::mem::size_of::<Inst>()
            + self.index.len() * std::mem::size_of::<u32>()
            + self.flags.len()
            + self.payload.len() * std::mem::size_of::<u64>()
    }

    /// A replay iterator over the captured stream, starting at `seq` 0.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor { trace: self, pos: 0, payload_pos: 0 }
    }
}

/// Replay iterator over a [`Trace`]: yields the captured [`DynInst`]
/// stream exactly, in order, at a few loads per µop.
///
/// Obtain one with [`Trace::cursor`]; any number of cursors may replay the
/// same shared trace concurrently.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    /// Next record position (== the `seq` it will yield).
    pos: usize,
    /// Next unconsumed slot of the interleaved payload stream.
    payload_pos: usize,
}

impl Iterator for TraceCursor<'_> {
    type Item = DynInst;

    #[inline]
    fn next(&mut self) -> Option<DynInst> {
        let t = self.trace;
        let index = *t.index.get(self.pos)?;
        let flags = t.flags[self.pos];
        let pc = index as u64 * INST_BYTES;
        // Payloads were pushed in flag-bit order; consume them the same
        // way from the single sequential stream.
        let mut p = self.payload_pos;
        let mut pull = |bit: u8| {
            if flags & bit != 0 {
                let v = t.payload[p];
                p += 1;
                Some(v)
            } else {
                None
            }
        };
        let result = pull(HAS_RESULT);
        let mem_addr = pull(HAS_MEM_ADDR);
        let store_value = pull(HAS_STORE_VALUE);
        let next_pc = match pull(DIVERGES) {
            Some(target) => target,
            None => pc + INST_BYTES,
        };
        self.payload_pos = p;
        let seq = self.pos as u64;
        self.pos += 1;
        Some(DynInst {
            seq,
            pc,
            index,
            inst: t.insts[index as usize],
            result,
            mem_addr,
            store_value,
            taken: flags & TAKEN != 0,
            next_pc,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TraceCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    /// A program exercising every record shape: ALU, loads, stores, taken
    /// and not-taken branches, calls/returns, an indirect jump, and halt.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let (i, n, acc, addr, t) =
            (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
        let lr = Reg::int(31);
        b.load_imm(n, 40);
        b.load_imm(addr, 0x1000);
        let f = b.label();
        let top = b.bind_label();
        b.add(acc, acc, i);
        b.store(addr, acc, 0);
        b.load(t, addr, 0);
        b.call(lr, f);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        b.bind(f);
        b.ret(lr);
        b.build().unwrap()
    }

    #[test]
    fn capture_then_replay_is_the_executor_stream() {
        let p = mixed_program();
        let executed: Vec<_> = Executor::new(&p).collect();
        let trace = Trace::capture(&p, u64::MAX);
        assert_eq!(trace.len(), executed.len());
        let replayed: Vec<_> = trace.cursor().collect();
        assert_eq!(replayed, executed);
    }

    #[test]
    fn truncated_capture_is_a_prefix() {
        let p = mixed_program();
        let executed: Vec<_> = Executor::new(&p).collect();
        for limit in [0usize, 1, 7, 50] {
            let trace = Trace::capture(&p, limit as u64);
            assert_eq!(trace.len(), limit.min(executed.len()));
            let replayed: Vec<_> = trace.cursor().collect();
            assert_eq!(replayed[..], executed[..trace.len()]);
        }
    }

    #[test]
    fn cursor_is_restartable_and_sized() {
        let p = mixed_program();
        let trace = Trace::capture(&p, 25);
        let first: Vec<_> = trace.cursor().collect();
        let mut cursor = trace.cursor();
        assert_eq!(cursor.len(), 25);
        cursor.next();
        assert_eq!(cursor.len(), 24);
        let second: Vec<_> = trace.cursor().collect();
        assert_eq!(first, second, "cursors are independent");
    }

    #[test]
    fn inst_source_paths_agree() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let mut exec = Executor::new(&p);
        let mut cursor = trace.cursor();
        loop {
            let (a, b) = (exec.next_inst(), cursor.next_inst());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn footprint_is_compact_and_reported() {
        let p = mixed_program();
        let trace = Trace::capture(&p, u64::MAX);
        let bytes = trace.approx_bytes();
        assert!(bytes > 0);
        // The SoA form must undercut materializing the DynInst stream.
        let materialized = trace.len() * std::mem::size_of::<DynInst>();
        assert!(bytes < materialized, "{bytes} vs {materialized}");
    }

    #[test]
    fn empty_capture_is_empty() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let trace = Trace::capture(&p, 0);
        assert!(trace.is_empty());
        assert_eq!(trace.cursor().next(), None);
    }
}
