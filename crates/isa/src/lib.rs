//! Micro-op ISA, program construction and functional execution for vpsim.
//!
//! The paper evaluates value prediction on x86 µops under gem5; the
//! predictors themselves only observe *(PC, branch history, path history,
//! produced values)*, so the ISA identity is irrelevant to the mechanism
//! (see "ISA neutrality" in `ARCHITECTURE.md` at the repository root).
//! This crate defines a compact RISC-like µop ISA
//! (1 µop = 1 instruction) that the rest of the workspace shares:
//!
//! * [`Inst`]/[`Opcode`] — the µop format: up to two register sources, one
//!   destination, a 64-bit immediate.
//! * [`Reg`] — 32 integer + 32 floating-point architectural registers.
//! * [`ProgramBuilder`] — an assembler-like builder with labels, used by
//!   `vpsim-workloads` to write the SPEC-analogue benchmarks.
//! * [`SparseMemory`] — word-granular sparse memory.
//! * [`Executor`] — the architectural (functional) executor; it runs a
//!   [`Program`] and yields the dynamic instruction stream ([`DynInst`])
//!   that the cycle-level core in `vpsim-uarch` replays.
//! * [`Trace`] / [`TraceCursor`] / [`InstSource`] — the capture-once /
//!   replay-many layer: a compact struct-of-arrays record of the dynamic
//!   stream, captured once and replayed into any number of timing runs.
//!
//! # Examples
//!
//! Build and run a loop that sums `0..10`:
//!
//! ```
//! use vpsim_isa::{ProgramBuilder, Reg, Executor};
//!
//! let mut b = ProgramBuilder::new();
//! let (i, n, acc) = (Reg::int(1), Reg::int(2), Reg::int(3));
//! b.load_imm(i, 0);
//! b.load_imm(n, 10);
//! b.load_imm(acc, 0);
//! let top = b.bind_label();
//! b.add(acc, acc, i);
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.halt();
//! let program = b.build().expect("valid program");
//!
//! let mut exec = Executor::new(&program);
//! let trace: Vec<_> = exec.by_ref().collect();
//! assert_eq!(exec.reg(acc), 45);
//! assert!(trace.len() > 30);
//! ```

mod builder;
mod exec;
mod inst;
mod memory;
mod program;
mod reg;
mod trace;

pub use builder::{Label, ProgramBuilder};
pub use exec::{DynInst, Executor};
pub use inst::{FuClass, Inst, Opcode};
pub use memory::SparseMemory;
pub use program::{Program, ProgramError};
pub use reg::{Reg, RegClass, NUM_ARCH_REGS};
pub use trace::{
    InstSource, Trace, TraceBlob, TraceCursor, TraceDecodeError, TraceView, ViewCursor,
};
