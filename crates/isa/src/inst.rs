//! The µop format: opcodes, operands and classification helpers.

use crate::reg::Reg;
use std::fmt;

/// Micro-op opcodes.
///
/// Integer ALU ops execute in 1 cycle on the paper's configuration,
/// integer multiply in 3, integer divide in 25 (non-pipelined), FP add-class
/// ops in 3, FP multiply in 5 and FP divide in 10 (non-pipelined); the
/// latencies themselves live in `vpsim-uarch`'s configuration — this enum
/// only fixes semantics and the [`FuClass`] mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // --- integer ALU, register-register ---
    /// `dst = src1 + src2`
    Add,
    /// `dst = src1 - src2`
    Sub,
    /// `dst = src1 & src2`
    And,
    /// `dst = src1 | src2`
    Or,
    /// `dst = src1 ^ src2`
    Xor,
    /// `dst = src1 << (src2 & 63)`
    Shl,
    /// `dst = src1 >> (src2 & 63)` (logical)
    Shr,
    /// `dst = (src1 as i64) < (src2 as i64)`
    SetLt,
    // --- integer ALU, register-immediate ---
    /// `dst = src1 + imm`
    AddI,
    /// `dst = src1 & imm`
    AndI,
    /// `dst = src1 | imm`
    OrI,
    /// `dst = src1 ^ imm`
    XorI,
    /// `dst = src1 << (imm & 63)`
    ShlI,
    /// `dst = src1 >> (imm & 63)` (logical)
    ShrI,
    /// `dst = (src1 as i64) < imm`
    SetLtI,
    /// `dst = imm`
    LoadImm,
    /// `dst = src1`
    Mov,
    // --- integer multiply/divide ---
    /// `dst = src1 * src2` (wrapping)
    Mul,
    /// `dst = src1 / src2` (unsigned; division by zero yields `u64::MAX`)
    Div,
    /// `dst = src1 % src2` (unsigned; modulo zero yields `src1`)
    Rem,
    // --- floating point (operands are f64 bit patterns) ---
    /// `dst = src1 +. src2`
    FAdd,
    /// `dst = src1 -. src2`
    FSub,
    /// `dst = src1 *. src2`
    FMul,
    /// `dst = src1 /. src2`
    FDiv,
    /// `dst = f64::from(src1 as i64)` — int→float conversion
    ICvtF,
    /// `dst = (src1 as f64) as i64` — float→int conversion (saturating)
    FCvtI,
    // --- memory ---
    /// `dst = mem[src1 + imm]` (64-bit)
    Load,
    /// `mem[src1 + imm] = src2` (64-bit)
    Store,
    // --- control flow (branch targets are byte PCs in `imm`) ---
    /// Branch to `imm` if `src1 == src2`
    Beq,
    /// Branch to `imm` if `src1 != src2`
    Bne,
    /// Branch to `imm` if `(src1 as i64) < (src2 as i64)`
    Blt,
    /// Branch to `imm` if `(src1 as i64) >= (src2 as i64)`
    Bge,
    /// Unconditional direct jump to `imm`
    Jump,
    /// Unconditional indirect jump to the address in `src1`
    JumpInd,
    /// Direct call: `dst = return address`, jump to `imm`
    Call,
    /// Return: jump to the address in `src1`
    Ret,
    /// No operation
    Nop,
    /// Stop the program
    Halt,
}

/// Functional-unit class a µop executes on (paper Table 2: 8 ALU, 4 MulDiv,
/// 8 FP, 4 FPMulDiv, 4 Ld/Str ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple integer ALU (also executes branches and jumps).
    IntAlu,
    /// Integer multiplier/divider.
    IntMulDiv,
    /// FP adder class.
    FpAlu,
    /// FP multiplier/divider.
    FpMulDiv,
    /// Load port.
    Load,
    /// Store port.
    Store,
}

impl Opcode {
    /// Every opcode, in **stable serialization order**. The position of an
    /// opcode in this table is its wire code ([`Opcode::code`]); append new
    /// opcodes at the end so existing serialized traces keep decoding.
    pub const ALL: [Opcode; 38] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::SetLt,
        Opcode::AddI,
        Opcode::AndI,
        Opcode::OrI,
        Opcode::XorI,
        Opcode::ShlI,
        Opcode::ShrI,
        Opcode::SetLtI,
        Opcode::LoadImm,
        Opcode::Mov,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::ICvtF,
        Opcode::FCvtI,
        Opcode::Load,
        Opcode::Store,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Jump,
        Opcode::JumpInd,
        Opcode::Call,
        Opcode::Ret,
        Opcode::Nop,
        Opcode::Halt,
    ];

    /// Stable wire code: the opcode's position in [`Opcode::ALL`].
    /// Independent of declaration order, so reordering the enum cannot
    /// silently change serialized traces.
    pub fn code(self) -> u8 {
        Opcode::ALL.iter().position(|&op| op == self).expect("opcode missing from Opcode::ALL")
            as u8
    }

    /// Inverse of [`Opcode::code`]; `None` for codes outside the table.
    pub fn from_code(code: u8) -> Option<Opcode> {
        Opcode::ALL.get(code as usize).copied()
    }

    /// The functional unit class this opcode executes on.
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Mul | Div | Rem => FuClass::IntMulDiv,
            FAdd | FSub | ICvtF | FCvtI => FuClass::FpAlu,
            FMul | FDiv => FuClass::FpMulDiv,
            Load => FuClass::Load,
            Store => FuClass::Store,
            _ => FuClass::IntAlu,
        }
    }

    /// `true` for conditional branches.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// `true` for any control-flow µop (conditional or not).
    pub fn is_control(self) -> bool {
        self.is_cond_branch()
            || matches!(self, Opcode::Jump | Opcode::JumpInd | Opcode::Call | Opcode::Ret)
    }

    /// `true` for indirect control flow (target comes from a register).
    pub fn is_indirect(self) -> bool {
        matches!(self, Opcode::JumpInd | Opcode::Ret)
    }
}

/// A single µop.
///
/// All fields are public: `Inst` is a plain, passive data carrier produced
/// by [`crate::ProgramBuilder`] and consumed by the executor and pipeline.
///
/// # Examples
///
/// ```
/// use vpsim_isa::{Inst, Opcode, Reg};
/// let add = Inst::rrr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3));
/// assert!(add.has_dst());
/// assert_eq!(add.sources(), vec![Reg::int(2), Reg::int(3)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register, if the µop produces a value.
    pub dst: Option<Reg>,
    /// First source register.
    pub src1: Option<Reg>,
    /// Second source register.
    pub src2: Option<Reg>,
    /// Immediate operand / branch target (byte PC) / memory displacement.
    pub imm: i64,
}

/// The default µop is a `Nop` — the placeholder occupying unallocated
/// instruction-window slab slots in `vpsim-uarch`.
impl Default for Inst {
    fn default() -> Self {
        Inst { op: Opcode::Nop, dst: None, src1: None, src2: None, imm: 0 }
    }
}

impl Inst {
    /// A µop with destination and two register sources.
    pub fn rrr(op: Opcode, dst: Reg, src1: Reg, src2: Reg) -> Self {
        Inst { op, dst: Some(dst), src1: Some(src1), src2: Some(src2), imm: 0 }
    }

    /// A µop with destination, one register source and an immediate.
    pub fn rri(op: Opcode, dst: Reg, src1: Reg, imm: i64) -> Self {
        Inst { op, dst: Some(dst), src1: Some(src1), src2: None, imm }
    }

    /// A µop with destination and immediate only (e.g. [`Opcode::LoadImm`]).
    pub fn ri(op: Opcode, dst: Reg, imm: i64) -> Self {
        Inst { op, dst: Some(dst), src1: None, src2: None, imm }
    }

    /// A µop with two register sources and an immediate, no destination
    /// (conditional branches, stores).
    pub fn rr_i(op: Opcode, src1: Reg, src2: Reg, imm: i64) -> Self {
        Inst { op, dst: None, src1: Some(src1), src2: Some(src2), imm }
    }

    /// A µop with no operands (e.g. [`Opcode::Nop`], [`Opcode::Halt`],
    /// [`Opcode::Jump`] with an immediate target).
    pub fn bare(op: Opcode, imm: i64) -> Self {
        Inst { op, dst: None, src1: None, src2: None, imm }
    }

    /// `true` if the µop writes an architectural register — the paper's
    /// eligibility criterion for value prediction ("producing a register
    /// explicitly used by subsequent µops"; we approximate "used" as
    /// "produced", which only adds never-harmful predictions).
    pub fn has_dst(&self) -> bool {
        self.dst.is_some()
    }

    /// Source registers in operand order.
    pub fn sources(&self) -> Vec<Reg> {
        self.src1.into_iter().chain(self.src2).collect()
    }

    /// Source registers in operand order as a compacted fixed pair — the
    /// allocation-free counterpart of [`Inst::sources`], used by the
    /// timing model's zero-allocation rename path.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_isa::{Inst, Opcode, Reg};
    ///
    /// let add = Inst::rrr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3));
    /// assert_eq!(add.source_pair(), [Some(Reg::int(2)), Some(Reg::int(3))]);
    /// let jind = Inst { op: Opcode::JumpInd, dst: None, src1: None, src2: Some(Reg::int(4)), imm: 0 };
    /// assert_eq!(jind.source_pair(), [Some(Reg::int(4)), None]);
    /// ```
    pub fn source_pair(&self) -> [Option<Reg>; 2] {
        match (self.src1, self.src2) {
            (None, s2) => [s2, None],
            (s1, s2) => [s1, s2],
        }
    }

    /// `true` for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self.op, Opcode::Load | Opcode::Store)
    }

    /// Functional-unit class (delegates to [`Opcode::fu_class`]).
    pub fn fu_class(&self) -> FuClass {
        self.op.fu_class()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        if let Some(s) = self.src1 {
            write!(f, " {s}")?;
        }
        if let Some(s) = self.src2 {
            write!(f, " {s}")?;
        }
        if self.imm != 0 || matches!(self.op, Opcode::LoadImm | Opcode::Jump | Opcode::Call) {
            write!(f, " #{}", self.imm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn opcode_codes_round_trip_and_are_dense() {
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.code() as usize, i);
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
        assert_eq!(Opcode::from_code(Opcode::ALL.len() as u8), None);
        assert_eq!(Opcode::from_code(u8::MAX), None);
    }

    #[test]
    fn fu_class_mapping() {
        assert_eq!(Opcode::Add.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::IntMulDiv);
        assert_eq!(Opcode::Div.fu_class(), FuClass::IntMulDiv);
        assert_eq!(Opcode::FAdd.fu_class(), FuClass::FpAlu);
        assert_eq!(Opcode::FMul.fu_class(), FuClass::FpMulDiv);
        assert_eq!(Opcode::FDiv.fu_class(), FuClass::FpMulDiv);
        assert_eq!(Opcode::Load.fu_class(), FuClass::Load);
        assert_eq!(Opcode::Store.fu_class(), FuClass::Store);
        assert_eq!(Opcode::Beq.fu_class(), FuClass::IntAlu);
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::Bge.is_cond_branch());
        assert!(!Opcode::Jump.is_cond_branch());
        assert!(Opcode::Jump.is_control());
        assert!(Opcode::Ret.is_control());
        assert!(Opcode::Ret.is_indirect());
        assert!(Opcode::JumpInd.is_indirect());
        assert!(!Opcode::Call.is_indirect());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn constructors_set_operands() {
        let (a, b, c) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let i = Inst::rrr(Opcode::Add, a, b, c);
        assert_eq!(i.dst, Some(a));
        assert_eq!(i.sources(), vec![b, c]);

        let i = Inst::rri(Opcode::AddI, a, b, 7);
        assert_eq!(i.imm, 7);
        assert_eq!(i.sources(), vec![b]);

        let i = Inst::ri(Opcode::LoadImm, a, -1);
        assert!(i.sources().is_empty());
        assert!(i.has_dst());

        let i = Inst::rr_i(Opcode::Beq, a, b, 64);
        assert!(!i.has_dst());

        let i = Inst::bare(Opcode::Halt, 0);
        assert!(!i.has_dst());
        assert!(i.sources().is_empty());
    }

    #[test]
    fn mem_classification() {
        let a = Reg::int(1);
        assert!(Inst::rri(Opcode::Load, a, a, 0).is_mem());
        assert!(Inst::rr_i(Opcode::Store, a, a, 0).is_mem());
        assert!(!Inst::rrr(Opcode::Add, a, a, a).is_mem());
    }

    #[test]
    fn display_is_nonempty_and_mentions_registers() {
        let i = Inst::rrr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3));
        let s = i.to_string();
        assert!(s.contains("Add") && s.contains("r1") && s.contains("r2") && s.contains("r3"));
    }
}
