//! Last Value Prediction (Lipasti et al., MICRO 1996) — the simplest
//! predictor in the paper's comparison and the base component of VTAGE.
//!
//! LVP predicts that an instruction will produce the same value as its last
//! committed occurrence. Because the lookup depends only on the PC,
//! "successive table lookups are independent and can last until Dispatch"
//! (§3.2) — LVP trivially predicts back-to-back occurrences.

use crate::confidence::{ConfidenceScheme, Lfsr};
use crate::inflight::Inflight;
use crate::storage::{full_tag_bits, Storage, StorageComponent};
use crate::{PredictCtx, Prediction, Predictor};

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    value: u64,
    conf: u8,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    index: u32,
    tag: u64,
    /// The prediction as made at fetch.
    predicted: Option<u64>,
}

/// The Last Value Predictor.
///
/// Direct-mapped, fully tagged (paper Table 1: 8192 entries, 51-bit tag,
/// 120.8 KB). On a tag miss at training time the entry is immediately
/// reallocated to the new instruction with confidence 0.
///
/// # Examples
///
/// ```
/// use vpsim_core::{Lvp, Predictor, PredictCtx, ConfidenceScheme};
///
/// let mut p = Lvp::with_defaults(ConfidenceScheme::baseline(), 7);
/// // A constant value saturates confidence after 8 occurrences.
/// for seq in 0..9 {
///     let ctx = PredictCtx { seq, pc: 0x100, ..Default::default() };
///     let pred = p.predict(&ctx);
///     if seq == 8 {
///         assert_eq!(pred.confident_value(), Some(42));
///     }
///     p.train(seq, 42);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Lvp {
    entries: Vec<Entry>,
    index_bits: u32,
    scheme: ConfidenceScheme,
    lfsr: Lfsr,
    inflight: Inflight<Record>,
}

impl Lvp {
    /// The paper's configuration: 8192 entries.
    pub fn with_defaults(scheme: ConfidenceScheme, seed: u64) -> Self {
        Lvp::new(8192, scheme, seed)
    }

    /// Create an LVP with `entries` entries (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, scheme: ConfidenceScheme, seed: u64) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        Lvp {
            entries: vec![Entry::default(); entries],
            index_bits: entries.trailing_zeros(),
            scheme,
            lfsr: Lfsr::new(seed),
            inflight: Inflight::new(),
        }
    }

    fn index(&self, pc: u64) -> u32 {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as u32
    }

    fn tag(&self, pc: u64) -> u64 {
        pc >> (2 + self.index_bits)
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table has no entries (never for a constructed LVP).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Predictor for Lvp {
    fn name(&self) -> &'static str {
        "LVP"
    }

    fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
        let index = self.index(ctx.pc);
        let tag = self.tag(ctx.pc);
        let e = &self.entries[index as usize];
        let prediction = if e.valid && e.tag == tag {
            Prediction::of(e.value, self.scheme.is_saturated(e.conf))
        } else {
            Prediction::none()
        };
        self.inflight.push(ctx.seq, Record { index, tag, predicted: prediction.value });
        prediction
    }

    fn train(&mut self, seq: u64, actual: u64) {
        let rec = self.inflight.pop(seq);
        let e = &mut self.entries[rec.index as usize];
        if e.valid && e.tag == rec.tag {
            if rec.predicted == Some(actual) {
                e.conf = self.scheme.on_correct(e.conf, &mut self.lfsr);
            } else {
                // Classic LVP: replace on misprediction, reset confidence.
                e.value = actual;
                e.conf = self.scheme.on_incorrect(e.conf);
            }
        } else {
            *e = Entry { valid: true, tag: rec.tag, value: actual, conf: 0 };
        }
    }

    fn squash_after(&mut self, seq: u64) {
        self.inflight.squash_after(seq);
    }

    fn storage(&self) -> Storage {
        let bits = full_tag_bits(self.entries.len()) + 64 + self.scheme.bits_per_counter();
        Storage::from_components(vec![StorageComponent::new("LVP", self.entries.len(), bits)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seq: u64, pc: u64) -> PredictCtx {
        PredictCtx { seq, pc, ..Default::default() }
    }

    fn train_constant(p: &mut Lvp, pc: u64, value: u64, times: u64, seq0: u64) -> u64 {
        let mut seq = seq0;
        for _ in 0..times {
            p.predict(&ctx(seq, pc));
            p.train(seq, value);
            seq += 1;
        }
        seq
    }

    #[test]
    fn predicts_constant_after_training() {
        let mut p = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        let seq = train_constant(&mut p, 0x40, 99, 8, 0);
        let pred = p.predict(&ctx(seq, 0x40));
        assert_eq!(pred.confident_value(), Some(99));
        p.train(seq, 99);
    }

    #[test]
    fn confidence_builds_before_use() {
        let mut p = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        // After 3 occurrences confidence is 2 (<7): hit but not confident.
        let seq = train_constant(&mut p, 0x40, 5, 3, 0);
        let pred = p.predict(&ctx(seq, 0x40));
        assert_eq!(pred.value, Some(5));
        assert!(!pred.confident);
        p.train(seq, 5);
    }

    #[test]
    fn misprediction_resets_confidence_and_replaces_value() {
        let mut p = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        let seq = train_constant(&mut p, 0x40, 7, 10, 0);
        // Value changes: predictor must stop being confident.
        p.predict(&ctx(seq, 0x40));
        p.train(seq, 8);
        let pred = p.predict(&ctx(seq + 1, 0x40));
        assert_eq!(pred.value, Some(8));
        assert!(!pred.confident);
        p.train(seq + 1, 8);
    }

    #[test]
    fn tag_conflict_reallocates() {
        let mut p = Lvp::new(8, ConfidenceScheme::baseline(), 1);
        // pc 0x0 and pc 0x80 (= 8 entries × 4 bytes × 4) map to index 0 with
        // different tags.
        let seq = train_constant(&mut p, 0x0, 1, 4, 0);
        let pc_conflict = 8 * 4 * 4;
        let pred = p.predict(&ctx(seq, pc_conflict));
        assert_eq!(pred.value, None, "different tag must not hit");
        p.train(seq, 2);
        // The entry now belongs to the new pc.
        let pred = p.predict(&ctx(seq + 1, pc_conflict));
        assert_eq!(pred.value, Some(2));
        p.train(seq + 1, 2);
    }

    #[test]
    fn squash_discards_inflight_records() {
        let mut p = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        p.predict(&ctx(0, 0x40));
        p.predict(&ctx(1, 0x40));
        p.predict(&ctx(2, 0x40));
        p.squash_after(0);
        p.train(0, 1);
        // seq 1 and 2 were squashed; next predict may reuse their seqs.
        p.predict(&ctx(1, 0x40));
        p.train(1, 1);
    }

    #[test]
    #[should_panic(expected = "oldest in-flight")]
    fn out_of_order_train_panics() {
        let mut p = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        p.predict(&ctx(0, 0x40));
        p.predict(&ctx(1, 0x40));
        p.train(1, 5);
    }

    #[test]
    fn fpc_slows_confidence_build_up() {
        let mut base = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut fpc = Lvp::with_defaults(ConfidenceScheme::fpc_squash(), 1);
        // 8 correct trainings saturate the baseline but (almost surely) not FPC.
        train_constant(&mut base, 0x40, 9, 8, 0);
        train_constant(&mut fpc, 0x40, 9, 8, 0);
        let pb = base.predict(&ctx(100, 0x40));
        let pf = fpc.predict(&ctx(100, 0x40));
        assert!(pb.confident);
        assert!(!pf.confident, "FPC needs ~129 correct predictions on average");
        base.train(100, 9);
        fpc.train(100, 9);
        // …but eventually FPC saturates too.
        let seq = train_constant(&mut fpc, 0x40, 9, 2000, 101);
        let pf = fpc.predict(&ctx(seq, 0x40));
        assert!(pf.confident);
        fpc.train(seq, 9);
    }

    #[test]
    fn storage_matches_table1() {
        let p = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        let kb = p.storage().total_kb();
        assert!((kb - 120.8).abs() < 0.05, "got {kb}");
    }

    #[test]
    fn different_pcs_do_not_interfere_without_conflict() {
        let mut p = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut seq = 0;
        for _ in 0..8 {
            p.predict(&ctx(seq, 0x40));
            p.train(seq, 1);
            seq += 1;
            p.predict(&ctx(seq, 0x80));
            p.train(seq, 2);
            seq += 1;
        }
        assert_eq!(p.predict(&ctx(seq, 0x40)).confident_value(), Some(1));
        p.train(seq, 1);
        assert_eq!(p.predict(&ctx(seq + 1, 0x80)).confident_value(), Some(2));
        p.train(seq + 1, 2);
    }
}
