//! A tiny byte-stream writer/reader pair for microarchitectural state
//! checkpoints (the sampling layer's `vpstate1` format).
//!
//! Structures that participate in checkpointing expose
//! `save_state(&self, &mut StateWriter)` / `load_state(&mut self, &mut
//! StateReader) -> Result<(), String>` built on these primitives. The
//! format is deliberately dumb: fixed-width little-endian fields appended
//! in declaration order, no tags, no self-description — geometry is
//! reconstructed from configuration, never from the byte stream, and every
//! `load_state` validates the stream against the geometry it already has.
//! Framing integrity (magic, length, checksum) belongs to the container
//! that embeds the state blobs, not to this layer.
//!
//! # Examples
//!
//! ```
//! use vpsim_core::state::{StateReader, StateWriter};
//!
//! let mut w = StateWriter::new();
//! w.u64(0xDEAD_BEEF);
//! w.u8(7);
//! let bytes = w.into_bytes();
//! let mut r = StateReader::new(&bytes);
//! assert_eq!(r.u64().unwrap(), 0xDEAD_BEEF);
//! assert_eq!(r.u8().unwrap(), 7);
//! assert!(r.finish().is_ok());
//! ```

/// Appends fixed-width little-endian fields to a growable buffer.
#[derive(Debug, Default)]
pub struct StateWriter {
    bytes: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        StateWriter::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.bytes.push(v as u8);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i8` as its two's-complement byte.
    pub fn i8(&mut self, v: i8) {
        self.bytes.push(v as u8);
    }

    /// Append a raw byte slice verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The accumulated byte stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow the accumulated bytes (e.g. to checksum before framing).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Consumes fixed-width little-endian fields from a byte slice, with every
/// read bounds-checked — a truncated or oversized stream is an error,
/// never a panic.
#[derive(Debug)]
pub struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        StateReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("state stream truncated at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Read a `bool` byte; any value other than 0 or 1 is an error.
    pub fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bad bool byte {other} in state stream")),
        }
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i8`.
    pub fn i8(&mut self) -> Result<i8, String> {
        Ok(self.u8()? as i8)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Assert the stream was consumed exactly.
    pub fn finish(&self) -> Result<(), String> {
        if self.remaining() != 0 {
            return Err(format!("{} trailing byte(s) in state stream", self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_width() {
        let mut w = StateWriter::new();
        w.u8(0xAB);
        w.bool(true);
        w.bool(false);
        w.u16(0x1234);
        w.u64(u64::MAX);
        w.i8(-5);
        w.raw(&[1, 2, 3]);
        assert_eq!(w.len(), 1 + 1 + 1 + 2 + 8 + 1 + 3);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i8().unwrap(), -5);
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut r = StateReader::new(&[1, 2]);
        assert!(r.u64().is_err());
        let mut r = StateReader::new(&[1, 2, 3]);
        r.u8().unwrap();
        assert!(r.finish().unwrap_err().contains("2 trailing"));
        let mut r = StateReader::new(&[9]);
        assert!(r.bool().unwrap_err().contains("bad bool"));
    }
}
