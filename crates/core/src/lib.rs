//! Value predictors and confidence estimation — the contribution of
//! *Perais & Seznec, "Practical Data Value Speculation for Future High-end
//! Processors", HPCA 2014*.
//!
//! The crate provides:
//!
//! * **Confidence estimation** ([`confidence`]): baseline saturating
//!   counters and **Forward Probabilistic Counters (FPC)** — 3-bit counters
//!   with probabilistic forward transitions that push prediction accuracy
//!   above 99.5 % at a modest coverage cost (paper §5).
//! * **Predictors** (one module each): [`Lvp`] (last value), [`Stride`] and
//!   [`TwoDeltaStride`] (computational), [`PerPathStride`], [`Fcm`]
//!   (order-n local value history), [`DFcm`] (differential FCM), and
//!   **[`Vtage`]** — the paper's new predictor indexed by global branch +
//!   path history (derived from ITTAGE), which can predict back-to-back
//!   occurrences of an instruction because its lookup does not depend on
//!   previous values of the same instruction (§6).
//! * **Hybrids** ([`Hybrid`]): the paper's VTAGE + 2D-Stride combination
//!   with speculative-value cross-feeding (§7.1.2), and an FCM + 2D-Stride
//!   baseline hybrid.
//! * An [`Oracle`] predictor for the Figure 3 speedup upper bound.
//! * [`storage`]: Table 1 storage accounting.
//!
//! # The predictor protocol
//!
//! Predictors interact with the pipeline through three in-order calls:
//!
//! 1. [`Predictor::predict`] at fetch, once per VP-eligible µop (strictly
//!    increasing `seq`). The predictor records whatever per-prediction
//!    metadata it needs (hardware carries this in the instruction payload).
//! 2. [`Predictor::train`] at commit, once per eligible µop, in the same
//!    order, with the architectural result.
//! 3. [`Predictor::squash_after`] whenever the pipeline squashes: all
//!    in-flight state younger than `seq` is discarded. Squashed µops are
//!    never trained; refetched ones are re-predicted under new `seq`s.
//!
//! # Examples
//!
//! A stride predictor learning the sequence 10, 20, 30, …:
//!
//! ```
//! use vpsim_core::{Predictor, PredictCtx, TwoDeltaStride, ConfidenceScheme};
//!
//! let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
//! let mut value = 0u64;
//! let mut last_pred = None;
//! for seq in 0..32 {
//!     value += 10;
//!     let ctx = PredictCtx { seq, pc: 0x40, hist: Default::default(), actual: Some(value) };
//!     last_pred = p.predict(&ctx).confident_value();
//!     p.train(seq, value);
//! }
//! assert_eq!(last_pred, Some(320));
//! ```

#![warn(missing_docs)]

pub mod confidence;
pub mod fcm;
pub mod gdiff;
pub mod history;
pub mod hybrid;
pub mod inflight;
pub mod locality;
pub mod lvp;
pub mod oracle;
pub mod sag;
pub mod state;
pub mod storage;
pub mod stride;
pub mod vtage;

pub use confidence::{ConfidenceScheme, Lfsr};
pub use fcm::{DFcm, Fcm};
pub use gdiff::GDiff;
pub use history::HistoryState;
pub use hybrid::Hybrid;
pub use lvp::Lvp;
pub use oracle::Oracle;
pub use sag::SagLvp;
pub use storage::Storage;
pub use stride::{PerPathStride, Stride, TwoDeltaStride};
pub use vtage::{Vtage, VtageConfig};

/// Context available to the predictor at prediction (fetch) time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PredictCtx {
    /// Dynamic sequence number of the µop (strictly increasing at fetch).
    pub seq: u64,
    /// Byte PC of the µop.
    pub pc: u64,
    /// Speculative global branch + path history at fetch.
    pub hist: HistoryState,
    /// The architectural result the µop will produce. **Only the
    /// [`Oracle`] predictor may read this** — it exists so the Figure 3
    /// upper bound can share the [`Predictor`] interface. Real predictors
    /// ignore it.
    pub actual: Option<u64>,
}

/// The outcome of a predictor lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Prediction {
    /// The predicted value, if the predictor had any basis to predict
    /// (table hit). `None` means no prediction exists at all.
    pub value: Option<u64>,
    /// `true` if the confidence counter is saturated — only then does the
    /// pipeline inject the value.
    pub confident: bool,
}

impl Prediction {
    /// No prediction.
    pub fn none() -> Self {
        Prediction::default()
    }

    /// A prediction with the given confidence.
    pub fn of(value: u64, confident: bool) -> Self {
        Prediction { value: Some(value), confident }
    }

    /// The value, if and only if the prediction is confident enough to use.
    pub fn confident_value(&self) -> Option<u64> {
        if self.confident {
            self.value
        } else {
            None
        }
    }
}

/// A hardware value predictor (see the crate docs for the protocol).
///
/// The trait is object-safe: the simulator holds `Box<dyn Predictor>`.
pub trait Predictor {
    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Look up a prediction for the µop described by `ctx` and record the
    /// in-flight metadata needed to train at commit.
    ///
    /// Must be called in strictly increasing `ctx.seq` order; every call
    /// must eventually be matched by [`Predictor::train`] with the same
    /// `seq` or discarded by [`Predictor::squash_after`].
    fn predict(&mut self, ctx: &PredictCtx) -> Prediction;

    /// Train with the architectural result of the µop `seq` (commit order).
    ///
    /// # Panics
    ///
    /// Implementations panic if `seq` does not match the oldest in-flight
    /// prediction — that indicates a pipeline protocol bug.
    fn train(&mut self, seq: u64, actual: u64);

    /// Execute-time notification: the µop `seq` at `pc` produced `actual`,
    /// which differed from the prediction. Predictors that track
    /// speculative value history (stride, FCM, gDiff) repair the recorded
    /// speculative value so *later fetches* stop chaining on the wrong one
    /// — without this, a single misprediction under selective reissue
    /// poisons a tight loop's chain until a squash happens to clear it
    /// (the paper's §7.2.1 cascade, which its footnote 1 attributes to
    /// "a value predicted using wrong speculative value history").
    /// Predictions already made for in-flight younger occurrences are
    /// *not* revised — hardware cannot re-predict without refetching, so
    /// the bounded cascade the paper describes still occurs.
    ///
    /// The default implementation does nothing (correct for VTAGE, LVP and
    /// the oracle, whose lookups do not consume speculative values).
    fn resolve(&mut self, _seq: u64, _pc: u64, _actual: u64) {}

    /// Discard all speculative predictor state for µops younger than `seq`.
    fn squash_after(&mut self, seq: u64);

    /// Storage breakdown for the Table 1 reproduction.
    fn storage(&self) -> Storage;
}

/// Predictor configurations evaluated in the paper (plus the extensions this
/// repository adds). Used by the simulator CLI and the benchmark harness to
/// instantiate predictors by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Last Value Predictor, 8K entries (paper Table 1).
    Lvp,
    /// 2-delta stride predictor, 8K entries.
    TwoDeltaStride,
    /// Per-path stride predictor (paper footnote 4; performance on par with
    /// 2D-Stride).
    PerPathStride,
    /// Order-4 Finite Context Method, 8K+8K entries.
    Fcm4,
    /// Differential FCM (Goeman et al.), an extension baseline.
    DFcm4,
    /// VTAGE, 8K base + 6×1K tagged components.
    Vtage,
    /// Hybrid VTAGE + 2D-Stride (the paper's headline combination).
    VtageStride,
    /// Hybrid o4-FCM + 2D-Stride.
    FcmStride,
    /// gDiff-style global-difference predictor stacked on VTAGE (an
    /// extension; Zhou et al.'s gDiff can be added "on top of any other
    /// predictor").
    GDiffVtage,
    /// LVP with SAg outcome-history confidence (Burtscher & Zorn) — the
    /// §5 alternative the paper rejects for its serial double lookup.
    SagLvp,
    /// Perfect predictor (Figure 3 upper bound).
    Oracle,
}

impl PredictorKind {
    /// All kinds evaluated in the paper's main figures.
    pub const PAPER_SET: [PredictorKind; 4] = [
        PredictorKind::Lvp,
        PredictorKind::TwoDeltaStride,
        PredictorKind::Fcm4,
        PredictorKind::Vtage,
    ];

    /// Every predictor kind, in Table 1 / extension order. The lowercase
    /// [`PredictorKind::label`] of each entry is its canonical spelling for
    /// [`FromStr`](std::str::FromStr).
    pub const ALL: [PredictorKind; 11] = [
        PredictorKind::Lvp,
        PredictorKind::TwoDeltaStride,
        PredictorKind::PerPathStride,
        PredictorKind::Fcm4,
        PredictorKind::DFcm4,
        PredictorKind::Vtage,
        PredictorKind::VtageStride,
        PredictorKind::FcmStride,
        PredictorKind::GDiffVtage,
        PredictorKind::SagLvp,
        PredictorKind::Oracle,
    ];

    /// Instantiate the predictor with the paper's Table 1 sizing.
    ///
    /// `scheme` selects the confidence flavour; `seed` feeds the FPC LFSR
    /// and any allocation randomness, keeping runs reproducible.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_core::{ConfidenceScheme, PredictorKind};
    ///
    /// let p = PredictorKind::Vtage.build(ConfidenceScheme::fpc_squash(), 0x2014);
    /// assert_eq!(p.name(), "VTAGE");
    /// assert!(p.storage().total_kb() > 60.0); // paper Table 1: ~67.6 KB
    /// ```
    pub fn build(self, scheme: ConfidenceScheme, seed: u64) -> Box<dyn Predictor> {
        match self {
            PredictorKind::Lvp => Box::new(Lvp::with_defaults(scheme, seed)),
            PredictorKind::TwoDeltaStride => Box::new(TwoDeltaStride::with_defaults(scheme, seed)),
            PredictorKind::PerPathStride => Box::new(PerPathStride::with_defaults(scheme, seed)),
            PredictorKind::Fcm4 => Box::new(Fcm::with_defaults(scheme, seed)),
            PredictorKind::DFcm4 => Box::new(DFcm::with_defaults(scheme, seed)),
            PredictorKind::Vtage => Box::new(Vtage::with_defaults(scheme, seed)),
            PredictorKind::VtageStride => Box::new(Hybrid::vtage_stride(scheme, seed)),
            PredictorKind::FcmStride => Box::new(Hybrid::fcm_stride(scheme, seed)),
            PredictorKind::GDiffVtage => Box::new(GDiff::over_vtage(scheme, seed)),
            PredictorKind::SagLvp => Box::new(SagLvp::with_defaults(seed)),
            PredictorKind::Oracle => Box::new(Oracle::new()),
        }
    }

    /// Display name used in tables.
    pub fn label(self) -> &'static str {
        match self {
            PredictorKind::Lvp => "LVP",
            PredictorKind::TwoDeltaStride => "2D-Str",
            PredictorKind::PerPathStride => "PP-Str",
            PredictorKind::Fcm4 => "o4-FCM",
            PredictorKind::DFcm4 => "o4-D-FCM",
            PredictorKind::Vtage => "VTAGE",
            PredictorKind::VtageStride => "VTAGE-2DStr",
            PredictorKind::FcmStride => "o4-FCM-2DStr",
            PredictorKind::GDiffVtage => "gDiff-VTAGE",
            PredictorKind::SagLvp => "SAg-LVP",
            PredictorKind::Oracle => "Oracle",
        }
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for PredictorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lvp" => Ok(PredictorKind::Lvp),
            "2dstride" | "2d-str" | "2d-stride" | "stride" => Ok(PredictorKind::TwoDeltaStride),
            "ppstride" | "pp-str" => Ok(PredictorKind::PerPathStride),
            "fcm" | "o4-fcm" | "fcm4" => Ok(PredictorKind::Fcm4),
            "dfcm" | "d-fcm" | "o4-d-fcm" => Ok(PredictorKind::DFcm4),
            "vtage" => Ok(PredictorKind::Vtage),
            "vtage-2dstr" | "vtage-stride" | "vtagestride" => Ok(PredictorKind::VtageStride),
            "fcm-2dstr" | "o4-fcm-2dstr" | "fcm-stride" | "fcmstride" => {
                Ok(PredictorKind::FcmStride)
            }
            "gdiff" | "gdiff-vtage" => Ok(PredictorKind::GDiffVtage),
            "sag" | "sag-lvp" | "saglvp" => Ok(PredictorKind::SagLvp),
            "oracle" => Ok(PredictorKind::Oracle),
            other => {
                let valid: Vec<String> =
                    PredictorKind::ALL.iter().map(|k| k.label().to_ascii_lowercase()).collect();
                Err(format!("unknown predictor kind {other} (valid: {})", valid.join(", ")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_confident_value_gates_on_confidence() {
        assert_eq!(Prediction::of(5, true).confident_value(), Some(5));
        assert_eq!(Prediction::of(5, false).confident_value(), None);
        assert_eq!(Prediction::none().confident_value(), None);
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in PredictorKind::ALL {
            // Both the Display form and its lowercase canonical spelling
            // parse back to the same kind.
            assert_eq!(kind.to_string().parse::<PredictorKind>().unwrap(), kind);
            let label = kind.label().to_ascii_lowercase();
            let parsed: PredictorKind = label.parse().unwrap();
            assert_eq!(parsed, kind, "label {label}");
        }
        let err = "nonsense".parse::<PredictorKind>().unwrap_err();
        // Unknown spellings quote the full canonical list.
        assert!(err.contains("lvp") && err.contains("sag-lvp") && err.contains("oracle"), "{err}");
    }

    #[test]
    fn build_constructs_every_kind() {
        for kind in PredictorKind::ALL {
            let p = kind.build(ConfidenceScheme::fpc_squash(), 1);
            assert!(!p.name().is_empty());
        }
    }
}
