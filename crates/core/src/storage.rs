//! Storage accounting for predictor configurations (paper Table 1).
//!
//! The paper reports predictor sizes in KB with KB = 1000 bytes (its LVP
//! line: 8192 entries × (51-bit tag + 64-bit value + 3-bit counter) =
//! 966 656 bits = 120.8 KB). [`Storage::total_kb`] uses the same convention
//! so the Table 1 reproduction matches digit for digit.

use std::fmt;

/// One table of a predictor (e.g. VTAGE's base component, or a tagged
/// component).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StorageComponent {
    /// Human-readable component name.
    pub name: String,
    /// Number of entries.
    pub entries: usize,
    /// Total bits per entry (tag + payload + counters).
    pub bits_per_entry: usize,
}

impl StorageComponent {
    /// Create a component record.
    pub fn new(name: impl Into<String>, entries: usize, bits_per_entry: usize) -> Self {
        StorageComponent { name: name.into(), entries, bits_per_entry }
    }

    /// Total bits of this component.
    pub fn bits(&self) -> usize {
        self.entries * self.bits_per_entry
    }
}

/// A predictor's total storage breakdown.
///
/// # Examples
///
/// ```
/// use vpsim_core::storage::{Storage, StorageComponent};
/// // The paper's LVP: 8192 entries of 51-bit tag + 64-bit value + 3-bit conf.
/// let s = Storage::from_components(vec![StorageComponent::new("LVP", 8192, 51 + 64 + 3)]);
/// assert!((s.total_kb() - 120.8).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Storage {
    components: Vec<StorageComponent>,
}

impl Storage {
    /// Build from a list of components.
    pub fn from_components(components: Vec<StorageComponent>) -> Self {
        Storage { components }
    }

    /// The component breakdown.
    pub fn components(&self) -> &[StorageComponent] {
        &self.components
    }

    /// Merge another storage report into this one (hybrids).
    pub fn merge(mut self, other: Storage) -> Storage {
        self.components.extend(other.components);
        self
    }

    /// Total bits.
    pub fn total_bits(&self) -> usize {
        self.components.iter().map(StorageComponent::bits).sum()
    }

    /// Total size in KB, with KB = 1000 bytes (the paper's convention).
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1000.0
    }
}

impl fmt::Display for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.components {
            writeln!(
                f,
                "{}: {} x {} bits = {:.1} KB",
                c.name,
                c.entries,
                c.bits_per_entry,
                c.bits() as f64 / 8000.0
            )?;
        }
        write!(f, "total: {:.1} KB", self.total_kb())
    }
}

/// Full tag width for a table of `entries` entries indexed by a 64-bit PC:
/// the paper's "Full (51)" for 8K-entry tables (64 − 13 = 51).
pub fn full_tag_bits(entries: usize) -> usize {
    64 - (entries.next_power_of_two().trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tag_matches_paper() {
        assert_eq!(full_tag_bits(8192), 51);
        assert_eq!(full_tag_bits(1024), 54);
    }

    #[test]
    fn lvp_size_matches_table1() {
        let s = Storage::from_components(vec![StorageComponent::new("LVP", 8192, 51 + 64 + 3)]);
        assert!((s.total_kb() - 120.8).abs() < 0.05, "got {}", s.total_kb());
    }

    #[test]
    fn two_delta_stride_size_matches_table1() {
        // tag 51 + last value 64 + stride1 64 + stride2 64 + conf 3 = 246 bits.
        let s = Storage::from_components(vec![StorageComponent::new("2D-Stride", 8192, 246)]);
        assert!((s.total_kb() - 251.9).abs() < 0.05, "got {}", s.total_kb());
    }

    #[test]
    fn fcm_sizes_match_table1() {
        // VHT: tag 51 + conf 3 + 4×16-bit folded history = 118 bits → 120.8 KB.
        let vht = Storage::from_components(vec![StorageComponent::new("VHT", 8192, 118)]);
        assert!((vht.total_kb() - 120.8).abs() < 0.05);
        // VPT: value 64 + 2-bit hysteresis = 66 bits → 67.6 KB.
        let vpt = Storage::from_components(vec![StorageComponent::new("VPT", 8192, 66)]);
        assert!((vpt.total_kb() - 67.6).abs() < 0.05);
    }

    #[test]
    fn vtage_sizes_match_table1() {
        // Base: value 64 + conf 3 = 67 bits → 68.6 KB.
        let base = Storage::from_components(vec![StorageComponent::new("base", 8192, 67)]);
        assert!((base.total_kb() - 68.6).abs() < 0.05);
        // Tagged: 6×1024 entries, tag (12+rank) + u 1 + value 64 + conf 3.
        let comps: Vec<StorageComponent> = (1..=6)
            .map(|rank| StorageComponent::new(format!("VT{rank}"), 1024, 12 + rank + 1 + 64 + 3))
            .collect();
        let tagged = Storage::from_components(comps);
        assert!((tagged.total_kb() - 64.1).abs() < 0.05, "got {}", tagged.total_kb());
    }

    #[test]
    fn merge_sums_components() {
        let a = Storage::from_components(vec![StorageComponent::new("a", 10, 8)]);
        let b = Storage::from_components(vec![StorageComponent::new("b", 20, 8)]);
        let m = a.merge(b);
        assert_eq!(m.total_bits(), 240);
        assert_eq!(m.components().len(), 2);
    }

    #[test]
    fn display_mentions_total() {
        let s = Storage::from_components(vec![StorageComponent::new("t", 1000, 8)]);
        let out = s.to_string();
        assert!(out.contains("total: 1.0 KB"), "{out}");
    }
}
