//! The perfect predictor used for the Figure 3 speedup upper bound.

use crate::storage::Storage;
use crate::{PredictCtx, Prediction, Predictor};

/// Oracle value predictor: always predicts the architectural result, with
/// full confidence.
///
/// Used to reproduce Figure 3 ("An oracle predicts all results"), where
/// performance is limited only by fetch bandwidth, the memory hierarchy,
/// branch prediction and structure sizes. It reads [`PredictCtx::actual`],
/// which the simulator fills from the functional trace; real predictors
/// never touch that field.
///
/// # Examples
///
/// ```
/// use vpsim_core::{Oracle, Predictor, PredictCtx};
/// let mut p = Oracle::new();
/// let ctx = PredictCtx { seq: 0, pc: 0x40, actual: Some(123), ..Default::default() };
/// assert_eq!(p.predict(&ctx).confident_value(), Some(123));
/// p.train(0, 123);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Oracle {
    _private: (),
}

impl Oracle {
    /// Create the oracle.
    pub fn new() -> Self {
        Oracle::default()
    }
}

impl Predictor for Oracle {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
        match ctx.actual {
            Some(v) => Prediction::of(v, true),
            None => Prediction::none(),
        }
    }

    fn train(&mut self, _seq: u64, _actual: u64) {}

    fn squash_after(&mut self, _seq: u64) {}

    fn storage(&self) -> Storage {
        Storage::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_echoes_actual_value() {
        let mut p = Oracle::new();
        for v in [0u64, 1, u64::MAX, 42] {
            let ctx = PredictCtx { seq: v, pc: 0, actual: Some(v), ..Default::default() };
            assert_eq!(p.predict(&ctx).confident_value(), Some(v));
        }
    }

    #[test]
    fn oracle_without_actual_abstains() {
        let mut p = Oracle::new();
        let ctx = PredictCtx::default();
        assert_eq!(p.predict(&ctx), Prediction::none());
    }

    #[test]
    fn oracle_has_no_storage() {
        assert_eq!(Oracle::new().storage().total_bits(), 0);
    }

    #[test]
    fn train_and_squash_are_no_ops() {
        let mut p = Oracle::new();
        p.train(5, 5);
        p.squash_after(0);
        // Protocol freedom: the oracle tolerates any call order.
        p.train(0, 1);
    }
}
