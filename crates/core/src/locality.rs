//! Value-locality analysis: classify the value stream of each static
//! instruction the way the value-prediction literature does (Lipasti's
//! value locality; Sazeides & Smith's computational vs context-based
//! taxonomy, which the paper's §2 builds on).
//!
//! The classifier looks at the sequence of results a static µop produces:
//!
//! * **Constant** — one value dominates (last-value predictable);
//! * **Strided** — successive deltas are mostly a single nonzero stride
//!   (computational predictors);
//! * **Patterned** — a short repeating period covers the stream
//!   (context-based predictors: FCM, VTAGE);
//! * **Chaotic** — none of the above (only an oracle helps).
//!
//! `vpsim-bench`'s `locality` experiment tabulates the dynamic-weighted
//! class mix per benchmark — the workload-side explanation of *which*
//! predictor wins *where* in Figures 4–7.

use std::collections::HashMap;

/// Classification of one static instruction's value stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueClass {
    /// One value dominates the stream.
    Constant,
    /// One nonzero stride dominates successive deltas.
    Strided,
    /// A short repeating period (≤ [`LocalityAnalyzer::MAX_PERIOD`]) covers
    /// most of the stream.
    Patterned,
    /// None of the above.
    Chaotic,
}

/// Dynamic-weighted class mix over a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LocalityReport {
    /// Dynamic occurrences classified Constant.
    pub constant: u64,
    /// Dynamic occurrences classified Strided.
    pub strided: u64,
    /// Dynamic occurrences classified Patterned.
    pub patterned: u64,
    /// Dynamic occurrences classified Chaotic.
    pub chaotic: u64,
    /// Occurrences of µops seen too few times to classify.
    pub unclassified: u64,
}

impl LocalityReport {
    /// Total classified + unclassified occurrences.
    pub fn total(&self) -> u64 {
        self.constant + self.strided + self.patterned + self.chaotic + self.unclassified
    }

    /// Fraction of classified occurrences in `class`.
    pub fn fraction(&self, class: ValueClass) -> f64 {
        let classified = self.total() - self.unclassified;
        if classified == 0 {
            return 0.0;
        }
        let n = match class {
            ValueClass::Constant => self.constant,
            ValueClass::Strided => self.strided,
            ValueClass::Patterned => self.patterned,
            ValueClass::Chaotic => self.chaotic,
        };
        n as f64 / classified as f64
    }
}

/// Classify a single value stream.
///
/// Thresholds: a class must explain ≥ `threshold` of the stream's
/// transitions to win; precedence is Constant > Strided > Patterned.
///
/// # Examples
///
/// ```
/// use vpsim_core::locality::{classify_stream, ValueClass};
/// assert_eq!(classify_stream(&[7; 32], 0.75), ValueClass::Constant);
/// let strided: Vec<u64> = (0..32).map(|k| 100 + 3 * k).collect();
/// assert_eq!(classify_stream(&strided, 0.75), ValueClass::Strided);
/// let pattern: Vec<u64> = (0..32).map(|k| [5, 9, 2][k % 3]).collect();
/// assert_eq!(classify_stream(&pattern, 0.75), ValueClass::Patterned);
/// ```
pub fn classify_stream(values: &[u64], threshold: f64) -> ValueClass {
    if values.len() < 4 {
        return ValueClass::Chaotic;
    }
    let transitions = (values.len() - 1) as f64;
    // Constant: delta == 0 dominance.
    let zeros = values.windows(2).filter(|w| w[0] == w[1]).count() as f64;
    if zeros / transitions >= threshold {
        return ValueClass::Constant;
    }
    // Strided: modal nonzero delta dominance.
    let mut deltas: HashMap<u64, u32> = HashMap::new();
    for w in values.windows(2) {
        *deltas.entry(w[1].wrapping_sub(w[0])).or_insert(0) += 1;
    }
    if let Some((&delta, &count)) = deltas.iter().max_by_key(|(_, &c)| c) {
        if delta != 0 && count as f64 / transitions >= threshold {
            return ValueClass::Strided;
        }
    }
    // Patterned: best short period covering most positions.
    for period in 2..=LocalityAnalyzer::MAX_PERIOD {
        if values.len() < 2 * period {
            break;
        }
        let matches = (period..values.len()).filter(|&i| values[i] == values[i - period]).count();
        if matches as f64 / (values.len() - period) as f64 >= threshold {
            return ValueClass::Patterned;
        }
    }
    ValueClass::Chaotic
}

/// Streaming per-PC collector for locality analysis.
///
/// Feed `(pc, value)` pairs in program order with [`LocalityAnalyzer::observe`];
/// [`LocalityAnalyzer::report`] classifies each static µop from a bounded
/// sample of its values and weights by dynamic occurrence count.
#[derive(Debug, Clone, Default)]
pub struct LocalityAnalyzer {
    streams: HashMap<u64, (u64, Vec<u64>)>, // pc -> (dyn count, sampled values)
}

impl LocalityAnalyzer {
    /// Maximum repeating period recognized as Patterned.
    pub const MAX_PERIOD: usize = 16;
    /// Per-PC value sample bound (memory cap).
    pub const SAMPLE: usize = 256;
    /// Minimum occurrences before a µop is classified.
    pub const MIN_OCCURRENCES: u64 = 8;

    /// New, empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one dynamic result.
    pub fn observe(&mut self, pc: u64, value: u64) {
        let (count, sample) = self.streams.entry(pc).or_insert_with(|| (0, Vec::new()));
        *count += 1;
        if sample.len() < Self::SAMPLE {
            sample.push(value);
        }
    }

    /// Classify all streams (threshold 0.75) and weight by dynamic counts.
    pub fn report(&self) -> LocalityReport {
        let mut r = LocalityReport::default();
        for (count, sample) in self.streams.values() {
            if *count < Self::MIN_OCCURRENCES {
                r.unclassified += count;
                continue;
            }
            match classify_stream(sample, 0.75) {
                ValueClass::Constant => r.constant += count,
                ValueClass::Strided => r.strided += count,
                ValueClass::Patterned => r.patterned += count,
                ValueClass::Chaotic => r.chaotic += count,
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stream_classified() {
        assert_eq!(classify_stream(&[42; 20], 0.75), ValueClass::Constant);
    }

    #[test]
    fn near_constant_with_one_glitch_still_constant() {
        let mut v = vec![7u64; 30];
        v[15] = 9;
        assert_eq!(classify_stream(&v, 0.75), ValueClass::Constant);
    }

    #[test]
    fn strided_stream_classified() {
        let v: Vec<u64> = (0..20).map(|k| 5 + 8 * k).collect();
        assert_eq!(classify_stream(&v, 0.75), ValueClass::Strided);
    }

    #[test]
    fn descending_stride_classified() {
        let v: Vec<u64> = (0..20).map(|k| 10_000 - 8 * k).collect();
        assert_eq!(classify_stream(&v, 0.75), ValueClass::Strided);
    }

    #[test]
    fn short_period_classified_as_patterned() {
        let v: Vec<u64> = (0..40).map(|k| [3u64, 14, 15, 92][k % 4]).collect();
        assert_eq!(classify_stream(&v, 0.75), ValueClass::Patterned);
    }

    #[test]
    fn lcg_stream_is_chaotic() {
        let mut x = 1u64;
        let v: Vec<u64> = (0..64)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            })
            .collect();
        assert_eq!(classify_stream(&v, 0.75), ValueClass::Chaotic);
    }

    #[test]
    fn too_short_streams_are_chaotic() {
        assert_eq!(classify_stream(&[1, 1, 1], 0.75), ValueClass::Chaotic);
    }

    #[test]
    fn analyzer_weights_by_dynamic_count() {
        let mut a = LocalityAnalyzer::new();
        for _k in 0..100u64 {
            a.observe(0x10, 5); // constant ×100
        }
        let mut x = 7u64;
        for _ in 0..50 {
            x = x.wrapping_mul(25214903917).wrapping_add(11);
            a.observe(0x20, x); // chaotic ×50
        }
        let r = a.report();
        assert_eq!(r.constant, 100);
        assert_eq!(r.chaotic, 50);
        assert!((r.fraction(ValueClass::Constant) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.total(), 150);
    }

    #[test]
    fn rare_pcs_are_unclassified() {
        let mut a = LocalityAnalyzer::new();
        for k in 0..5u64 {
            a.observe(0x30, k);
        }
        let r = a.report();
        assert_eq!(r.unclassified, 5);
        assert_eq!(r.fraction(ValueClass::Chaotic), 0.0);
    }

    #[test]
    fn sample_is_bounded() {
        let mut a = LocalityAnalyzer::new();
        for k in 0..10_000u64 {
            a.observe(0x40, k);
        }
        let (count, sample) = &a.streams[&0x40];
        assert_eq!(*count, 10_000);
        assert_eq!(sample.len(), LocalityAnalyzer::SAMPLE);
    }
}
