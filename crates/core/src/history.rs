//! Global branch history and path history.
//!
//! VTAGE is "the first hardware value predictor to leverage a long global
//! branch history and the path history" (§1). Both histories are maintained
//! speculatively by the pipeline front-end and checkpointed/restored on
//! squashes, so the state is a small `Copy` struct: [`HistoryState`].

/// Speculative control-flow history carried by the front-end.
///
/// * `ghist` — global direction history: one bit per conditional branch,
///   most recent in bit 0 (up to 128 bits, comfortably above VTAGE's maximum
///   64-bit history length).
/// * `path` — path history: 3 low PC bits of every control-flow µop,
///   most recent in the low bits.
///
/// The struct is `Copy` so ROB entries can checkpoint it for squash
/// recovery at negligible cost.
///
/// # Examples
///
/// ```
/// use vpsim_core::history::HistoryState;
/// let mut h = HistoryState::default();
/// h.push_branch(0x40, true);
/// h.push_branch(0x80, false);
/// assert_eq!(h.ghist & 0b11, 0b10); // most recent outcome in bit 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HistoryState {
    /// Global direction history, youngest outcome in bit 0.
    pub ghist: u128,
    /// Path history (3 bits of each control µop's PC), youngest in bits 0–2.
    pub path: u64,
}

impl HistoryState {
    /// Record a conditional branch outcome (updates both histories).
    pub fn push_branch(&mut self, pc: u64, taken: bool) {
        self.ghist = (self.ghist << 1) | taken as u128;
        self.push_path(pc);
    }

    /// Record an unconditional control-flow µop (jump/call/return): only the
    /// path history observes it.
    pub fn push_path(&mut self, pc: u64) {
        self.path = (self.path << 3) | ((pc >> 2) & 0b111);
    }
}

/// Fold the low `len` bits of `hist` into `out_bits` bits by XOR-ing
/// consecutive `out_bits`-wide chunks (the classic TAGE folded-history
/// function, computed directly rather than incrementally — same result,
/// no checkpoint state).
///
/// `out_bits` must be in `1..=63`. A `len` of 0 folds to 0.
///
/// # Examples
///
/// ```
/// use vpsim_core::history::fold;
/// // 8 bits folded into 4: high nibble XOR low nibble.
/// assert_eq!(fold(0b1010_0110, 8, 4), 0b1100);
/// ```
pub fn fold(hist: u128, len: u32, out_bits: u32) -> u64 {
    debug_assert!((1..64).contains(&out_bits));
    if len == 0 {
        return 0;
    }
    let mask = (1u64 << out_bits) - 1;
    // XOR is associative and commutative, so the chunk XOR is computed as
    // a shift-doubling tree rather than a serial chunk loop: after stages
    // `h ^= h >> b`, `h ^= h >> 2b`, … the low chunk holds the XOR of the
    // first 2ᵏ chunks, and the stages stop once 2ᵏ chunks cover the whole
    // width (the last shift is < width, so coverage = 2 × last shift ≥
    // width). Bit-identical to folding chunk by chunk, in O(log) dependent
    // steps instead of O(len / out_bits). Histories up to 64 bits (most
    // components) fold in native-width arithmetic.
    if len <= 64 {
        let keep = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        let mut h = (hist as u64) & keep;
        let mut shift = out_bits;
        while shift < 64 {
            h ^= h >> shift;
            shift <<= 1;
        }
        return h & mask;
    }
    let mut h = if len >= 128 { hist } else { hist & ((1u128 << len) - 1) };
    let mut shift = out_bits;
    while shift < 128 {
        h ^= h >> shift;
        shift <<= 1;
    }
    h as u64 & mask
}

/// Fold a 64-bit value onto itself to 16 bits (the paper's o4-FCM history
/// compression: "we fold (XOR) each 64-bit history value upon itself to
/// obtain a 16-bit index").
pub fn fold_value16(value: u64) -> u16 {
    let v = value ^ (value >> 16) ^ (value >> 32) ^ (value >> 48);
    v as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_updates_shift_in_at_bit_zero() {
        let mut h = HistoryState::default();
        h.push_branch(0, true);
        h.push_branch(0, true);
        h.push_branch(0, false);
        assert_eq!(h.ghist & 0b111, 0b110);
    }

    #[test]
    fn path_takes_three_pc_bits() {
        let mut h = HistoryState::default();
        h.push_path(0b10100); // pc >> 2 = 0b101
        assert_eq!(h.path & 0b111, 0b101);
        h.push_path(0b01100); // pc >> 2 = 0b011
        assert_eq!(h.path & 0b111111, 0b101_011);
    }

    #[test]
    fn unconditional_control_does_not_touch_ghist() {
        let mut h = HistoryState::default();
        h.push_branch(0, true);
        let g = h.ghist;
        h.push_path(0x40);
        assert_eq!(h.ghist, g);
    }

    #[test]
    fn fold_zero_len_is_zero() {
        assert_eq!(fold(u128::MAX, 0, 10), 0);
    }

    #[test]
    fn fold_shorter_than_output_is_identity() {
        assert_eq!(fold(0b101, 3, 10), 0b101);
    }

    #[test]
    fn fold_is_xor_of_chunks() {
        // 12 bits folded to 4: chunks 0xA, 0x6, 0x3 → 0xA^0x6^0x3 = 0xF.
        assert_eq!(fold(0x3_6A, 12, 4), 0xF);
    }

    #[test]
    fn fold_masks_history_beyond_len() {
        // Bits above `len` must not influence the fold.
        let a = fold(0b1111_0000_1010, 8, 4);
        let b = fold(0b0000_0000_1010, 8, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn fold_full_width_history() {
        // Must not overflow or panic for len = 128.
        let f = fold(u128::MAX, 128, 13);
        assert!(f < (1 << 13));
    }

    #[test]
    fn fold_tree_matches_the_serial_chunk_fold() {
        // The shift-doubling tree must equal the definitional chunk-by-
        // chunk XOR for every geometry TAGE/VTAGE uses (and then some).
        fn serial(hist: u128, len: u32, out_bits: u32) -> u64 {
            if len == 0 {
                return 0;
            }
            let mask = (1u64 << out_bits) - 1;
            let mut rest = if len >= 128 { hist } else { hist & ((1u128 << len) - 1) };
            let mut acc = 0u64;
            while rest != 0 {
                acc ^= (rest as u64) & mask;
                rest >>= out_bits;
            }
            acc
        }
        let mut x = 0x9E37_79B9_7F4A_7C15u128;
        for i in 0..256u32 {
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0x1234_5678_9ABC_DEF1);
            let hist = x ^ (x << 64);
            for len in [1, 3, 4, 8, 16, 24, 63, 64, 65, 100, 127, 128] {
                for out_bits in [1, 2, 7, 8, 9, 13, 16, 33, 63] {
                    assert_eq!(
                        fold(hist, len, out_bits),
                        serial(hist, len, out_bits),
                        "case {i}: len {len}, out_bits {out_bits}"
                    );
                }
            }
        }
    }

    #[test]
    fn fold_value16_xors_quarters() {
        assert_eq!(fold_value16(0), 0);
        assert_eq!(fold_value16(0x0001_0002_0004_0008), 0x000F);
        // Sensitive to high bits.
        assert_ne!(fold_value16(0x8000_0000_0000_0000), fold_value16(0));
    }

    #[test]
    fn different_histories_fold_differently_often() {
        // Sanity: folding should not be constant over varied inputs.
        let mut outputs = std::collections::HashSet::new();
        for i in 0..64u128 {
            outputs.insert(fold(i * 0x9E37_79B9, 32, 10));
        }
        assert!(outputs.len() > 16);
    }
}
