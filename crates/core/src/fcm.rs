//! Finite Context Method predictors (Sazeides & Smith).
//!
//! * [`Fcm`] — the paper's order-4 FCM baseline: a two-level structure. The
//!   first level (Value History Table, VHT) records the folded history of
//!   the last 4 values produced by the instruction; the history hash indexes
//!   the second level (Value Prediction Table, VPT) holding the prediction.
//!   Following §7.1.1, each 64-bit value is folded onto itself to a 16-bit
//!   compressed form; the VPT index XORs the folded values with increasing
//!   shifts, then XORs in the PC to break interference; the VPT keeps a
//!   2-bit hysteresis counter to limit replacement.
//! * [`DFcm`] — Differential FCM (Goeman et al., HPCA 2001): the history
//!   and the VPT store value *differences*, combining FCM pattern capture
//!   with stride-style compactness. The paper leaves the D-FCM comparison
//!   to future work; it is included here as an extension.
//!
//! FCM-class predictors illustrate the paper's §3.2 complexity argument:
//! predicting an instruction requires the (speculative) results of its last
//! *n* occurrences, so tight loops force either tiny tables or giving up
//! back-to-back prediction. The simulator follows the paper's evaluation in
//! idealizing this: FCM is allowed to predict back-to-back occurrences
//! instantly, which *overestimates* its performance (§7.1.1).

use crate::confidence::{ConfidenceScheme, Lfsr};
use crate::history::fold_value16;
use crate::hybrid::SpeculativeFeed;
use crate::inflight::{Inflight, SpecWindow};
use crate::storage::{full_tag_bits, Storage, StorageComponent};
use crate::{PredictCtx, Prediction, Predictor};

/// History order (the paper's o4).
const ORDER: usize = 4;
/// VPT hysteresis saturation.
const HYST_MAX: u8 = 3;

#[derive(Debug, Clone, Copy, Default)]
struct VhtEntry {
    valid: bool,
    tag: u64,
    /// Folded 16-bit value history, youngest at index 0.
    hist: [u16; ORDER],
    conf: u8,
    /// D-FCM only: last committed value (differences are relative to it).
    last: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct VptEntry {
    /// Predicted value ([`Fcm`]) or difference ([`DFcm`]).
    value: u64,
    hyst: u8,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    index: u32,
    tag: u64,
    /// The prediction as made at fetch (speculative history included).
    predicted: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavour {
    Absolute,
    Differential,
}

#[derive(Debug, Clone)]
struct FcmCore {
    vht: Vec<VhtEntry>,
    vpt: Vec<VptEntry>,
    vht_bits: u32,
    vpt_bits: u32,
    scheme: ConfidenceScheme,
    lfsr: Lfsr,
    inflight: Inflight<Record>,
    /// Speculative folded history elements (FCM: folded predicted values;
    /// D-FCM: folded predicted differences).
    spec_hist: SpecWindow,
    /// D-FCM only: speculative predicted values (the "last" chain).
    spec_vals: SpecWindow,
    flavour: Flavour,
    name: &'static str,
}

impl FcmCore {
    fn new(
        vht_entries: usize,
        vpt_entries: usize,
        scheme: ConfidenceScheme,
        seed: u64,
        flavour: Flavour,
        name: &'static str,
    ) -> Self {
        assert!(vht_entries.is_power_of_two() && vpt_entries.is_power_of_two());
        FcmCore {
            vht: vec![VhtEntry::default(); vht_entries],
            vpt: vec![VptEntry::default(); vpt_entries],
            vht_bits: vht_entries.trailing_zeros(),
            vpt_bits: vpt_entries.trailing_zeros(),
            scheme,
            lfsr: Lfsr::new(seed),
            inflight: Inflight::new(),
            spec_hist: SpecWindow::new(),
            spec_vals: SpecWindow::new(),
            flavour,
            name,
        }
    }

    fn vht_index(&self, pc: u64) -> u32 {
        ((pc >> 2) & ((1 << self.vht_bits) - 1)) as u32
    }

    fn vht_tag(&self, pc: u64) -> u64 {
        pc >> (2 + self.vht_bits)
    }

    /// The paper's VPT hash: XOR the folded values with increasing left
    /// shifts (youngest unshifted), then XOR the PC to break conflicts.
    fn vpt_index(&self, hist: &[u16; ORDER], pc: u64) -> u32 {
        let mut h: u64 = 0;
        for (i, &v) in hist.iter().enumerate() {
            h ^= (v as u64) << i;
        }
        ((h ^ (pc >> 2)) & ((1 << self.vpt_bits) - 1)) as u32
    }

    /// Effective (speculative) history: in-flight folded elements overlay
    /// the committed VHT history, youngest first.
    fn effective_hist(&self, pc: u64, committed: &[u16; ORDER]) -> [u16; ORDER] {
        let mut hist = [0u16; ORDER];
        let mut k = 0;
        for v in self.spec_hist.recent_iter(pc, ORDER) {
            hist[k] = v as u16;
            k += 1;
        }
        hist[k..ORDER].copy_from_slice(&committed[..ORDER - k]);
        hist
    }

    fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
        let index = self.vht_index(ctx.pc);
        let tag = self.vht_tag(ctx.pc);
        let e = &self.vht[index as usize];
        let prediction = if e.valid && e.tag == tag {
            let hist = self.effective_hist(ctx.pc, &e.hist);
            let vpt = &self.vpt[self.vpt_index(&hist, ctx.pc) as usize];
            let (value, spec_elem) = match self.flavour {
                Flavour::Absolute => (vpt.value, fold_value16(vpt.value) as u64),
                Flavour::Differential => {
                    let base = self.spec_vals.latest(ctx.pc).unwrap_or(e.last);
                    (base.wrapping_add(vpt.value), fold_value16(vpt.value) as u64)
                }
            };
            self.spec_hist.push(ctx.seq, ctx.pc, spec_elem);
            if self.flavour == Flavour::Differential {
                self.spec_vals.push(ctx.seq, ctx.pc, value);
            }
            Prediction::of(value, self.scheme.is_saturated(e.conf))
        } else {
            Prediction::none()
        };
        self.inflight.push(ctx.seq, Record { index, tag, predicted: prediction.value });
        prediction
    }

    fn train(&mut self, seq: u64, actual: u64) {
        let rec = self.inflight.pop(seq);
        self.spec_hist.retire_upto(seq);
        self.spec_vals.retire_upto(seq);
        let e = &mut self.vht[rec.index as usize];
        if e.valid && e.tag == rec.tag {
            // Commit-time prediction from the committed history.
            let hist = e.hist;
            let vpt_idx = {
                let mut h: u64 = 0;
                for (i, &v) in hist.iter().enumerate() {
                    h ^= (v as u64) << i;
                }
                // Recompute with the entry's own pc-tag impossible here; the
                // record index/tag identify the pc bits we need:
                // pc >> 2 = (tag << vht_bits) | index.
                let pc_shifted = (rec.tag << self.vht_bits) | rec.index as u64;
                ((h ^ pc_shifted) & ((1 << self.vpt_bits) - 1)) as u32
            };
            let observed = match self.flavour {
                Flavour::Absolute => actual,
                Flavour::Differential => actual.wrapping_sub(e.last),
            };
            // Confidence validates the prediction carried from fetch.
            let correct = rec.predicted == Some(actual);
            e.conf = if correct {
                self.scheme.on_correct(e.conf, &mut self.lfsr)
            } else {
                self.scheme.on_incorrect(e.conf)
            };
            // VPT update with hysteresis (§7.1.1: replace only at zero).
            let vpt = &mut self.vpt[vpt_idx as usize];
            let stored_target = match self.flavour {
                Flavour::Absolute => actual,
                Flavour::Differential => observed,
            };
            if vpt.value == stored_target {
                vpt.hyst = (vpt.hyst + 1).min(HYST_MAX);
            } else if vpt.hyst == 0 {
                vpt.value = stored_target;
            } else {
                vpt.hyst -= 1;
            }
            // Shift the new element into the committed history.
            let elem = match self.flavour {
                Flavour::Absolute => fold_value16(actual),
                Flavour::Differential => fold_value16(observed),
            };
            e.hist.rotate_right(1);
            e.hist[0] = elem;
            e.last = actual;
        } else {
            *e = VhtEntry {
                valid: true,
                tag: rec.tag,
                hist: [fold_value16(actual), 0, 0, 0],
                conf: 0,
                last: actual,
            };
        }
    }

    fn squash_after(&mut self, seq: u64) {
        self.inflight.squash_after(seq);
        self.spec_hist.squash_after(seq);
        self.spec_vals.squash_after(seq);
    }

    fn storage(&self) -> Storage {
        let vht_bits = full_tag_bits(self.vht.len())
            + 16 * ORDER
            + self.scheme.bits_per_counter()
            + if self.flavour == Flavour::Differential { 64 } else { 0 };
        let vpt_bits = 64 + 2;
        Storage::from_components(vec![
            StorageComponent::new(format!("{} VHT", self.name), self.vht.len(), vht_bits),
            StorageComponent::new(format!("{} VPT", self.name), self.vpt.len(), vpt_bits),
        ])
    }
}

macro_rules! fcm_predictor {
    ($(#[$doc:meta])* $ty:ident, $flavour:expr, $name:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $ty {
            core: FcmCore,
        }

        impl $ty {
            /// The paper's configuration: 8192-entry VHT, 8192-entry VPT.
            pub fn with_defaults(scheme: ConfidenceScheme, seed: u64) -> Self {
                Self::new(8192, 8192, scheme, seed)
            }

            /// Create with explicit table sizes (both powers of two).
            ///
            /// # Panics
            ///
            /// Panics if either size is not a power of two.
            pub fn new(vht: usize, vpt: usize, scheme: ConfidenceScheme, seed: u64) -> Self {
                $ty { core: FcmCore::new(vht, vpt, scheme, seed, $flavour, $name) }
            }
        }

        impl Predictor for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
                self.core.predict(ctx)
            }

            fn train(&mut self, seq: u64, actual: u64) {
                self.core.train(seq, actual)
            }

            fn squash_after(&mut self, seq: u64) {
                self.core.squash_after(seq)
            }

            fn resolve(&mut self, seq: u64, pc: u64, actual: u64) {
                // Repair the speculative history element recorded at
                // prediction time with the computed result's folded form
                // (and, for D-FCM, the speculative value chain); younger
                // in-flight elements were derived from it and are
                // re-anchored too.
                self.core.spec_hist.correct_from(seq, pc, fold_value16(actual) as u64);
                if self.core.flavour == Flavour::Differential {
                    self.core.spec_vals.correct_from(seq, pc, actual);
                }
            }

            fn storage(&self) -> Storage {
                self.core.storage()
            }
        }

        impl SpeculativeFeed for $ty {
            fn feed(&mut self, seq: u64, pc: u64, value: u64) {
                // Substitute the arbitrated value's folded form for the
                // speculative history element recorded at predict time.
                match self.core.flavour {
                    Flavour::Absolute => {
                        self.core.spec_hist.replace(seq, pc, fold_value16(value) as u64);
                    }
                    Flavour::Differential => {
                        self.core.spec_vals.replace(seq, pc, value);
                    }
                }
            }
        }
    };
}

fcm_predictor!(
    /// Order-4 Finite Context Method predictor (paper Table 1: 8K VHT +
    /// 8K VPT, 120.8 + 67.6 KB).
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_core::{Fcm, Predictor, PredictCtx, ConfidenceScheme};
    /// let mut p = Fcm::with_defaults(ConfidenceScheme::baseline(), 3);
    /// // A repeating period-3 pattern is exactly what FCM captures.
    /// let pattern = [5u64, 11, 3];
    /// let mut hits = 0;
    /// for seq in 0..60 {
    ///     let v = pattern[(seq % 3) as usize];
    ///     let ctx = PredictCtx { seq, pc: 0x8, ..Default::default() };
    ///     if p.predict(&ctx).confident_value() == Some(v) {
    ///         hits += 1;
    ///     }
    ///     p.train(seq, v);
    /// }
    /// assert!(hits > 10);
    /// ```
    Fcm,
    Flavour::Absolute,
    "o4-FCM"
);

fcm_predictor!(
    /// Order-4 Differential FCM: history and VPT store value differences,
    /// letting one VPT entry cover every instance of a strided pattern.
    DFcm,
    Flavour::Differential,
    "o4-D-FCM"
);

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seq: u64, pc: u64) -> PredictCtx {
        PredictCtx { seq, pc, ..Default::default() }
    }

    fn run_pattern<P: Predictor>(p: &mut P, pc: u64, pattern: &[u64], reps: usize) -> (u64, u64) {
        let mut confident_correct = 0;
        let mut confident_total = 0;
        let mut seq = 0;
        for _ in 0..reps {
            for &v in pattern {
                if let Some(pred) = p.predict(&ctx(seq, pc)).confident_value() {
                    confident_total += 1;
                    if pred == v {
                        confident_correct += 1;
                    }
                }
                p.train(seq, v);
                seq += 1;
            }
        }
        (confident_correct, confident_total)
    }

    #[test]
    fn fcm_learns_periodic_pattern() {
        let mut p = Fcm::with_defaults(ConfidenceScheme::baseline(), 1);
        let (correct, total) = run_pattern(&mut p, 0x40, &[10, 20, 30, 40, 50], 40);
        assert!(total > 50, "FCM should become confident on a period-5 pattern");
        assert!(correct as f64 / total as f64 > 0.95, "{correct}/{total}");
    }

    #[test]
    fn fcm_learns_non_strided_repeating_values() {
        // LVP/stride cannot capture this; FCM must.
        let mut p = Fcm::with_defaults(ConfidenceScheme::baseline(), 1);
        let (correct, total) = run_pattern(&mut p, 0x40, &[7, 7, 13, 7, 7, 13], 60);
        assert!(total > 60);
        assert!(correct as f64 / total as f64 > 0.9);
    }

    #[test]
    fn dfcm_learns_strided_sequence_with_one_vpt_entry_per_delta() {
        let mut p = DFcm::with_defaults(ConfidenceScheme::baseline(), 1);
        // Pure stride: differences constant → captured by difference history.
        let mut confident = 0;
        for k in 0..60u64 {
            if let Some(v) = p.predict(&ctx(k, 0x40)).confident_value() {
                assert_eq!(v, k * 16);
                confident += 1;
            }
            p.train(k, k * 16);
        }
        assert!(confident > 30, "D-FCM must lock onto the stride, got {confident}");
    }

    #[test]
    fn dfcm_learns_alternating_deltas() {
        // Values: +1, +9, +1, +9, … — stride predictors fail, D-FCM succeeds.
        let mut p = DFcm::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut v = 0u64;
        let mut correct = 0;
        let mut total = 0;
        for k in 0..120u64 {
            v += if k % 2 == 0 { 1 } else { 9 };
            if let Some(pred) = p.predict(&ctx(k, 0x40)).confident_value() {
                total += 1;
                if pred == v {
                    correct += 1;
                }
            }
            p.train(k, v);
        }
        assert!(total > 40, "expected confidence on alternating deltas, got {total}");
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn speculative_history_enables_back_to_back_prediction() {
        let mut p = Fcm::with_defaults(ConfidenceScheme::baseline(), 1);
        // Train pattern a,b,a,b…
        let mut seq = 0;
        for k in 0..40u64 {
            p.predict(&ctx(seq, 0x40));
            p.train(seq, 100 + (k % 2));
            seq += 1;
        }
        // Two back-to-back occurrences without intervening commits: the
        // second must use the speculative history including the first's
        // prediction (alternation continues).
        let p1 = p.predict(&ctx(seq, 0x40)).confident_value();
        let p2 = p.predict(&ctx(seq + 1, 0x40)).confident_value();
        assert_eq!(p1, Some(100), "pattern position check");
        assert_eq!(p2, Some(101), "speculative history must advance the pattern");
        p.train(seq, 100);
        p.train(seq + 1, 101);
    }

    #[test]
    fn squash_restores_speculative_history() {
        let mut p = Fcm::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut seq = 0;
        for k in 0..40u64 {
            p.predict(&ctx(seq, 0x40));
            p.train(seq, 100 + (k % 2));
            seq += 1;
        }
        let p1 = p.predict(&ctx(seq, 0x40)).confident_value();
        let _p2 = p.predict(&ctx(seq + 1, 0x40));
        p.squash_after(seq);
        let p2_again = p.predict(&ctx(seq + 1, 0x40)).confident_value();
        assert_eq!(p1, Some(100));
        assert_eq!(p2_again, Some(101));
        p.train(seq, 100);
        p.train(seq + 1, 101);
    }

    #[test]
    fn vht_tag_miss_allocates() {
        let mut p = Fcm::new(8, 64, ConfidenceScheme::baseline(), 1);
        let mut seq = 0;
        for _ in 0..8 {
            p.predict(&ctx(seq, 0x0));
            p.train(seq, 1);
            seq += 1;
        }
        let conflicting = 8 * 4 * 4;
        let pred = p.predict(&ctx(seq, conflicting));
        assert_eq!(pred.value, None);
        p.train(seq, 2);
    }

    #[test]
    fn storage_matches_table1() {
        let p = Fcm::with_defaults(ConfidenceScheme::baseline(), 1);
        let total = p.storage().total_kb();
        assert!((total - (120.8 + 67.6)).abs() < 0.1, "got {total}");
    }

    #[test]
    fn dfcm_storage_exceeds_fcm_by_last_value_field() {
        let f = Fcm::with_defaults(ConfidenceScheme::baseline(), 1).storage().total_kb();
        let d = DFcm::with_defaults(ConfidenceScheme::baseline(), 1).storage().total_kb();
        assert!(d > f);
    }
}
