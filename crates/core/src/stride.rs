//! Computational (stride-based) value predictors.
//!
//! * [`Stride`] — classic stride prediction (Gabbay & Mendelson): predict
//!   `last + stride` where `stride` is the last observed delta.
//! * [`TwoDeltaStride`] — the 2-delta variant (Eickemeyer & Vassiliadis,
//!   paper Table 1): the *prediction* stride `s2` is only updated once the
//!   same delta `s1` has been observed twice in a row, filtering transient
//!   glitches.
//! * [`PerPathStride`] — strides selected by (PC, recent branch history)
//!   (Nakra et al.); the paper's footnote 4 reports performance on par with
//!   2D-Stride.
//!
//! Stride predictors must track the **last speculative occurrence** of each
//! instruction (§3.2): when several occurrences of one instruction are in
//! flight, each prediction builds on the *prediction* made for the previous
//! one, not the stale committed value. [`crate::inflight::SpecWindow`]
//! implements exactly that tracking (and is the hardware complexity VTAGE
//! avoids).

use crate::confidence::{ConfidenceScheme, Lfsr};
use crate::history::{fold, HistoryState};
use crate::hybrid::SpeculativeFeed;
use crate::inflight::{Inflight, SpecWindow};
use crate::storage::{full_tag_bits, Storage, StorageComponent};
use crate::{PredictCtx, Prediction, Predictor};

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    last: u64,
    /// Last observed delta.
    s1: u64,
    /// Confirmed (prediction) delta — equals `s1` for the plain predictor.
    s2: u64,
    conf: u8,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    index: u32,
    tag: u64,
    /// The prediction as made at fetch (speculative chain included) —
    /// confidence must be validated against *this*, exactly as hardware
    /// compares the value carried with the instruction.
    predicted: Option<u64>,
}

/// Stride-update flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavour {
    Plain,
    TwoDelta,
}

/// Index-selection flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Select {
    PcOnly,
    PerPath { history_bits: u32 },
}

/// Shared implementation for the three stride predictors.
#[derive(Debug, Clone)]
struct StrideCore {
    entries: Vec<Entry>,
    index_bits: u32,
    scheme: ConfidenceScheme,
    lfsr: Lfsr,
    inflight: Inflight<Record>,
    spec: SpecWindow,
    flavour: Flavour,
    select: Select,
    name: &'static str,
}

impl StrideCore {
    fn new(
        entries: usize,
        scheme: ConfidenceScheme,
        seed: u64,
        flavour: Flavour,
        select: Select,
        name: &'static str,
    ) -> Self {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        StrideCore {
            entries: vec![Entry::default(); entries],
            index_bits: entries.trailing_zeros(),
            scheme,
            lfsr: Lfsr::new(seed),
            inflight: Inflight::new(),
            spec: SpecWindow::new(),
            flavour,
            select,
            name,
        }
    }

    fn index(&self, pc: u64, hist: &HistoryState) -> u32 {
        let base = pc >> 2;
        let sel = match self.select {
            Select::PcOnly => base,
            Select::PerPath { history_bits } => {
                base ^ fold(hist.ghist, history_bits, self.index_bits)
            }
        };
        (sel & ((1 << self.index_bits) - 1)) as u32
    }

    fn tag(&self, pc: u64) -> u64 {
        pc >> (2 + self.index_bits)
    }

    fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
        let index = self.index(ctx.pc, &ctx.hist);
        let tag = self.tag(ctx.pc);
        let e = &self.entries[index as usize];
        let prediction = if e.valid && e.tag == tag {
            // Base is the youngest speculative occurrence if one is in
            // flight, otherwise the committed last value.
            let base = self.spec.latest(ctx.pc).unwrap_or(e.last);
            let value = base.wrapping_add(e.s2);
            self.spec.push(ctx.seq, ctx.pc, value);
            Prediction::of(value, self.scheme.is_saturated(e.conf))
        } else {
            Prediction::none()
        };
        self.inflight.push(ctx.seq, Record { index, tag, predicted: prediction.value });
        prediction
    }

    fn train(&mut self, seq: u64, actual: u64) {
        let rec = self.inflight.pop(seq);
        self.spec.retire_upto(seq);
        let e = &mut self.entries[rec.index as usize];
        if e.valid && e.tag == rec.tag {
            // Confidence validates the prediction carried from fetch.
            let correct = rec.predicted == Some(actual);
            e.conf = if correct {
                self.scheme.on_correct(e.conf, &mut self.lfsr)
            } else {
                self.scheme.on_incorrect(e.conf)
            };
            let new_stride = actual.wrapping_sub(e.last);
            match self.flavour {
                Flavour::Plain => {
                    e.s1 = new_stride;
                    e.s2 = new_stride;
                }
                Flavour::TwoDelta => {
                    // s2 follows only when the same delta repeats.
                    if new_stride == e.s1 {
                        e.s2 = new_stride;
                    }
                    e.s1 = new_stride;
                }
            }
            e.last = actual;
        } else {
            *self.entries.get_mut(rec.index as usize).expect("index in range") =
                Entry { valid: true, tag: rec.tag, last: actual, s1: 0, s2: 0, conf: 0 };
        }
    }

    fn squash_after(&mut self, seq: u64) {
        self.inflight.squash_after(seq);
        self.spec.squash_after(seq);
    }

    fn storage(&self) -> Storage {
        let stride_fields = match self.flavour {
            Flavour::Plain => 64,
            Flavour::TwoDelta => 128,
        };
        let bits =
            full_tag_bits(self.entries.len()) + 64 + stride_fields + self.scheme.bits_per_counter();
        Storage::from_components(vec![StorageComponent::new(self.name, self.entries.len(), bits)])
    }

    fn feed(&mut self, seq: u64, pc: u64, value: u64) {
        self.spec.replace(seq, pc, value);
    }

    /// Execute-time repair (see [`Predictor::resolve`]): re-seed the
    /// speculative chain at the computed result and rebuild the younger
    /// in-flight entries with the entry's current prediction stride —
    /// bounding the §7.2.1 cascade to the occurrences already predicted.
    fn resolve(&mut self, seq: u64, pc: u64, actual: u64) {
        let index = self.index_for_resolve(pc);
        let step = match index {
            Some(i) => {
                let e = &self.entries[i as usize];
                if e.valid && e.tag == self.tag(pc) {
                    e.s2
                } else {
                    0
                }
            }
            None => 0,
        };
        // The record for `seq` *is* occurrence seq's value: re-seed it with
        // the computed result; younger records continue the stride chain.
        self.spec.correct_chain(seq, pc, actual, step);
    }

    /// The table index used by `resolve`. Per-path selection depends on
    /// fetch-time history which is not available at execute; the PC-only
    /// index is used as the best-effort stride source (hardware keeps the
    /// stride in the instruction payload instead).
    fn index_for_resolve(&self, pc: u64) -> Option<u32> {
        let base = (pc >> 2) & ((1 << self.index_bits) - 1);
        Some(base as u32)
    }
}

macro_rules! stride_predictor {
    ($(#[$doc:meta])* $ty:ident, $flavour:expr, $select:expr, $name:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $ty {
            core: StrideCore,
        }

        impl $ty {
            /// The paper's configuration: 8192 entries.
            pub fn with_defaults(scheme: ConfidenceScheme, seed: u64) -> Self {
                Self::new(8192, scheme, seed)
            }

            /// Create with `entries` entries (must be a power of two).
            ///
            /// # Panics
            ///
            /// Panics if `entries` is not a power of two.
            pub fn new(entries: usize, scheme: ConfidenceScheme, seed: u64) -> Self {
                $ty { core: StrideCore::new(entries, scheme, seed, $flavour, $select, $name) }
            }
        }

        impl Predictor for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
                self.core.predict(ctx)
            }

            fn train(&mut self, seq: u64, actual: u64) {
                self.core.train(seq, actual)
            }

            fn squash_after(&mut self, seq: u64) {
                self.core.squash_after(seq)
            }

            fn resolve(&mut self, seq: u64, pc: u64, actual: u64) {
                self.core.resolve(seq, pc, actual)
            }

            fn storage(&self) -> Storage {
                self.core.storage()
            }
        }

        impl SpeculativeFeed for $ty {
            fn feed(&mut self, seq: u64, pc: u64, value: u64) {
                self.core.feed(seq, pc, value)
            }
        }
    };
}

stride_predictor!(
    /// Classic stride predictor: `prediction = last + stride`, stride updated
    /// on every commit.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_core::{Stride, Predictor, PredictCtx, ConfidenceScheme};
    /// let mut p = Stride::with_defaults(ConfidenceScheme::baseline(), 1);
    /// for seq in 0..16 {
    ///     let ctx = PredictCtx { seq, pc: 0x10, ..Default::default() };
    ///     let pred = p.predict(&ctx);
    ///     if seq >= 9 {
    ///         assert_eq!(pred.confident_value(), Some(seq * 4));
    ///     }
    ///     p.train(seq, seq * 4);
    /// }
    /// ```
    Stride,
    Flavour::Plain,
    Select::PcOnly,
    "Stride"
);

stride_predictor!(
    /// The 2-delta stride predictor (paper Table 1: 8192 entries, 251.9 KB):
    /// the prediction stride only follows after the same delta is seen twice,
    /// so a single irregular value does not destroy a learned stride.
    TwoDeltaStride,
    Flavour::TwoDelta,
    Select::PcOnly,
    "2D-Str"
);

stride_predictor!(
    /// Per-path stride predictor: the entry is selected by PC XOR a few bits
    /// of global branch history, so different control-flow paths leading to
    /// the same instruction can learn different strides (paper footnote 4).
    PerPathStride,
    Flavour::TwoDelta,
    Select::PerPath { history_bits: 8 },
    "PP-Str"
);

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seq: u64, pc: u64) -> PredictCtx {
        PredictCtx { seq, pc, ..Default::default() }
    }

    fn train_arith<P: Predictor>(
        p: &mut P,
        pc: u64,
        start: u64,
        step: u64,
        times: u64,
        seq0: u64,
    ) -> u64 {
        let mut seq = seq0;
        for k in 0..times {
            p.predict(&ctx(seq, pc));
            p.train(seq, start.wrapping_add(step.wrapping_mul(k)));
            seq += 1;
        }
        seq
    }

    #[test]
    fn stride_predicts_arithmetic_sequence() {
        let mut p = Stride::with_defaults(ConfidenceScheme::baseline(), 1);
        let seq = train_arith(&mut p, 0x40, 100, 3, 12, 0);
        let pred = p.predict(&ctx(seq, 0x40));
        assert_eq!(pred.confident_value(), Some(100 + 3 * 12));
        p.train(seq, 100 + 3 * 12);
    }

    #[test]
    fn negative_strides_wrap_correctly() {
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        // Descending sequence 1000, 990, 980, …
        let mut seq = 0;
        for k in 0..12u64 {
            p.predict(&ctx(seq, 0x40));
            p.train(seq, 1000 - 10 * k);
            seq += 1;
        }
        let pred = p.predict(&ctx(seq, 0x40));
        assert_eq!(pred.confident_value(), Some(1000 - 10 * 12));
        p.train(seq, 1000 - 10 * 12);
    }

    #[test]
    fn two_delta_filters_single_glitch() {
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        // Learn stride 8 on 0, 8, 16, …, 80.
        let mut seq = train_arith(&mut p, 0x40, 0, 8, 11, 0);
        // One glitch: value jumps by 1000, then the +8 pattern resumes from it.
        p.predict(&ctx(seq, 0x40));
        p.train(seq, 1080);
        seq += 1;
        // s2 must still be 8 (the 1000-delta was seen only once), so the next
        // prediction is glitch_value + 8.
        let pred = p.predict(&ctx(seq, 0x40));
        assert_eq!(pred.value, Some(1088));
        p.train(seq, 1088);
    }

    #[test]
    fn plain_stride_follows_glitch_immediately() {
        let mut p = Stride::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut seq = train_arith(&mut p, 0x40, 0, 8, 11, 0);
        p.predict(&ctx(seq, 0x40));
        p.train(seq, 1080); // delta 1000
        seq += 1;
        let pred = p.predict(&ctx(seq, 0x40));
        assert_eq!(pred.value, Some(2080), "plain stride adopts the new delta at once");
        p.train(seq, 1088);
    }

    #[test]
    fn speculative_window_chains_in_flight_occurrences() {
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        let seq = train_arith(&mut p, 0x40, 0, 4, 12, 0);
        // Three back-to-back occurrences with no intervening commits: each
        // prediction must build on the previous speculative one.
        let p1 = p.predict(&ctx(seq, 0x40));
        let p2 = p.predict(&ctx(seq + 1, 0x40));
        let p3 = p.predict(&ctx(seq + 2, 0x40));
        assert_eq!(p1.value, Some(48));
        assert_eq!(p2.value, Some(52));
        assert_eq!(p3.value, Some(56));
        p.train(seq, 48);
        p.train(seq + 1, 52);
        p.train(seq + 2, 56);
    }

    #[test]
    fn squash_rolls_back_speculative_chain() {
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        let seq = train_arith(&mut p, 0x40, 0, 4, 12, 0);
        let _ = p.predict(&ctx(seq, 0x40)); // 48
        let _ = p.predict(&ctx(seq + 1, 0x40)); // 52 (speculative on 48)

        // The second occurrence is squashed; the refetched occurrence must
        // again chain on 48, not 52.
        p.squash_after(seq);
        let pred = p.predict(&ctx(seq + 1, 0x40));
        assert_eq!(pred.value, Some(52));
        p.train(seq, 48);
        p.train(seq + 1, 52);
    }

    #[test]
    fn misprediction_resets_confidence() {
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        let seq = train_arith(&mut p, 0x40, 0, 4, 12, 0);
        p.predict(&ctx(seq, 0x40));
        p.train(seq, 9999); // breaks the stride
        let pred = p.predict(&ctx(seq + 1, 0x40));
        assert!(!pred.confident);
        p.train(seq + 1, 10003);
    }

    #[test]
    fn tag_miss_allocates_fresh_entry() {
        let mut p = TwoDeltaStride::new(8, ConfidenceScheme::baseline(), 1);
        let seq = train_arith(&mut p, 0x0, 0, 4, 8, 0);
        let conflicting_pc = 8 * 4 * 4; // same index, different tag
        let pred = p.predict(&ctx(seq, conflicting_pc));
        assert_eq!(pred.value, None);
        p.train(seq, 123);
        let pred = p.predict(&ctx(seq + 1, conflicting_pc));
        assert_eq!(pred.value, Some(123), "fresh entry starts with stride 0");
        p.train(seq + 1, 123);
    }

    #[test]
    fn per_path_stride_separates_paths() {
        let mut p = PerPathStride::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut seq = 0;
        let mut hist_a = HistoryState::default();
        hist_a.push_branch(0x8, true);
        let mut hist_b = HistoryState::default();
        hist_b.push_branch(0x8, false);
        // Path A sees constant 7, path B sees constant 1000, same PC.
        for _ in 0..10 {
            let ctx_a = PredictCtx { seq, pc: 0x40, hist: hist_a, actual: None };
            p.predict(&ctx_a);
            p.train(seq, 7);
            seq += 1;
            let ctx_b = PredictCtx { seq, pc: 0x40, hist: hist_b, actual: None };
            p.predict(&ctx_b);
            p.train(seq, 1000);
            seq += 1;
        }
        let pred_a = p.predict(&PredictCtx { seq, pc: 0x40, hist: hist_a, actual: None });
        assert_eq!(pred_a.value, Some(7));
        p.train(seq, 7);
        let pred_b = p.predict(&PredictCtx { seq: seq + 1, pc: 0x40, hist: hist_b, actual: None });
        assert_eq!(pred_b.value, Some(1000));
        p.train(seq + 1, 1000);
    }

    #[test]
    fn feed_overrides_speculative_value() {
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        let seq = train_arith(&mut p, 0x40, 0, 4, 12, 0);
        let _ = p.predict(&ctx(seq, 0x40)); // speculative 48

        // A hybrid arbiter decides the real prediction is 100.
        p.feed(seq, 0x40, 100);
        let pred = p.predict(&ctx(seq + 1, 0x40));
        assert_eq!(pred.value, Some(104), "chains on the fed value + stride");
        p.train(seq, 100);
        p.train(seq + 1, 104);
    }

    #[test]
    fn lagged_training_still_reaches_confidence() {
        // Pipeline-realistic schedule: predictions run `lag` occurrences
        // ahead of training (fetch-ahead), with execute-time resolve
        // repairing wrong speculative chains. The predictor must still
        // lock onto a pure arithmetic sequence — this regressed once when
        // chain repair re-seeded the window off by one stride.
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::fpc_squash(), 1);
        let lag = 20u64;
        let n = 3000u64;
        let actual = |k: u64| 100 + 7 * k;
        let mut predictions: Vec<Option<u64>> = Vec::new();
        let (mut used, mut correct) = (0u64, 0u64);
        for k in 0..n {
            let pred = p.predict(&ctx(k, 0x40));
            predictions.push(pred.confident_value());
            if k >= lag {
                let j = k - lag;
                if predictions[j as usize].is_none_or(|v| v != actual(j)) {
                    p.resolve(j, 0x40, actual(j));
                }
                p.train(j, actual(j));
                if k > n / 2 {
                    if let Some(v) = predictions[j as usize] {
                        used += 1;
                        if v == actual(j) {
                            correct += 1;
                        }
                    }
                }
            }
        }
        assert!(used > 1000, "must be confident in steady state, used {used}");
        assert_eq!(correct, used, "lagged predictions must be exact");
    }

    #[test]
    fn lagged_training_survives_value_break() {
        // Same schedule, but the stride changes mid-stream: the cascade
        // must be bounded (≈ the in-flight window), not permanent.
        let mut p = TwoDeltaStride::with_defaults(ConfidenceScheme::fpc_squash(), 1);
        let lag = 20u64;
        let n = 6000u64;
        let actual = |k: u64| if k < 3000 { 100 + 7 * k } else { 50_000 + 11 * k };
        let mut predictions: Vec<Option<u64>> = Vec::new();
        let (mut used_tail, mut correct_tail) = (0u64, 0u64);
        for k in 0..n {
            let pred = p.predict(&ctx(k, 0x40));
            predictions.push(pred.confident_value());
            if k >= lag {
                let j = k - lag;
                if predictions[j as usize].is_none_or(|v| v != actual(j)) {
                    p.resolve(j, 0x40, actual(j));
                }
                p.train(j, actual(j));
                if j > 5000 {
                    if let Some(v) = predictions[j as usize] {
                        used_tail += 1;
                        if v == actual(j) {
                            correct_tail += 1;
                        }
                    }
                }
            }
        }
        assert!(used_tail > 500, "confidence must recover after the break: {used_tail}");
        assert_eq!(correct_tail, used_tail, "post-break predictions must be exact");
    }

    #[test]
    fn storage_matches_table1() {
        let p = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        let kb = p.storage().total_kb();
        assert!((kb - 251.9).abs() < 0.05, "got {kb}");
        let s = Stride::with_defaults(ConfidenceScheme::baseline(), 1);
        assert!(s.storage().total_kb() < kb);
    }
}
