//! VTAGE — the Value TAgged GEometric history length predictor (paper §6).
//!
//! VTAGE is derived from the ITTAGE indirect-branch predictor: a tagless
//! last-value base component plus N tagged components indexed by hashes of
//! the PC with geometrically increasing lengths of **global branch history**
//! and the **path history**. The matching component with the longest
//! history *provides* the prediction; it is used only when its
//! confidence/hysteresis counter `c` is saturated.
//!
//! Because the lookup depends only on control-flow history — never on
//! previous values of the same instruction — VTAGE:
//!
//! * predicts **back-to-back occurrences** of an instruction seamlessly
//!   (§3.2, Fig. 1: it behaves like LVP in the prediction pipeline), and
//! * tolerates multi-cycle lookups (fetch→dispatch), so **large tables are
//!   practical** — the exact opposite of FCM-class predictors.
//!
//! Update policy (§6, following ITTAGE): only the provider is updated. On a
//! correct prediction `c` increments (probabilistically under FPC) and the
//! useful bit `u` is set; on a misprediction `val` is replaced only if `c`
//! was already 0, `c` resets, `u` clears, and a new entry is allocated in a
//! randomly chosen longer-history component whose existing entry is not
//! useful (if all are useful, their `u` bits decay instead).

use crate::confidence::{ConfidenceScheme, Lfsr};
use crate::history::{fold, HistoryState};
use crate::inflight::Inflight;
use crate::storage::{Storage, StorageComponent};
use crate::{PredictCtx, Prediction, Predictor};

/// Maximum number of tagged components supported by the fixed-size
/// per-prediction records.
pub const MAX_COMPONENTS: usize = 8;

/// VTAGE geometry.
///
/// The default matches the paper's Table 1: an 8K-entry base, six 1K-entry
/// tagged components with history lengths 2, 4, 8, 16, 32, 64 and tag
/// widths 12 + rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VtageConfig {
    /// Entries in the tagless base (last-value) component.
    pub base_entries: usize,
    /// Entries in each tagged component.
    pub component_entries: usize,
    /// History length per tagged component, strictly increasing.
    pub history_lengths: Vec<u32>,
    /// Tag width of component `rank` is `base_tag_bits + rank`.
    pub base_tag_bits: u32,
}

impl Default for VtageConfig {
    fn default() -> Self {
        VtageConfig {
            base_entries: 8192,
            component_entries: 1024,
            history_lengths: vec![2, 4, 8, 16, 32, 64],
            base_tag_bits: 12,
        }
    }
}

impl VtageConfig {
    /// Number of tagged components.
    pub fn num_components(&self) -> usize {
        self.history_lengths.len()
    }

    fn validate(&self) {
        assert!(self.base_entries.is_power_of_two(), "base entries must be a power of two");
        assert!(
            self.component_entries.is_power_of_two(),
            "component entries must be a power of two"
        );
        assert!(
            !self.history_lengths.is_empty() && self.history_lengths.len() <= MAX_COMPONENTS,
            "1..={MAX_COMPONENTS} tagged components required"
        );
        assert!(
            self.history_lengths.windows(2).all(|w| w[0] < w[1]),
            "history lengths must be strictly increasing"
        );
        assert!(
            self.base_tag_bits as usize + self.history_lengths.len() <= 32,
            "tags must fit in 32 bits"
        );
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BaseEntry {
    value: u64,
    conf: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    valid: bool,
    tag: u32,
    useful: bool,
    value: u64,
    conf: u8,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    base_index: u32,
    indices: [u32; MAX_COMPONENTS],
    tags: [u32; MAX_COMPONENTS],
    /// 0 = base; 1..=N = tagged component rank.
    provider: u8,
    predicted: u64,
}

/// The VTAGE predictor (see module docs).
///
/// # Examples
///
/// Values correlated with branch direction are VTAGE's home turf:
///
/// ```
/// use vpsim_core::{Vtage, Predictor, PredictCtx, ConfidenceScheme, HistoryState};
///
/// let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 9);
/// let mut seq = 0;
/// // The value produced at PC 0x40 equals 100 after a taken branch and
/// // 200 after a not-taken branch.
/// for round in 0..64 {
///     let taken = round % 2 == 0;
///     let mut hist = HistoryState::default();
///     hist.push_branch(0x10, taken);
///     let ctx = PredictCtx { seq, pc: 0x40, hist, actual: None };
///     let pred = p.predict(&ctx);
///     let actual = if taken { 100 } else { 200 };
///     if round > 40 {
///         assert_eq!(pred.confident_value(), Some(actual));
///     }
///     p.train(seq, actual);
///     seq += 1;
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Vtage {
    config: VtageConfig,
    base: Vec<BaseEntry>,
    components: Vec<Vec<TaggedEntry>>,
    base_bits: u32,
    comp_bits: u32,
    scheme: ConfidenceScheme,
    lfsr: Lfsr,
    inflight: Inflight<Record>,
}

impl Vtage {
    /// The paper's configuration (Table 1).
    pub fn with_defaults(scheme: ConfidenceScheme, seed: u64) -> Self {
        Vtage::new(VtageConfig::default(), scheme, seed)
    }

    /// Create with an explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (non-power-of-two tables,
    /// non-increasing history lengths, too many components).
    pub fn new(config: VtageConfig, scheme: ConfidenceScheme, seed: u64) -> Self {
        config.validate();
        Vtage {
            base: vec![BaseEntry::default(); config.base_entries],
            components: vec![
                vec![TaggedEntry::default(); config.component_entries];
                config.num_components()
            ],
            base_bits: config.base_entries.trailing_zeros(),
            comp_bits: config.component_entries.trailing_zeros(),
            config,
            scheme,
            lfsr: Lfsr::new(seed),
            inflight: Inflight::new(),
        }
    }

    /// The geometry in use.
    pub fn config(&self) -> &VtageConfig {
        &self.config
    }

    fn base_index(&self, pc: u64) -> u32 {
        ((pc >> 2) & ((1 << self.base_bits) - 1)) as u32
    }

    fn comp_index(&self, pc: u64, hist: &HistoryState, rank: usize) -> u32 {
        let len = self.config.history_lengths[rank - 1];
        let pcs = pc >> 2;
        let h = pcs
            ^ (pcs >> rank)
            ^ fold(hist.ghist, len, self.comp_bits)
            ^ fold(hist.path as u128, 3 * len.min(16), self.comp_bits);
        (h & ((1 << self.comp_bits) - 1)) as u32
    }

    fn comp_tag(&self, pc: u64, hist: &HistoryState, rank: usize) -> u32 {
        let len = self.config.history_lengths[rank - 1];
        let bits = self.config.base_tag_bits + rank as u32;
        let pcs = pc >> 2;
        let t = pcs ^ fold(hist.ghist, len, bits) ^ (fold(hist.ghist, len, bits - 1) << 1);
        (t & ((1u64 << bits) - 1)) as u32
    }
}

impl Predictor for Vtage {
    fn name(&self) -> &'static str {
        "VTAGE"
    }

    fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
        let n = self.config.num_components();
        let base_index = self.base_index(ctx.pc);
        let mut indices = [0u32; MAX_COMPONENTS];
        let mut tags = [0u32; MAX_COMPONENTS];
        let mut provider = 0u8;
        for rank in 1..=n {
            indices[rank - 1] = self.comp_index(ctx.pc, &ctx.hist, rank);
            tags[rank - 1] = self.comp_tag(ctx.pc, &ctx.hist, rank);
            let e = &self.components[rank - 1][indices[rank - 1] as usize];
            if e.valid && e.tag == tags[rank - 1] {
                provider = rank as u8;
            }
        }
        let (value, conf) = if provider == 0 {
            let e = &self.base[base_index as usize];
            (e.value, e.conf)
        } else {
            let e =
                &self.components[provider as usize - 1][indices[provider as usize - 1] as usize];
            (e.value, e.conf)
        };
        self.inflight
            .push(ctx.seq, Record { base_index, indices, tags, provider, predicted: value });
        Prediction::of(value, self.scheme.is_saturated(conf))
    }

    fn train(&mut self, seq: u64, actual: u64) {
        let rec = self.inflight.pop(seq);
        let n = self.config.num_components();
        // --- provider update (only the provider is updated, §6) ---
        let mispredicted = if rec.provider == 0 {
            let e = &mut self.base[rec.base_index as usize];
            // Validate the prediction carried from fetch.
            let correct = rec.predicted == actual;
            if correct {
                e.conf = self.scheme.on_correct(e.conf, &mut self.lfsr);
            } else {
                if e.conf == 0 {
                    e.value = actual;
                }
                e.conf = self.scheme.on_incorrect(e.conf);
            }
            !correct
        } else {
            let rank = rec.provider as usize;
            let e = &mut self.components[rank - 1][rec.indices[rank - 1] as usize];
            if e.valid && e.tag == rec.tags[rank - 1] {
                let correct = rec.predicted == actual;
                e.useful = correct;
                if correct {
                    e.conf = self.scheme.on_correct(e.conf, &mut self.lfsr);
                } else {
                    if e.conf == 0 {
                        e.value = actual;
                    }
                    e.conf = self.scheme.on_incorrect(e.conf);
                }
                !correct
            } else {
                // The provider entry was reallocated between fetch and
                // commit (rare). Judge by the value carried in the payload.
                rec.predicted != actual
            }
        };
        // --- allocation in a longer-history component ---
        if mispredicted && (rec.provider as usize) < n {
            let candidates: Vec<usize> = (rec.provider as usize + 1..=n)
                .filter(|&rank| {
                    let e = &self.components[rank - 1][rec.indices[rank - 1] as usize];
                    !e.valid || !e.useful
                })
                .collect();
            if candidates.is_empty() {
                // All candidate entries are useful: decay them instead of
                // allocating (anti-thrash, as in ITTAGE).
                for rank in rec.provider as usize + 1..=n {
                    self.components[rank - 1][rec.indices[rank - 1] as usize].useful = false;
                }
            } else {
                let pick = candidates[(self.lfsr.next_value() as usize) % candidates.len()];
                self.components[pick - 1][rec.indices[pick - 1] as usize] = TaggedEntry {
                    valid: true,
                    tag: rec.tags[pick - 1],
                    useful: false,
                    value: actual,
                    conf: 0,
                };
            }
        }
    }

    fn squash_after(&mut self, seq: u64) {
        self.inflight.squash_after(seq);
    }

    fn storage(&self) -> Storage {
        let conf_bits = self.scheme.bits_per_counter();
        let mut comps =
            vec![StorageComponent::new("VTAGE base", self.config.base_entries, 64 + conf_bits)];
        for rank in 1..=self.config.num_components() {
            let tag_bits = self.config.base_tag_bits as usize + rank;
            comps.push(StorageComponent::new(
                format!("VT{rank}"),
                self.config.component_entries,
                tag_bits + 1 + 64 + conf_bits,
            ));
        }
        Storage::from_components(comps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seq: u64, pc: u64, hist: HistoryState) -> PredictCtx {
        PredictCtx { seq, pc, hist, actual: None }
    }

    fn hist_of_bits(bits: &[bool]) -> HistoryState {
        let mut h = HistoryState::default();
        for (i, &b) in bits.iter().enumerate() {
            h.push_branch((i as u64) * 4, b);
        }
        h
    }

    #[test]
    fn base_component_learns_constants_like_lvp() {
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let h = HistoryState::default();
        let mut seq = 0;
        for _ in 0..10 {
            p.predict(&ctx(seq, 0x40, h));
            p.train(seq, 42);
            seq += 1;
        }
        let pred = p.predict(&ctx(seq, 0x40, h));
        assert_eq!(pred.confident_value(), Some(42));
        p.train(seq, 42);
    }

    #[test]
    fn captures_branch_correlated_values() {
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let h_taken = hist_of_bits(&[true]);
        let h_not = hist_of_bits(&[false]);
        let mut seq = 0;
        for _ in 0..40 {
            p.predict(&ctx(seq, 0x40, h_taken));
            p.train(seq, 111);
            seq += 1;
            p.predict(&ctx(seq, 0x40, h_not));
            p.train(seq, 222);
            seq += 1;
        }
        let a = p.predict(&ctx(seq, 0x40, h_taken)).confident_value();
        p.train(seq, 111);
        let b = p.predict(&ctx(seq + 1, 0x40, h_not)).confident_value();
        p.train(seq + 1, 222);
        assert_eq!(a, Some(111));
        assert_eq!(b, Some(222));
    }

    #[test]
    fn captures_short_value_patterns_via_rotating_history() {
        // A loop with 4 iterations between pattern repeats: each iteration
        // shifts one branch outcome into ghist, so the VT components see
        // distinct histories per pattern position.
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let values = [10u64, 20, 30, 40];
        let mut h = HistoryState::default();
        let mut confident_correct = 0;
        for round in 0..200u64 {
            let pos = (round % 4) as usize;
            let pred = p.predict(&ctx(round, 0x40, h)).confident_value();
            if pred == Some(values[pos]) {
                confident_correct += 1;
            }
            p.train(round, values[pos]);
            // The loop's closing branch: taken except at pattern end.
            h.push_branch(0x60, pos != 3);
        }
        assert!(confident_correct > 80, "got {confident_correct}");
    }

    #[test]
    fn longer_history_component_overrides_base() {
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let h1 = hist_of_bits(&[true, true, false]);
        let mut seq = 0;
        // Train base toward 5 via empty history, then a specific history
        // toward 900: the tagged match must win.
        for _ in 0..50 {
            p.predict(&ctx(seq, 0x40, HistoryState::default()));
            p.train(seq, 5);
            seq += 1;
            p.predict(&ctx(seq, 0x40, h1));
            p.train(seq, 900);
            seq += 1;
        }
        let pred = p.predict(&ctx(seq, 0x40, h1));
        assert_eq!(pred.confident_value(), Some(900));
        p.train(seq, 900);
    }

    #[test]
    fn misprediction_with_zero_conf_replaces_value() {
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let h = HistoryState::default();
        p.predict(&ctx(0, 0x40, h));
        p.train(0, 7); // base entry conf 0 → value replaced with 7
        let pred = p.predict(&ctx(1, 0x40, h));
        assert_eq!(pred.value, Some(7));
        p.train(1, 7);
    }

    #[test]
    fn misprediction_with_high_conf_keeps_value_once() {
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let h = HistoryState::default();
        let mut seq = 0;
        for _ in 0..10 {
            p.predict(&ctx(seq, 0x40, h));
            p.train(seq, 7);
            seq += 1;
        }
        // One wrong value: conf resets (so the prediction is no longer
        // used), the base value 7 is kept by hysteresis, and a new entry
        // holding 1000 is allocated in a tagged component.
        p.predict(&ctx(seq, 0x40, h));
        p.train(seq, 1000);
        seq += 1;
        let pred = p.predict(&ctx(seq, 0x40, h));
        assert!(!pred.confident, "confidence must reset after the glitch");
        p.train(seq, 7);
        seq += 1;
        // Training on 7 again re-saturates quickly because the base entry
        // still holds 7 (the freshly allocated 1000-entry loses and is
        // replaced at its first mispredict, conf 0).
        for _ in 0..10 {
            p.predict(&ctx(seq, 0x40, h));
            p.train(seq, 7);
            seq += 1;
        }
        let pred = p.predict(&ctx(seq, 0x40, h));
        assert_eq!(pred.confident_value(), Some(7), "value recovered after one glitch");
        p.train(seq, 7);
    }

    #[test]
    fn back_to_back_predictions_are_independent_of_value_state() {
        // VTAGE predictions for several in-flight occurrences need no
        // speculative value tracking: same (pc, hist) → same prediction.
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let h = HistoryState::default();
        let mut seq = 0;
        for _ in 0..10 {
            p.predict(&ctx(seq, 0x40, h));
            p.train(seq, 64);
            seq += 1;
        }
        let p1 = p.predict(&ctx(seq, 0x40, h)).confident_value();
        let p2 = p.predict(&ctx(seq + 1, 0x40, h)).confident_value();
        let p3 = p.predict(&ctx(seq + 2, 0x40, h)).confident_value();
        assert_eq!(p1, Some(64));
        assert_eq!(p2, Some(64));
        assert_eq!(p3, Some(64));
        p.train(seq, 64);
        p.train(seq + 1, 64);
        p.train(seq + 2, 64);
    }

    #[test]
    fn squash_discards_inflight_only() {
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let h = HistoryState::default();
        let mut seq = 0;
        for _ in 0..10 {
            p.predict(&ctx(seq, 0x40, h));
            p.train(seq, 3);
            seq += 1;
        }
        p.predict(&ctx(seq, 0x40, h));
        p.predict(&ctx(seq + 1, 0x40, h));
        p.squash_after(seq);
        p.train(seq, 3);
        // Prediction quality is unaffected by the squash.
        let pred = p.predict(&ctx(seq + 1, 0x40, h));
        assert_eq!(pred.confident_value(), Some(3));
        p.train(seq + 1, 3);
    }

    #[test]
    fn storage_matches_table1() {
        let p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let s = p.storage();
        let base_kb: f64 = s.components()[0].bits() as f64 / 8000.0;
        let tagged_kb: f64 = s.components()[1..].iter().map(|c| c.bits() as f64 / 8000.0).sum();
        assert!((base_kb - 68.6).abs() < 0.05, "base {base_kb}");
        assert!((tagged_kb - 64.1).abs() < 0.05, "tagged {tagged_kb}");
    }

    #[test]
    fn ablation_geometries_construct() {
        for n in 1..=8usize {
            let lengths: Vec<u32> = (0..n).map(|i| 2u32 << i).collect();
            let cfg = VtageConfig {
                base_entries: 1024,
                component_entries: 256,
                history_lengths: lengths,
                base_tag_bits: 8,
            };
            let p = Vtage::new(cfg, ConfidenceScheme::baseline(), 1);
            assert_eq!(p.config().num_components(), n);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_history_lengths_panic() {
        let cfg = VtageConfig { history_lengths: vec![2, 2], ..VtageConfig::default() };
        let _ = Vtage::new(cfg, ConfidenceScheme::baseline(), 1);
    }

    #[test]
    fn u_bit_protects_useful_entries_from_thrash() {
        // Train a stable pattern, then hammer with chaotic values from a
        // different PC mapping to overlapping component entries; the stable
        // PC must stay predictable.
        let mut p = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let h = hist_of_bits(&[true, false, true]);
        let mut seq = 0;
        for _ in 0..30 {
            p.predict(&ctx(seq, 0x40, h));
            p.train(seq, 5);
            seq += 1;
        }
        // Chaos on another PC (forces many allocations elsewhere).
        let mut chaos = 1u64;
        for _ in 0..200 {
            chaos = chaos.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.predict(&ctx(seq, 0x80, h));
            p.train(seq, chaos);
            seq += 1;
        }
        let pred = p.predict(&ctx(seq, 0x40, h));
        assert_eq!(pred.value, Some(5), "stable entry survived chaos");
        p.train(seq, 5);
    }
}
