//! SAg confidence estimation (Burtscher & Zorn, PACT 1999) applied to a
//! last-value predictor — the alternative the paper's §5 weighs FPC
//! against.
//!
//! SAg assigns confidence to a *history of outcomes* rather than to the
//! instruction itself: each predictor entry keeps an n-bit shift register
//! of recent hit/miss outcomes, which indexes a shared table of saturating
//! counters; the prediction is used when the counter for the current
//! outcome pattern is saturated. The paper's §5 objection is architectural,
//! not statistical: "this entails a second lookup in the counter table
//! using the outcome history retrieved in the predictor table", i.e. two
//! serial table accesses on the prediction path — which FPC avoids while
//! matching the accuracy. [`SagLvp`] exists so that trade-off can be
//! *measured* (see `paper counters` and the crate tests) rather than taken
//! on faith.

use crate::confidence::{ConfidenceScheme, Lfsr};
use crate::inflight::Inflight;
use crate::storage::{full_tag_bits, Storage, StorageComponent};
use crate::{PredictCtx, Prediction, Predictor};

/// Outcome-history length (bits) per entry.
const HISTORY_BITS: usize = 8;
/// Counter width in the shared pattern table.
const PATTERN_COUNTER_BITS: u8 = 4;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    value: u64,
    /// Shift register of recent outcomes (1 = the entry's value matched),
    /// youngest in bit 0.
    outcomes: u8,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    index: u32,
    tag: u64,
    predicted: Option<u64>,
    /// Outcome pattern at prediction time (the counter-table index used).
    pattern: u8,
}

/// Last-value predictor with SAg (outcome-history) confidence.
///
/// # Examples
///
/// ```
/// use vpsim_core::{SagLvp, Predictor, PredictCtx};
///
/// let mut p = SagLvp::with_defaults(3);
/// // A long constant run trains both the entry and the all-hits pattern.
/// let mut confident = 0;
/// for seq in 0..400 {
///     let ctx = PredictCtx { seq, pc: 0x40, ..Default::default() };
///     if p.predict(&ctx).confident_value() == Some(5) {
///         confident += 1;
///     }
///     p.train(seq, 5);
/// }
/// assert!(confident > 300, "got {confident}");
/// ```
#[derive(Debug, Clone)]
pub struct SagLvp {
    entries: Vec<Entry>,
    /// Shared counters indexed by the outcome pattern.
    patterns: Vec<u8>,
    index_bits: u32,
    scheme: ConfidenceScheme,
    lfsr: Lfsr,
    inflight: Inflight<Record>,
}

impl SagLvp {
    /// The paper-matched sizing: 8192 entries, 256-entry pattern table.
    pub fn with_defaults(seed: u64) -> Self {
        SagLvp::new(8192, seed)
    }

    /// Create with `entries` value entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, seed: u64) -> Self {
        assert!(entries.is_power_of_two());
        SagLvp {
            entries: vec![Entry::default(); entries],
            patterns: vec![0; 1 << HISTORY_BITS],
            index_bits: entries.trailing_zeros(),
            scheme: ConfidenceScheme::full(PATTERN_COUNTER_BITS),
            lfsr: Lfsr::new(seed),
            inflight: Inflight::new(),
        }
    }

    fn index(&self, pc: u64) -> u32 {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as u32
    }

    fn tag(&self, pc: u64) -> u64 {
        pc >> (2 + self.index_bits)
    }
}

impl Predictor for SagLvp {
    fn name(&self) -> &'static str {
        "SAg-LVP"
    }

    fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
        let index = self.index(ctx.pc);
        let tag = self.tag(ctx.pc);
        let e = &self.entries[index as usize];
        let (prediction, pattern) = if e.valid && e.tag == tag {
            // First lookup: the entry (value + outcome history); second
            // lookup: the pattern counter — the serial path §5 objects to.
            let pattern = e.outcomes;
            let confident = self.scheme.is_saturated(self.patterns[pattern as usize]);
            (Prediction::of(e.value, confident), pattern)
        } else {
            (Prediction::none(), 0)
        };
        self.inflight.push(ctx.seq, Record { index, tag, predicted: prediction.value, pattern });
        prediction
    }

    fn train(&mut self, seq: u64, actual: u64) {
        let rec = self.inflight.pop(seq);
        let e = &mut self.entries[rec.index as usize];
        if e.valid && e.tag == rec.tag {
            let correct = rec.predicted == Some(actual);
            // Pattern counter trains on whether this pattern led to a hit.
            let ctr = &mut self.patterns[rec.pattern as usize];
            *ctr = if correct {
                self.scheme.on_correct(*ctr, &mut self.lfsr)
            } else {
                self.scheme.on_incorrect(*ctr)
            };
            // The entry's outcome history and value advance.
            e.outcomes = (e.outcomes << 1) | correct as u8;
            if !correct {
                e.value = actual;
            }
        } else {
            *e = Entry { valid: true, tag: rec.tag, value: actual, outcomes: 0 };
        }
    }

    fn squash_after(&mut self, seq: u64) {
        self.inflight.squash_after(seq);
    }

    fn storage(&self) -> Storage {
        Storage::from_components(vec![
            StorageComponent::new(
                "SAg-LVP entries",
                self.entries.len(),
                full_tag_bits(self.entries.len()) + 64 + HISTORY_BITS,
            ),
            StorageComponent::new(
                "SAg pattern table",
                self.patterns.len(),
                PATTERN_COUNTER_BITS as usize,
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seq: u64, pc: u64) -> PredictCtx {
        PredictCtx { seq, pc, ..Default::default() }
    }

    #[test]
    fn constant_stream_becomes_confident() {
        let mut p = SagLvp::with_defaults(1);
        let mut confident = 0;
        for seq in 0..200 {
            if p.predict(&ctx(seq, 0x40)).confident_value() == Some(9) {
                confident += 1;
            }
            p.train(seq, 9);
        }
        assert!(confident > 100, "got {confident}");
    }

    #[test]
    fn alternating_values_never_gain_confidence() {
        let mut p = SagLvp::with_defaults(1);
        for seq in 0..400 {
            let v = seq % 2;
            assert_eq!(
                p.predict(&ctx(seq, 0x40)).confident_value(),
                None,
                "all-miss patterns must never saturate"
            );
            p.train(seq, v);
        }
    }

    #[test]
    fn confidence_is_shared_across_instructions_with_like_histories() {
        // Train a constant at pc A until the all-hits pattern saturates;
        // a *fresh* constant at pc B then becomes confident as soon as its
        // own history reaches the same pattern — faster than a private
        // counter would allow. This cross-instruction sharing is SAg's
        // selling point (and its aliasing risk).
        let mut p = SagLvp::with_defaults(1);
        let mut seq = 0;
        for _ in 0..300 {
            p.predict(&ctx(seq, 0x40));
            p.train(seq, 7);
            seq += 1;
        }
        // pc B: count how many occurrences until first confident use.
        let mut until_confident = 0;
        for k in 0..300 {
            let pred = p.predict(&ctx(seq, 0x80));
            p.train(seq, 11);
            seq += 1;
            if pred.confident {
                until_confident = k;
                break;
            }
        }
        assert!(
            (1..=HISTORY_BITS as u64 + 4).contains(&until_confident),
            "B confident after {until_confident} occurrences (history warm-up only)"
        );
    }

    #[test]
    fn misprediction_breaks_the_pattern_not_the_world() {
        let mut p = SagLvp::with_defaults(1);
        let mut seq = 0;
        for _ in 0..300 {
            p.predict(&ctx(seq, 0x40));
            p.train(seq, 7);
            seq += 1;
        }
        // One glitch: the next few patterns contain a 0 bit, so confidence
        // is withheld until the history refills with hits.
        p.predict(&ctx(seq, 0x40));
        p.train(seq, 1000);
        seq += 1;
        let pred = p.predict(&ctx(seq, 0x40));
        assert!(!pred.confident, "post-glitch pattern must not be trusted");
        p.train(seq, 1000);
        seq += 1;
        // Recovery within a history length + warm-up.
        let mut recovered = false;
        for _ in 0..3 * HISTORY_BITS {
            let pred = p.predict(&ctx(seq, 0x40));
            p.train(seq, 1000);
            seq += 1;
            if pred.confident_value() == Some(1000) {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "confidence must recover after the history refills");
    }

    #[test]
    fn storage_includes_both_tables() {
        let p = SagLvp::with_defaults(1);
        let s = p.storage();
        assert_eq!(s.components().len(), 2);
        // 8192 × (51 + 64 + 8) bits + 256 × 4 bits.
        assert_eq!(s.total_bits(), 8192 * 123 + 256 * 4);
    }

    #[test]
    fn protocol_squash_safety() {
        let mut p = SagLvp::with_defaults(1);
        p.predict(&ctx(0, 0x40));
        p.predict(&ctx(1, 0x40));
        p.squash_after(0);
        p.train(0, 5);
        p.predict(&ctx(1, 0x40));
        p.train(1, 5);
    }
}
