//! A gDiff-style global-difference predictor stacked on VTAGE (extension).
//!
//! Zhou et al.'s gDiff (ISCA 2003) observes *global* stride locality: an
//! instruction's result often differs from the result of one of the last
//! few dynamic instructions by a stable delta. gDiff "can be added on top
//! of any other predictor, including the VTAGE predictor" (paper §2) — the
//! base predictor supplies the **speculative global value history** that
//! gDiff's lookups need at prediction time.
//!
//! This module implements that stack: [`GDiff`] keeps a global value
//! history (committed values plus the base predictor's speculative values
//! for in-flight µops) and a per-PC table of `(distance, delta)` pairs with
//! confidence. When the base predictor (VTAGE here) is confident it wins;
//! otherwise a confident gDiff entry predicts `GVH[distance] + delta`.

use crate::confidence::{ConfidenceScheme, Lfsr};
use crate::inflight::Inflight;
use crate::storage::{full_tag_bits, Storage, StorageComponent};
use crate::vtage::Vtage;
use crate::{PredictCtx, Prediction, Predictor};
use std::collections::VecDeque;

/// Depth of the global value history window.
const GVH_DEPTH: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u64,
    /// Last observed delta against each GVH distance.
    diffs: [u64; GVH_DEPTH],
    /// Chosen distance into the GVH (`GVH_DEPTH` = none chosen yet).
    dist: u8,
    /// Predicted delta at that distance.
    delta: u64,
    conf: u8,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    index: u32,
    tag: u64,
    /// gDiff's own prediction as made at fetch (over the speculative GVH).
    predicted: Option<u64>,
}

/// gDiff over VTAGE (see module docs).
///
/// # Examples
///
/// An instruction that always produces "the previous instruction's result
/// plus 3" is invisible to per-PC predictors but trivial for gDiff:
///
/// ```
/// use vpsim_core::{GDiff, Predictor, PredictCtx, ConfidenceScheme};
///
/// let mut p = GDiff::over_vtage(ConfidenceScheme::baseline(), 5);
/// let mut seq = 0;
/// let mut confident = 0;
/// let mut x = 1u64;
/// for _ in 0..60 {
///     // µop A produces a pseudo-random value…
///     x = x.wrapping_mul(25214903917).wrapping_add(11);
///     p.predict(&PredictCtx { seq, pc: 0x10, ..Default::default() });
///     p.train(seq, x);
///     seq += 1;
///     // …and µop B produces A's value + 3.
///     let pred = p.predict(&PredictCtx { seq, pc: 0x20, ..Default::default() });
///     if pred.confident_value() == Some(x.wrapping_add(3)) {
///         confident += 1;
///     }
///     p.train(seq, x.wrapping_add(3));
///     seq += 1;
/// }
/// assert!(confident > 20, "got {confident}");
/// ```
#[derive(Debug, Clone)]
pub struct GDiff {
    base: Vtage,
    entries: Vec<Entry>,
    index_bits: u32,
    scheme: ConfidenceScheme,
    lfsr: Lfsr,
    inflight: Inflight<Record>,
    /// Committed global value history, youngest at the front.
    committed_gvh: VecDeque<u64>,
    /// Speculative values of in-flight µops, oldest at the front:
    /// `(seq, value)`; `None` when no basis existed at prediction time.
    spec_gvh: VecDeque<(u64, Option<u64>)>,
}

impl GDiff {
    /// The default stack: 4K-entry gDiff table over a default VTAGE.
    pub fn over_vtage(scheme: ConfidenceScheme, seed: u64) -> Self {
        GDiff::new(4096, scheme, seed)
    }

    /// Create with `entries` gDiff entries (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, scheme: ConfidenceScheme, seed: u64) -> Self {
        assert!(entries.is_power_of_two());
        GDiff {
            base: Vtage::with_defaults(scheme.clone(), seed),
            entries: vec![Entry::default(); entries],
            index_bits: entries.trailing_zeros(),
            scheme,
            lfsr: Lfsr::new(seed ^ 0xABCD_EF01),
            inflight: Inflight::new(),
            committed_gvh: VecDeque::with_capacity(GVH_DEPTH + 1),
            spec_gvh: VecDeque::new(),
        }
    }

    fn index(&self, pc: u64) -> u32 {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as u32
    }

    fn tag(&self, pc: u64) -> u64 {
        pc >> (2 + self.index_bits)
    }

    /// The speculative GVH as seen at prediction time: youngest first,
    /// in-flight speculative values (where known) before committed ones.
    fn speculative_gvh(&self) -> [Option<u64>; GVH_DEPTH] {
        let mut out = [None; GVH_DEPTH];
        let mut i = 0;
        for &(_, v) in self.spec_gvh.iter().rev() {
            if i == GVH_DEPTH {
                return out;
            }
            out[i] = v;
            i += 1;
        }
        for &v in self.committed_gvh.iter() {
            if i == GVH_DEPTH {
                break;
            }
            out[i] = Some(v);
            i += 1;
        }
        out
    }

    /// The committed GVH, youngest first (used at train time).
    fn committed_gvh_arr(&self) -> [Option<u64>; GVH_DEPTH] {
        let mut out = [None; GVH_DEPTH];
        for (i, &v) in self.committed_gvh.iter().enumerate().take(GVH_DEPTH) {
            out[i] = Some(v);
        }
        out
    }
}

impl Predictor for GDiff {
    fn name(&self) -> &'static str {
        "gDiff-VTAGE"
    }

    fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
        let base_pred = self.base.predict(ctx);
        let index = self.index(ctx.pc);
        let tag = self.tag(ctx.pc);
        let e = &self.entries[index as usize];
        let gvh = self.speculative_gvh();
        let gdiff_pred = if e.valid
            && e.tag == tag
            && (e.dist as usize) < GVH_DEPTH
            && self.scheme.is_saturated(e.conf)
        {
            gvh[e.dist as usize].map(|v| v.wrapping_add(e.delta))
        } else {
            None
        };
        // Arbitration: the base predictor wins when confident; gDiff covers
        // what per-PC context cannot.
        let final_pred = match (base_pred.confident_value(), gdiff_pred) {
            (Some(v), _) => Prediction::of(v, true),
            (None, Some(v)) => Prediction::of(v, true),
            (None, None) => Prediction { value: base_pred.value, confident: false },
        };
        // The speculative GVH records our best guess for this µop's value
        // (the paper: another predictor provides the speculative history).
        self.spec_gvh.push_back((ctx.seq, final_pred.value));
        self.inflight.push(ctx.seq, Record { index, tag, predicted: gdiff_pred });
        final_pred
    }

    fn train(&mut self, seq: u64, actual: u64) {
        self.base.train(seq, actual);
        let rec = self.inflight.pop(seq);
        // Retire this µop from the speculative GVH into the committed one.
        // (It is the oldest in-flight record by the in-order protocol.)
        let gvh_before = self.committed_gvh_arr();
        while let Some(&(s, _)) = self.spec_gvh.front() {
            if s <= seq {
                self.spec_gvh.pop_front();
            } else {
                break;
            }
        }
        self.committed_gvh.push_front(actual);
        self.committed_gvh.truncate(GVH_DEPTH);

        let e = &mut self.entries[rec.index as usize];
        if e.valid && e.tag == rec.tag {
            // Confidence validates the prediction carried from fetch when
            // one was made (the speculative-GVH prediction is what the
            // pipeline would consume); otherwise the (dist, delta) pair is
            // checked against the committed history so entries can warm up.
            let chosen_ok = match rec.predicted {
                Some(p) => p == actual,
                None => {
                    (e.dist as usize) < GVH_DEPTH
                        && gvh_before[e.dist as usize].map(|v| v.wrapping_add(e.delta))
                            == Some(actual)
                }
            };
            if chosen_ok {
                e.conf = self.scheme.on_correct(e.conf, &mut self.lfsr);
            } else {
                e.conf = self.scheme.on_incorrect(e.conf);
                // Re-select: find a distance whose delta repeated.
                let mut new_choice = None;
                for (d, slot) in gvh_before.iter().enumerate() {
                    if let Some(v) = slot {
                        let nd = actual.wrapping_sub(*v);
                        if nd == e.diffs[d] {
                            new_choice = Some((d as u8, nd));
                            break;
                        }
                    }
                }
                if let Some((d, nd)) = new_choice {
                    e.dist = d;
                    e.delta = nd;
                }
            }
            // Record the fresh deltas for the next re-selection.
            for (d, slot) in gvh_before.iter().enumerate() {
                if let Some(v) = slot {
                    e.diffs[d] = actual.wrapping_sub(*v);
                }
            }
        } else {
            let mut diffs = [0u64; GVH_DEPTH];
            for d in 0..GVH_DEPTH {
                if let Some(v) = gvh_before[d] {
                    diffs[d] = actual.wrapping_sub(v);
                }
            }
            self.entries[rec.index as usize] = Entry {
                valid: true,
                tag: rec.tag,
                diffs,
                dist: GVH_DEPTH as u8,
                delta: 0,
                conf: 0,
            };
        }
    }

    fn squash_after(&mut self, seq: u64) {
        self.base.squash_after(seq);
        self.inflight.squash_after(seq);
        while matches!(self.spec_gvh.back(), Some(&(s, _)) if s > seq) {
            self.spec_gvh.pop_back();
        }
    }

    fn resolve(&mut self, seq: u64, pc: u64, actual: u64) {
        self.base.resolve(seq, pc, actual);
        if let Some(slot) = self.spec_gvh.iter_mut().find(|(s, _)| *s == seq) {
            slot.1 = Some(actual);
        }
    }

    fn storage(&self) -> Storage {
        // tag + 8 diffs (64b) + dist (4b) + delta (64b) + conf.
        let bits = full_tag_bits(self.entries.len())
            + 64 * GVH_DEPTH
            + 4
            + 64
            + self.scheme.bits_per_counter();
        self.base.storage().merge(Storage::from_components(vec![StorageComponent::new(
            "gDiff",
            self.entries.len(),
            bits,
        )]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seq: u64, pc: u64) -> PredictCtx {
        PredictCtx { seq, pc, ..Default::default() }
    }

    #[test]
    fn captures_cross_instruction_delta() {
        let mut p = GDiff::over_vtage(ConfidenceScheme::baseline(), 1);
        let mut seq = 0;
        let mut x = 7u64;
        let mut hits = 0;
        for _ in 0..80 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.predict(&ctx(seq, 0x100));
            p.train(seq, x);
            seq += 1;
            let want = x.wrapping_add(64);
            if p.predict(&ctx(seq, 0x200)).confident_value() == Some(want) {
                hits += 1;
            }
            p.train(seq, want);
            seq += 1;
        }
        assert!(hits > 30, "got {hits}");
    }

    #[test]
    fn base_vtage_still_covers_constants() {
        let mut p = GDiff::over_vtage(ConfidenceScheme::baseline(), 1);
        let mut seq = 0;
        for _ in 0..12 {
            p.predict(&ctx(seq, 0x40));
            p.train(seq, 42);
            seq += 1;
        }
        let pred = p.predict(&ctx(seq, 0x40));
        assert_eq!(pred.confident_value(), Some(42));
        p.train(seq, 42);
    }

    #[test]
    fn squash_rolls_back_speculative_gvh() {
        let mut p = GDiff::over_vtage(ConfidenceScheme::baseline(), 1);
        p.predict(&ctx(0, 0x10));
        p.predict(&ctx(1, 0x20));
        p.predict(&ctx(2, 0x30));
        p.squash_after(0);
        assert_eq!(p.spec_gvh.len(), 1);
        p.train(0, 5);
        assert!(p.spec_gvh.is_empty());
        assert_eq!(p.committed_gvh.front(), Some(&5));
    }

    #[test]
    fn storage_includes_base_and_table() {
        let p = GDiff::over_vtage(ConfidenceScheme::baseline(), 1);
        let v = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        assert!(p.storage().total_kb() > v.storage().total_kb());
    }

    #[test]
    fn gvh_depth_is_respected() {
        let mut p = GDiff::over_vtage(ConfidenceScheme::baseline(), 1);
        for s in 0..20 {
            p.predict(&ctx(s, 0x10 + 4 * s));
            p.train(s, s);
        }
        assert!(p.committed_gvh.len() <= GVH_DEPTH);
    }
}
