//! Confidence estimation: saturating counters and Forward Probabilistic
//! Counters (FPC), the paper's first contribution (§5).
//!
//! A value prediction is only injected into the pipeline when the entry's
//! confidence counter is *saturated*; counters are **reset on every
//! misprediction**. The baseline scheme is a plain 3-bit counter incremented
//! by one per correct prediction (accuracy ≈ 0.94–0.99, not enough to avoid
//! slowdowns under squash-at-commit). FPC keeps the 3-bit counter but makes
//! each forward transition fire only with a configured probability drawn
//! from an LFSR, mimicking a much wider counter: with the paper's vectors a
//! 3-bit FPC behaves like a 7-bit counter (squash-at-commit flavour) or a
//! 6-bit counter (selective-reissue flavour) at a fraction of the storage.

/// A 64-bit Galois LFSR used as the pseudo-random source for FPC
/// transitions, exactly as the paper suggests ("the used pseudo-random
/// generator is a simple Linear Feedback Shift Register").
///
/// Deterministic: the same seed yields the same sequence, which keeps whole
/// simulations reproducible.
///
/// # Examples
///
/// ```
/// use vpsim_core::confidence::Lfsr;
/// let mut a = Lfsr::new(42);
/// let mut b = Lfsr::new(42);
/// assert_eq!(a.next_value(), b.next_value());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr {
    state: u64,
}

impl Lfsr {
    /// Create from a seed; a zero seed is mapped to a fixed nonzero state
    /// (an all-zero LFSR would be stuck).
    ///
    /// The register is clocked 64 times at construction so that small seeds
    /// (whose low bits would otherwise start at zero) are fully mixed before
    /// the first [`Lfsr::chance`] draw.
    pub fn new(seed: u64) -> Self {
        let mut l = Lfsr { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } };
        for _ in 0..64 {
            l.next_value();
        }
        l
    }

    /// Advance and return the new state.
    ///
    /// Taps correspond to the maximal-length polynomial
    /// x⁶⁴ + x⁶³ + x⁶¹ + x⁶⁰ + 1.
    pub fn next_value(&mut self) -> u64 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= 0xD800_0000_0000_0000;
        }
        self.state
    }

    /// The raw register state, for checkpoint serialization.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild an LFSR from a previously captured [`Lfsr::state`] **without**
    /// the 64-step seed mixing `new` applies — the captured state is already
    /// mixed. A zero state (only producible by a corrupt checkpoint) is
    /// remapped to the same nonzero constant `new` uses so the register can
    /// never be stuck.
    pub fn from_state(state: u64) -> Self {
        Lfsr { state: if state == 0 { 0x9E37_79B9_7F4A_7C15 } else { state } }
    }

    /// `true` with probability `1 / 2^log2_denom`.
    ///
    /// `log2_denom == 0` always returns `true`.
    pub fn chance(&mut self, log2_denom: u8) -> bool {
        debug_assert!(log2_denom < 64);
        if log2_denom == 0 {
            return true;
        }
        let mask = (1u64 << log2_denom) - 1;
        // Consecutive Galois states are 1-bit shifts of each other and a
        // sparse seed keeps whole halves of the register at zero for dozens
        // of steps, so the raw state is a poor equidistributed source.
        // Run the state through a bijective finalizer (splitmix64's) before
        // drawing; hardware would instead tap scattered register positions.
        let mut z = self.next_value();
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z & mask == 0
    }
}

impl Default for Lfsr {
    fn default() -> Self {
        Lfsr::new(0xC0FF_EE00_5EED_1234)
    }
}

/// Confidence-counter update policy shared by all predictors.
///
/// Counters themselves are plain `u8` values stored inside predictor
/// entries; the scheme decides the saturation threshold and how a counter
/// moves on a correct prediction. On an incorrect prediction every scheme
/// resets the counter to zero (the paper's update automaton).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConfidenceScheme {
    /// A plain `bits`-wide saturating counter incremented by 1 per correct
    /// prediction. `Full { bits: 3 }` is the paper's baseline.
    Full {
        /// Counter width in bits (saturates at `2^bits - 1`).
        bits: u8,
    },
    /// Forward Probabilistic Counter: 3-bit counter whose transition from
    /// value `c` to `c+1` fires with probability `1 / 2^log2_probs[c]`.
    Fpc {
        /// Log₂ of the denominator for each of the 7 forward transitions.
        log2_probs: [u8; 7],
    },
}

impl ConfidenceScheme {
    /// The paper's baseline: 3-bit full counter.
    pub fn baseline() -> Self {
        ConfidenceScheme::Full { bits: 3 }
    }

    /// A `bits`-wide full counter (the paper also notes that simply using
    /// 6/7-bit counters reaches FPC-level accuracy at higher storage cost).
    pub fn full(bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width {bits} out of range");
        ConfidenceScheme::Full { bits }
    }

    /// FPC vector for **pipeline squashing at commit**:
    /// v = {1, 1/16, 1/16, 1/16, 1/16, 1/32, 1/32}, mimicking a 7-bit
    /// counter.
    pub fn fpc_squash() -> Self {
        ConfidenceScheme::Fpc { log2_probs: [0, 4, 4, 4, 4, 5, 5] }
    }

    /// FPC vector for **selective reissue**:
    /// v = {1, 1/8, 1/8, 1/8, 1/8, 1/16, 1/16}, mimicking a 6-bit counter.
    pub fn fpc_reissue() -> Self {
        ConfidenceScheme::Fpc { log2_probs: [0, 3, 3, 3, 3, 4, 4] }
    }

    /// A custom FPC vector (for the probability-sweep ablation).
    pub fn fpc(log2_probs: [u8; 7]) -> Self {
        ConfidenceScheme::Fpc { log2_probs }
    }

    /// Saturation threshold: predictions are used only at this value.
    pub fn max(&self) -> u8 {
        match self {
            ConfidenceScheme::Full { bits } => ((1u16 << bits) - 1) as u8,
            ConfidenceScheme::Fpc { .. } => 7,
        }
    }

    /// `true` if a counter at `value` allows the prediction to be used.
    pub fn is_saturated(&self, value: u8) -> bool {
        value >= self.max()
    }

    /// Counter value after a correct prediction.
    pub fn on_correct(&self, value: u8, lfsr: &mut Lfsr) -> u8 {
        match self {
            ConfidenceScheme::Full { .. } => value.saturating_add(1).min(self.max()),
            ConfidenceScheme::Fpc { log2_probs } => {
                if value >= 7 {
                    7
                } else if lfsr.chance(log2_probs[value as usize]) {
                    value + 1
                } else {
                    value
                }
            }
        }
    }

    /// Counter value after an incorrect prediction (always reset).
    pub fn on_incorrect(&self, _value: u8) -> u8 {
        0
    }

    /// Expected number of consecutive correct predictions needed to go from
    /// 0 to saturation (used by tests and the FPC-sweep ablation to compare
    /// against an equivalent full counter).
    pub fn expected_steps_to_saturation(&self) -> f64 {
        match self {
            ConfidenceScheme::Full { bits } => ((1u32 << bits) - 1) as f64,
            ConfidenceScheme::Fpc { log2_probs } => {
                log2_probs.iter().map(|&p| (1u64 << p) as f64).sum()
            }
        }
    }

    /// Storage bits per confidence counter.
    pub fn bits_per_counter(&self) -> usize {
        match self {
            ConfidenceScheme::Full { bits } => *bits as usize,
            ConfidenceScheme::Fpc { .. } => 3,
        }
    }
}

impl Default for ConfidenceScheme {
    fn default() -> Self {
        ConfidenceScheme::baseline()
    }
}

impl std::fmt::Display for ConfidenceScheme {
    /// Canonical text form, re-parseable by [`FromStr`](std::str::FromStr):
    /// `full{bits}` for full counters, `fpc-squash` / `fpc-reissue` for the
    /// paper's two vectors, and `fpc:p0.p1.….p6` (log₂ denominators,
    /// dot-separated) for any other vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_core::ConfidenceScheme;
    ///
    /// assert_eq!(ConfidenceScheme::baseline().to_string(), "full3");
    /// assert_eq!(ConfidenceScheme::fpc_squash().to_string(), "fpc-squash");
    /// assert_eq!(ConfidenceScheme::fpc([0, 1, 2, 3, 4, 5, 6]).to_string(), "fpc:0.1.2.3.4.5.6");
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfidenceScheme::Full { bits } => write!(f, "full{bits}"),
            s if *s == ConfidenceScheme::fpc_squash() => f.write_str("fpc-squash"),
            s if *s == ConfidenceScheme::fpc_reissue() => f.write_str("fpc-reissue"),
            ConfidenceScheme::Fpc { log2_probs } => {
                f.write_str("fpc:")?;
                for (i, p) in log2_probs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::str::FromStr for ConfidenceScheme {
    type Err = String;

    /// Parse the [`Display`](std::fmt::Display) form (case-insensitive).
    /// `baseline` is accepted as an alias for `full3`.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_core::ConfidenceScheme;
    ///
    /// let s: ConfidenceScheme = "fpc:0.3.3.3.3.4.4".parse().unwrap();
    /// assert_eq!(s, ConfidenceScheme::fpc_reissue());
    /// assert_eq!("baseline".parse::<ConfidenceScheme>().unwrap(), ConfidenceScheme::baseline());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        const USAGE: &str = "baseline | full1..full8 | fpc-squash | fpc-reissue | fpc:p0.p1.….p6";
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "baseline" => return Ok(ConfidenceScheme::baseline()),
            "fpc-squash" => return Ok(ConfidenceScheme::fpc_squash()),
            "fpc-reissue" => return Ok(ConfidenceScheme::fpc_reissue()),
            _ => {}
        }
        if let Some(bits) = lower.strip_prefix("full") {
            return match bits.parse::<u8>() {
                Ok(b) if (1..=8).contains(&b) => Ok(ConfidenceScheme::Full { bits: b }),
                _ => Err(format!("counter width {bits} out of range ({USAGE})")),
            };
        }
        if let Some(vector) = lower.strip_prefix("fpc:") {
            let probs: Vec<u8> = vector
                .split('.')
                .map(|p| {
                    p.parse::<u8>()
                        .ok()
                        .filter(|&v| v < 64)
                        .ok_or_else(|| format!("bad FPC probability {p} (log₂ denominator 0..63)"))
                })
                .collect::<Result<_, _>>()?;
            let probs: [u8; 7] = probs
                .try_into()
                .map_err(|v: Vec<u8>| format!("FPC vector needs 7 entries, got {}", v.len()))?;
            return Ok(ConfidenceScheme::Fpc { log2_probs: probs });
        }
        Err(format!("unknown confidence scheme {s} ({USAGE})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_is_deterministic_and_nontrivial() {
        let mut a = Lfsr::new(7);
        let mut b = Lfsr::new(7);
        let seq_a: Vec<u64> = (0..32).map(|_| a.next_value()).collect();
        let seq_b: Vec<u64> = (0..32).map(|_| b.next_value()).collect();
        assert_eq!(seq_a, seq_b);
        // Not constant.
        assert!(seq_a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn lfsr_zero_seed_is_remapped() {
        let mut z = Lfsr::new(0);
        assert_ne!(z.next_value(), 0);
    }

    #[test]
    fn lfsr_state_round_trip_resumes_the_sequence() {
        let mut a = Lfsr::new(0x2014);
        for _ in 0..100 {
            a.next_value();
        }
        let mut b = Lfsr::from_state(a.state());
        assert_eq!(a, b);
        // from_state must not re-apply the construction-time mixing.
        let next: Vec<u64> = (0..32).map(|_| a.next_value()).collect();
        let resumed: Vec<u64> = (0..32).map(|_| b.next_value()).collect();
        assert_eq!(next, resumed);
        // A corrupt zero state still yields a live register.
        assert_ne!(Lfsr::from_state(0).next_value(), 0);
    }

    #[test]
    fn lfsr_has_long_period() {
        let mut l = Lfsr::new(1);
        let first = l.next_value();
        // The state must not return to the initial value within 1M steps.
        for _ in 0..1_000_000 {
            if l.next_value() == first {
                panic!("LFSR period too short");
            }
        }
    }

    #[test]
    fn chance_zero_log2_is_always_true() {
        let mut l = Lfsr::new(3);
        for _ in 0..100 {
            assert!(l.chance(0));
        }
    }

    #[test]
    fn chance_probability_is_approximately_correct() {
        let mut l = Lfsr::new(123);
        let n = 100_000;
        let hits = (0..n).filter(|_| l.chance(4)).count();
        let expected = n / 16;
        // Allow 20 % slack around 1/16.
        assert!(
            hits > expected * 8 / 10 && hits < expected * 12 / 10,
            "got {hits}, expected ≈{expected}"
        );
    }

    #[test]
    fn full_counter_saturates_and_resets() {
        let s = ConfidenceScheme::baseline();
        let mut l = Lfsr::default();
        let mut c = 0u8;
        for _ in 0..7 {
            assert!(!s.is_saturated(c));
            c = s.on_correct(c, &mut l);
        }
        assert_eq!(c, 7);
        assert!(s.is_saturated(c));
        c = s.on_correct(c, &mut l);
        assert_eq!(c, 7, "saturating");
        assert_eq!(s.on_incorrect(c), 0);
    }

    #[test]
    fn paper_fpc_vectors_mimic_wide_counters() {
        // Squash vector ≈ 7-bit counter (127 steps): 1+4·16+2·32 = 129.
        assert_eq!(ConfidenceScheme::fpc_squash().expected_steps_to_saturation(), 129.0);
        // Reissue vector ≈ 6-bit counter (63 steps): 1+4·8+2·16 = 65.
        assert_eq!(ConfidenceScheme::fpc_reissue().expected_steps_to_saturation(), 65.0);
        assert_eq!(ConfidenceScheme::full(7).expected_steps_to_saturation(), 127.0);
        assert_eq!(ConfidenceScheme::full(6).expected_steps_to_saturation(), 63.0);
    }

    #[test]
    fn fpc_first_transition_is_certain() {
        let s = ConfidenceScheme::fpc_squash();
        let mut l = Lfsr::new(99);
        for _ in 0..50 {
            assert_eq!(s.on_correct(0, &mut l), 1);
        }
    }

    #[test]
    fn fpc_saturation_threshold_is_seven() {
        let s = ConfidenceScheme::fpc_squash();
        assert_eq!(s.max(), 7);
        assert!(s.is_saturated(7));
        assert!(!s.is_saturated(6));
        let mut l = Lfsr::new(5);
        assert_eq!(s.on_correct(7, &mut l), 7);
    }

    #[test]
    fn fpc_empirical_saturation_cost_matches_expectation() {
        let s = ConfidenceScheme::fpc_squash();
        let mut l = Lfsr::new(2024);
        let trials = 2_000;
        let mut total_steps = 0u64;
        for _ in 0..trials {
            let mut c = 0u8;
            let mut steps = 0u64;
            while !s.is_saturated(c) {
                c = s.on_correct(c, &mut l);
                steps += 1;
            }
            total_steps += steps;
        }
        let mean = total_steps as f64 / trials as f64;
        let expected = s.expected_steps_to_saturation();
        assert!((mean - expected).abs() / expected < 0.15, "mean {mean} vs expected {expected}");
    }

    #[test]
    fn counter_storage_width() {
        assert_eq!(ConfidenceScheme::baseline().bits_per_counter(), 3);
        assert_eq!(ConfidenceScheme::fpc_squash().bits_per_counter(), 3);
        assert_eq!(ConfidenceScheme::full(7).bits_per_counter(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_counter_rejected() {
        let _ = ConfidenceScheme::full(0);
    }

    #[test]
    fn scheme_text_round_trips() {
        for scheme in [
            ConfidenceScheme::baseline(),
            ConfidenceScheme::full(1),
            ConfidenceScheme::full(8),
            ConfidenceScheme::fpc_squash(),
            ConfidenceScheme::fpc_reissue(),
            ConfidenceScheme::fpc([0, 1, 2, 3, 4, 5, 6]),
            ConfidenceScheme::fpc([7, 7, 7, 7, 7, 7, 7]),
        ] {
            let text = scheme.to_string();
            assert_eq!(text.parse::<ConfidenceScheme>().unwrap(), scheme, "{text}");
        }
    }

    #[test]
    fn scheme_parse_rejects_malformed_input() {
        assert!("".parse::<ConfidenceScheme>().is_err());
        assert!("full0".parse::<ConfidenceScheme>().is_err());
        assert!("full9".parse::<ConfidenceScheme>().is_err());
        assert!("fpc".parse::<ConfidenceScheme>().is_err(), "bare fpc needs a recovery context");
        assert!("fpc:1.2.3".parse::<ConfidenceScheme>().is_err(), "short vector");
        assert!("fpc:1.2.3.4.5.6.7.8".parse::<ConfidenceScheme>().is_err(), "long vector");
        assert!("fpc:1.2.3.4.5.6.64".parse::<ConfidenceScheme>().is_err(), "denominator bound");
    }
}
