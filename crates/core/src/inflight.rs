//! In-flight prediction bookkeeping shared by all predictors.
//!
//! Hardware value predictors carry per-prediction metadata (indices, tags,
//! provider component) in the instruction's payload from fetch to commit.
//! [`Inflight`] models exactly that: a seq-ordered queue pushed at predict
//! time, popped in order at train (commit) time, and truncated from the back
//! on squashes.
//!
//! [`SpecWindow`] models the *speculative last-occurrence tracking* that
//! stride- and FCM-style predictors require (§3.2 of the paper: "one has to
//! track the last (possibly speculative) occurrence of each instruction") —
//! precisely the complexity VTAGE avoids.

use std::collections::{HashMap, VecDeque};

/// Seq-ordered in-flight metadata queue.
///
/// Invariants (checked with assertions):
/// * pushes occur with strictly increasing `seq`;
/// * pops occur in push order with matching `seq`;
/// * `squash_after(s)` drops every record with `seq > s`.
#[derive(Debug, Clone, Default)]
pub struct Inflight<T> {
    queue: VecDeque<(u64, T)>,
}

impl<T> Inflight<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Inflight { queue: VecDeque::new() }
    }

    /// Record metadata for the prediction of dynamic instruction `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not strictly greater than the newest record —
    /// predictions must be made in fetch order.
    pub fn push(&mut self, seq: u64, value: T) {
        if let Some(&(back, _)) = self.queue.back() {
            assert!(seq > back, "out-of-order predict: {seq} after {back}");
        }
        self.queue.push_back((seq, value));
    }

    /// Pop the record for `seq`, which must be the oldest one (commits are
    /// in order).
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or the front record is not `seq` —
    /// this catches pipeline/predictor protocol violations early.
    pub fn pop(&mut self, seq: u64) -> T {
        let (front, value) = self
            .queue
            .pop_front()
            .unwrap_or_else(|| panic!("train({seq}) with no in-flight prediction"));
        assert_eq!(front, seq, "train({seq}) but oldest in-flight is {front}");
        value
    }

    /// Drop all records younger than `seq` (exclusive) — called on squash.
    pub fn squash_after(&mut self, seq: u64) {
        while matches!(self.queue.back(), Some(&(s, _)) if s > seq) {
            self.queue.pop_back();
        }
    }

    /// Number of in-flight records.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Per-PC speculative value window.
///
/// Tracks, for each static instruction, the values *predicted* for its
/// not-yet-committed dynamic occurrences, youngest last. `latest` returns
/// the youngest — the "speculative last occurrence" a stride predictor adds
/// its stride to; `recent` returns up to `n` youngest for FCM-style
/// speculative value histories.
///
/// Entries retire when the corresponding instruction commits and are
/// discarded wholesale on squash.
#[derive(Debug, Clone, Default)]
pub struct SpecWindow {
    by_pc: HashMap<u64, VecDeque<(u64, u64)>>,
    log: VecDeque<(u64, u64)>, // (seq, pc) in push order
}

impl SpecWindow {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the speculative value for occurrence `seq` of instruction `pc`.
    pub fn push(&mut self, seq: u64, pc: u64, value: u64) {
        if let Some(&(back, _)) = self.log.back() {
            assert!(seq > back, "out-of-order speculative push");
        }
        self.by_pc.entry(pc).or_default().push_back((seq, value));
        self.log.push_back((seq, pc));
    }

    /// Replace the speculative value already recorded for `seq` at `pc`
    /// (used by hybrids to substitute the arbitrated prediction for a
    /// component's own — the paper feeds VTAGE's confident prediction to the
    /// stride component as its next last value).
    ///
    /// Does nothing if no record exists for that `(seq, pc)`.
    pub fn replace(&mut self, seq: u64, pc: u64, value: u64) {
        if let Some(q) = self.by_pc.get_mut(&pc) {
            if let Some(slot) = q.iter_mut().rev().find(|(s, _)| *s == seq) {
                slot.1 = value;
            }
        }
    }

    /// The youngest speculative value for `pc`, if any occurrence is in
    /// flight.
    pub fn latest(&self, pc: u64) -> Option<u64> {
        self.by_pc.get(&pc).and_then(|q| q.back()).map(|&(_, v)| v)
    }

    /// Execute-time chain repair: set the value recorded for `(seq, pc)`
    /// **and every younger in-flight record of `pc`** to `value`. Younger
    /// records were chained off the now-known-wrong value, so they are
    /// stale too; re-anchoring them at the computed result bounds the
    /// misprediction cascade a tight loop suffers after one wrong
    /// prediction (the paper's §7.2.1 discussion). Does nothing if no
    /// record exists for `(seq, pc)`.
    pub fn correct_from(&mut self, seq: u64, pc: u64, value: u64) {
        self.correct_chain(seq, pc, value, 0);
    }

    /// Execute-time chain repair for *stride* chains: the record for
    /// `(seq, pc)` becomes `base`, and each younger in-flight record of
    /// `pc` becomes `base + k·step` (k-th younger) — exactly what the
    /// chained adder produces when re-seeded with the computed result.
    /// Does nothing if no record exists for `(seq, pc)`.
    pub fn correct_chain(&mut self, seq: u64, pc: u64, base: u64, step: u64) {
        if let Some(q) = self.by_pc.get_mut(&pc) {
            if let Some(start) = q.iter().position(|&(s, _)| s == seq) {
                let mut v = base;
                for slot in q.iter_mut().skip(start) {
                    slot.1 = v;
                    v = v.wrapping_add(step);
                }
            }
        }
    }

    /// Up to `n` youngest speculative values for `pc`, **youngest first**.
    pub fn recent(&self, pc: u64, n: usize) -> Vec<u64> {
        self.recent_iter(pc, n).collect()
    }

    /// Allocation-free variant of [`SpecWindow::recent`] for per-predict
    /// hot paths.
    pub fn recent_iter(&self, pc: u64, n: usize) -> impl Iterator<Item = u64> + '_ {
        self.by_pc.get(&pc).into_iter().flat_map(move |q| q.iter().rev().take(n).map(|&(_, v)| v))
    }

    /// Retire every record with `seq <= upto` (their instructions have
    /// committed; the committed values now live in predictor tables).
    pub fn retire_upto(&mut self, upto: u64) {
        while matches!(self.log.front(), Some(&(s, _)) if s <= upto) {
            let (seq, pc) = self.log.pop_front().expect("front checked");
            let q = self.by_pc.get_mut(&pc).expect("log/by_pc in sync");
            let (front_seq, _) = q.pop_front().expect("log/by_pc in sync");
            debug_assert_eq!(front_seq, seq);
            // Emptied queues stay cached: the same static instruction will
            // predict again, and dropping the entry would re-pay the hash
            // insert and the queue's heap allocation every occurrence.
        }
    }

    /// Drop every record with `seq > seq` — called on squash.
    pub fn squash_after(&mut self, seq: u64) {
        while matches!(self.log.back(), Some(&(s, _)) if s > seq) {
            let (s, pc) = self.log.pop_back().expect("back checked");
            let q = self.by_pc.get_mut(&pc).expect("log/by_pc in sync");
            let (back_seq, _) = q.pop_back().expect("log/by_pc in sync");
            debug_assert_eq!(back_seq, s);
        }
    }

    /// Number of in-flight records.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// `true` if no speculative values are tracked.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_push_pop_in_order() {
        let mut q = Inflight::new();
        q.push(1, "a");
        q.push(2, "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(1), "a");
        assert_eq!(q.pop(2), "b");
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "out-of-order predict")]
    fn inflight_rejects_out_of_order_push() {
        let mut q = Inflight::new();
        q.push(5, ());
        q.push(5, ());
    }

    #[test]
    #[should_panic(expected = "oldest in-flight")]
    fn inflight_rejects_skipped_pop() {
        let mut q = Inflight::new();
        q.push(1, ());
        q.push(2, ());
        q.pop(2);
    }

    #[test]
    #[should_panic(expected = "no in-flight")]
    fn inflight_rejects_pop_when_empty() {
        let mut q: Inflight<()> = Inflight::new();
        q.pop(0);
    }

    #[test]
    fn inflight_squash_drops_young_suffix() {
        let mut q = Inflight::new();
        for s in 0..10 {
            q.push(s, s);
        }
        q.squash_after(4);
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop(0), 0);
        // New pushes after squash resume from any seq > 4.
        let mut q2 = Inflight::new();
        q2.push(10, ());
        q2.squash_after(3);
        assert!(q2.is_empty());
        q2.push(4, ());
        assert_eq!(q2.len(), 1);
    }

    #[test]
    fn spec_window_latest_and_recent() {
        let mut w = SpecWindow::new();
        w.push(1, 0x10, 100);
        w.push(2, 0x20, 555);
        w.push(3, 0x10, 101);
        w.push(4, 0x10, 102);
        assert_eq!(w.latest(0x10), Some(102));
        assert_eq!(w.latest(0x20), Some(555));
        assert_eq!(w.latest(0x30), None);
        assert_eq!(w.recent(0x10, 2), vec![102, 101]);
        assert_eq!(w.recent(0x10, 10), vec![102, 101, 100]);
        assert_eq!(w.recent(0x30, 4), Vec::<u64>::new());
    }

    #[test]
    fn spec_window_retire_removes_old_records() {
        let mut w = SpecWindow::new();
        w.push(1, 0x10, 100);
        w.push(2, 0x10, 101);
        w.push(3, 0x20, 7);
        w.retire_upto(2);
        assert_eq!(w.len(), 1);
        assert_eq!(w.latest(0x10), None);
        assert_eq!(w.latest(0x20), Some(7));
    }

    #[test]
    fn spec_window_squash_removes_young_records() {
        let mut w = SpecWindow::new();
        w.push(1, 0x10, 100);
        w.push(2, 0x10, 101);
        w.push(3, 0x20, 7);
        w.squash_after(1);
        assert_eq!(w.latest(0x10), Some(100));
        assert_eq!(w.latest(0x20), None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn spec_window_replace_updates_specific_record() {
        let mut w = SpecWindow::new();
        w.push(1, 0x10, 100);
        w.push(2, 0x10, 101);
        w.replace(2, 0x10, 999);
        assert_eq!(w.latest(0x10), Some(999));
        w.replace(1, 0x10, 888);
        assert_eq!(w.recent(0x10, 2), vec![999, 888]);
        // Replacing a nonexistent record is a no-op.
        w.replace(5, 0x10, 1);
        w.replace(1, 0x99, 1);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn spec_window_retire_then_squash_round_trip() {
        let mut w = SpecWindow::new();
        for s in 0..20 {
            w.push(s, (s % 4) * 8, s * 10);
        }
        w.retire_upto(9);
        w.squash_after(14);
        assert_eq!(w.len(), 5); // seqs 10..=14
        assert!(w.latest(0).is_some() || w.latest(8).is_some());
        w.retire_upto(u64::MAX);
        assert!(w.is_empty());
    }
}
