//! Two-component hybrid predictors (paper §7.1.2).
//!
//! The paper's arbitration is deliberately simple: *"If only one component
//! predicts (i.e. has high confidence), its prediction is naturally
//! selected. When both predictors predict and if they do not agree, no
//! prediction is made. If they agree, the prediction proceeds."*
//!
//! Hybrids also cross-feed speculative state: the arbitrated prediction of
//! the hybrid is substituted as a component's "last speculative occurrence"
//! (*"use the last prediction of VTAGE as the next last value for 2D-Stride
//! if VTAGE is confident"*). Components expose that hook through
//! [`SpeculativeFeed`].

use crate::confidence::ConfidenceScheme;
use crate::fcm::Fcm;
use crate::storage::Storage;
use crate::stride::TwoDeltaStride;
use crate::vtage::Vtage;
use crate::{PredictCtx, Prediction, Predictor};

/// Hook for substituting a component's speculative last-occurrence value
/// with the hybrid's arbitrated prediction.
///
/// Predictors whose lookups do not depend on previous values of the same
/// instruction (VTAGE, LVP) implement this as a no-op.
pub trait SpeculativeFeed {
    /// Replace the speculative value recorded for occurrence `seq` of
    /// instruction `pc` with `value`.
    fn feed(&mut self, seq: u64, pc: u64, value: u64);
}

impl SpeculativeFeed for Vtage {
    fn feed(&mut self, _seq: u64, _pc: u64, _value: u64) {}
}

impl SpeculativeFeed for crate::lvp::Lvp {
    fn feed(&mut self, _seq: u64, _pc: u64, _value: u64) {}
}

/// Arbitration policy between the two components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arbitration {
    /// The paper's §7.1.2 policy: one confident component wins; two
    /// confident components must *agree* or no prediction is made.
    #[default]
    Agreement,
    /// Priority scheme: when both components are confident, the first
    /// component's prediction is used even if they disagree — trades the
    /// agreement filter's accuracy for coverage (the paper's pointer to
    /// Rychlik-style dynamic selection motivates measuring this).
    PreferFirst,
}

/// A two-component symmetric hybrid.
///
/// Both components always predict and are always trained (the paper updates
/// all components with the committed value at retire). Arbitration follows
/// §7.1.2 by default (see [`Arbitration`]); after arbitration the final
/// confident prediction is fed back to both components' speculative
/// windows.
///
/// # Examples
///
/// ```
/// use vpsim_core::{Hybrid, Predictor, PredictCtx, ConfidenceScheme};
///
/// let mut p = Hybrid::vtage_stride(ConfidenceScheme::baseline(), 42);
/// // Strided values: the stride component learns them even though VTAGE
/// // sees an ever-changing value per history.
/// let mut last = None;
/// for seq in 0..40 {
///     let ctx = PredictCtx { seq, pc: 0x20, ..Default::default() };
///     last = p.predict(&ctx).confident_value();
///     p.train(seq, seq * 8);
/// }
/// assert_eq!(last, Some(39 * 8));
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid<A, B> {
    a: A,
    b: B,
    name: &'static str,
    arbitration: Arbitration,
}

impl Hybrid<Vtage, TwoDeltaStride> {
    /// The paper's headline hybrid: VTAGE + 2D-Stride.
    pub fn vtage_stride(scheme: ConfidenceScheme, seed: u64) -> Self {
        Hybrid {
            a: Vtage::with_defaults(scheme.clone(), seed),
            b: TwoDeltaStride::with_defaults(scheme, seed.wrapping_add(0x9E37_79B9)),
            name: "VTAGE-2DStr",
            arbitration: Arbitration::Agreement,
        }
    }
}

impl Hybrid<Fcm, TwoDeltaStride> {
    /// The baseline hybrid: o4-FCM + 2D-Stride.
    pub fn fcm_stride(scheme: ConfidenceScheme, seed: u64) -> Self {
        Hybrid {
            a: Fcm::with_defaults(scheme.clone(), seed),
            b: TwoDeltaStride::with_defaults(scheme, seed.wrapping_add(0x9E37_79B9)),
            name: "o4-FCM-2DStr",
            arbitration: Arbitration::Agreement,
        }
    }
}

impl<A, B> Hybrid<A, B>
where
    A: Predictor + SpeculativeFeed,
    B: Predictor + SpeculativeFeed,
{
    /// Build a hybrid from two arbitrary components.
    pub fn from_components(a: A, b: B, name: &'static str) -> Self {
        Hybrid { a, b, name, arbitration: Arbitration::Agreement }
    }

    /// Change the arbitration policy (builder-style).
    pub fn with_arbitration(mut self, arbitration: Arbitration) -> Self {
        self.arbitration = arbitration;
        self
    }

    /// Access the first component (for inspection in tests/ablations).
    pub fn first(&self) -> &A {
        &self.a
    }

    /// Access the second component.
    pub fn second(&self) -> &B {
        &self.b
    }
}

impl<A, B> Predictor for Hybrid<A, B>
where
    A: Predictor + SpeculativeFeed,
    B: Predictor + SpeculativeFeed,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn predict(&mut self, ctx: &PredictCtx) -> Prediction {
        let pa = self.a.predict(ctx);
        let pb = self.b.predict(ctx);
        let arbitrated = match (pa.confident_value(), pb.confident_value()) {
            (Some(va), Some(vb)) if va == vb => Prediction::of(va, true),
            // Both confident but in disagreement: policy decides (§7.1.2
            // makes no prediction; PreferFirst backs the first component).
            (Some(va), Some(_)) => match self.arbitration {
                Arbitration::Agreement => Prediction::none(),
                Arbitration::PreferFirst => Prediction::of(va, true),
            },
            (Some(va), None) => Prediction::of(va, true),
            (None, Some(vb)) => Prediction::of(vb, true),
            // Neither confident: surface a value for statistics only.
            (None, None) => Prediction { value: pa.value.or(pb.value), confident: false },
        };
        if let Some(v) = arbitrated.confident_value() {
            // Cross-feed the arbitrated value as both components' speculative
            // last occurrence.
            self.a.feed(ctx.seq, ctx.pc, v);
            self.b.feed(ctx.seq, ctx.pc, v);
        }
        arbitrated
    }

    fn train(&mut self, seq: u64, actual: u64) {
        self.a.train(seq, actual);
        self.b.train(seq, actual);
    }

    fn squash_after(&mut self, seq: u64) {
        self.a.squash_after(seq);
        self.b.squash_after(seq);
    }

    fn resolve(&mut self, seq: u64, pc: u64, actual: u64) {
        self.a.resolve(seq, pc, actual);
        self.b.resolve(seq, pc, actual);
    }

    fn storage(&self) -> Storage {
        self.a.storage().merge(self.b.storage())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lvp::Lvp;
    use crate::stride::TwoDeltaStride;

    fn ctx(seq: u64, pc: u64) -> PredictCtx {
        PredictCtx { seq, pc, ..Default::default() }
    }

    fn lvp_stride_hybrid() -> Hybrid<Lvp, TwoDeltaStride> {
        Hybrid::from_components(
            Lvp::with_defaults(ConfidenceScheme::baseline(), 1),
            TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 2),
            "LVP-2DStr",
        )
    }

    #[test]
    fn single_confident_component_wins() {
        let mut h = lvp_stride_hybrid();
        // Strided values: stride becomes confident, LVP never does.
        let mut seq = 0;
        for k in 0..12u64 {
            h.predict(&ctx(seq, 0x40));
            h.train(seq, 100 + k * 8);
            seq += 1;
        }
        let pred = h.predict(&ctx(seq, 0x40));
        assert_eq!(pred.confident_value(), Some(100 + 12 * 8));
        h.train(seq, 100 + 12 * 8);
    }

    #[test]
    fn agreement_predicts_constant() {
        let mut h = lvp_stride_hybrid();
        // Constant value: both LVP (value) and stride (stride 0) agree.
        let mut seq = 0;
        for _ in 0..12 {
            h.predict(&ctx(seq, 0x40));
            h.train(seq, 77);
            seq += 1;
        }
        let pred = h.predict(&ctx(seq, 0x40));
        assert_eq!(pred.confident_value(), Some(77));
        h.train(seq, 77);
    }

    #[test]
    fn disagreement_suppresses_prediction() {
        // Force disagreement by constructing confident-but-conflicting
        // components: LVP sees alternation restart while stride continues.
        // Simpler: train both confident on a constant, then mutate via a
        // direct scenario — alternate-free check below uses the arbitration
        // truth table directly through a crafted value pattern:
        // 0,0,0,…,0 then 8,16,24… keeps stride confident at delta 8 while
        // LVP confidence rebuilds on the *changing* values and stays low →
        // hybrid follows stride. We assert the hybrid never emits a
        // confident prediction that matches *neither* component.
        let mut h = lvp_stride_hybrid();
        let mut seq = 0;
        for _ in 0..12 {
            h.predict(&ctx(seq, 0x40));
            h.train(seq, 0);
            seq += 1;
        }
        for k in 1..=12u64 {
            let pred = h.predict(&ctx(seq, 0x40));
            if let Some(v) = pred.confident_value() {
                // Must equal one of the plausible component outputs.
                assert!(v == 0 || v % 8 == 0, "arbitrated value {v} is neither component's");
            }
            h.train(seq, k * 8);
            seq += 1;
        }
    }

    #[test]
    fn hybrid_coverage_exceeds_components_on_mixed_workload() {
        // PC A produces strided values (stride-predictable), PC B produces a
        // constant (LVP-predictable). The hybrid must confidently predict
        // both; each lone component only its own.
        let mut h = lvp_stride_hybrid();
        let mut lvp = Lvp::with_defaults(ConfidenceScheme::baseline(), 1);
        let mut stride = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 2);
        let mut seq = 0;
        for k in 0..16u64 {
            for (pc, val) in [(0x40u64, 100 + k * 4), (0x80u64, 5u64)] {
                h.predict(&ctx(seq, pc));
                h.train(seq, val);
                lvp.predict(&ctx(seq, pc));
                lvp.train(seq, val);
                stride.predict(&ctx(seq, pc));
                stride.train(seq, val);
                seq += 1;
            }
        }
        let h_a = h.predict(&ctx(seq, 0x40)).confident_value();
        let l_a = lvp.predict(&ctx(seq, 0x40)).confident_value();
        let s_a = stride.predict(&ctx(seq, 0x40)).confident_value();
        h.train(seq, 100 + 16 * 4);
        lvp.train(seq, 100 + 16 * 4);
        stride.train(seq, 100 + 16 * 4);
        seq += 1;
        let h_b = h.predict(&ctx(seq, 0x80)).confident_value();
        let l_b = lvp.predict(&ctx(seq, 0x80)).confident_value();
        let s_b = stride.predict(&ctx(seq, 0x80)).confident_value();
        h.train(seq, 5);
        lvp.train(seq, 5);
        stride.train(seq, 5);

        assert_eq!(h_a, Some(100 + 16 * 4), "hybrid covers strided PC");
        assert_eq!(h_b, Some(5), "hybrid covers constant PC");
        assert_eq!(l_a, None, "LVP cannot predict the strided PC");
        assert_eq!(s_a, Some(100 + 16 * 4));
        assert_eq!(l_b, Some(5));
        assert_eq!(s_b, Some(5), "stride predicts constants too (stride 0)");
    }

    #[test]
    fn squash_propagates_to_both_components() {
        let mut h = lvp_stride_hybrid();
        h.predict(&ctx(0, 0x40));
        h.predict(&ctx(1, 0x40));
        h.squash_after(0);
        h.train(0, 9);
        // Re-issue of seq 1 must work (would panic on stale in-flight state).
        h.predict(&ctx(1, 0x40));
        h.train(1, 9);
    }

    #[test]
    fn storage_is_sum_of_components() {
        let h = Hybrid::vtage_stride(ConfidenceScheme::baseline(), 1);
        let v = Vtage::with_defaults(ConfidenceScheme::baseline(), 1);
        let s = TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 1);
        let total = h.storage().total_kb();
        let parts = v.storage().total_kb() + s.storage().total_kb();
        assert!((total - parts).abs() < 1e-9);
    }

    #[test]
    fn prefer_first_resolves_disagreements_toward_component_a() {
        // Construct a disagreement: LVP confident on a stale constant while
        // stride (fed a final value) disagrees. Easier: drive both
        // components confident with conflicting beliefs using a value
        // switch from constant to strided.
        let mk = |arb| {
            Hybrid::from_components(
                Lvp::with_defaults(ConfidenceScheme::baseline(), 1),
                TwoDeltaStride::with_defaults(ConfidenceScheme::baseline(), 2),
                "LVP-2DStr",
            )
            .with_arbitration(arb)
        };
        for arb in [Arbitration::Agreement, Arbitration::PreferFirst] {
            let mut h = mk(arb);
            let mut seq = 0;
            // Constant phase: both confident on 100.
            for _ in 0..12 {
                h.predict(&ctx(seq, 0x40));
                h.train(seq, 100);
                seq += 1;
            }
            // Strided phase begins: stride learns +8; LVP keeps predicting
            // the last constant — disagreement once both re-saturate.
            let mut disagreement_outputs = Vec::new();
            for k in 1..=80u64 {
                let pred = h.predict(&ctx(seq, 0x40));
                if let Some(v) = pred.confident_value() {
                    disagreement_outputs.push(v);
                }
                h.train(seq, 100 + k * 8);
                seq += 1;
            }
            match arb {
                Arbitration::Agreement => {
                    // Any confident output must match one component's view;
                    // pure disagreements were suppressed.
                }
                Arbitration::PreferFirst => {
                    // The policy must emit *something* even when the
                    // components conflict (higher coverage than agreement).
                    assert!(!disagreement_outputs.is_empty());
                }
            }
        }
    }

    #[test]
    fn paper_hybrids_have_expected_names() {
        assert_eq!(Hybrid::vtage_stride(ConfidenceScheme::baseline(), 1).name(), "VTAGE-2DStr");
        assert_eq!(Hybrid::fcm_stride(ConfidenceScheme::baseline(), 1).name(), "o4-FCM-2DStr");
    }
}
