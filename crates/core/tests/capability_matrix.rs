//! The predictor capability matrix: which predictor family captures which
//! canonical value stream (Sazeides & Smith's taxonomy, paper §2). These
//! tests pin the qualitative behavior that drives Figures 4–7.

use vpsim_core::{ConfidenceScheme, HistoryState, PredictCtx, PredictorKind};

/// Feed `occurrences` of a stream to a fresh predictor; return the
/// confident-and-correct fraction over the second half (steady state).
fn steady_coverage(
    kind: PredictorKind,
    occurrences: u64,
    mut stream: impl FnMut(u64) -> (u64, bool),
) -> f64 {
    let mut p = kind.build(ConfidenceScheme::baseline(), 17);
    let mut hist = HistoryState::default();
    let (mut good, mut total) = (0u64, 0u64);
    for k in 0..occurrences {
        let (value, taken) = stream(k);
        let ctx = PredictCtx { seq: k, pc: 0x40, hist, actual: None };
        let guess = p.predict(&ctx).confident_value();
        if k >= occurrences / 2 {
            total += 1;
            if guess == Some(value) {
                good += 1;
            }
        }
        p.train(k, value);
        hist.push_branch(0x80, taken);
    }
    good as f64 / total as f64
}

const N: u64 = 2_000;

fn constant(_k: u64) -> (u64, bool) {
    (42, true)
}

fn strided(k: u64) -> (u64, bool) {
    (1_000 + 24 * k, true)
}

fn period4(k: u64) -> (u64, bool) {
    ([11u64, 22, 7, 99][(k % 4) as usize], true)
}

fn branch_dependent(k: u64) -> (u64, bool) {
    let taken = (k / 3).is_multiple_of(2);
    (if taken { 500 } else { 900 }, taken)
}

#[test]
fn every_paper_predictor_captures_constants() {
    for kind in PredictorKind::PAPER_SET {
        let c = steady_coverage(kind, N, constant);
        assert!(c > 0.95, "{kind:?} on constants: {c}");
    }
}

#[test]
fn only_computational_predictors_capture_strides() {
    assert!(steady_coverage(PredictorKind::TwoDeltaStride, N, strided) > 0.95);
    assert!(steady_coverage(PredictorKind::PerPathStride, N, strided) > 0.95);
    assert!(steady_coverage(PredictorKind::DFcm4, N, strided) > 0.9, "D-FCM learns deltas");
    assert!(
        steady_coverage(PredictorKind::Lvp, N, strided) < 0.05,
        "LVP cannot predict a changing value"
    );
    assert!(
        steady_coverage(PredictorKind::Vtage, N, strided) < 0.25,
        "VTAGE has no value arithmetic (paper §6: strides cost it entries)"
    );
}

#[test]
fn context_predictors_capture_short_patterns() {
    assert!(steady_coverage(PredictorKind::Fcm4, N, period4) > 0.9, "FCM's home turf");
    assert!(steady_coverage(PredictorKind::Lvp, N, period4) < 0.05, "LVP sees a changing value");
    assert!(
        steady_coverage(PredictorKind::TwoDeltaStride, N, period4) < 0.05,
        "no constant stride exists"
    );
}

#[test]
fn only_vtage_class_captures_branch_correlated_values() {
    assert!(
        steady_coverage(PredictorKind::Vtage, N, branch_dependent) > 0.8,
        "control-flow correlation is VTAGE's contribution"
    );
    assert!(
        steady_coverage(PredictorKind::GDiffVtage, N, branch_dependent) > 0.8,
        "the gDiff stack inherits VTAGE's capability"
    );
    assert!(steady_coverage(PredictorKind::Lvp, N, branch_dependent) < 0.05);
    assert!(steady_coverage(PredictorKind::TwoDeltaStride, N, branch_dependent) < 0.05);
}

#[test]
fn hybrids_cover_the_union_of_their_components() {
    for stream in [constant as fn(u64) -> (u64, bool), strided, branch_dependent] {
        let hybrid = steady_coverage(PredictorKind::VtageStride, N, stream);
        assert!(hybrid > 0.8, "VTAGE+2D-Stride must capture all three streams: {hybrid}");
    }
}

#[test]
fn nobody_captures_chaos_but_nobody_lies_about_it() {
    // On an LCG stream, coverage must be ~0 — and whatever few confident
    // predictions slip through must not be counted correct (they cannot
    // be, the values never repeat).
    let mut x = 9u64;
    for kind in PredictorKind::PAPER_SET {
        let c = steady_coverage(kind, N, |_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x, x & 1 == 0)
        });
        assert!(c < 0.02, "{kind:?} claims to predict chaos: {c}");
    }
}

#[test]
fn oracle_captures_everything_given_the_actual() {
    let mut p = PredictorKind::Oracle.build(ConfidenceScheme::baseline(), 0);
    for k in 0..100u64 {
        let v = k.wrapping_mul(0x9E37_79B9);
        let ctx = PredictCtx { seq: k, pc: 0x40, hist: HistoryState::default(), actual: Some(v) };
        assert_eq!(p.predict(&ctx).confident_value(), Some(v));
        p.train(k, v);
    }
}
