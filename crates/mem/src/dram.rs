//! DDR3-1600 (11-11-11) main-memory timing model (paper Table 2).
//!
//! Single channel, 2 ranks × 8 banks, 8 KB row buffers, 64 B data bus.
//! With a 4 GHz core and an 800 MHz DRAM command clock, one DRAM cycle is
//! 5 CPU cycles, so CL = tRCD = tRP = 11 DRAM cycles = 55 CPU cycles and a
//! burst transfer is ~20 CPU cycles. The resulting latencies reproduce the
//! paper's numbers: **75 CPU cycles** for a row-buffer hit (CL + burst),
//! 130 for a closed row (tRCD + CL + burst) and **185** for a row conflict
//! (tRP + tRCD + CL + burst). Refresh (tREFI 7.8 µs) is not modeled; its
//! steady-state impact is ≈1 % of bandwidth (see "Model simplifications"
//! in `ARCHITECTURE.md`).

/// DDR3 timing parameters, in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// CAS latency (CL) in CPU cycles.
    pub cl: u64,
    /// RAS-to-CAS delay (tRCD) in CPU cycles.
    pub trcd: u64,
    /// Row precharge (tRP) in CPU cycles.
    pub trp: u64,
    /// Data burst transfer time in CPU cycles.
    pub burst: u64,
    /// Number of ranks.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row buffer size in bytes.
    pub row_bytes: u64,
}

impl Default for DramConfig {
    /// DDR3-1600 11-11-11 at a 4 GHz core: 1 DRAM cycle = 5 CPU cycles.
    fn default() -> Self {
        DramConfig {
            cl: 55,
            trcd: 55,
            trp: 55,
            burst: 20,
            ranks: 2,
            banks_per_rank: 8,
            row_bytes: 8 * 1024,
        }
    }
}

impl DramConfig {
    /// Minimum (row-hit) latency: CL + burst = 75 CPU cycles.
    pub fn min_latency(&self) -> u64 {
        self.cl + self.burst
    }

    /// Maximum (row-conflict) latency before queueing: tRP + tRCD + CL +
    /// burst = 185 CPU cycles.
    pub fn max_latency(&self) -> u64 {
        self.trp + self.trcd + self.cl + self.burst
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// Bank-and-row-aware DRAM timing model.
///
/// # Examples
///
/// ```
/// use vpsim_mem::{Dram, DramConfig};
/// let mut d = Dram::new(DramConfig::default());
/// let first = d.access(0x10_0000, 0); // closed bank: tRCD + CL + burst
/// assert_eq!(first, 130);
/// let second = d.access(0x10_0040, first); // same row: CL + burst
/// assert_eq!(second - first, 75);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
}

impl Dram {
    /// Create with the given timing parameters.
    pub fn new(config: DramConfig) -> Self {
        let n = config.ranks * config.banks_per_rank;
        Dram { config, banks: vec![Bank::default(); n] }
    }

    /// The timing parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn map(&self, addr: u64) -> (usize, u64) {
        // Row-interleaved bank mapping: consecutive rows rotate banks so
        // streaming accesses keep their row-buffer locality but spread load.
        let row_global = addr / self.config.row_bytes;
        let bank = (row_global as usize) % self.banks.len();
        let row = row_global / self.banks.len() as u64;
        (bank, row)
    }

    /// Issue a read for `addr` at CPU cycle `now`; returns the cycle the
    /// critical word is delivered. Requests to a busy bank queue behind it.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        let (bank_idx, row) = self.map(addr);
        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.busy_until);
        let c = &self.config;
        let latency = match bank.open_row {
            Some(open) if open == row => c.cl + c.burst,
            Some(_) => c.trp + c.trcd + c.cl + c.burst,
            None => c.trcd + c.cl + c.burst,
        };
        let done = start + latency;
        bank.open_row = Some(row);
        // The bank is occupied until slightly before data completes (the
        // burst overlaps the next command's lead-in). Expressed as service
        // time from `start`, not a clamp on `done`: every latency includes
        // a full burst, so the occupancy is always positive and a request
        // at cycle 0 holds the bank exactly as long as one at any other
        // epoch.
        bank.busy_until = start + (latency - c.burst / 2);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latency_bounds() {
        let c = DramConfig::default();
        assert_eq!(c.min_latency(), 75);
        assert_eq!(c.max_latency(), 185);
    }

    #[test]
    fn closed_open_conflict_sequence() {
        let mut d = Dram::new(DramConfig::default());
        // Closed bank.
        let t1 = d.access(0, 0);
        assert_eq!(t1, 130);
        // Row hit in the same row.
        let t2 = d.access(64, 200);
        assert_eq!(t2 - 200, 75);
        // Conflict: same bank, different row. With 16 banks and
        // row-interleaving, the same bank repeats every 16 rows.
        let conflict_addr = 16 * 8 * 1024;
        let t3 = d.access(conflict_addr, 400);
        assert_eq!(t3 - 400, 185);
    }

    #[test]
    fn busy_bank_queues_requests() {
        let mut d = Dram::new(DramConfig::default());
        let t1 = d.access(0, 0);
        // Back-to-back same-row request at cycle 0 must wait for the bank.
        let t2 = d.access(64, 0);
        assert!(t2 > t1 - 20, "second access queues behind the first");
    }

    #[test]
    fn back_to_back_occupancy_is_exact_even_at_cycle_zero() {
        let c = DramConfig::default();
        let mut d = Dram::new(c);
        // Closed-bank activate at cycle 0: data at tRCD + CL + burst = 130,
        // bank occupied for the full service time minus the burst overlap
        // (130 - 10 = 120) — the cycle-0 epoch gets no discount.
        let t1 = d.access(0, 0);
        assert_eq!(t1, 130);
        // Same-row follow-up issued immediately: starts when the bank
        // frees at 120, row hit costs 75 → data at 195.
        let t2 = d.access(64, 0);
        assert_eq!(t2, 195);
        // The same pair shifted to a late epoch sees identical spacing.
        let mut d2 = Dram::new(c);
        let base = 1_000_000;
        let u1 = d2.access(0, base);
        let u2 = d2.access(64, base);
        assert_eq!(u1 - base, t1);
        assert_eq!(u2 - base, t2, "occupancy must be epoch-invariant");
    }

    #[test]
    fn different_banks_proceed_in_parallel() {
        let mut d = Dram::new(DramConfig::default());
        let t1 = d.access(0, 0);
        // Next row maps to the next bank: no queueing.
        let t2 = d.access(8 * 1024, 0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn unloaded_latencies_stay_within_paper_bounds() {
        let mut d = Dram::new(DramConfig::default());
        let mut now = 0;
        let mut x = 123456789u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = x % (1 << 30);
            let done = d.access(addr, now);
            let latency = done - now;
            assert!((75..=185).contains(&latency), "latency {latency}");
            // Issue slower than worst-case service: banks never queue.
            now = done + 200;
        }
    }

    #[test]
    fn saturated_banks_queue_but_remain_bounded_per_request() {
        // Arrivals far above service rate: queueing delay grows, but each
        // individual service time stays within min..max once started.
        let mut d = Dram::new(DramConfig::default());
        let mut now = 0;
        let mut last_done = 0u64;
        for k in 0..200u64 {
            let addr = (k * 8 * 1024) % (1 << 26); // rotate banks
            let done = d.access(addr, now);
            assert!(done >= now + 75);
            last_done = last_done.max(done);
            now += 7;
        }
        assert!(last_done > 200 * 7, "saturation must back pressure");
    }
}
