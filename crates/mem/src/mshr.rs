//! Miss Status Holding Registers: outstanding-miss tracking with merge.
//!
//! Paper Table 2 gives both L1D and L2 64 MSHRs. Requests to a line that is
//! already outstanding merge into the existing entry (they complete when
//! the first fill returns); when all MSHRs are busy a new miss must wait
//! for the earliest completion.

use std::collections::HashMap;

/// A finite file of miss status holding registers.
///
/// # Examples
///
/// ```
/// use vpsim_mem::MshrFile;
/// let mut mshr = MshrFile::new(2);
/// // A new miss at cycle 10 completing at cycle 100:
/// assert_eq!(mshr.lookup(0x40), None);
/// mshr.allocate(0x40, 100);
/// // A second access to the same line merges:
/// assert_eq!(mshr.lookup(0x40), Some(100));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    outstanding: HashMap<u64, u64>, // line addr -> fill cycle
}

impl MshrFile {
    /// Create a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MshrFile { capacity, outstanding: HashMap::with_capacity(capacity) }
    }

    /// Drop entries whose fill has completed by `now`.
    pub fn expire(&mut self, now: u64) {
        self.outstanding.retain(|_, &mut ready| ready > now);
    }

    /// Fill cycle of an outstanding miss on `line_addr`, if any (merge).
    pub fn lookup(&self, line_addr: u64) -> Option<u64> {
        self.outstanding.get(&line_addr).copied()
    }

    /// `true` if a new miss can allocate right now.
    pub fn has_free(&self) -> bool {
        self.outstanding.len() < self.capacity
    }

    /// The earliest completion among outstanding misses (when a full file
    /// frees up), or `None` if empty.
    pub fn earliest_completion(&self) -> Option<u64> {
        self.outstanding.values().copied().min()
    }

    /// Record a new outstanding miss completing at `fill_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or the line is already outstanding —
    /// callers must check [`MshrFile::has_free`] / [`MshrFile::lookup`].
    pub fn allocate(&mut self, line_addr: u64, fill_cycle: u64) {
        assert!(self.has_free(), "MSHR file full");
        let prev = self.outstanding.insert(line_addr, fill_cycle);
        assert!(prev.is_none(), "line already outstanding");
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.outstanding.len()
    }

    /// `true` if no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.outstanding.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_expire_cycle() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 50);
        assert_eq!(m.lookup(0x40), Some(50));
        m.expire(49);
        assert_eq!(m.lookup(0x40), Some(50), "not yet complete");
        m.expire(50);
        assert_eq!(m.lookup(0x40), None, "completed at 50");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = MshrFile::new(2);
        m.allocate(0, 10);
        m.allocate(64, 20);
        assert!(!m.has_free());
        assert_eq!(m.earliest_completion(), Some(10));
        m.expire(10);
        assert!(m.has_free());
        m.allocate(128, 30);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "MSHR file full")]
    fn over_allocation_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(0, 10);
        m.allocate(64, 20);
    }

    #[test]
    #[should_panic(expected = "already outstanding")]
    fn double_allocation_panics() {
        let mut m = MshrFile::new(2);
        m.allocate(0, 10);
        m.allocate(0, 20);
    }

    #[test]
    fn empty_file_reports_no_completion() {
        let m = MshrFile::new(2);
        assert!(m.is_empty());
        assert_eq!(m.earliest_completion(), None);
    }
}
