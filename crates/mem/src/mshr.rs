//! Miss Status Holding Registers: outstanding-miss tracking with merge.
//!
//! Paper Table 2 gives both L1D and L2 64 MSHRs. Requests to a line that is
//! already outstanding merge into the existing entry (they complete when
//! the first fill returns); when all MSHRs are busy a new miss must wait
//! for the earliest completion.
//!
//! The file is an [`EventSet`] of in-flight fills: expiry is O(1) while no
//! fill is due (the watermark equals the earliest completion), membership
//! and merge queries walk the same small flat list the completions are
//! scheduled in, and — unlike the `HashMap` this replaces — the steady
//! state never rehashes or allocates.

use vpsim_event::{EventSet, Timed};

/// One outstanding miss: the line being filled and its completion cycle.
#[derive(Debug, Clone, Copy)]
struct Miss {
    line: u64,
    ready: u64,
}

impl Timed for Miss {
    fn due_at(&self) -> u64 {
        self.ready
    }
}

/// A finite file of miss status holding registers.
///
/// # Examples
///
/// ```
/// use vpsim_mem::MshrFile;
/// let mut mshr = MshrFile::new(2);
/// // A new miss at cycle 10 completing at cycle 100:
/// assert_eq!(mshr.lookup(0x40), None);
/// mshr.allocate(0x40, 100);
/// // A second access to the same line merges:
/// assert_eq!(mshr.lookup(0x40), Some(100));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    outstanding: EventSet<Miss>,
}

impl MshrFile {
    /// Create a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MshrFile { capacity, outstanding: EventSet::with_capacity(capacity) }
    }

    /// Drop entries whose fill has completed by `now`. O(1) while the
    /// earliest outstanding fill is still in the future.
    pub fn expire(&mut self, now: u64) {
        self.outstanding.expire(now);
    }

    /// Fill cycle of an outstanding miss on `line_addr`, if any (merge).
    pub fn lookup(&self, line_addr: u64) -> Option<u64> {
        self.outstanding.iter().find(|m| m.line == line_addr).map(|m| m.ready)
    }

    /// `true` if a new miss can allocate right now.
    pub fn has_free(&self) -> bool {
        self.outstanding.len() < self.capacity
    }

    /// The earliest completion among outstanding misses (when a full file
    /// frees up), or `None` if empty.
    pub fn earliest_completion(&self) -> Option<u64> {
        self.outstanding.next_due()
    }

    /// Record a new outstanding miss completing at `fill_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or the line is already outstanding —
    /// callers must check [`MshrFile::has_free`] / [`MshrFile::lookup`].
    pub fn allocate(&mut self, line_addr: u64, fill_cycle: u64) {
        assert!(self.has_free(), "MSHR file full");
        assert!(self.lookup(line_addr).is_none(), "line already outstanding");
        self.outstanding.push(Miss { line: line_addr, ready: fill_cycle });
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.outstanding.len()
    }

    /// `true` if no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.outstanding.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_expire_cycle() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 50);
        assert_eq!(m.lookup(0x40), Some(50));
        m.expire(49);
        assert_eq!(m.lookup(0x40), Some(50), "not yet complete");
        m.expire(50);
        assert_eq!(m.lookup(0x40), None, "completed at 50");
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = MshrFile::new(2);
        m.allocate(0, 10);
        m.allocate(64, 20);
        assert!(!m.has_free());
        assert_eq!(m.earliest_completion(), Some(10));
        m.expire(10);
        assert!(m.has_free());
        m.allocate(128, 30);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "MSHR file full")]
    fn over_allocation_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(0, 10);
        m.allocate(64, 20);
    }

    #[test]
    #[should_panic(expected = "already outstanding")]
    fn double_allocation_panics() {
        let mut m = MshrFile::new(2);
        m.allocate(0, 10);
        m.allocate(0, 20);
    }

    #[test]
    fn empty_file_reports_no_completion() {
        let m = MshrFile::new(2);
        assert!(m.is_empty());
        assert_eq!(m.earliest_completion(), None);
    }

    #[test]
    fn merged_lines_expire_together_and_watermark_tracks_the_min() {
        let mut m = MshrFile::new(3);
        m.allocate(0x00, 90);
        m.allocate(0x40, 30);
        m.allocate(0x80, 50);
        assert_eq!(m.earliest_completion(), Some(30));
        m.expire(30);
        assert_eq!(m.lookup(0x40), None);
        assert_eq!(m.earliest_completion(), Some(50), "min recomputed after expiry");
        assert_eq!(m.len(), 2);
    }
}
