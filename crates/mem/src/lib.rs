//! Memory hierarchy substrate for vpsim: set-associative caches, MSHRs,
//! an L2 stride prefetcher, and a DDR3-1600 bank/row timing model —
//! everything the paper's Table 2 configuration specifies below the core.
//!
//! | Level | Paper (Table 2) | This crate |
//! |---|---|---|
//! | L1I | 4-way 32 KB | [`CacheConfig::l1i`] |
//! | L1D | 4-way 32 KB, 2 cycles, 64 MSHRs, 4 load ports | [`CacheConfig::l1d`] + [`MshrFile`] (ports enforced by the core) |
//! | L2 | 16-way 2 MB, 12 cycles, stride prefetcher degree 8 distance 1 | [`CacheConfig::l2`] + [`StridePrefetcher`] |
//! | DRAM | DDR3-1600 11-11-11, 2 ranks, 8 banks, 8 K rows, min 75 / max 185 cycles | [`Dram`] |
//!
//! The composed [`MemoryHierarchy`] exposes three timed operations —
//! [`MemoryHierarchy::fetch_inst`], [`MemoryHierarchy::load`] and
//! [`MemoryHierarchy::store`] — that map a `(address, cycle)` pair to the
//! data-ready cycle. In-flight fills live on the shared event core
//! (`vpsim-event`): each [`MshrFile`] is a watermark-gated event set, so
//! a query cycle with nothing due costs a single comparison and idle
//! state costs no work at all.
//!
//! # Examples
//!
//! ```
//! use vpsim_mem::{MemoryHierarchy, MemoryConfig};
//!
//! let mut mem = MemoryHierarchy::new(MemoryConfig::default());
//! let r1 = mem.load(0x40, 0xA000, 0);      // cold: DRAM
//! let r2 = mem.load(0x40, 0xA008, r1 + 1); // same line: L1 hit
//! assert!(r1 > 100);
//! assert_eq!(r2 - (r1 + 1), 2);
//! ```

mod cache;
mod dram;
mod hierarchy;
mod mshr;
mod prefetch;

pub use cache::{AccessResult, Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{MemoryConfig, MemoryHierarchy};
pub use mshr::MshrFile;
pub use prefetch::{PrefetchBatch, StridePrefetcher};
