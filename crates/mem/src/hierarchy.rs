//! The composed memory hierarchy: L1I + L1D + unified L2 + DRAM, with
//! MSHR-based miss merging and an L2 stride prefetcher (paper Table 2).
//!
//! Timing model: the hierarchy is queried with a CPU cycle `now` and
//! returns the cycle at which the data is available. Cache state (LRU,
//! fills) is updated eagerly at request time while the returned timing
//! respects the miss latency — in-flight lines are tracked in the MSHR
//! files, so requests to a line still in flight complete when the original
//! fill does, never earlier. `now` must be non-decreasing across calls
//! (the cycle-driven core guarantees this).

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::mshr::MshrFile;
use crate::prefetch::StridePrefetcher;
use std::collections::HashSet;
use vpsim_core::state::{StateReader, StateWriter};
use vpsim_stats::CacheStats;

/// Full hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1D MSHR count (Table 2: 64).
    pub l1d_mshrs: usize,
    /// L2 MSHR count (Table 2: 64).
    pub l2_mshrs: usize,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Enable the L2 stride prefetcher (degree 8, distance 1).
    pub prefetch: bool,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            l1d_mshrs: 64,
            l2_mshrs: 64,
            dram: DramConfig::default(),
            prefetch: true,
        }
    }
}

/// The memory hierarchy (see module docs).
///
/// # Examples
///
/// ```
/// use vpsim_mem::{MemoryHierarchy, MemoryConfig};
/// let mut m = MemoryHierarchy::new(MemoryConfig::default());
/// let cold = m.load(0x40, 0x10_0000, 0);
/// assert!(cold >= 130, "cold load goes to DRAM, got {cold}");
/// let warm = m.load(0x40, 0x10_0000, cold + 1);
/// assert_eq!(warm - (cold + 1), 2, "warm load hits L1D");
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l1d_mshr: MshrFile,
    l2_mshr: MshrFile,
    prefetcher: Option<StridePrefetcher>,
    /// L2 lines whose in-flight miss was initiated by the prefetcher; a
    /// demand merging into one counts the prefetch as useful (late but
    /// latency-reducing).
    inflight_prefetch: HashSet<u64>,
    /// Line of the previous instruction fetch, valid only while it is
    /// known resident in L1I: sequential fetches short-circuit the lookup.
    last_inst_line: Option<u64>,
    dram: Dram,
    /// L1I statistics.
    pub l1i_stats: CacheStats,
    /// L1D statistics.
    pub l1d_stats: CacheStats,
    /// L2 statistics (prefetch counters live here).
    pub l2_stats: CacheStats,
}

impl MemoryHierarchy {
    /// Build the hierarchy.
    pub fn new(config: MemoryConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l1d_mshr: MshrFile::new(config.l1d_mshrs),
            l2_mshr: MshrFile::new(config.l2_mshrs),
            prefetcher: config.prefetch.then(StridePrefetcher::with_defaults),
            inflight_prefetch: HashSet::new(),
            last_inst_line: None,
            dram: Dram::new(config.dram),
            l1i_stats: CacheStats::default(),
            l1d_stats: CacheStats::default(),
            l2_stats: CacheStats::default(),
        }
    }

    /// Instruction fetch of the line containing `pc` at cycle `now`;
    /// returns the cycle the line is available.
    pub fn fetch_inst(&mut self, pc: u64, now: u64) -> u64 {
        self.l1i_stats.accesses += 1;
        // Same-line fast path: the previous fetch touched (or filled) this
        // line, so it is resident and already most-recently-used — a full
        // lookup would change nothing but its own top LRU stamp, which
        // cannot alter any future eviction decision. L1I state only ever
        // changes inside this function, so the cached line stays valid
        // across calls.
        if self.last_inst_line == Some(self.l1i.line_addr(pc)) {
            return now + self.l1i.config().latency;
        }
        if self.l1i.access(pc, false).hit {
            self.last_inst_line = Some(self.l1i.line_addr(pc));
            return now + self.l1i.config().latency;
        }
        self.l1i_stats.misses += 1;
        let line = self.l2.line_addr(pc);
        let ready = self.l2_request(pc, line, now);
        self.l1i.fill(line, false);
        self.last_inst_line = Some(self.l1i.line_addr(pc));
        ready
    }

    /// Data load issued by instruction `pc` to `addr` at cycle `now`.
    pub fn load(&mut self, pc: u64, addr: u64, now: u64) -> u64 {
        self.data_access(pc, addr, now, false)
    }

    /// Data store issued by instruction `pc` to `addr` at cycle `now`
    /// (write-allocate; returns the fill-complete cycle, which the store
    /// buffer hides from the pipeline).
    pub fn store(&mut self, pc: u64, addr: u64, now: u64) -> u64 {
        self.data_access(pc, addr, now, true)
    }

    fn data_access(&mut self, pc: u64, addr: u64, now: u64, is_write: bool) -> u64 {
        self.l1d_mshr.expire(now);
        self.l1d_stats.accesses += 1;
        let line = self.l1d.line_addr(addr);
        // A line still in flight completes with the original miss.
        if let Some(ready) = self.l1d_mshr.lookup(line) {
            self.l1d_stats.misses += 1;
            return ready;
        }
        if self.l1d.access(addr, is_write).hit {
            return now + self.l1d.config().latency;
        }
        self.l1d_stats.misses += 1;
        let mut ready = self.l2_request(pc, line, now);
        if !self.l1d_mshr.has_free() {
            // All MSHRs busy: back-pressure the miss behind the earliest
            // completion. A full file always holds at least one entry
            // (capacity is non-zero), but degrade to a one-cycle retry
            // rather than panicking if that invariant ever breaks.
            let freed = self.l1d_mshr.earliest_completion().unwrap_or(now + 1);
            self.l1d_mshr.expire(freed);
            ready = ready.max(freed);
        }
        self.l1d_mshr.allocate(line, ready);
        self.l1d.fill(line, false);
        if is_write {
            self.l1d.access(addr, true); // mark dirty after allocate
        }
        ready
    }

    /// L2-level request for `line` (from either L1) at cycle `now`.
    fn l2_request(&mut self, pc: u64, line: u64, now: u64) -> u64 {
        self.l2_mshr.expire(now);
        self.l2_stats.accesses += 1;
        let l2_lat = self.l2.config().latency;
        let ready = if let Some(r) = self.l2_mshr.lookup(line) {
            self.l2_stats.misses += 1;
            if self.inflight_prefetch.remove(&line) {
                self.l2_stats.useful_prefetches += 1;
            }
            r
        } else {
            let res = self.l2.access(line, false);
            if res.hit {
                if res.prefetch_hit {
                    self.l2_stats.useful_prefetches += 1;
                    self.inflight_prefetch.remove(&line);
                }
                now + l2_lat
            } else {
                self.l2_stats.misses += 1;
                let mut r = self.dram.access(line, now + l2_lat);
                if !self.l2_mshr.has_free() {
                    // Same back-pressure discipline as the L1D file.
                    let freed = self.l2_mshr.earliest_completion().unwrap_or(now + 1);
                    self.l2_mshr.expire(freed);
                    r = r.max(freed);
                }
                self.l2_mshr.allocate(line, r);
                self.l2.fill(line, false);
                r
            }
        };
        // Train the prefetcher on the demand L2 access stream.
        if let Some(pf) = self.prefetcher.as_mut() {
            let targets = pf.train(pc, line);
            for t in targets {
                self.issue_prefetch(t, now);
            }
        }
        ready
    }

    /// Functional-only instruction-fetch warming: touch L1I (and fill
    /// through L2 on a miss) without timing, MSHRs, DRAM, the prefetcher,
    /// or statistics. Used by the sampling fast-forward path to keep cache
    /// contents (tags, LRU, dirty bits) tracking the µop stream at a
    /// fraction of the detailed-model cost.
    pub fn warm_fetch(&mut self, pc: u64) {
        // Same-line fast path, shared with `fetch_inst`: L1I state only
        // changes in these two functions and both leave the memoized line
        // resident and most-recently-used, so skipping the lookup cannot
        // alter any future eviction decision on either path.
        if self.last_inst_line == Some(self.l1i.line_addr(pc)) {
            return;
        }
        if !self.l1i.access(pc, false).hit {
            let line = self.l2.line_addr(pc);
            if !self.l2.access(line, false).hit {
                self.l2.fill(line, false);
            }
            self.l1i.fill(line, false);
        }
        self.last_inst_line = Some(self.l1i.line_addr(pc));
    }

    /// Functional-only load warming (see [`MemoryHierarchy::warm_fetch`]).
    pub fn warm_load(&mut self, addr: u64) {
        self.warm_data(addr, false);
    }

    /// Functional-only store warming: write-allocates and marks the line
    /// dirty (see [`MemoryHierarchy::warm_fetch`]).
    pub fn warm_store(&mut self, addr: u64) {
        self.warm_data(addr, true);
    }

    fn warm_data(&mut self, addr: u64, is_write: bool) {
        if !self.l1d.access(addr, is_write).hit {
            let line = self.l2.line_addr(addr);
            if !self.l2.access(line, false).hit {
                self.l2.fill(line, false);
            }
            self.l1d.fill(line, false);
            if is_write {
                self.l1d.access(addr, true);
            }
        }
    }

    /// Serialize the warmable state — the three caches' lines and LRU
    /// clocks — for a sampling checkpoint. Transient timing state (MSHRs,
    /// DRAM bank/row state, prefetcher strides, fetch fast-path memo) is
    /// deliberately excluded: it drains within tens of cycles and is
    /// re-established by the detailed warmup inside each interval.
    pub fn save_warm_state(&self, w: &mut StateWriter) {
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l2.save_state(w);
    }

    /// Restore state captured by [`MemoryHierarchy::save_warm_state`] into
    /// a hierarchy of the same geometry.
    pub fn load_warm_state(&mut self, r: &mut StateReader) -> Result<(), String> {
        self.l1i.load_state(r)?;
        self.l1d.load_state(r)?;
        self.l2.load_state(r)?;
        self.last_inst_line = None;
        Ok(())
    }

    fn issue_prefetch(&mut self, addr: u64, now: u64) {
        let line = self.l2.line_addr(addr);
        if self.l2.probe(line) || self.l2_mshr.lookup(line).is_some() {
            return;
        }
        // Prefetches are dropped when no MSHR is free (no demand blocking).
        if !self.l2_mshr.has_free() {
            return;
        }
        self.l2_stats.prefetches += 1;
        let done = self.dram.access(line, now + self.l2.config().latency);
        self.l2_mshr.allocate(line, done);
        self.inflight_prefetch.insert(line);
        self.l2.fill(line, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(MemoryConfig::default())
    }

    #[test]
    fn cold_load_pays_dram_latency() {
        let mut m = hierarchy();
        let ready = m.load(0x40, 0x100000, 0);
        assert!(ready >= 12 + 75, "got {ready}");
        assert_eq!(m.l1d_stats.misses, 1);
        assert_eq!(m.l2_stats.misses, 1);
    }

    #[test]
    fn l1_hit_costs_two_cycles() {
        let mut m = hierarchy();
        let fill = m.load(0x40, 0x100000, 0);
        let hit = m.load(0x40, 0x100000, fill);
        assert_eq!(hit - fill, 2);
        assert_eq!(m.l1d_stats.misses, 1);
    }

    #[test]
    fn l2_hit_costs_twelve_cycles() {
        let mut m = hierarchy();
        let fill = m.load(0x40, 0x100000, 0);
        // Evict from L1D by filling 5 conflicting lines (4-way, 128 sets →
        // stride 128 × 64 B = 8 KB).
        let mut t = fill + 1;
        for k in 1..=5u64 {
            t = m.load(0x40, 0x100000 + k * 8192, t) + 1;
        }
        let l2_hit = m.load(0x40, 0x100000, t);
        assert_eq!(l2_hit - t, 12, "L2 hit after L1 eviction");
    }

    #[test]
    fn inflight_misses_merge_in_mshr() {
        let mut m = hierarchy();
        let first = m.load(0x40, 0x200000, 0);
        // Second access to the same line while the miss is outstanding.
        let second = m.load(0x44, 0x200008, 1);
        assert_eq!(second, first, "merged miss completes with the original");
        assert_eq!(m.l2_stats.misses, 1, "only one L2 miss");
    }

    #[test]
    fn streaming_accesses_trigger_useful_prefetches() {
        let mut m = hierarchy();
        let mut now = 0;
        // Stream over 40 consecutive lines from one load PC.
        let mut full_latency_misses = 0;
        for k in 0..40u64 {
            let ready = m.load(0x40, 0x400000 + k * 64, now);
            // ≥130 cycles means the access paid the whole closed-row DRAM
            // path itself; merged-into-prefetch accesses come back sooner.
            if ready - now >= 130 {
                full_latency_misses += 1;
            }
            now = ready + 1;
        }
        assert!(m.l2_stats.prefetches > 10, "prefetches {}", m.l2_stats.prefetches);
        assert!(m.l2_stats.useful_prefetches > 5, "useful {}", m.l2_stats.useful_prefetches);
        // The tail of the stream must ride on prefetches, not raw DRAM.
        assert!(full_latency_misses < 10, "full-latency misses {full_latency_misses}");
    }

    #[test]
    fn prefetching_can_be_disabled() {
        let mut m = MemoryHierarchy::new(MemoryConfig { prefetch: false, ..Default::default() });
        let mut now = 0;
        for k in 0..20u64 {
            now = m.load(0x40, 0x400000 + k * 64, now) + 1;
        }
        assert_eq!(m.l2_stats.prefetches, 0);
    }

    #[test]
    fn instruction_fetches_fill_l1i() {
        let mut m = hierarchy();
        let cold = m.fetch_inst(0x1000, 0);
        assert!(cold > 12);
        assert_eq!(m.l1i_stats.misses, 1);
        let warm = m.fetch_inst(0x1000, cold);
        assert_eq!(warm - cold, 2);
        assert_eq!(m.l1i_stats.misses, 1);
    }

    #[test]
    fn stores_allocate_and_mark_dirty() {
        let mut m = hierarchy();
        let s = m.store(0x40, 0x300000, 0);
        assert!(s >= 75);
        let hit = m.load(0x44, 0x300000, s + 1);
        assert_eq!(hit - (s + 1), 2, "store-allocated line hits");
    }

    #[test]
    fn saturated_mshr_files_back_pressure_instead_of_panicking() {
        // One MSHR at each level and a burst of distinct-line misses all
        // issued at the same cycle: every miss past the first must queue
        // behind the earliest outstanding completion, never panic.
        let mut m = MemoryHierarchy::new(MemoryConfig {
            l1d_mshrs: 1,
            l2_mshrs: 1,
            prefetch: false,
            ..Default::default()
        });
        let mut last_ready = 0;
        for k in 0..32u64 {
            let ready = m.load(0x40, 0x600000 + k * 64, 0);
            assert!(ready >= last_ready, "saturated misses must drain in order");
            last_ready = ready;
        }
        assert_eq!(m.l1d_stats.misses, 32);
        // Same-row lines serialize on one DRAM bank at ~65 cycles apiece
        // (row-hit service minus burst overlap): the tail must reflect 31
        // queued services, not complete as if the MSHRs were unbounded.
        assert!(last_ready >= 31 * 65, "got {last_ready}");
    }

    #[test]
    fn warm_paths_fill_caches_without_stats_or_timing_state() {
        let mut m = hierarchy();
        m.warm_fetch(0x1000);
        m.warm_load(0x100000);
        m.warm_store(0x200000);
        assert_eq!(m.l1i_stats.accesses, 0);
        assert_eq!(m.l1d_stats.accesses, 0);
        assert_eq!(m.l2_stats.accesses, 0);
        assert_eq!(m.l2_stats.prefetches, 0);
        // The warmed lines now hit at L1 latency in the detailed model.
        let i = m.fetch_inst(0x1000, 100);
        assert_eq!(i - 100, 2, "warmed L1I line hits");
        let d = m.load(0x40, 0x100000, 100);
        assert_eq!(d - 100, 2, "warmed L1D line hits");
        let s = m.load(0x44, 0x200000, 100);
        assert_eq!(s - 100, 2, "warm-stored line hits");
    }

    #[test]
    fn warm_state_round_trips_into_a_fresh_hierarchy() {
        let mut m = hierarchy();
        let mut x = 1u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            m.warm_fetch(0x1000 + (x % 4096) * 4);
            if x & 1 == 0 {
                m.warm_load(0x100000 + (x % 100_000));
            } else {
                m.warm_store(0x300000 + (x % 100_000));
            }
        }
        let mut w = StateWriter::new();
        m.save_warm_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = hierarchy();
        let mut r = StateReader::new(&bytes);
        restored.load_warm_state(&mut r).unwrap();
        r.finish().unwrap();
        // Both must produce identical timing on the same access stream.
        let mut now = 0;
        for k in 0..200u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = 0x100000 + (x % 120_000);
            let a = m.load(0x40 + k * 4, addr, now);
            let b = restored.load(0x40 + k * 4, addr, now);
            assert_eq!(a, b, "access {k} at {addr:#x}");
            now = a + 1;
        }
        assert_eq!(m.l1d_stats, restored.l1d_stats);
        assert_eq!(m.l2_stats, restored.l2_stats);
    }

    #[test]
    fn l1d_and_l1i_do_not_interfere() {
        let mut m = hierarchy();
        let d = m.load(0x40, 0x500000, 0);
        let i = m.fetch_inst(0x500000, d + 1);
        // The L2 line was filled by the data miss: the I-fetch hits L2.
        assert_eq!(i - (d + 1), 12);
    }
}
