//! A set-associative, write-allocate cache with LRU replacement.

use vpsim_core::state::{StateReader, StateWriter};

/// Cache geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Paper Table 2 L1I: 4-way 32 KB, 64 B lines. The 2-cycle hit latency
    /// is part of the 15-cycle front-end depth.
    pub fn l1i() -> Self {
        CacheConfig { size_bytes: 32 * 1024, ways: 4, line_bytes: 64, latency: 2 }
    }

    /// Paper Table 2 L1D: 4-way 32 KB, 2 cycles, 64 B lines.
    pub fn l1d() -> Self {
        CacheConfig { size_bytes: 32 * 1024, ways: 4, line_bytes: 64, latency: 2 }
    }

    /// Paper Table 2 unified L2: 16-way 2 MB, 12 cycles, 64 B lines.
    pub fn l2() -> Self {
        CacheConfig { size_bytes: 2 * 1024 * 1024, ways: 16, line_bytes: 64, latency: 12 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes >= 8);
        assert!(self.ways >= 1);
        assert!(self.sets().is_power_of_two() && self.sets() >= 1, "sets must be a power of two");
        assert_eq!(self.size_bytes, self.sets() * self.ways * self.line_bytes);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    dirty: bool,
    /// LRU stamp: higher = more recently used.
    stamp: u64,
    /// Filled by the prefetcher and not yet demand-hit.
    prefetched: bool,
}

/// Result of a [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Line was present.
    pub hit: bool,
    /// The hit consumed a line brought in by the prefetcher (first touch).
    pub prefetch_hit: bool,
}

/// The cache structure (state only; timing lives in
/// [`crate::MemoryHierarchy`]).
///
/// # Examples
///
/// ```
/// use vpsim_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1d());
/// assert!(!c.access(0x1000, false).hit);
/// c.fill(0x1000, false);
/// assert!(c.access(0x1000, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All lines in one contiguous slab, `ways` per set: one bounds-checked
    /// slice per access instead of a per-set heap allocation, and the
    /// geometry divisions fold into the precomputed shifts below.
    lines: Vec<Line>,
    line_shift: u32,
    set_mask: u64,
    tag_shift: u32,
    tick: u64,
}

impl Cache {
    /// Create a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two sets/lines).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        Cache {
            lines: vec![Line::default(); config.sets() * config.ways],
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (config.sets() - 1) as u64,
            tag_shift: config.sets().trailing_zeros(),
            config,
            tick: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, line >> self.tag_shift)
    }

    fn set(&self, set: usize) -> &[Line] {
        &self.lines[set * self.config.ways..(set + 1) * self.config.ways]
    }

    fn set_mut(&mut self, set: usize) -> &mut [Line] {
        let w = self.config.ways;
        &mut self.lines[set * w..(set + 1) * w]
    }

    /// Demand access. Updates LRU and the dirty bit on hit; misses change
    /// no state (the fill happens separately via [`Cache::fill`] when the
    /// data returns).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        for line in self.set_mut(set) {
            if line.valid && line.tag == tag {
                line.stamp = tick;
                line.dirty |= is_write;
                let was_prefetch = line.prefetched;
                line.prefetched = false;
                return AccessResult { hit: true, prefetch_hit: was_prefetch };
            }
        }
        AccessResult { hit: false, prefetch_hit: false }
    }

    /// Check for presence without disturbing LRU or prefetch state.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.set(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Install the line containing `addr`, evicting LRU if needed.
    /// `prefetch` marks prefetcher-initiated fills for usefulness stats.
    /// Returns the evicted dirty line's address, if any (for writeback
    /// accounting).
    pub fn fill(&mut self, addr: u64, prefetch: bool) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let (line_shift, tag_shift) = (self.line_shift, self.tag_shift);
        let ways = self.set_mut(set);
        // Already present (e.g. a demand fill raced a prefetch): refresh.
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = tick;
            return None;
        }
        let victim = match ways.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) =
                    ways.iter().enumerate().min_by_key(|(_, l)| l.stamp).expect("ways nonempty");
                i
            }
        };
        let evicted = if ways[victim].valid && ways[victim].dirty {
            let line_no = (ways[victim].tag << tag_shift) | set as u64;
            Some(line_no << line_shift)
        } else {
            None
        };
        ways[victim] = Line { valid: true, tag, dirty: false, stamp: tick, prefetched: prefetch };
        evicted
    }

    /// Line-aligned address of `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes as u64 - 1)
    }

    /// Serialize every line (tags, dirty bits, LRU stamps, prefetch marks)
    /// plus the LRU tick for a sampling checkpoint.
    pub fn save_state(&self, w: &mut StateWriter) {
        for line in &self.lines {
            w.bool(line.valid);
            w.u64(line.tag);
            w.bool(line.dirty);
            w.u64(line.stamp);
            w.bool(line.prefetched);
        }
        w.u64(self.tick);
    }

    /// Restore state captured by [`Cache::save_state`] into a cache of the
    /// same geometry.
    pub fn load_state(&mut self, r: &mut StateReader) -> Result<(), String> {
        for line in &mut self.lines {
            line.valid = r.bool()?;
            line.tag = r.u64()?;
            line.dirty = r.bool()?;
            line.stamp = r.u64()?;
            line.prefetched = r.bool()?;
        }
        self.tick = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B = 256 B.
        Cache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, latency: 1 })
    }

    #[test]
    fn geometry_helpers() {
        let c = CacheConfig::l1d();
        assert_eq!(c.sets(), 128);
        assert_eq!(CacheConfig::l2().sets(), 2048);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false).hit);
        c.fill(0x1000, false);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x103F, false).hit, "same line");
        assert!(!c.access(0x1040, false).hit, "next line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addresses stride 128 = 2 sets × 64).
        c.fill(0, false);
        c.fill(128, false);
        c.access(0, false); // 0 is MRU, 128 is LRU
        c.fill(256, false); // evicts 128
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.fill(0, false);
        c.access(0, true); // dirty
        c.fill(128, false);
        let evicted = c.fill(256, false); // evicts line 0 (LRU, dirty)
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn clean_eviction_reports_none() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(128, false);
        assert_eq!(c.fill(256, false), None);
    }

    #[test]
    fn prefetch_hit_reported_once() {
        let mut c = tiny();
        c.fill(0x40, true);
        let first = c.access(0x40, false);
        assert!(first.hit && first.prefetch_hit);
        let second = c.access(0x40, false);
        assert!(second.hit && !second.prefetch_hit);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(128, false);
        // Probing 0 must not make it MRU.
        assert!(c.probe(0));
        c.fill(256, false); // LRU is 0 (fill order), so 0 is evicted
        assert!(!c.probe(0));
        assert!(c.probe(128));
    }

    #[test]
    fn double_fill_is_idempotent() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(0, false);
        assert!(c.probe(0));
        // Both other fills still fit: no spurious eviction happened.
        c.fill(128, false);
        assert!(c.probe(0) && c.probe(128));
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = tiny();
        assert_eq!(c.line_addr(0x107F), 0x1040);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 100, ways: 3, line_bytes: 64, latency: 1 });
    }
}
