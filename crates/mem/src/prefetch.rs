//! L2 stride prefetcher (paper Table 2: "Stride prefetcher, degree 8,
//! distance 1").
//!
//! A per-PC reference-prediction table detects constant address strides in
//! the L2 access stream; once a stride is confirmed twice, each training
//! access emits up to `degree` prefetch addresses starting `distance`
//! strides ahead.
//!
//! Strides are tracked as `u64` two's-complement deltas: descending
//! streams are just large wrapping deltas, so confirmation compares and
//! target generation multiply in the same modulo-2⁶⁴ arithmetic the
//! address space uses. (The previous `i64` representation computed the
//! same targets in release builds but could trip debug overflow checks on
//! streams crossing the sign boundary.) Targets come back as a
//! [`PrefetchBatch`] — a counted iterator, not an allocated `Vec`.

/// Per-PC stride detector driving L2 prefetches.
///
/// # Examples
///
/// ```
/// use vpsim_mem::StridePrefetcher;
/// let mut p = StridePrefetcher::with_defaults();
/// assert!(p.train(0x40, 0x1000).is_empty());
/// assert!(p.train(0x40, 0x1040).is_empty()); // first stride observed
/// let prefetches: Vec<u64> = p.train(0x40, 0x1080).collect(); // confirmed
/// assert_eq!(prefetches.len(), 8);
/// assert_eq!(prefetches[0], 0x10C0);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    index_bits: u32,
    degree: usize,
    distance: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u32,
    last_addr: u64,
    /// Two's-complement address delta (a descending stream wraps).
    stride: u64,
    confirmed: u8, // 0..=2
}

/// The prefetch targets one training access emits: `len()` addresses each
/// one stride apart, starting `distance` strides past the trigger.
///
/// Yields addresses lazily (wrapping modulo-2⁶⁴ steps) so the hierarchy's
/// issue loop consumes them without a per-access heap allocation.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchBatch {
    next: u64,
    stride: u64,
    remaining: u32,
}

impl PrefetchBatch {
    /// A batch yielding nothing (no stride confirmed yet).
    fn empty() -> Self {
        PrefetchBatch { next: 0, stride: 0, remaining: 0 }
    }

    /// Number of addresses left to yield.
    pub fn len(&self) -> usize {
        self.remaining as usize
    }

    /// `true` when this access triggers no prefetches.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl Iterator for PrefetchBatch {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        let addr = self.next;
        self.next = self.next.wrapping_add(self.stride);
        self.remaining -= 1;
        Some(addr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len(), Some(self.len()))
    }
}

impl ExactSizeIterator for PrefetchBatch {}

impl StridePrefetcher {
    /// The paper's configuration: degree 8, distance 1, 256-entry table.
    pub fn with_defaults() -> Self {
        StridePrefetcher::new(256, 8, 1)
    }

    /// Create with a `entries`-entry table issuing `degree` prefetches
    /// `distance` strides ahead.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `degree` is zero.
    pub fn new(entries: usize, degree: usize, distance: u64) -> Self {
        assert!(entries.is_power_of_two() && degree > 0);
        StridePrefetcher {
            table: vec![Entry::default(); entries],
            index_bits: entries.trailing_zeros(),
            degree,
            distance,
        }
    }

    /// Observe a demand access from instruction `pc` to `addr`; returns the
    /// prefetch addresses to issue (empty until a stride is confirmed).
    pub fn train(&mut self, pc: u64, addr: u64) -> PrefetchBatch {
        let index = ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize;
        let tag = (pc >> (2 + self.index_bits)) as u32;
        let e = &mut self.table[index];
        if !e.valid || e.tag != tag {
            *e = Entry { valid: true, tag, last_addr: addr, stride: 0, confirmed: 0 };
            return PrefetchBatch::empty();
        }
        let stride = addr.wrapping_sub(e.last_addr);
        if stride == 0 {
            return PrefetchBatch::empty(); // same line re-touch: nothing to learn
        }
        if stride == e.stride {
            e.confirmed = (e.confirmed + 1).min(2);
        } else {
            e.stride = stride;
            e.confirmed = 1;
        }
        e.last_addr = addr;
        if e.confirmed < 2 {
            return PrefetchBatch::empty();
        }
        PrefetchBatch {
            next: addr.wrapping_add(e.stride.wrapping_mul(self.distance)),
            stride: e.stride,
            remaining: self.degree as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirms_stride_after_two_repeats() {
        let mut p = StridePrefetcher::with_defaults();
        assert!(p.train(0x10, 1000).is_empty());
        assert!(p.train(0x10, 1100).is_empty());
        let pf: Vec<u64> = p.train(0x10, 1200).collect();
        assert_eq!(pf.len(), 8);
        assert_eq!(pf[0], 1300);
        assert_eq!(pf[7], 2000);
    }

    #[test]
    fn negative_strides_prefetch_downward() {
        let mut p = StridePrefetcher::with_defaults();
        p.train(0x10, 2000);
        p.train(0x10, 1900);
        let pf: Vec<u64> = p.train(0x10, 1800).collect();
        assert_eq!(pf[0], 1700);
        assert_eq!(pf[7], 1000, "the whole batch descends by one stride per step");
    }

    #[test]
    fn descending_stream_through_zero_wraps_cleanly() {
        // A descending stream whose targets cross address 0: the wrapping
        // u64 stride math must neither panic (the old i64 representation
        // tripped debug overflow checks here) nor bend the stride.
        let mut p = StridePrefetcher::with_defaults();
        p.train(0x10, 300);
        p.train(0x10, 200);
        let pf: Vec<u64> = p.train(0x10, 100).collect();
        assert_eq!(pf[0], 0);
        assert_eq!(pf[1], 0u64.wrapping_sub(100));
        assert_eq!(pf[7], 0u64.wrapping_sub(700));
    }

    #[test]
    fn stream_wrapping_the_address_space_keeps_its_stride() {
        // Strides near the top of the address space: deltas that would
        // overflow i64 still confirm and extrapolate modulo 2^64.
        let top = u64::MAX - 100;
        let mut p = StridePrefetcher::with_defaults();
        p.train(0x10, top);
        p.train(0x10, top.wrapping_add(64));
        let pf: Vec<u64> = p.train(0x10, top.wrapping_add(128)).collect();
        assert_eq!(pf.len(), 8);
        assert_eq!(pf[0], top.wrapping_add(192));
        assert_eq!(pf[7], top.wrapping_add(192 + 7 * 64), "wrapped past zero");
    }

    #[test]
    fn stride_change_requires_reconfirmation() {
        let mut p = StridePrefetcher::with_defaults();
        p.train(0x10, 0);
        p.train(0x10, 64);
        assert!(!p.train(0x10, 128).is_empty());
        // Stride changes: must re-confirm before prefetching again.
        assert!(p.train(0x10, 1000).is_empty());
        assert!(p.train(0x10, 2000).is_empty());
        assert!(!p.train(0x10, 3000).is_empty());
    }

    #[test]
    fn distinct_pcs_track_distinct_streams() {
        let mut p = StridePrefetcher::with_defaults();
        for k in 0..3u64 {
            p.train(0x10, k * 64);
            p.train(0x20, 100_000 - k * 128);
        }
        let a: Vec<u64> = p.train(0x10, 3 * 64).collect();
        let b: Vec<u64> = p.train(0x20, 100_000 - 3 * 128).collect();
        assert_eq!(a[0], 4 * 64);
        assert_eq!(b[0], 100_000 - 4 * 128);
    }

    #[test]
    fn zero_stride_is_ignored() {
        let mut p = StridePrefetcher::with_defaults();
        for _ in 0..5 {
            assert!(p.train(0x10, 0x1000).is_empty());
        }
    }

    #[test]
    fn pc_conflict_reallocates() {
        let mut p = StridePrefetcher::new(2, 4, 1);
        p.train(0x0, 0);
        p.train(0x0, 64);
        // Conflicting pc (same index, different tag) steals the entry.
        let conflicting = 2 * 4 * 4;
        assert!(p.train(conflicting, 0).is_empty());
        // Original pc must start over.
        assert!(p.train(0x0, 128).is_empty());
    }

    #[test]
    fn batch_reports_its_length_exactly() {
        let mut p = StridePrefetcher::new(16, 4, 2);
        p.train(0x10, 0x1000);
        p.train(0x10, 0x1040);
        let batch = p.train(0x10, 0x1080);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.size_hint(), (4, Some(4)));
        let targets: Vec<u64> = batch.collect();
        // Distance 2: first target is two strides past the trigger.
        assert_eq!(targets, vec![0x1100, 0x1140, 0x1180, 0x11C0]);
    }
}
