//! L2 stride prefetcher (paper Table 2: "Stride prefetcher, degree 8,
//! distance 1").
//!
//! A per-PC reference-prediction table detects constant address strides in
//! the L2 access stream; once a stride is confirmed twice, each training
//! access emits up to `degree` prefetch addresses starting `distance`
//! strides ahead.

/// Per-PC stride detector driving L2 prefetches.
///
/// # Examples
///
/// ```
/// use vpsim_mem::StridePrefetcher;
/// let mut p = StridePrefetcher::with_defaults();
/// assert!(p.train(0x40, 0x1000).is_empty());
/// assert!(p.train(0x40, 0x1040).is_empty()); // first stride observed
/// let prefetches = p.train(0x40, 0x1080);    // stride confirmed
/// assert_eq!(prefetches.len(), 8);
/// assert_eq!(prefetches[0], 0x10C0);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    index_bits: u32,
    degree: usize,
    distance: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u32,
    last_addr: u64,
    stride: i64,
    confirmed: u8, // 0..=2
}

impl StridePrefetcher {
    /// The paper's configuration: degree 8, distance 1, 256-entry table.
    pub fn with_defaults() -> Self {
        StridePrefetcher::new(256, 8, 1)
    }

    /// Create with a `entries`-entry table issuing `degree` prefetches
    /// `distance` strides ahead.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `degree` is zero.
    pub fn new(entries: usize, degree: usize, distance: u64) -> Self {
        assert!(entries.is_power_of_two() && degree > 0);
        StridePrefetcher {
            table: vec![Entry::default(); entries],
            index_bits: entries.trailing_zeros(),
            degree,
            distance,
        }
    }

    /// Observe a demand access from instruction `pc` to `addr`; returns the
    /// prefetch addresses to issue (empty until a stride is confirmed).
    pub fn train(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let index = ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize;
        let tag = (pc >> (2 + self.index_bits)) as u32;
        let e = &mut self.table[index];
        if !e.valid || e.tag != tag {
            *e = Entry { valid: true, tag, last_addr: addr, stride: 0, confirmed: 0 };
            return Vec::new();
        }
        let stride = addr.wrapping_sub(e.last_addr) as i64;
        if stride == 0 {
            return Vec::new(); // same line re-touch: nothing to learn
        }
        if stride == e.stride {
            e.confirmed = (e.confirmed + 1).min(2);
        } else {
            e.stride = stride;
            e.confirmed = 1;
        }
        e.last_addr = addr;
        if e.confirmed < 2 {
            return Vec::new();
        }
        (0..self.degree as u64)
            .map(|k| addr.wrapping_add((e.stride * (self.distance + k) as i64) as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirms_stride_after_two_repeats() {
        let mut p = StridePrefetcher::with_defaults();
        assert!(p.train(0x10, 1000).is_empty());
        assert!(p.train(0x10, 1100).is_empty());
        let pf = p.train(0x10, 1200);
        assert_eq!(pf.len(), 8);
        assert_eq!(pf[0], 1300);
        assert_eq!(pf[7], 2000);
    }

    #[test]
    fn negative_strides_prefetch_downward() {
        let mut p = StridePrefetcher::with_defaults();
        p.train(0x10, 2000);
        p.train(0x10, 1900);
        let pf = p.train(0x10, 1800);
        assert_eq!(pf[0], 1700);
    }

    #[test]
    fn stride_change_requires_reconfirmation() {
        let mut p = StridePrefetcher::with_defaults();
        p.train(0x10, 0);
        p.train(0x10, 64);
        assert!(!p.train(0x10, 128).is_empty());
        // Stride changes: must re-confirm before prefetching again.
        assert!(p.train(0x10, 1000).is_empty());
        assert!(p.train(0x10, 2000).is_empty());
        assert!(!p.train(0x10, 3000).is_empty());
    }

    #[test]
    fn distinct_pcs_track_distinct_streams() {
        let mut p = StridePrefetcher::with_defaults();
        for k in 0..3u64 {
            p.train(0x10, k * 64);
            p.train(0x20, 100_000 - k * 128);
        }
        let a = p.train(0x10, 3 * 64);
        let b = p.train(0x20, 100_000 - 3 * 128);
        assert_eq!(a[0], 4 * 64);
        assert_eq!(b[0], 100_000 - 4 * 128);
    }

    #[test]
    fn zero_stride_is_ignored() {
        let mut p = StridePrefetcher::with_defaults();
        for _ in 0..5 {
            assert!(p.train(0x10, 0x1000).is_empty());
        }
    }

    #[test]
    fn pc_conflict_reallocates() {
        let mut p = StridePrefetcher::new(2, 4, 1);
        p.train(0x0, 0);
        p.train(0x0, 64);
        // Conflicting pc (same index, different tag) steals the entry.
        let conflicting = 2 * 4 * 4;
        assert!(p.train(conflicting, 0).is_empty());
        // Original pc must start over.
        assert!(p.train(0x0, 128).is_empty());
    }
}
