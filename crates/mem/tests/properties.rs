//! Property-based tests for the memory hierarchy: timing monotonicity,
//! latency envelopes and cache-state invariants under arbitrary access
//! streams.

use proptest::prelude::*;
use vpsim_mem::{Cache, CacheConfig, Dram, DramConfig, MemoryConfig, MemoryHierarchy, MshrFile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every data access completes no earlier than `now + L1 latency`, and
    /// no later than a generous worst case (row conflict + full queueing).
    #[test]
    fn load_latency_envelope(
        accesses in prop::collection::vec((0u64..1 << 24, 0u64..50), 1..300),
    ) {
        let mut m = MemoryHierarchy::new(MemoryConfig::default());
        let mut now = 0u64;
        for (addr, gap) in accesses {
            let ready = m.load(0x40, addr, now);
            prop_assert!(ready >= now + 2, "faster than an L1 hit");
            prop_assert!(ready <= now + 10_000, "absurdly slow: {}", ready - now);
            now += gap;
        }
    }

    /// Immediately repeating a load always hits L1 (2 cycles) once the
    /// first fill completed.
    #[test]
    fn repeat_after_fill_is_an_l1_hit(addr in 0u64..1 << 22) {
        let mut m = MemoryHierarchy::new(MemoryConfig::default());
        let first = m.load(0x40, addr, 0);
        let second = m.load(0x40, addr, first);
        prop_assert_eq!(second - first, 2);
    }

    /// Cache fills never lose lines silently: after a fill, a probe hits
    /// until at least `ways` other conflicting lines were filled.
    #[test]
    fn fills_survive_until_conflict_pressure(
        base_set in 0usize..64,
        fills in 1usize..4,
    ) {
        let config = CacheConfig { size_bytes: 64 * 64 * 4, ways: 4, line_bytes: 64, latency: 1 };
        let sets = config.sets();
        let mut c = Cache::new(config);
        let target = (base_set as u64) * 64;
        c.fill(target, false);
        // Fill up to `ways - 1` conflicting lines: target must survive.
        for k in 1..=fills.min(3) {
            c.fill(target + (k * sets * 64) as u64, false);
        }
        prop_assert!(c.probe(target));
    }

    /// DRAM access end times are per-bank monotonic and each service is
    /// within the configured envelope once the bank is free.
    #[test]
    fn dram_latency_envelope(
        addrs in prop::collection::vec(0u64..1 << 28, 1..200),
    ) {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let mut now = 0u64;
        for addr in addrs {
            let done = d.access(addr, now);
            prop_assert!(done >= now + cfg.min_latency());
            now = done; // issue strictly after completion: no queueing
            // With no queueing, latency is within the static envelope.
        }
    }

    /// MSHR merge returns exactly the original fill time.
    #[test]
    fn mshr_merge_returns_original_fill(
        line in 0u64..1 << 20,
        fill in 1u64..10_000,
        probes in prop::collection::vec(0u64..9_999, 1..20),
    ) {
        let mut f = MshrFile::new(8);
        f.allocate(line, fill);
        for p in probes {
            f.expire(p.min(fill - 1));
            prop_assert_eq!(f.lookup(line), Some(fill));
        }
        f.expire(fill);
        prop_assert_eq!(f.lookup(line), None);
    }
}
