//! Synthetic SPEC CPU2000/2006 benchmark analogues (paper Table 3).
//!
//! The paper evaluates on Simpoint slices of 19 SPEC benchmarks. SPEC
//! sources and reference inputs are proprietary, so this crate substitutes
//! **behavioral analogues**: for each benchmark, a generated µop program
//! that reproduces the *characteristics that drive value-prediction
//! results* — the mix of value patterns (constant, strided,
//! control-flow-correlated, context-dependent, chaotic), branch
//! predictability, memory footprint and access regularity, and loop-body
//! sizes (which determine the §3.2 back-to-back statistic). "Workload
//! substitution" in `ARCHITECTURE.md` documents the substitution argument;
//! each generator's doc comment explains which behaviors it mimics.
//!
//! # Examples
//!
//! ```
//! use vpsim_workloads::{all_benchmarks, WorkloadParams};
//!
//! let benches = all_benchmarks();
//! assert_eq!(benches.len(), 19);
//! let gzip = benches.iter().find(|b| b.name == "gzip").unwrap();
//! let program = (gzip.build)(&WorkloadParams::default());
//! assert!(!program.is_empty());
//! ```

pub mod microkernels;
pub mod patterns;
mod spec2000;
mod spec2006;

use vpsim_isa::Program;

/// Benchmark suite of origin (paper Table 3), plus this repository's
/// microkernel suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000.
    Cpu2000,
    /// SPEC CPU2006.
    Cpu2006,
    /// Single-behavior microkernel (the `k:*` workloads, not part of the
    /// paper's Table 3 suite).
    Micro,
}

/// Integer or floating-point benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Integer.
    Int,
    /// Floating point.
    Fp,
}

/// Generation parameters shared by all workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadParams {
    /// Size multiplier for arrays and iteration counts (1 = default,
    /// sized so any instruction budget up to tens of millions never
    /// exhausts the trace).
    pub scale: usize,
    /// Seed for generated data and pseudo-random program behavior.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams { scale: 1, seed: 0x5EED_2014 }
    }
}

/// A benchmark analogue: name, classification and generator.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// SPEC benchmark name this analogue substitutes (e.g. `"gzip"`), or a
    /// `k:`-prefixed microkernel name (e.g. `"k:tight"`).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// INT or FP.
    pub class: Class,
    /// Program generator.
    pub build: fn(&WorkloadParams) -> Program,
}

/// A workload is identified by its name: the registries ([`all_benchmarks`],
/// [`all_microkernels`]) guarantee one generator per name, so comparing the
/// function pointer would add nothing (and is a lint besides).
impl PartialEq for Benchmark {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.suite == other.suite && self.class == other.class
    }
}

impl Eq for Benchmark {}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

impl std::str::FromStr for Benchmark {
    type Err = String;

    /// Resolve a workload by name: any Table 3 benchmark or `k:*`
    /// microkernel. Unknown names list every valid spelling.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_workloads::Benchmark;
    ///
    /// let b: Benchmark = "gzip".parse().unwrap();
    /// assert_eq!(b.to_string(), "gzip");
    /// assert!("k:tight".parse::<Benchmark>().is_ok());
    /// assert!("nonsense".parse::<Benchmark>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        workload(s)
            .ok_or_else(|| format!("unknown workload {s} (valid: {})", workload_names().join(", ")))
    }
}

/// The 19 Table 3 benchmarks, in the paper's order (CPU2000 first).
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark { name: "gzip", suite: Suite::Cpu2000, class: Class::Int, build: spec2000::gzip },
        Benchmark {
            name: "wupwise",
            suite: Suite::Cpu2000,
            class: Class::Fp,
            build: spec2000::wupwise,
        },
        Benchmark {
            name: "applu",
            suite: Suite::Cpu2000,
            class: Class::Fp,
            build: spec2000::applu,
        },
        Benchmark { name: "vpr", suite: Suite::Cpu2000, class: Class::Int, build: spec2000::vpr },
        Benchmark { name: "art", suite: Suite::Cpu2000, class: Class::Fp, build: spec2000::art },
        Benchmark {
            name: "crafty",
            suite: Suite::Cpu2000,
            class: Class::Int,
            build: spec2000::crafty,
        },
        Benchmark {
            name: "parser",
            suite: Suite::Cpu2000,
            class: Class::Int,
            build: spec2000::parser,
        },
        Benchmark {
            name: "vortex",
            suite: Suite::Cpu2000,
            class: Class::Int,
            build: spec2000::vortex,
        },
        Benchmark {
            name: "bzip2",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::bzip2,
        },
        Benchmark { name: "gcc", suite: Suite::Cpu2006, class: Class::Int, build: spec2006::gcc },
        Benchmark {
            name: "gamess",
            suite: Suite::Cpu2006,
            class: Class::Fp,
            build: spec2006::gamess,
        },
        Benchmark { name: "mcf", suite: Suite::Cpu2006, class: Class::Int, build: spec2006::mcf },
        Benchmark { name: "milc", suite: Suite::Cpu2006, class: Class::Fp, build: spec2006::milc },
        Benchmark { name: "namd", suite: Suite::Cpu2006, class: Class::Fp, build: spec2006::namd },
        Benchmark {
            name: "gobmk",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::gobmk,
        },
        Benchmark {
            name: "hmmer",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::hmmer,
        },
        Benchmark {
            name: "sjeng",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::sjeng,
        },
        Benchmark {
            name: "h264ref",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::h264ref,
        },
        Benchmark { name: "lbm", suite: Suite::Cpu2006, class: Class::Fp, build: spec2006::lbm },
    ]
}

// Microkernel adapters: fixed sizing under `WorkloadParams`, matching the
// historical `simulate` CLI mapping so `k:*` runs stay reproducible.
fn k_tight(_: &WorkloadParams) -> Program {
    microkernels::tight_loop()
}
fn k_strided(p: &WorkloadParams) -> Program {
    microkernels::strided_loop(256 * p.scale, 1)
}
fn k_chase(p: &WorkloadParams) -> Program {
    microkernels::pointer_chase(4096 * p.scale)
}
fn k_constant(_: &WorkloadParams) -> Program {
    microkernels::constant_stream()
}
fn k_branchdep(_: &WorkloadParams) -> Program {
    microkernels::branch_correlated_values()
}
fn k_fpreduce(p: &WorkloadParams) -> Program {
    microkernels::fp_reduction(256 * p.scale)
}
fn k_calls(_: &WorkloadParams) -> Program {
    microkernels::call_ladder()
}
fn k_randbranch(_: &WorkloadParams) -> Program {
    microkernels::random_branches()
}
fn k_matmul(p: &WorkloadParams) -> Program {
    microkernels::matmul(8 * p.scale)
}

/// The microkernels exposed as named workloads (`k:*`), usable anywhere a
/// [`Benchmark`] is: `simulate k:chase`, `sweep --benchmarks k:tight,gzip`,
/// or a scenario file's `benchmarks =` list.
pub fn all_microkernels() -> Vec<Benchmark> {
    let m = |name, class, build| Benchmark { name, suite: Suite::Micro, class, build };
    vec![
        m("k:tight", Class::Int, k_tight),
        m("k:strided", Class::Int, k_strided),
        m("k:chase", Class::Int, k_chase),
        m("k:constant", Class::Int, k_constant),
        m("k:branchdep", Class::Int, k_branchdep),
        m("k:fpreduce", Class::Fp, k_fpreduce),
        m("k:calls", Class::Int, k_calls),
        m("k:randbranch", Class::Int, k_randbranch),
        m("k:matmul", Class::Fp, k_matmul),
    ]
}

/// Look up a benchmark analogue by SPEC name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// Look up any workload by name: Table 3 benchmarks first, then the `k:*`
/// microkernels.
pub fn workload(name: &str) -> Option<Benchmark> {
    benchmark(name).or_else(|| all_microkernels().into_iter().find(|b| b.name == name))
}

/// Every valid workload name, benchmarks first — the canonical spelling
/// list quoted by parse errors.
pub fn workload_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all_benchmarks().into_iter().map(|b| b.name).collect();
    names.extend(all_microkernels().into_iter().map(|b| b.name));
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_isa::Executor;

    #[test]
    fn table3_composition_matches_paper() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 19);
        let ints = all.iter().filter(|b| b.class == Class::Int).count();
        let fps = all.iter().filter(|b| b.class == Class::Fp).count();
        assert_eq!(ints, 12, "Table 3: 12 INT");
        assert_eq!(fps, 7, "Table 3: 7 FP");
        let cpu2000 = all.iter().filter(|b| b.suite == Suite::Cpu2000).count();
        assert_eq!(cpu2000, 8);
    }

    #[test]
    fn names_are_unique() {
        let all = all_benchmarks();
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn every_benchmark_builds_and_runs() {
        let params = WorkloadParams::default();
        for b in all_benchmarks() {
            let program = (b.build)(&params);
            assert!(!program.is_empty(), "{} is empty", b.name);
            let executed = Executor::new(&program).take(50_000).count();
            assert_eq!(executed, 50_000, "{} trace too short ({executed})", b.name);
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let params = WorkloadParams::default();
        for b in [benchmark("vpr").unwrap(), benchmark("mcf").unwrap()] {
            let p1 = (b.build)(&params);
            let p2 = (b.build)(&params);
            let t1: Vec<_> = Executor::new(&p1).take(5_000).map(|d| (d.pc, d.result)).collect();
            let t2: Vec<_> = Executor::new(&p2).take(5_000).map(|d| (d.pc, d.result)).collect();
            assert_eq!(t1, t2, "{} must be deterministic", b.name);
        }
    }

    #[test]
    fn benchmarks_differ_from_each_other() {
        let params = WorkloadParams::default();
        let sig = |name: &str| -> Vec<u64> {
            let p = (benchmark(name).unwrap().build)(&params);
            Executor::new(&p).take(2_000).map(|d| d.pc).collect()
        };
        assert_ne!(sig("gzip"), sig("gcc"));
        assert_ne!(sig("mcf"), sig("milc"));
        assert_ne!(sig("crafty"), sig("sjeng"));
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("h264ref").is_some());
        assert!(benchmark("notabench").is_none());
    }

    #[test]
    fn microkernels_are_named_workloads() {
        let kernels = all_microkernels();
        assert_eq!(kernels.len(), 9);
        assert!(kernels.iter().all(|k| k.name.starts_with("k:")));
        assert!(kernels.iter().all(|k| k.suite == Suite::Micro));
        // `workload` resolves both namespaces; `benchmark` stays Table 3 only.
        assert!(workload("k:chase").is_some());
        assert!(workload("gzip").is_some());
        assert!(benchmark("k:chase").is_none());
        // Every kernel builds a runnable program.
        let params = WorkloadParams::default();
        for k in &kernels {
            let p = (k.build)(&params);
            assert!(!p.is_empty(), "{} is empty", k.name);
        }
    }

    #[test]
    fn benchmark_parses_and_round_trips() {
        for name in workload_names() {
            let b: Benchmark = name.parse().unwrap();
            assert_eq!(b.to_string(), name);
            assert_eq!(b, name.parse::<Benchmark>().unwrap());
        }
        let err = "notabench".parse::<Benchmark>().unwrap_err();
        assert!(err.contains("gzip") && err.contains("k:tight"), "{err}");
    }

    #[test]
    fn fp_benchmarks_execute_fp_ops() {
        use vpsim_isa::FuClass;
        let params = WorkloadParams::default();
        for b in all_benchmarks().iter().filter(|b| b.class == Class::Fp) {
            let p = (b.build)(&params);
            let fp_ops = Executor::new(&p)
                .take(30_000)
                .filter(|d| matches!(d.inst.fu_class(), FuClass::FpAlu | FuClass::FpMulDiv))
                .count();
            assert!(fp_ops > 1_000, "{}: only {fp_ops} FP µops in 30k", b.name);
        }
    }
}
