//! Synthetic SPEC CPU2000/2006 benchmark analogues (paper Table 3).
//!
//! The paper evaluates on Simpoint slices of 19 SPEC benchmarks. SPEC
//! sources and reference inputs are proprietary, so this crate substitutes
//! **behavioral analogues**: for each benchmark, a generated µop program
//! that reproduces the *characteristics that drive value-prediction
//! results* — the mix of value patterns (constant, strided,
//! control-flow-correlated, context-dependent, chaotic), branch
//! predictability, memory footprint and access regularity, and loop-body
//! sizes (which determine the §3.2 back-to-back statistic). "Workload
//! substitution" in `ARCHITECTURE.md` documents the substitution argument;
//! each generator's doc comment explains which behaviors it mimics.
//!
//! # Examples
//!
//! ```
//! use vpsim_workloads::{all_benchmarks, WorkloadParams};
//!
//! let benches = all_benchmarks();
//! assert_eq!(benches.len(), 19);
//! let gzip = benches.iter().find(|b| b.name == "gzip").unwrap();
//! let program = (gzip.build)(&WorkloadParams::default());
//! assert!(!program.is_empty());
//! ```

pub mod microkernels;
pub mod patterns;
mod spec2000;
mod spec2006;

use vpsim_isa::Program;

/// Benchmark suite of origin (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000.
    Cpu2000,
    /// SPEC CPU2006.
    Cpu2006,
}

/// Integer or floating-point benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Integer.
    Int,
    /// Floating point.
    Fp,
}

/// Generation parameters shared by all workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadParams {
    /// Size multiplier for arrays and iteration counts (1 = default,
    /// sized so any instruction budget up to tens of millions never
    /// exhausts the trace).
    pub scale: usize,
    /// Seed for generated data and pseudo-random program behavior.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams { scale: 1, seed: 0x5EED_2014 }
    }
}

/// A benchmark analogue: name, classification and generator.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// SPEC benchmark name this analogue substitutes (e.g. `"gzip"`).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// INT or FP.
    pub class: Class,
    /// Program generator.
    pub build: fn(&WorkloadParams) -> Program,
}

/// The 19 Table 3 benchmarks, in the paper's order (CPU2000 first).
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark { name: "gzip", suite: Suite::Cpu2000, class: Class::Int, build: spec2000::gzip },
        Benchmark {
            name: "wupwise",
            suite: Suite::Cpu2000,
            class: Class::Fp,
            build: spec2000::wupwise,
        },
        Benchmark {
            name: "applu",
            suite: Suite::Cpu2000,
            class: Class::Fp,
            build: spec2000::applu,
        },
        Benchmark { name: "vpr", suite: Suite::Cpu2000, class: Class::Int, build: spec2000::vpr },
        Benchmark { name: "art", suite: Suite::Cpu2000, class: Class::Fp, build: spec2000::art },
        Benchmark {
            name: "crafty",
            suite: Suite::Cpu2000,
            class: Class::Int,
            build: spec2000::crafty,
        },
        Benchmark {
            name: "parser",
            suite: Suite::Cpu2000,
            class: Class::Int,
            build: spec2000::parser,
        },
        Benchmark {
            name: "vortex",
            suite: Suite::Cpu2000,
            class: Class::Int,
            build: spec2000::vortex,
        },
        Benchmark {
            name: "bzip2",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::bzip2,
        },
        Benchmark { name: "gcc", suite: Suite::Cpu2006, class: Class::Int, build: spec2006::gcc },
        Benchmark {
            name: "gamess",
            suite: Suite::Cpu2006,
            class: Class::Fp,
            build: spec2006::gamess,
        },
        Benchmark { name: "mcf", suite: Suite::Cpu2006, class: Class::Int, build: spec2006::mcf },
        Benchmark { name: "milc", suite: Suite::Cpu2006, class: Class::Fp, build: spec2006::milc },
        Benchmark { name: "namd", suite: Suite::Cpu2006, class: Class::Fp, build: spec2006::namd },
        Benchmark {
            name: "gobmk",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::gobmk,
        },
        Benchmark {
            name: "hmmer",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::hmmer,
        },
        Benchmark {
            name: "sjeng",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::sjeng,
        },
        Benchmark {
            name: "h264ref",
            suite: Suite::Cpu2006,
            class: Class::Int,
            build: spec2006::h264ref,
        },
        Benchmark { name: "lbm", suite: Suite::Cpu2006, class: Class::Fp, build: spec2006::lbm },
    ]
}

/// Look up a benchmark analogue by SPEC name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_isa::Executor;

    #[test]
    fn table3_composition_matches_paper() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 19);
        let ints = all.iter().filter(|b| b.class == Class::Int).count();
        let fps = all.iter().filter(|b| b.class == Class::Fp).count();
        assert_eq!(ints, 12, "Table 3: 12 INT");
        assert_eq!(fps, 7, "Table 3: 7 FP");
        let cpu2000 = all.iter().filter(|b| b.suite == Suite::Cpu2000).count();
        assert_eq!(cpu2000, 8);
    }

    #[test]
    fn names_are_unique() {
        let all = all_benchmarks();
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn every_benchmark_builds_and_runs() {
        let params = WorkloadParams::default();
        for b in all_benchmarks() {
            let program = (b.build)(&params);
            assert!(!program.is_empty(), "{} is empty", b.name);
            let executed = Executor::new(&program).take(50_000).count();
            assert_eq!(executed, 50_000, "{} trace too short ({executed})", b.name);
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let params = WorkloadParams::default();
        for b in [benchmark("vpr").unwrap(), benchmark("mcf").unwrap()] {
            let p1 = (b.build)(&params);
            let p2 = (b.build)(&params);
            let t1: Vec<_> = Executor::new(&p1).take(5_000).map(|d| (d.pc, d.result)).collect();
            let t2: Vec<_> = Executor::new(&p2).take(5_000).map(|d| (d.pc, d.result)).collect();
            assert_eq!(t1, t2, "{} must be deterministic", b.name);
        }
    }

    #[test]
    fn benchmarks_differ_from_each_other() {
        let params = WorkloadParams::default();
        let sig = |name: &str| -> Vec<u64> {
            let p = (benchmark(name).unwrap().build)(&params);
            Executor::new(&p).take(2_000).map(|d| d.pc).collect()
        };
        assert_ne!(sig("gzip"), sig("gcc"));
        assert_ne!(sig("mcf"), sig("milc"));
        assert_ne!(sig("crafty"), sig("sjeng"));
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("h264ref").is_some());
        assert!(benchmark("notabench").is_none());
    }

    #[test]
    fn fp_benchmarks_execute_fp_ops() {
        use vpsim_isa::FuClass;
        let params = WorkloadParams::default();
        for b in all_benchmarks().iter().filter(|b| b.class == Class::Fp) {
            let p = (b.build)(&params);
            let fp_ops = Executor::new(&p)
                .take(30_000)
                .filter(|d| matches!(d.inst.fu_class(), FuClass::FpAlu | FuClass::FpMulDiv))
                .count();
            assert!(fp_ops > 1_000, "{}: only {fp_ops} FP µops in 30k", b.name);
        }
    }
}
