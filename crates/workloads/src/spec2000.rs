//! SPEC CPU2000 benchmark analogues (paper Table 3, top half).
//!
//! Each generator's doc comment states which behavioral traits of the
//! original benchmark it reproduces; "Workload substitution" in
//! `ARCHITECTURE.md` carries the general substitution argument.

use crate::patterns::{
    self, endless_outer, init_random_array, init_shuffled_chase, lcg_step, Layout,
};
use crate::WorkloadParams;
use vpsim_isa::{Program, ProgramBuilder, Reg};

/// 164.gzip — LZ77-style compression.
///
/// Mimics: hash-table match lookup over a sliding window (L1/L2-resident
/// loads at hashed indices), data-dependent match/no-match branches with
/// input-driven bias, histogram increments (per-PC values that usually
/// step by one — 2-delta stride territory), and position counters with
/// occasionally varying strides.
pub fn gzip(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let window_words = 8192 * params.scale;
    let window = layout.array(window_words);
    let table = layout.array(4096);
    let hist = layout.array(256);
    let mut r = patterns::rng(params.seed, 0x6712);
    init_random_array(&mut b, window, window_words, &mut r);
    let (x, pos, h, t0, t1, cnt) =
        (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5), Reg::int(6));
    let zero = Reg::int(0);
    b.load_imm(x, params.seed as i64 | 1);
    b.load_imm(pos, window as i64);
    endless_outer(&mut b, |b| {
        // Next "byte": the match length consumed depends on the loaded
        // data, so the load → position → next-load chain is serial — and
        // because the window contents are static across passes, the chain
        // is value-predictable from the second pass on (the critical-path
        // structure that gives compression codes their VP headroom).
        b.load(t0, pos, 0);
        b.andi(t1, t0, 0x38); // advance by 8..64 bytes, data-dependent
        b.addi(t1, t1, 8);
        b.add(pos, pos, t1);
        // Wrap the window pointer (predictable branch, rare).
        b.load_imm(t1, (window + (window_words * 8) as u64) as i64);
        let nowrap = b.label();
        b.blt(pos, t1, nowrap);
        b.load_imm(pos, window as i64);
        b.bind(nowrap);
        // Hash and probe the match table.
        b.shri(h, t0, 17);
        b.andi(h, h, 4095);
        b.shli(h, h, 3);
        b.load_imm(t1, table as i64);
        b.add(h, h, t1);
        b.load(t1, h, 0);
        // Match? (data-dependent, biased by construction ~75 % no-match)
        lcg_step(b, x);
        let nomatch = b.label();
        b.andi(t1, x, 3);
        b.bne(t1, zero, nomatch);
        // Match path: emit length/distance, bump histogram.
        b.andi(t1, t0, 255 << 3);
        b.load_imm(cnt, hist as i64);
        b.add(cnt, cnt, t1);
        b.load(t1, cnt, 0);
        b.addi(t1, t1, 1);
        b.store(cnt, t1, 0);
        b.bind(nomatch);
        // Update the table with the current position.
        b.store(h, pos, 0);
    });
    b.build().expect("gzip analogue is valid")
}

/// 168.wupwise — lattice QCD with dense BLAS-like kernels.
///
/// Mimics: long strided FP streams with multiply-accumulate chains whose
/// accumulator stays within one binade for long runs (so its bit pattern
/// is stride-predictable — the mechanism behind wupwise's strong
/// 2D-stride results), unit-stride addressing and highly predictable loop
/// branches.
pub fn wupwise(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    // 16 KB per array: cache-resident, so the accumulator chain (not cold
    // misses) limits the baseline.
    let n = 2048 * params.scale;
    let a = layout.array(n);
    let x = layout.array(n);
    // Constant matrices: the accumulator grows by the same step each
    // element, keeping its f64 bits on a stride within a binade.
    let av: Vec<u64> = (0..n).map(|_| 2.0f64.to_bits()).collect();
    let xv: Vec<u64> = (0..n).map(|_| 0.5f64.to_bits()).collect();
    b.data_block(a, &av);
    b.data_block(x, &xv);
    let (pa, px, end) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (acc, va, vx) = (Reg::float(1), Reg::float(2), Reg::float(3));
    let t = Reg::int(4);
    endless_outer(&mut b, |b| {
        b.load_imm(pa, a as i64);
        b.load_imm(px, x as i64);
        b.load_imm(end, (a + (n * 8) as u64) as i64);
        b.load_imm(t, 1024);
        b.icvtf(acc, t); // start mid-binade
        let (acc2, vb, vy) = (Reg::float(4), Reg::float(5), Reg::float(6));
        b.icvtf(acc2, t);
        let top = b.bind_label();
        // Unrolled ×2 multiply-accumulate into two independent partial
        // sums (as unrolled BLAS kernels do) — halves the chain pressure
        // without removing it.
        b.load(va, pa, 0);
        b.load(vx, px, 0);
        b.fmul(va, va, vx);
        b.fadd(acc, acc, va);
        b.load(vb, pa, 8);
        b.load(vy, px, 8);
        b.fmul(vb, vb, vy);
        b.fadd(acc2, acc2, vb);
        b.addi(pa, pa, 16);
        b.addi(px, px, 16);
        b.blt(pa, end, top);
    });
    b.build().expect("wupwise analogue is valid")
}

/// 173.applu — SSOR solver on a structured grid.
///
/// Mimics: 5-point stencil sweeps over a smooth (near-uniform) field —
/// multiple strided streams, FP weighted sums, stores to the same grid,
/// and results that stay near-constant per sweep (LVP/VTAGE-friendly),
/// with nested predictable loops.
pub fn applu(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let dim = 64 * params.scale;
    let grid_words = dim * dim;
    let grid = layout.array(grid_words);
    let weight = layout.array(1);
    // The field starts at its fixed point (uniform): converged regions of
    // a relaxation solver. Interior cells then stay exactly constant
    // across sweeps (predictable); only the neighbourhood of the
    // time-varying boundary keeps changing — applu's mix of smooth
    // regions and moving fronts.
    let field: Vec<u64> = (0..grid_words).map(|_| f64::to_bits(1.5)).collect();
    b.data_block(grid, &field);
    b.data(weight, f64::to_bits(0.25));
    let (end, p, t) = (Reg::int(2), Reg::int(3), Reg::int(4));
    let (c, nb, acc, w) = (Reg::float(1), Reg::float(2), Reg::float(3), Reg::float(4));
    let row_bytes = (dim * 8) as i64;
    endless_outer(&mut b, |b| {
        // Load the relaxation weight (a perfectly LVP-predictable load).
        b.load_imm(t, weight as i64);
        b.load(w, t, 0);
        // Time-varying boundary: inject the sweep counter (scaled) into a
        // few row-0 cells. The wave diffuses inward, so cells near the
        // boundary keep changing (unpredictable) while the deep interior
        // sits at its fixed point (predictable) — applu's mix of fronts
        // and smooth regions.
        let (acc2, nb2) = (Reg::float(5), Reg::float(6));
        let bc = Reg::int(5);
        b.andi(bc, Reg::int(27), 15); // endless_outer's sweep counter
        b.icvtf(acc2, bc);
        for cell in 0..4 {
            b.load_imm(t, (grid + (cell * dim as u64 / 4) * 8) as i64);
            b.store(t, acc2, 0);
        }
        // Sweep interior rows (in place: each point's left neighbour was
        // just written — the store→load chain VP can break).
        b.load_imm(p, (grid as i64) + row_bytes + 8);
        b.load_imm(end, (grid as i64) + ((grid_words as i64) - dim as i64 - 1) * 8);
        let top = b.bind_label();
        b.load(c, p, 0);
        b.load(nb, p, -8);
        b.load(nb2, p, 8);
        b.fadd(acc, nb, nb2);
        b.load(nb, p, -row_bytes);
        b.load(nb2, p, row_bytes);
        b.fadd(acc2, nb, nb2);
        b.fadd(acc, acc, acc2);
        // ×0.25 of the 4-neighbour sum: the all-equal interior is a fixed
        // point, so converged regions stay exactly constant across sweeps.
        b.fmul(acc, acc, w);
        b.store(p, acc, 0);
        b.addi(p, p, 8);
        b.blt(p, end, top);
    });
    b.build().expect("applu analogue is valid")
}

/// 175.vpr — FPGA placement by simulated annealing.
///
/// Mimics: random pair selection (LCG), random-index loads into a
/// placement array, a cost computation, and an accept/reject branch whose
/// direction is data-dependent and poorly predictable; chaotic values with
/// occasional short repeats.
pub fn vpr(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let cells_words = 16384 * params.scale; // 128 KB placement array
    let cells = layout.array(cells_words);
    let mut r = patterns::rng(params.seed, 0x7672);
    init_random_array(&mut b, cells, cells_words, &mut r);
    let (x, ia, ib, ca, cb, t) =
        (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5), Reg::int(6));
    let base = Reg::int(7);
    b.load_imm(x, (params.seed | 1) as i64);
    b.load_imm(base, cells as i64);
    let mask = ((cells_words - 1) * 8) as i64 & !7;
    endless_outer(&mut b, |b| {
        // Pick two pseudo-random cells.
        lcg_step(b, x);
        b.shri(ia, x, 20);
        b.andi(ia, ia, mask);
        b.add(ia, ia, base);
        b.shri(ib, x, 40);
        b.andi(ib, ib, mask);
        b.add(ib, ib, base);
        b.load(ca, ia, 0);
        b.load(cb, ib, 0);
        // Cost delta and accept/reject (hard branch).
        b.sub(t, ca, cb);
        let reject = b.label();
        let zero = Reg::int(0);
        b.blt(t, zero, reject);
        // Accept: swap the two cells.
        b.store(ia, cb, 0);
        b.store(ib, ca, 0);
        b.bind(reject);
    });
    b.build().expect("vpr analogue is valid")
}

/// 179.art — adaptive resonance theory neural network.
///
/// Mimics: repeated inner products of input vectors against near-constant
/// weight rows (serialized FP accumulation — the dependence chain VP
/// breaks, behind art's very high Figure 3 potential), followed by a
/// winner-search compare loop.
pub fn art(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let f1 = 1024 * params.scale;
    let weights = layout.array(f1);
    let input = layout.array(f1);
    let wv: Vec<u64> = (0..f1).map(|k| f64::to_bits(if k % 7 == 0 { 0.9 } else { 0.1 })).collect();
    let iv: Vec<u64> = (0..f1).map(|_| 1.0f64.to_bits()).collect();
    b.data_block(weights, &wv);
    b.data_block(input, &iv);
    let (pw, pi, end) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (acc, w, x, best) = (Reg::float(1), Reg::float(2), Reg::float(3), Reg::float(4));
    endless_outer(&mut b, |b| {
        b.load_imm(pw, weights as i64);
        b.load_imm(pi, input as i64);
        b.load_imm(end, (weights + (f1 * 8) as u64) as i64);
        b.load_imm(Reg::int(4), 0);
        b.icvtf(acc, Reg::int(4));
        let top = b.bind_label();
        b.load(w, pw, 0);
        b.load(x, pi, 0);
        b.fmul(w, w, x);
        b.fadd(acc, acc, w); // serial 3-cycle chain
        b.addi(pw, pw, 8);
        b.addi(pi, pi, 8);
        b.blt(pw, end, top);
        // Winner comparison (predictable: acc is deterministic).
        b.fsub(best, acc, best);
        b.fadd(best, best, acc);
    });
    b.build().expect("art analogue is valid")
}

/// 186.crafty — chess (bitboards).
///
/// Mimics: 64-bit boolean algebra on board masks, transposition-table
/// probes at hashed indices, and burst-repetitive values (a position's
/// bitboards recur for a handful of probes, then change) — the short-burst
/// pattern that gives baseline 3-bit confidence its *low accuracy* on
/// crafty (§8.2.2) because counters saturate just before the value breaks.
pub fn crafty(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let tt_words = 32768 * params.scale;
    let tt = layout.array(tt_words);
    let mut r = patterns::rng(params.seed, 0xC4A4);
    init_random_array(&mut b, tt, tt_words, &mut r);
    let (board, occ, mv, h, t, x) =
        (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5), Reg::int(6));
    let (epoch, tbase) = (Reg::int(7), Reg::int(8));
    b.load_imm(board, 0x00FF_0000_0000_FF00u64 as i64);
    b.load_imm(x, (params.seed | 1) as i64);
    b.load_imm(tbase, tt as i64);
    endless_outer(&mut b, |b| {
        // The board evolves only every 8th iteration: values repeat in
        // short bursts.
        b.addi(epoch, epoch, 1);
        b.andi(t, epoch, 7);
        let keep = b.label();
        let zero = Reg::int(0);
        b.bne(t, zero, keep);
        lcg_step(b, x);
        b.xor(board, board, x);
        b.bind(keep);
        // Move generation: shifts and masks over the board.
        b.shli(occ, board, 8);
        b.shri(t, board, 8);
        b.or(occ, occ, t);
        b.andi(mv, occ, 0x7E7E);
        b.xor(mv, mv, board);
        // Transposition probe at a hashed index.
        b.load_imm(t, patterns::LCG_MUL);
        b.mul(h, board, t);
        b.shri(h, h, 48);
        b.andi(h, h, ((tt_words - 1) * 8) as i64 & !7);
        b.add(h, h, tbase);
        b.load(t, h, 0);
        // Hit check: hard branch on stored key parity.
        b.xor(t, t, board);
        b.andi(t, t, 1);
        let miss = b.label();
        b.bne(t, zero, miss);
        b.store(h, mv, 0);
        b.bind(miss);
    });
    b.build().expect("crafty analogue is valid")
}

/// 197.parser — link grammar parser.
///
/// Mimics: pointer chasing through linked dictionary nodes (shuffled,
/// L2-resident), per-node flag tests with data-dependent branches, and
/// chaotic node values with little predictability — parser is one of the
/// low-coverage benchmarks.
pub fn parser(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let nodes = 32768 * params.scale;
    let chain = layout.array(nodes);
    let payload = layout.array(nodes);
    let mut r = patterns::rng(params.seed, 0x9A25);
    init_shuffled_chase(&mut b, chain, nodes, &mut r);
    init_random_array(&mut b, payload, nodes, &mut r);
    let header = layout.array(1);
    b.data(header, 0x4C49_4E4B); // dictionary magic: a constant every pass reloads
    let (p, v, t, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let (hdr, hv) = (Reg::int(5), Reg::int(6));
    let zero = Reg::int(0);
    b.load_imm(p, chain as i64);
    b.load_imm(hdr, header as i64);
    endless_outer(&mut b, |b| {
        // Real parsers constantly reload invariant dictionary metadata —
        // the "boring constants" that give real code its LVP coverage.
        b.load(hv, hdr, 0);
        b.and(acc, acc, hv);
        b.load(p, p, 0); // next node (serial chain)

        // Payload lives at chain + (nodes*8) offset from the node address.
        b.load(v, p, (payload - chain) as i64);
        b.andi(t, v, 3);
        let no_match = b.label();
        b.bne(t, zero, no_match);
        b.add(acc, acc, v);
        b.bind(no_match);
        b.xori(acc, acc, 1);
    });
    b.build().expect("parser analogue is valid")
}

/// 255.vortex — object-oriented database.
///
/// Mimics: method-call-heavy execution (call/return ladders exercising the
/// RAS and producing predictable link values), object field loads with
/// constant type tags (LVP-friendly) and allocation counters with stable
/// strides — vortex mixes high-confidence constants with bursty breaks.
pub fn vortex(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let objs_words = 16384 * params.scale;
    let objs = layout.array(objs_words);
    let tags: Vec<u64> = (0..objs_words).map(|k| ((k / 4) % 5) as u64).collect();
    b.data_block(objs, &tags);
    let (lr, op, t, id, x) = (Reg::int(26), Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let obase = Reg::int(5);
    b.load_imm(obase, objs as i64);
    b.load_imm(x, (params.seed | 1) as i64);
    // Three "methods".
    let m_read = b.label();
    let m_update = b.label();
    let m_alloc = b.label();
    let over = b.label();
    b.jump(over);
    b.bind(m_read); // read a field, tag-check branch
    b.load(t, op, 0);
    b.addi(t, t, 0);
    b.ret(lr);
    b.bind(m_update); // strided field update
    b.load(t, op, 8);
    b.addi(t, t, 4);
    b.store(op, t, 8);
    b.ret(lr);
    b.bind(m_alloc); // allocation counter: constant stride
    b.addi(id, id, 24);
    b.ret(lr);
    b.bind(over);
    endless_outer(&mut b, |b| {
        lcg_step(b, x);
        b.shri(t, x, 30);
        b.andi(t, t, ((objs_words / 4 - 1) * 32) as i64 & !31);
        b.add(op, obase, t);
        b.call(lr, m_read);
        b.call(lr, m_update);
        b.call(lr, m_alloc);
    });
    b.build().expect("vortex analogue is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_isa::Executor;

    fn p() -> WorkloadParams {
        WorkloadParams::default()
    }

    #[test]
    fn gzip_probes_and_updates_its_table() {
        let program = gzip(&p());
        let stores = Executor::new(&program)
            .take(20_000)
            .filter(|d| d.inst.op == vpsim_isa::Opcode::Store)
            .count();
        assert!(stores > 500, "gzip must write its match table, got {stores}");
    }

    #[test]
    fn wupwise_accumulator_bits_are_strided_in_runs() {
        let program = wupwise(&p());
        // Collect FAdd results (the accumulator chain) and check for long
        // constant-stride runs in the raw bit patterns.
        // Follow one of the two partial sums (f1); the other interleaves.
        let accs: Vec<u64> = Executor::new(&program)
            .take(30_000)
            .filter(|d| d.inst.op == vpsim_isa::Opcode::FAdd && d.inst.dst == Some(Reg::float(1)))
            .map(|d| d.result.unwrap())
            .collect();
        assert!(accs.len() > 1000);
        let mut best_run = 0usize;
        let mut run = 0usize;
        for w in accs.windows(3) {
            let d1 = w[1].wrapping_sub(w[0]);
            let d2 = w[2].wrapping_sub(w[1]);
            if d1 == d2 && d1 != 0 {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best_run > 50, "expected long stride runs, best {best_run}");
    }

    #[test]
    fn vpr_acceptance_branch_is_balanced() {
        let program = vpr(&p());
        let (mut taken, mut total) = (0u32, 0u32);
        for d in Executor::new(&program).take(40_000) {
            if d.inst.op == vpsim_isa::Opcode::Blt && d.inst.imm != 0 {
                // Only the accept/reject branch compares cost deltas; loop
                // branches are Blt too, so filter by the skip pattern: the
                // accept branch jumps *forward*.
                if (d.inst.imm as u64) > d.pc {
                    total += 1;
                    if d.taken {
                        taken += 1;
                    }
                }
            }
        }
        assert!(total > 500);
        let frac = taken as f64 / total as f64;
        assert!(frac > 0.2 && frac < 0.8, "accept ratio {frac}");
    }

    #[test]
    fn crafty_values_repeat_in_short_bursts() {
        let program = crafty(&p());
        // The move-gen value `mv` (r3) repeats ~8× then changes; other Xors
        // (hash checks) change every iteration and are excluded.
        let vals: Vec<u64> = Executor::new(&program)
            .take(60_000)
            .filter(|d| d.inst.op == vpsim_isa::Opcode::Xor && d.inst.dst == Some(Reg::int(3)))
            .map(|d| d.result.unwrap())
            .collect();
        assert!(vals.len() > 500);
        let changes = vals.windows(2).filter(|w| w[0] != w[1]).count();
        let rate = changes as f64 / vals.len() as f64;
        assert!(rate > 0.05 && rate < 0.9, "burst change rate {rate}");
    }

    #[test]
    fn parser_chases_distinct_pointers() {
        let program = parser(&p());
        let addrs: Vec<u64> = Executor::new(&program)
            .take(30_000)
            .filter(|d| d.inst.op == vpsim_isa::Opcode::Load)
            .filter_map(|d| d.mem_addr)
            .step_by(2)
            .take(2000)
            .collect();
        let unique: std::collections::HashSet<_> = addrs.iter().collect();
        assert!(unique.len() > addrs.len() / 2, "chain must wander");
    }

    #[test]
    fn vortex_is_call_heavy() {
        let program = vortex(&p());
        let calls = Executor::new(&program)
            .take(20_000)
            .filter(|d| d.inst.op == vpsim_isa::Opcode::Call)
            .count();
        assert!(calls > 1000, "vortex must be call-heavy, got {calls}");
    }

    #[test]
    fn scale_grows_footprints() {
        let small = gzip(&WorkloadParams { scale: 1, ..p() });
        let large = gzip(&WorkloadParams { scale: 4, ..p() });
        assert!(large.initial_mem().len() > small.initial_mem().len() * 3);
    }
}
