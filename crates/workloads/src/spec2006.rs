//! SPEC CPU2006 benchmark analogues (paper Table 3, bottom half).

use crate::patterns::{
    self, computed_switch, endless_outer, init_random_array, init_shuffled_chase, lcg_step, Layout,
};
use crate::WorkloadParams;
use vpsim_isa::{Program, ProgramBuilder, Reg};

/// 401.bzip2 — block-sorting compression.
///
/// Mimics: compare/swap passes over data blocks (data-dependent branch per
/// comparison), byte-frequency histogram increments, and index arithmetic
/// whose deltas are *usually* constant with occasional glitches — the
/// pattern that favors 2-delta stride over plain stride (and where the
/// paper reports bzip2 doing best with 2D-Stride).
pub fn bzip2(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let block_words = 16384 * params.scale;
    let block = layout.array(block_words);
    let hist = layout.array(256);
    let mut r = patterns::rng(params.seed, 0xB21);
    // Mostly-sorted data: real bzip2 blocks are partially ordered by the
    // time the inner sorts run, so the compare/swap branch is biased
    // (~15 % swaps), not a coin flip.
    let values: Vec<u64> = (0..block_words)
        .map(|k| {
            let noise: u64 = rand::Rng::gen_range(&mut r, 0..64);
            (k as u64) * 16 + noise
        })
        .collect();
    b.data_block(block, &values);
    let (p, end, a, c, t, idx) =
        (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5), Reg::int(6));
    endless_outer(&mut b, |b| {
        b.load_imm(p, block as i64);
        b.load_imm(end, (block + (block_words * 8) as u64 - 16) as i64);
        let top = b.bind_label();
        // Compare adjacent elements; swap if out of order (hard branch).
        b.load(a, p, 0);
        b.load(c, p, 8);
        let ordered = b.label();
        b.bge(c, a, ordered);
        b.store(p, c, 0);
        b.store(p, a, 8);
        b.bind(ordered);
        // Histogram the low byte (read-modify-write; per-entry +1 steps).
        b.andi(idx, a, 255 << 3);
        b.load_imm(t, hist as i64);
        b.add(idx, idx, t);
        b.load(t, idx, 0);
        b.addi(t, t, 1);
        b.store(idx, t, 0);
        // Index advance: stride 16 with a rare data-dependent +8 glitch.
        b.addi(p, p, 16);
        b.andi(t, a, 63);
        let no_glitch = b.label();
        let zero = Reg::int(0);
        b.bne(t, zero, no_glitch);
        b.addi(p, p, 8);
        b.bind(no_glitch);
        b.blt(p, end, top);
    });
    b.build().expect("bzip2 analogue is valid")
}

/// 403.gcc — compiler.
///
/// Mimics: opcode dispatch through a computed switch (indirect jumps over
/// many targets), where the value a block produces is a function of *which
/// block ran* — i.e. of recent control flow. This is precisely the
/// correlation VTAGE's global-history indexing captures and per-instruction
/// predictors cannot (the paper reports gcc among VTAGE's best cases).
pub fn gcc(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let ir_words = 32768 * params.scale;
    let ir = layout.array(ir_words);
    // "IR stream": small opcodes with skewed frequencies.
    let mut r = patterns::rng(params.seed, 0x6CC);
    let opcodes: Vec<u64> = (0..ir_words)
        .map(|_| {
            let x: u64 = rand::Rng::gen(&mut r);
            // Heavily skewed: ~60 % opcode 0, tapering tail (keeps the
            // BTB-predicted dispatch mostly right, as profile-dominant
            // compiler opcodes do).
            match x % 20 {
                0..=11 => 0,
                12..=14 => 1,
                15..=16 => 2,
                17 => 3,
                18 => 4 + (x >> 32) % 2,
                _ => 6 + (x >> 33) % 2,
            }
        })
        .collect();
    b.data_block(ir, &opcodes);
    let (p, end, op, v, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
    endless_outer(&mut b, |b| {
        b.load_imm(p, ir as i64);
        b.load_imm(end, (ir + (ir_words * 8) as u64) as i64);
        let top = b.bind_label();
        b.load(op, p, 0);
        b.addi(p, p, 8);
        // Dispatch: 8 handler blocks, each producing a block-specific
        // value (control-flow-correlated).
        computed_switch(b, op, 8, 16, |b, i| {
            // Handler work: a control-flow-correlated constant plus a
            // short serial rewrite chain (compiler IR munging).
            b.load_imm(v, 0x1000 + (i as i64) * 0x111);
            b.add(acc, acc, v);
            b.shri(v, acc, (i as i64 % 5) + 1);
            b.xor(acc, acc, v);
            b.andi(v, acc, 0xFF0);
            b.add(acc, acc, v);
        });
        b.blt(p, end, top);
    });
    b.build().expect("gcc analogue is valid")
}

/// 416.gamess — quantum chemistry.
///
/// Mimics: nested FP loops over two-electron-integral-like terms with an
/// occasional `fdiv` (the non-pipelined unit), plus burst-repetitive FP
/// coefficients (short constant runs then a break) — gamess is listed
/// among the benchmarks whose *baseline* confidence accuracy is lowest
/// (§8.2.2), which this value pattern reproduces.
pub fn gamess(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let n = 4096 * params.scale;
    let coef = layout.array(n);
    let cv: Vec<u64> = (0..n).map(|k| f64::to_bits(((k / 12) % 17) as f64 + 0.5)).collect();
    b.data_block(coef, &cv);
    let (p, end, t) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (x, y, acc, d) = (Reg::float(1), Reg::float(2), Reg::float(3), Reg::float(4));
    endless_outer(&mut b, |b| {
        b.load_imm(p, coef as i64);
        b.load_imm(end, (coef + (n * 8) as u64 - 8) as i64);
        b.load_imm(t, 3);
        b.icvtf(d, t);
        let top = b.bind_label();
        b.load(x, p, 0);
        b.load(y, p, 8);
        b.fmul(x, x, y);
        b.fadd(acc, acc, x);
        // Every 16th element: a normalization divide.
        b.andi(t, p, 127);
        let no_div = b.label();
        let zero = Reg::int(0);
        b.bne(t, zero, no_div);
        b.fdiv(acc, acc, d);
        b.bind(no_div);
        b.addi(p, p, 8);
        b.blt(p, end, top);
    });
    b.build().expect("gamess analogue is valid")
}

/// 429.mcf — single-depot vehicle scheduling (network simplex).
///
/// Mimics: the famous DRAM-bound pointer chase over arc/node structures
/// (shuffled permutation, footprint ≫ L2), with small integer updates and
/// a poorly predictable cost-comparison branch per node. Oracle value
/// prediction shortcuts the load-to-load critical path, giving mcf a large
/// Figure 3 upper bound.
pub fn mcf(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let nodes = 524_288 * params.scale; // 4 MB of pointers: double the L2
    let chain = layout.array(nodes);
    let mut r = patterns::rng(params.seed, 0x3CF);
    init_shuffled_chase(&mut b, chain, nodes, &mut r);
    let (p, v, t, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let (cost, red, arc) = (Reg::int(5), Reg::int(6), Reg::int(7));
    let zero = Reg::int(0);
    b.load_imm(p, chain as i64);
    endless_outer(&mut b, |b| {
        b.load(p, p, 0); // serial DRAM-bound chase to the next node

        // Arc scan at the node: three strided (prefetchable, MLP-friendly)
        // loads plus reduced-cost arithmetic — real mcf interleaves its
        // pointer chase with sequential arc-array sweeps, which is what
        // keeps its speedup potential bounded rather than chase-pure.
        for k in 0..3i64 {
            b.load(arc, p, 8 * (k + 1));
            b.sub(red, cost, arc);
            b.add(cost, cost, red);
            b.shri(red, red, 2);
            b.add(v, v, red);
        }
        // Node kind field: drawn from a tiny value set (real arc structs
        // carry enums/flags), giving mcf its modest VP coverage.
        b.shri(t, p, 9);
        b.andi(t, t, 7);
        b.add(acc, acc, t);
        // Pivot test on the node (poorly predictable).
        b.andi(t, p, 64);
        let skip = b.label();
        b.beq(t, zero, skip);
        b.addi(acc, acc, 3);
        b.sub(cost, cost, acc);
        b.bind(skip);
        b.add(v, v, p);
        b.xor(acc, acc, t);
        b.addi(acc, acc, 1);
    });
    b.build().expect("mcf analogue is valid")
}

/// 433.milc — lattice QCD (SU(3) gauge theory).
///
/// Mimics: streaming sweeps over multi-megabyte lattices with grouped
/// 3×3-complex-matrix arithmetic: long FP chains with modest ILP, strided
/// prefetch-friendly addressing, and FP values with little exploitable
/// locality — the paper observes milc gains nothing (a slight slowdown
/// under baseline counters).
pub fn milc(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let lattice_words = 262_144 * params.scale; // 2 MB
    let lat = layout.array(lattice_words);
    let mut r = patterns::rng(params.seed, 0x313C);
    let lv: Vec<u64> =
        (0..lattice_words).map(|_| f64::to_bits(rand::Rng::gen_range(&mut r, -1.0..1.0))).collect();
    b.data_block(lat, &lv);
    let coupling = layout.array(1);
    b.data(coupling, f64::to_bits(0.125));
    let (p, end, cb) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (a0, a1, a2, s) = (Reg::float(1), Reg::float(2), Reg::float(3), Reg::float(4));
    let g = Reg::float(5);
    endless_outer(&mut b, |b| {
        b.load_imm(cb, coupling as i64);
        b.load_imm(p, lat as i64);
        b.load_imm(end, (lat + (lattice_words * 8) as u64 - 48) as i64);
        let top = b.bind_label();
        // Reload the gauge coupling (loop-invariant: trivially predictable,
        // as real su3 kernels reload spilled constants).
        b.load(g, cb, 0);
        // A 3-element complex-row times column fragment.
        b.load(a0, p, 0);
        b.load(a1, p, 8);
        b.load(a2, p, 16);
        b.fmul(a0, a0, a1);
        b.fmul(a1, a1, a2);
        b.fadd(s, a0, a1);
        b.load(a0, p, 24);
        b.load(a1, p, 32);
        b.fmul(a0, a0, a1);
        b.fadd(s, s, a0);
        b.fmul(s, s, g);
        b.store(p, s, 40);
        b.addi(p, p, 48);
        b.blt(p, end, top);
    });
    b.build().expect("milc analogue is valid")
}

/// 444.namd — molecular dynamics.
///
/// Mimics: neighbor-list force loops — index-array gathers into
/// L2-resident coordinates, with force contributions accumulated into
/// *independent* accumulators (abundant ILP). Coordinates barely change
/// between outer iterations, so values are highly repetitive: coverage is
/// high (~90 % in the paper) yet speedup is marginal because no long
/// dependence chain limits the baseline — exactly namd's Figure 3/6
/// behavior.
pub fn namd(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let atoms = 2048 * params.scale; // 16 KB arrays: gathers hit caches
    let coords = layout.array(atoms);
    let neigh = layout.array(atoms);

    let cv: Vec<u64> = (0..atoms).map(|k| f64::to_bits((k % 97) as f64 * 0.25)).collect();
    b.data_block(coords, &cv);
    let nv: Vec<u64> = (0..atoms).map(|k| coords + (((k * 769 + 1) % atoms) as u64) * 8).collect();
    b.data_block(neigh, &nv);
    let (p, end, q) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (x, y, f0, f1, f2) =
        (Reg::float(1), Reg::float(2), Reg::float(3), Reg::float(4), Reg::float(5));
    endless_outer(&mut b, |b| {
        b.load_imm(p, neigh as i64);
        b.load_imm(end, (neigh + (atoms * 8) as u64 - 24) as i64);
        let top = b.bind_label();
        // Gather three neighbors; accumulate into independent sums.
        b.load(q, p, 0);
        b.load(x, q, 0);
        b.fadd(f0, f0, x);
        b.load(q, p, 8);
        b.load(y, q, 0);
        b.fadd(f1, f1, y);
        b.load(q, p, 16);
        b.load(x, q, 0);
        b.fadd(f2, f2, x);
        b.addi(p, p, 24);
        b.blt(p, end, top);
    });
    b.build().expect("namd analogue is valid")
}

/// 445.gobmk — the game of Go.
///
/// Mimics: board-region scans with pattern-matching branch cascades whose
/// outcomes depend on slowly changing board data (hard, weakly correlated
/// branches), helper calls, and burst-repetitive cell values — another of
/// the paper's low-baseline-accuracy benchmarks.
pub fn gobmk(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let board_words = 512 * params.scale;
    let board = layout.array(board_words);
    let mut r = patterns::rng(params.seed, 0x60B);
    init_random_array(&mut b, board, board_words, &mut r);
    let (p, end, v, t, acc, x) =
        (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5), Reg::int(6));
    let (lr, epoch) = (Reg::int(26), Reg::int(7));
    let zero = Reg::int(0);
    b.load_imm(x, (params.seed | 1) as i64);
    b.load_imm(Reg::int(8), 3); // influence-chain multiplier

    // Helper "liberty count" function.
    let liberties = b.label();
    let over = b.label();
    b.jump(over);
    b.bind(liberties);
    b.andi(t, v, 15);
    b.add(acc, acc, t);
    b.ret(lr);
    b.bind(over);
    endless_outer(&mut b, |b| {
        // Mutate eight random board cells every pass: board state churns
        // fast enough that the scan's branches stay genuinely hard.
        b.addi(epoch, epoch, 1);
        for _ in 0..8 {
            lcg_step(b, x);
            b.andi(t, x, ((board_words - 1) * 8) as i64 & !7);
            b.load_imm(v, board as i64);
            b.add(t, t, v);
            b.store(t, x, 0);
        }
        // Scan the board with a 3-deep pattern cascade.
        b.load_imm(p, board as i64);
        b.load_imm(end, (board + (board_words * 8) as u64) as i64);
        let top = b.bind_label();
        b.load(v, p, 0);
        // Influence propagation: a short serial chain through the scan
        // (each cell's influence feeds the next cell's estimate).
        b.mul(acc, acc, Reg::int(8));
        b.add(acc, acc, v);
        b.shri(acc, acc, 5);
        b.andi(t, v, 3);
        let not_stone = b.label();
        b.bne(t, zero, not_stone);
        b.andi(t, v, 12);
        let not_atari = b.label();
        b.bne(t, zero, not_atari);
        b.call(lr, liberties);
        b.bind(not_atari);
        b.addi(acc, acc, 1);
        b.bind(not_stone);
        b.addi(p, p, 8);
        b.blt(p, end, top);
    });
    b.build().expect("gobmk analogue is valid")
}

/// 456.hmmer — profile hidden-Markov-model search.
///
/// Mimics: the Viterbi dynamic-programming inner loop — strided loads from
/// three DP rows, a max-of-three computed with compare branches whose
/// directions follow run-structured data, and additive score updates whose
/// deltas repeat (stride- and context-predictable in stretches).
pub fn hmmer(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let cols = 2048 * params.scale; // 3 × 16 KB rows: L1/L2 resident
    let m_row = layout.array(cols);
    let i_row = layout.array(cols);
    let d_row = layout.array(cols);
    // Run-structured scores: plateaus of ~512 columns (long profile
    // match-state runs). Value runs must be much longer than FPC's ~129
    // correct-prediction re-saturation distance for confidence to pay
    // off — as they are in the real benchmark.
    let mk = |off: u64| -> Vec<u64> {
        (0..cols).map(|k| ((k as u64 / 512) * 13 + off) & 0xFFFF).collect()
    };
    b.data_block(m_row, &mk(5));
    b.data_block(i_row, &mk(11));
    b.data_block(d_row, &mk(2));

    let (p, end, m, iv, d, best) =
        (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5), Reg::int(6));
    endless_outer(&mut b, |b| {
        b.load_imm(p, 0);
        b.load_imm(end, (cols * 8) as i64);
        b.load_imm(best, 0);
        let top = b.bind_label();
        let (bm, bi, bd) = (Reg::int(7), Reg::int(8), Reg::int(9));
        b.load_imm(bm, m_row as i64);
        b.add(bm, bm, p);
        b.load(m, bm, 0);
        b.load_imm(bi, i_row as i64);
        b.add(bi, bi, p);
        b.load(iv, bi, 0);
        b.load_imm(bd, d_row as i64);
        b.add(bd, bd, p);
        b.load(d, bd, 0);
        // Viterbi recurrence with branch-free (arithmetic) max selection,
        // as vectorized hmmer implementations do: the previous column's
        // `best` feeds the current one through a setlt→mul→add select —
        // the serial loop-carried chain that limits real hmmer, and whose
        // run-structured values VP can break.
        let (sel, diff) = (Reg::int(10), Reg::int(11));
        b.add(m, m, best);
        b.addi(iv, iv, 1);
        b.addi(d, d, 2);
        // m = max(m, iv)
        b.sub(diff, iv, m);
        b.setlt(sel, m, iv);
        b.mul(sel, sel, diff);
        b.add(m, m, sel);
        // best = max(m, d) via one (mostly-untaken) branch
        b.mov(best, m);
        let skip_d = b.label();
        b.bge(best, d, skip_d);
        b.mov(best, d);
        b.bind(skip_d);
        // Normalize so scores stay run-structured instead of diverging.
        b.shri(best, best, 1);
        b.store(bm, best, 0);
        b.addi(p, p, 8);
        b.blt(p, end, top);
    });
    b.build().expect("hmmer analogue is valid")
}

/// 458.sjeng — chess (tree search).
///
/// Mimics: crafty-like bitboard algebra plus a *larger* hash table
/// (L2-straddling probes) and deeper call nesting; values are bursty and
/// weakly predictable, branches irregular.
pub fn sjeng(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let tt_words = 262_144 * params.scale; // 2 MB: straddles the L2
    let tt = layout.array(tt_words);
    let mut r = patterns::rng(params.seed, 0x53E6);
    init_random_array(&mut b, tt, tt_words, &mut r);
    let (board, h, t, x, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
    let (lr, tbase) = (Reg::int(26), Reg::int(6));
    let zero = Reg::int(0);
    b.load_imm(board, 0x0F0F_F0F0_3C3C_C3C3u64 as i64);
    b.load_imm(x, (params.seed | 1) as i64);
    b.load_imm(tbase, tt as i64);
    // "Evaluate" helper with its own nested helper (2-deep RAS).
    let eval = b.label();
    let mobility = b.label();
    let over = b.label();
    b.jump(over);
    b.bind(mobility);
    b.shli(t, board, 2);
    b.xor(t, t, board);
    b.add(acc, acc, t);
    b.ret(Reg::int(25));
    b.bind(eval);
    b.call(Reg::int(25), mobility);
    b.shri(t, board, 3);
    b.and(t, t, board);
    b.add(acc, acc, t);
    b.ret(lr);
    b.bind(over);
    endless_outer(&mut b, |b| {
        // Board mutates in bursts of 6.
        b.addi(Reg::int(7), Reg::int(7), 1);
        b.andi(t, Reg::int(7), 5);
        let keep = b.label();
        b.bne(t, zero, keep);
        lcg_step(b, x);
        b.xor(board, board, x);
        b.bind(keep);
        // Hash probe into the large table.
        b.load_imm(t, patterns::LCG_MUL);
        b.mul(h, board, t);
        b.shri(h, h, 40);
        b.andi(h, h, ((tt_words - 1) * 8) as i64 & !7);
        b.add(h, h, tbase);
        b.load(t, h, 0);
        b.xor(t, t, board);
        b.andi(t, t, 3);
        let miss = b.label();
        b.bne(t, zero, miss);
        b.store(h, board, 0);
        b.bind(miss);
        b.call(lr, eval);
    });
    b.build().expect("sjeng analogue is valid")
}

/// 464.h264ref — video encoding.
///
/// Mimics: sum-of-absolute-differences over 16-pixel rows in *very tight
/// loops* — the highest back-to-back fetch fraction in the suite (§3.2
/// reports up to 15.3 %); residuals are mostly zero/small constants, so a
/// small number of confident predictions lands on the critical path (the
/// paper notes h264 achieves a large speedup from modest coverage).
pub fn h264ref(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let frame_words = 2048 * params.scale; // 16 KB frames: SAD data is hot
    let cur = layout.array(frame_words);
    let reference = layout.array(frame_words);
    // Mostly identical frames: differences are usually zero.
    let mut r = patterns::rng(params.seed, 0x264);
    let base_frame: Vec<u64> = (0..frame_words).map(|k| ((k as u64 * 7) & 255) << 1).collect();
    let mut ref_frame = base_frame.clone();
    for _ in 0..frame_words / 1024 {
        let k = rand::Rng::gen_range(&mut r, 0..frame_words);
        ref_frame[k] ^= 6;
    }
    b.data_block(cur, &base_frame);
    b.data_block(reference, &ref_frame);
    let (pc_, pr, end, a, c, sad, t) =
        (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5), Reg::int(6), Reg::int(7));
    let (dc, q) = (Reg::int(8), Reg::int(9));
    let zero = Reg::int(0);
    endless_outer(&mut b, |b| {
        b.load_imm(pc_, cur as i64);
        b.load_imm(pr, reference as i64);
        b.load_imm(end, (cur + (frame_words * 8) as u64) as i64);
        b.load_imm(q, 23); // quantizer constant
        let block_top = b.bind_label();
        b.load_imm(sad, 0);
        b.load_imm(Reg::int(10), 16);
        // The tight 16-element SAD loop: 8 µops per element (the suite's
        // highest back-to-back fetch fraction lives here).
        let top = b.bind_label();
        b.load(a, pc_, 0);
        b.load(c, pr, 0);
        b.sub(t, a, c);
        let pos = b.label();
        b.bge(t, zero, pos);
        b.sub(t, zero, t);
        b.bind(pos);
        b.add(sad, sad, t);
        b.addi(pc_, pc_, 8);
        b.addi(pr, pr, 8);
        b.addi(Reg::int(10), Reg::int(10), -1);
        b.bne(Reg::int(10), zero, top);
        // Per-block transform/quantization: a serial multiply chain over
        // the block SAD. Because residuals are mostly zero, `sad`, the
        // quantized coefficient and the DC predictor are near-constant —
        // the small set of confident predictions that breaks this chain is
        // exactly how h264 converts modest coverage into a large speedup.
        b.mul(t, sad, q);
        b.shri(t, t, 8);
        b.mul(dc, dc, q);
        b.add(dc, dc, t);
        b.shri(dc, dc, 4);
        b.mul(t, dc, q);
        b.add(dc, dc, t);
        b.blt(pc_, end, block_top);
    });
    b.build().expect("h264ref analogue is valid")
}

/// 470.lbm — lattice Boltzmann fluid dynamics.
///
/// Mimics: streaming relaxation over a multi-megabyte, near-uniform field
/// — long unit-stride FP streams (bandwidth-bound, prefetch-friendly),
/// wide independent FP work per site, and near-constant cell values.
pub fn lbm(params: &WorkloadParams) -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let cells_words = 262_144 * params.scale; // 2 MB
    let src = layout.array(cells_words);
    let dst = layout.array(cells_words);
    let field: Vec<u64> =
        (0..cells_words).map(|k| f64::to_bits(1.0 + ((k % 1024) as f64) * 1e-9)).collect();
    b.data_block(src, &field);
    let (p, end) = (Reg::int(1), Reg::int(2));
    let (f0, f1, f2, om) = (Reg::float(1), Reg::float(2), Reg::float(3), Reg::float(4));
    let t = Reg::int(3);
    let dd = (dst - src) as i64;
    let omega_slot = layout.array(1);
    b.data(omega_slot, f64::to_bits(2.0));
    endless_outer(&mut b, |b| {
        b.load_imm(t, omega_slot as i64);
        b.load(om, t, 0); // loop-invariant relaxation parameter
        b.load_imm(p, src as i64);
        b.load_imm(end, (src + (cells_words * 8) as u64 - 32) as i64);
        let top = b.bind_label();
        b.load(f0, p, 0);
        b.load(f1, p, 8);
        b.load(f2, p, 16);
        b.fadd(f0, f0, f1);
        b.fadd(f0, f0, f2);
        b.fdiv(f1, f0, om);
        b.store(p, f1, dd);
        b.store(p, f2, dd + 8);
        b.addi(p, p, 24);
        b.blt(p, end, top);
    });
    b.build().expect("lbm analogue is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_isa::{Executor, Opcode};

    fn p() -> WorkloadParams {
        WorkloadParams::default()
    }

    #[test]
    fn gcc_dispatches_through_indirect_jumps() {
        let program = gcc(&p());
        let ind =
            Executor::new(&program).take(20_000).filter(|d| d.inst.op == Opcode::JumpInd).count();
        assert!(ind > 500, "gcc must be dispatch-heavy, got {ind}");
    }

    #[test]
    fn gcc_block_values_follow_control_flow() {
        // Values 0x1000..0x1777 appear and vary with the dispatched block.
        let program = gcc(&p());
        let vals: std::collections::HashSet<u64> = Executor::new(&program)
            .take(40_000)
            .filter(|d| d.inst.op == Opcode::LoadImm)
            .filter_map(|d| d.result)
            .filter(|v| (0x1000..0x1800).contains(v))
            .collect();
        assert!(vals.len() >= 6, "most handler blocks must run: {vals:?}");
    }

    #[test]
    fn mcf_is_memory_hostile() {
        let program = mcf(&p());
        // The chase load (into r1) jumps across the 4 MB table; the arc
        // loads are near it by design, so only examine the chase itself.
        let addrs: Vec<u64> = Executor::new(&program)
            .take(20_000)
            .filter(|d| d.inst.op == Opcode::Load && d.inst.dst == Some(Reg::int(1)))
            .filter_map(|d| d.mem_addr)
            .collect();
        assert!(addrs.len() > 100);
        let far = addrs.windows(2).filter(|w| w[0].abs_diff(w[1]) > 4096).count();
        assert!(far * 2 > addrs.len(), "chase must be irregular");
    }

    #[test]
    fn h264_loop_is_tight_and_residuals_small() {
        let program = h264ref(&p());
        let subs: Vec<i64> = Executor::new(&program)
            .take(40_000)
            .filter(|d| d.inst.op == Opcode::Sub && d.inst.dst == Some(Reg::int(7)))
            .map(|d| d.result.unwrap() as i64)
            .collect();
        assert!(subs.len() > 1000);
        let zeros = subs.iter().filter(|&&v| v == 0).count();
        assert!(
            zeros as f64 / subs.len() as f64 > 0.8,
            "most residuals are zero: {zeros}/{}",
            subs.len()
        );
    }

    #[test]
    fn hmmer_arithmetic_select_computes_max() {
        // The setlt→mul→add select must produce max(m, iv): check that the
        // stored best values never decrease within a plateau run.
        let program = hmmer(&p());
        let selects =
            Executor::new(&program).take(40_000).filter(|d| d.inst.op == Opcode::SetLt).count();
        assert!(selects > 1000, "arithmetic select must be exercised: {selects}");
        // Both select outcomes occur across the run.
        let outcomes: std::collections::HashSet<u64> = Executor::new(&program)
            .take(40_000)
            .filter(|d| d.inst.op == Opcode::SetLt)
            .filter_map(|d| d.result)
            .collect();
        assert_eq!(outcomes.len(), 2, "select must take both outcomes: {outcomes:?}");
    }

    #[test]
    fn lbm_and_milc_touch_megabytes() {
        // The arrays are 2 MB each; a 200k-instruction window already
        // streams through more than half a megabyte.
        for program in [lbm(&p()), milc(&p())] {
            let mut min = u64::MAX;
            let mut max = 0u64;
            for d in Executor::new(&program).take(200_000) {
                if let Some(a) = d.mem_addr {
                    min = min.min(a);
                    max = max.max(a);
                }
            }
            assert!(max - min > 500_000, "footprint {}", max - min);
        }
    }

    #[test]
    fn sjeng_nests_calls_two_deep() {
        let program = sjeng(&p());
        let mut depth = 0i32;
        let mut max_depth = 0i32;
        for d in Executor::new(&program).take(20_000) {
            match d.inst.op {
                Opcode::Call => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                Opcode::Ret => depth -= 1,
                _ => {}
            }
        }
        assert!(max_depth >= 2, "max call depth {max_depth}");
    }

    #[test]
    fn bzip2_histogram_counts_increment() {
        let program = bzip2(&p());
        // Stores to the histogram region write incrementing values per slot.
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut monotonic = true;
        for d in Executor::new(&program).take(60_000) {
            if d.inst.op == Opcode::Store {
                if let (Some(addr), Some(v)) = (d.mem_addr, d.store_value) {
                    if v < 10_000 {
                        // histogram slots hold small counters
                        if let Some(&prev) = last.get(&addr) {
                            if v < prev {
                                monotonic = false;
                            }
                        }
                        last.insert(addr, v);
                    }
                }
            }
        }
        assert!(monotonic, "histogram counters must not decrease");
    }

    #[test]
    fn namd_uses_independent_accumulators() {
        let program = namd(&p());
        let fadds: std::collections::HashSet<_> = Executor::new(&program)
            .take(30_000)
            .filter(|d| d.inst.op == Opcode::FAdd)
            .map(|d| d.inst.dst)
            .collect();
        assert!(fadds.len() >= 3, "three independent force accumulators");
    }
}
