//! Small single-behavior kernels used by examples, tests and ablation
//! benches (not part of the Table 3 suite).
//!
//! Each kernel isolates one behavior class: strided values, tight loops
//! (back-to-back fetches, §3.2), pointer chasing, constant values,
//! control-flow-correlated values (VTAGE's specialty), FP dependence
//! chains, and deep call/return nesting.

use crate::patterns::{self, endless_outer, lcg_step, Layout};
use rand::Rng;
use vpsim_isa::{Program, ProgramBuilder, Reg};

/// Sum a `words`-word array with the given element `stride`, forever.
/// Addresses and loop indices are perfectly stride-predictable.
///
/// # Panics
///
/// Panics if `words` is zero or `stride` is zero.
pub fn strided_loop(words: usize, stride: usize) -> Program {
    assert!(words > 0 && stride > 0);
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let base = layout.array(words);
    let mut r = patterns::rng(1, 1);
    patterns::init_random_array(&mut b, base, words, &mut r);
    let (ptr, end, acc, base_r) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    b.load_imm(base_r, base as i64);
    endless_outer(&mut b, |b| {
        b.mov(ptr, base_r);
        b.load_imm(end, (base + (words * 8) as u64) as i64);
        let top = b.bind_label();
        b.load(Reg::int(5), ptr, 0);
        b.add(acc, acc, Reg::int(5));
        b.addi(ptr, ptr, (stride * 8) as i64);
        b.blt(ptr, end, top);
    });
    b.build().expect("valid kernel")
}

/// The tightest possible loop: 3 µops per iteration (add, add, branch).
/// Maximizes the §3.2 back-to-back fetch fraction.
pub fn tight_loop() -> Program {
    let mut b = ProgramBuilder::new();
    let acc = Reg::int(1);
    endless_outer(&mut b, |b| {
        b.addi(acc, acc, 1);
    });
    b.build().expect("valid kernel")
}

/// Chase a shuffled single-cycle permutation of `words` pointers, forever.
/// Serial load-to-load dependence; defeats stride prefetching.
///
/// # Panics
///
/// Panics if `words < 2`.
pub fn pointer_chase(words: usize) -> Program {
    assert!(words >= 2);
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let base = layout.array(words);
    let mut r = patterns::rng(2, 2);
    patterns::init_shuffled_chase(&mut b, base, words, &mut r);
    let p = Reg::int(1);
    b.load_imm(p, base as i64);
    endless_outer(&mut b, |b| {
        b.load(p, p, 0);
    });
    b.build().expect("valid kernel")
}

/// A loop whose loads always return the same value — last-value
/// prediction's best case.
pub fn constant_stream() -> Program {
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let base = layout.array(1);
    b.data(base, 777);
    let (addr, v, acc) = (Reg::int(1), Reg::int(2), Reg::int(3));
    b.load_imm(addr, base as i64);
    endless_outer(&mut b, |b| {
        b.load(v, addr, 0);
        b.add(acc, acc, v);
        b.xori(acc, acc, 0x5A);
    });
    b.build().expect("valid kernel")
}

/// Values correlated with branch direction: an alternating branch selects
/// which constant a µop produces. Context (VTAGE) predictors capture this;
/// last-value and stride predictors cannot.
pub fn branch_correlated_values() -> Program {
    let mut b = ProgramBuilder::new();
    let (phase, v, acc) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let zero = Reg::int(0);
    endless_outer(&mut b, |b| {
        b.xori(phase, phase, 1);
        let else_l = b.label();
        let join = b.label();
        b.beq(phase, zero, else_l);
        b.load_imm(v, 1111);
        b.jump(join);
        b.bind(else_l);
        b.load_imm(v, 2222);
        b.bind(join);
        b.add(acc, acc, v);
    });
    b.build().expect("valid kernel")
}

/// A serialized FP accumulation (3-cycle fadd chain) over near-constant
/// data — the dependence chain value prediction can break.
pub fn fp_reduction(words: usize) -> Program {
    assert!(words > 0);
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let base = layout.array(words);
    let vals: Vec<u64> = (0..words).map(|_| 1.0f64.to_bits()).collect();
    b.data_block(base, &vals);
    let (ptr, end) = (Reg::int(1), Reg::int(2));
    let (acc, x) = (Reg::float(1), Reg::float(2));
    endless_outer(&mut b, |b| {
        b.load_imm(ptr, base as i64);
        b.load_imm(end, (base + (words * 8) as u64) as i64);
        let top = b.bind_label();
        b.load(x, ptr, 0);
        b.fadd(acc, acc, x);
        b.addi(ptr, ptr, 8);
        b.blt(ptr, end, top);
    });
    b.build().expect("valid kernel")
}

/// Alternating call/return through a small set of leaf functions —
/// exercises the RAS and call-produced link values.
pub fn call_ladder() -> Program {
    let mut b = ProgramBuilder::new();
    let lr = Reg::int(26);
    let acc = Reg::int(3);
    let f1 = b.label();
    let f2 = b.label();
    let over = b.label();
    b.jump(over);
    b.bind(f1);
    b.addi(acc, acc, 1);
    b.ret(lr);
    b.bind(f2);
    b.addi(acc, acc, 2);
    b.ret(lr);
    b.bind(over);
    endless_outer(&mut b, |b| {
        b.call(lr, f1);
        b.call(lr, f2);
        b.call(lr, f1);
    });
    b.build().expect("valid kernel")
}

/// Unpredictable data-dependent branches over LCG values: a branch
/// predictor stress kernel.
pub fn random_branches() -> Program {
    let mut b = ProgramBuilder::new();
    let (x, acc) = (Reg::int(1), Reg::int(3));
    b.load_imm(x, 0xACE1);
    endless_outer(&mut b, |b| {
        lcg_step(b, x);
        patterns::random_branch(b, x, 41, |b| {
            b.addi(acc, acc, 1);
        });
        patterns::random_branch(b, x, 51, |b| {
            b.addi(acc, acc, -1);
        });
    });
    b.build().expect("valid kernel")
}

/// A small dense matrix-matrix product (n×n, f64), looped forever. Regular
/// addressing, FP multiply-add chains, triple loop nest.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn matmul(n: usize) -> Program {
    assert!(n > 0);
    let mut b = ProgramBuilder::new();
    let mut layout = Layout::new();
    let a = layout.array(n * n);
    let c = layout.array(n * n);
    let out = layout.array(n * n);
    let mut r = patterns::rng(3, 3);
    let av: Vec<u64> = (0..n * n).map(|_| f64::to_bits(r.gen_range(0.0..2.0))).collect();
    let cv: Vec<u64> = (0..n * n).map(|_| f64::to_bits(r.gen_range(0.0..2.0))).collect();
    b.data_block(a, &av);
    b.data_block(c, &cv);
    let (i, j, k) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (ni, t0, t1, t2) = (Reg::int(4), Reg::int(5), Reg::int(6), Reg::int(7));
    let (acc, x, y) = (Reg::float(1), Reg::float(2), Reg::float(3));
    endless_outer(&mut b, |b| {
        b.load_imm(ni, n as i64);
        b.load_imm(i, 0);
        let li = b.bind_label();
        b.load_imm(j, 0);
        let lj = b.bind_label();
        b.load_imm(k, 0);
        b.load_imm(t2, 0);
        b.icvtf(acc, t2);
        let lk = b.bind_label();
        // acc += A[i*n+k] * C[k*n+j]
        b.mul(t0, i, ni);
        b.add(t0, t0, k);
        b.shli(t0, t0, 3);
        b.load_imm(t1, a as i64);
        b.add(t0, t0, t1);
        b.load(x, t0, 0);
        b.mul(t0, k, ni);
        b.add(t0, t0, j);
        b.shli(t0, t0, 3);
        b.load_imm(t1, c as i64);
        b.add(t0, t0, t1);
        b.load(y, t0, 0);
        b.fmul(x, x, y);
        b.fadd(acc, acc, x);
        b.addi(k, k, 1);
        b.blt(k, ni, lk);
        // out[i*n+j] = acc
        b.mul(t0, i, ni);
        b.add(t0, t0, j);
        b.shli(t0, t0, 3);
        b.load_imm(t1, out as i64);
        b.add(t0, t0, t1);
        b.store(t0, acc, 0);
        b.addi(j, j, 1);
        b.blt(j, ni, lj);
        b.addi(i, i, 1);
        b.blt(i, ni, li);
    });
    b.build().expect("valid kernel")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_isa::Executor;

    fn runs_forever(p: &Program) {
        let n = Executor::new(p).take(20_000).count();
        assert_eq!(n, 20_000, "kernel must not run out of trace");
    }

    #[test]
    fn all_kernels_build_and_run() {
        runs_forever(&strided_loop(64, 8));
        runs_forever(&tight_loop());
        runs_forever(&pointer_chase(1024));
        runs_forever(&constant_stream());
        runs_forever(&branch_correlated_values());
        runs_forever(&fp_reduction(128));
        runs_forever(&call_ladder());
        runs_forever(&random_branches());
        runs_forever(&matmul(8));
    }

    #[test]
    fn constant_stream_loads_are_constant() {
        let p = constant_stream();
        let loads: Vec<u64> = Executor::new(&p)
            .take(5000)
            .filter(|d| d.inst.op == vpsim_isa::Opcode::Load)
            .map(|d| d.result.unwrap())
            .collect();
        assert!(loads.len() > 100);
        assert!(loads.iter().all(|&v| v == 777));
    }

    #[test]
    fn branch_correlated_kernel_alternates_values() {
        let p = branch_correlated_values();
        let vals: Vec<u64> = Executor::new(&p)
            .take(5000)
            .filter(|d| {
                d.inst.op == vpsim_isa::Opcode::LoadImm
                    && (d.result == Some(1111) || d.result == Some(2222))
            })
            .map(|d| d.result.unwrap())
            .collect();
        assert!(vals.len() > 50);
        assert!(vals.windows(2).all(|w| w[0] != w[1]), "strict alternation");
    }

    #[test]
    fn pointer_chase_addresses_are_serial_and_distinct() {
        let p = pointer_chase(256);
        let addrs: Vec<u64> =
            Executor::new(&p).take(3000).filter_map(|d| d.mem_addr).take(256).collect();
        let unique: std::collections::HashSet<_> = addrs.iter().collect();
        assert_eq!(unique.len(), addrs.len(), "one full cycle visits distinct entries");
    }

    #[test]
    fn matmul_produces_fp_results() {
        let p = matmul(4);
        let fp_ops = Executor::new(&p)
            .take(10_000)
            .filter(|d| matches!(d.inst.op, vpsim_isa::Opcode::FMul | vpsim_isa::Opcode::FAdd))
            .count();
        assert!(fp_ops > 500);
    }

    #[test]
    #[should_panic]
    fn strided_loop_rejects_zero_words() {
        let _ = strided_loop(0, 1);
    }
}
