//! Shared code-generation building blocks for the benchmark analogues.
//!
//! Register convention used by the generators: `r28`–`r31` are reserved
//! scratch registers for these helpers; generators own `r1`–`r27` and the
//! FP registers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpsim_isa::{ProgramBuilder, Reg};

/// Scratch registers reserved for pattern helpers.
pub const SCRATCH0: Reg = Reg::int(28);
/// Second helper scratch register.
pub const SCRATCH1: Reg = Reg::int(29);

/// LCG multiplier (Knuth's MMIX).
pub const LCG_MUL: i64 = 6364136223846793005;
/// LCG increment.
pub const LCG_INC: i64 = 1442695040888963407;

/// Bump allocator for non-overlapping data regions.
#[derive(Debug, Clone)]
pub struct Layout {
    next: u64,
}

impl Layout {
    /// Start allocating at 1 MB (clear of the code address range).
    pub fn new() -> Self {
        Layout { next: 0x10_0000 }
    }

    /// Reserve a region of `words` 8-byte words, 4 KB-aligned; returns its
    /// base address.
    pub fn array(&mut self, words: usize) -> u64 {
        let base = self.next;
        let bytes = (words as u64) * 8;
        self.next = (base + bytes + 0xFFF) & !0xFFF;
        base
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::new()
    }
}

/// Deterministic RNG for data initialization.
pub fn rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Emit `x = x * LCG_MUL + LCG_INC` (pseudo-random value evolution; the
/// classic source of *unpredictable* values and branch directions).
pub fn lcg_step(b: &mut ProgramBuilder, x: Reg) {
    b.load_imm(SCRATCH0, LCG_MUL);
    b.mul(x, x, SCRATCH0);
    b.load_imm(SCRATCH0, LCG_INC);
    b.add(x, x, SCRATCH0);
}

/// Emit an unpredictable conditional branch driven by bit `bit` of `x`,
/// skipping over `then_body` when the bit is zero.
pub fn random_branch(
    b: &mut ProgramBuilder,
    x: Reg,
    bit: u8,
    then_body: impl FnOnce(&mut ProgramBuilder),
) {
    let skip = b.label();
    b.shri(SCRATCH0, x, bit as i64);
    b.andi(SCRATCH0, SCRATCH0, 1);
    let zero = Reg::int(0);
    b.beq(SCRATCH0, zero, skip);
    then_body(b);
    b.bind(skip);
}

/// Initialize an array of `words` words at `base` with LCG-random values.
pub fn init_random_array(b: &mut ProgramBuilder, base: u64, words: usize, rng: &mut StdRng) {
    let values: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
    b.data_block(base, &values);
}

/// Initialize a pointer-chase permutation: `table[k]` holds the address of
/// entry `(k + step) % words`, with `gcd(step, words) == 1` guaranteeing a
/// single cycle covering the whole table.
pub fn init_chase_table(b: &mut ProgramBuilder, base: u64, words: usize, step: usize) {
    assert!(gcd(step as u64, words as u64) == 1, "step must generate a full cycle");
    let values: Vec<u64> = (0..words).map(|k| base + (((k + step) % words) as u64) * 8).collect();
    b.data_block(base, &values);
}

/// Initialize a *shuffled* pointer-chase permutation (single cycle, random
/// order — defeats the stride prefetcher, unlike [`init_chase_table`]).
pub fn init_shuffled_chase(b: &mut ProgramBuilder, base: u64, words: usize, rng: &mut StdRng) {
    // Sattolo's algorithm: a uniformly random single-cycle permutation.
    let mut perm: Vec<usize> = (0..words).collect();
    for i in (1..words).rev() {
        let j = rng.gen_range(0..i);
        perm.swap(i, j);
    }
    let mut values = vec![0u64; words];
    for k in 0..words {
        values[k] = base + (perm[k] as u64) * 8;
    }
    b.data_block(base, &values);
}

/// Emit a counted loop: `body(b)` runs `iters` times using `counter` and
/// `limit` (both clobbered). The loop's closing branch is highly
/// predictable — the common loop idiom.
pub fn counted_loop(
    b: &mut ProgramBuilder,
    counter: Reg,
    limit: Reg,
    iters: i64,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    b.load_imm(counter, 0);
    b.load_imm(limit, iters);
    let top = b.bind_label();
    body(b);
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
}

/// Emit an *endless* outer loop around `body` (the simulator stops at its
/// instruction budget; a final `halt` is emitted for completeness after an
/// effectively unreachable bound).
pub fn endless_outer(b: &mut ProgramBuilder, body: impl FnOnce(&mut ProgramBuilder)) {
    let counter = Reg::int(27);
    let limit = SCRATCH1;
    b.load_imm(counter, 0);
    b.load_imm(limit, i64::MAX);
    let top = b.bind_label();
    body(b);
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
}

/// Emit a computed switch over `nblocks` equally sized blocks selected by
/// `idx` (clobbered), exercising indirect-branch prediction. Each block is
/// produced by `block(b, i)` and must not jump out; blocks are padded to a
/// uniform size and joined after the switch.
pub fn computed_switch(
    b: &mut ProgramBuilder,
    idx: Reg,
    nblocks: usize,
    block_insts: usize,
    mut block: impl FnMut(&mut ProgramBuilder, usize),
) {
    let join = b.label();
    let first = b.label();
    // target = &first + idx * block_insts * 4
    b.load_label_addr(SCRATCH0, first);
    b.load_imm(SCRATCH1, (block_insts * 4) as i64);
    b.mul(idx, idx, SCRATCH1);
    b.add(SCRATCH0, SCRATCH0, idx);
    b.jump_ind(SCRATCH0);
    b.bind(first);
    for i in 0..nblocks {
        let start = b.len();
        block(b, i);
        let used = b.len() - start;
        assert!(used < block_insts, "block {i} too large: {used} + jump > {block_insts}");
        for _ in 0..(block_insts - used - 1) {
            b.nop();
        }
        b.jump(join);
    }
    b.bind(join);
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_isa::Executor;

    #[test]
    fn layout_regions_do_not_overlap() {
        let mut l = Layout::new();
        let a = l.array(100);
        let b = l.array(100);
        assert!(b >= a + 800);
        assert_eq!(b % 0x1000, 0, "4 KB aligned");
    }

    #[test]
    fn lcg_step_produces_changing_values() {
        let mut b = ProgramBuilder::new();
        let x = Reg::int(1);
        b.load_imm(x, 42);
        lcg_step(&mut b, x);
        lcg_step(&mut b, x);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.by_ref().for_each(drop);
        assert_ne!(e.reg(x), 42);
    }

    #[test]
    fn chase_table_forms_single_cycle() {
        let mut b = ProgramBuilder::new();
        let base = 0x10000;
        init_chase_table(&mut b, base, 8, 3);
        b.halt();
        let p = b.build().unwrap();
        let e = Executor::new(&p);
        // Follow the chain and verify we return to base after exactly 8 hops.
        let mem = e.memory().clone();
        let mut addr = base;
        for hop in 1..=8 {
            addr = mem.read(addr);
            if hop < 8 {
                assert_ne!(addr, base, "cycle too short at hop {hop}");
            }
        }
        assert_eq!(addr, base);
    }

    #[test]
    fn shuffled_chase_forms_single_cycle() {
        let mut b = ProgramBuilder::new();
        let base = 0x10000;
        let mut r = rng(7, 0);
        init_shuffled_chase(&mut b, base, 64, &mut r);
        b.halt();
        let p = b.build().unwrap();
        let mem = Executor::new(&p).memory().clone();
        let mut addr = base;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(addr), "revisited {addr:#x} early");
            addr = mem.read(addr);
        }
        assert_eq!(addr, base, "must close the cycle after 64 hops");
    }

    #[test]
    #[should_panic(expected = "full cycle")]
    fn chase_table_rejects_short_cycles() {
        let mut b = ProgramBuilder::new();
        init_chase_table(&mut b, 0, 8, 2); // gcd(2,8) != 1
    }

    #[test]
    fn computed_switch_reaches_each_block() {
        let mut b = ProgramBuilder::new();
        let (idx, out) = (Reg::int(1), Reg::int(2));
        for target in 0..4i64 {
            b.load_imm(idx, target);
            computed_switch(&mut b, idx, 4, 4, |b, i| {
                b.load_imm(out, 100 + i as i64);
            });
            b.store(Reg::int(0), out, 0x8000 + target * 8);
        }
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.by_ref().for_each(drop);
        for t in 0..4u64 {
            assert_eq!(e.memory().read(0x8000 + t * 8), 100 + t);
        }
    }

    #[test]
    fn counted_loop_iterates_exactly() {
        let mut b = ProgramBuilder::new();
        let acc = Reg::int(3);
        counted_loop(&mut b, Reg::int(1), Reg::int(2), 10, |b| {
            b.addi(acc, acc, 2);
        });
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.by_ref().for_each(drop);
        assert_eq!(e.reg(acc), 20);
    }

    #[test]
    fn random_branch_takes_both_paths() {
        let mut b = ProgramBuilder::new();
        let (x, hits) = (Reg::int(1), Reg::int(2));
        b.load_imm(x, 0x5EED);
        counted_loop(&mut b, Reg::int(3), Reg::int(4), 64, |b| {
            lcg_step(b, x);
            random_branch(b, x, 33, |b| {
                b.addi(hits, hits, 1);
            });
        });
        b.halt();
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.by_ref().for_each(drop);
        let h = e.reg(hits);
        assert!(h > 10 && h < 54, "hits {h} should be near half of 64");
    }
}
