//! Arithmetic, geometric and harmonic means.
//!
//! The paper summarizes per-benchmark speedups with means ("3.4 % a-mean" in
//! §3.2; the figures implicitly use geometric means for speedups). These
//! helpers all return `None` for empty input so callers cannot silently
//! print a bogus summary row.

/// Arithmetic mean. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(vpsim_stats::mean::arithmetic(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(vpsim_stats::mean::arithmetic(&[]), None);
/// ```
pub fn arithmetic(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean, computed in log-space for numerical stability.
///
/// Returns `None` for an empty slice or if any value is non-positive
/// (a speedup can never legitimately be ≤ 0).
///
/// # Examples
///
/// ```
/// let g = vpsim_stats::mean::geometric(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert_eq!(vpsim_stats::mean::geometric(&[1.0, -1.0]), None);
/// ```
pub fn geometric(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Harmonic mean (the right mean for rates such as IPC at equal work).
///
/// Returns `None` for an empty slice or if any value is non-positive.
///
/// # Examples
///
/// ```
/// let h = vpsim_stats::mean::harmonic(&[1.0, 3.0]).unwrap();
/// assert!((h - 1.5).abs() < 1e-12);
/// ```
pub fn harmonic(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let inv_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / inv_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basic() {
        assert_eq!(arithmetic(&[2.0, 4.0]), Some(3.0));
        assert_eq!(arithmetic(&[]), None);
    }

    #[test]
    fn geometric_basic() {
        let g = geometric(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_rejects_nonpositive() {
        assert_eq!(geometric(&[1.0, 0.0]), None);
        assert_eq!(geometric(&[]), None);
    }

    #[test]
    fn harmonic_basic() {
        let h = harmonic(&[2.0, 2.0]).unwrap();
        assert!((h - 2.0).abs() < 1e-12);
        assert_eq!(harmonic(&[]), None);
        assert_eq!(harmonic(&[0.0]), None);
    }

    #[test]
    fn means_are_ordered_harmonic_le_geometric_le_arithmetic() {
        let vals = [1.0, 2.0, 3.0, 10.0];
        let a = arithmetic(&vals).unwrap();
        let g = geometric(&vals).unwrap();
        let h = harmonic(&vals).unwrap();
        assert!(h <= g && g <= a);
    }

    #[test]
    fn means_of_constant_slice_equal_the_constant() {
        let vals = [3.5; 7];
        assert!((arithmetic(&vals).unwrap() - 3.5).abs() < 1e-12);
        assert!((geometric(&vals).unwrap() - 3.5).abs() < 1e-12);
        assert!((harmonic(&vals).unwrap() - 3.5).abs() < 1e-12);
    }
}
