//! ASCII and CSV table rendering for experiment output.
//!
//! Every table/figure reproduction in `vpsim-bench` is printed through
//! [`Table`], so the output format is uniform and machine-readable
//! (`--csv` in the harness switches to [`Table::to_csv`]).

use std::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use vpsim_stats::table::Table;
///
/// let mut t = Table::new(vec!["bench".into(), "speedup".into()]);
/// t.row(vec!["gzip".into(), "1.04".into()]);
/// t.row(vec!["h264ref".into(), "1.39".into()]);
/// let ascii = t.to_ascii();
/// assert!(ascii.contains("gzip"));
/// assert!(t.to_csv().starts_with("bench,speedup"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Append a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the width of the table.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header cells.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn width(&self) -> usize {
        self.rows.iter().map(Vec::len).chain(std::iter::once(self.headers.len())).max().unwrap_or(0)
    }

    /// Render as a column-aligned ASCII table with a header separator.
    pub fn to_ascii(&self) -> String {
        let ncols = self.width();
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        render_row(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row, &widths);
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        csv_row(&mut out, &self.headers);
        for row in &self.rows {
            csv_row(&mut out, row);
        }
        out
    }

    /// Render as a JSON array of objects, one per row, keyed by the column
    /// headers. Cells are already formatted text, so every value is a JSON
    /// string; missing cells of short rows become `""`.
    pub fn to_json(&self) -> String {
        let ncols = self.width();
        let mut out = String::from("[\n");
        for (r, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for i in 0..ncols {
                if i > 0 {
                    out.push_str(", ");
                }
                let header = self.headers.get(i).map(String::as_str).unwrap_or("");
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&json_string(header));
                out.push_str(": ");
                out.push_str(&json_string(cell));
            }
            out.push('}');
            if r + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii())
    }
}

fn render_row(out: &mut String, cells: &[String], widths: &[usize]) {
    for (i, width) in widths.iter().enumerate() {
        let cell = cells.get(i).map(String::as_str).unwrap_or("");
        let pad = width - cell.chars().count().min(*width);
        if i > 0 {
            out.push_str("  ");
        }
        // Right-align numeric-looking cells, left-align text.
        if looks_numeric(cell) {
            out.push_str(&" ".repeat(pad));
            out.push_str(cell);
        } else {
            out.push_str(cell);
            out.push_str(&" ".repeat(pad));
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

fn looks_numeric(cell: &str) -> bool {
    !cell.is_empty()
        && cell
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | '%' | 'x' | 'e'))
        && cell.chars().any(|c| c.is_ascii_digit())
}

fn csv_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if cell.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Format a float with `digits` decimal places (convenience for table cells).
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Format a fraction as a percentage with `digits` decimals, e.g. `0.0345` →
/// `"3.45%"`.
pub fn fmt_pct(fraction: f64, digits: usize) -> String {
    format!("{:.digits$}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["alpha".into(), "1.25".into()]);
        t.row(vec!["beta".into(), "10.50".into()]);
        t
    }

    #[test]
    fn ascii_contains_all_cells_and_separator() {
        let s = sample().to_ascii();
        for needle in ["name", "value", "alpha", "beta", "1.25", "10.50", "---"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn ascii_aligns_columns() {
        let s = sample().to_ascii();
        let lines: Vec<&str> = s.lines().collect();
        // "alpha" and "beta " should start at column 0; numbers right-aligned.
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[3].starts_with("beta"));
        assert!(lines[2].ends_with("1.25"));
        assert!(lines[3].ends_with("10.50"));
    }

    #[test]
    fn csv_round_trips_simple_cells() {
        let csv = sample().to_csv();
        assert_eq!(csv, "name,value\nalpha,1.25\nbeta,10.50\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn json_emits_one_object_per_row() {
        let json = sample().to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains(r#"{"name": "alpha", "value": "1.25"},"#));
        assert!(json.contains(r#"{"name": "beta", "value": "10.50"}"#));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn json_escapes_special_characters_and_pads_short_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["say \"hi\"\nthere\\".into()]);
        let json = t.to_json();
        assert!(json.contains(r#""say \"hi\"\nthere\\""#), "bad escaping in:\n{json}");
        assert!(json.contains(r#""b": """#), "missing padded cell in:\n{json}");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only".into()]);
        let s = t.to_ascii();
        assert!(s.contains("only"));
        assert_eq!(t.width(), 3);
    }

    #[test]
    fn long_rows_extend_width() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.width(), 2);
        assert!(t.to_ascii().contains('2'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.0345, 1), "3.5%");
    }

    #[test]
    fn display_matches_ascii() {
        let t = sample();
        assert_eq!(format!("{t}"), t.to_ascii());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["x".into()]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let s = t.to_ascii();
        assert!(s.starts_with('x'));
    }
}
