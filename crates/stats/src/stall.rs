//! Per-cycle stall attribution for the pipeline event tap.
//!
//! The timing model in `vpsim-uarch` can stream typed per-cycle events into a
//! [`PipeEventSink`]; the aggregate those events reduce to lives here so the
//! numbers flow through the same dependency-free crate as every other
//! statistic the harness prints.
//!
//! Attribution is *exclusive and exhaustive*: every simulated cycle is
//! assigned exactly one [`CycleCause`] — [`CycleCause::Active`] when at least
//! one µop retired that cycle, otherwise one of the six stall causes derived
//! from the state of the window head at commit time. Consequently the per-
//! cause counts of a [`StallReport`] always sum to the total cycle count, and
//! the stall causes alone sum to the simulator's commit-idle counter — the
//! conservation laws the differential tests in `vpsim-uarch` and
//! `vpsim-bench` assert on every grid cell.
//!
//! [`PipeEventSink`]: ../../vpsim_uarch/tap/trait.PipeEventSink.html

use crate::table::{fmt_f, fmt_pct};

/// Exclusive attribution of one simulated cycle.
///
/// A cycle is [`Active`](CycleCause::Active) when at least one µop retired;
/// otherwise the cause names the oldest-µop bottleneck that prevented
/// retirement (see the variant docs for the exact head-state mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleCause {
    /// At least one µop committed this cycle.
    Active,
    /// The window is empty (or its head has not left the front-end) and the
    /// front end is not refilling it fast enough: instruction-cache misses,
    /// branch-redirect bubbles, or frontend latency.
    FetchStarve,
    /// The head µop has finished the front end but cannot enter the backend:
    /// a structural resource (ROB/IQ/LSQ/PRF) is exhausted.
    DispatchBlock,
    /// The head is a non-memory µop waiting in the issue queue or executing:
    /// operands not ready or FU latency not yet elapsed.
    IssueWait,
    /// The head is a load or store waiting to issue or complete: cache
    /// misses, MSHR pressure, DRAM latency, or memory-order serialization.
    MemWait,
    /// The head was fetched as part of squash recovery (its sequence number
    /// is at or below the youngest µop ever squashed) and is still being
    /// re-fetched or re-decoded: the refill shadow of a value/memory-order
    /// misprediction.
    SquashRecovery,
    /// The head has completed but cannot retire: the retire port is blocked
    /// by in-order commit semantics (only possible mid-group; a lone
    /// completed head always retires, so this names retire-width pressure).
    CommitBlock,
}

impl CycleCause {
    /// Number of distinct causes (the width of [`StallReport::cycles`]).
    pub const COUNT: usize = 7;

    /// Every cause, in report-column order ([`Active`](CycleCause::Active)
    /// first, then the six stall causes).
    pub const ALL: [CycleCause; CycleCause::COUNT] = [
        CycleCause::Active,
        CycleCause::FetchStarve,
        CycleCause::DispatchBlock,
        CycleCause::IssueWait,
        CycleCause::MemWait,
        CycleCause::SquashRecovery,
        CycleCause::CommitBlock,
    ];

    /// Stable column index of this cause within [`StallReport::cycles`].
    pub fn index(self) -> usize {
        match self {
            CycleCause::Active => 0,
            CycleCause::FetchStarve => 1,
            CycleCause::DispatchBlock => 2,
            CycleCause::IssueWait => 3,
            CycleCause::MemWait => 4,
            CycleCause::SquashRecovery => 5,
            CycleCause::CommitBlock => 6,
        }
    }

    /// Human-readable kebab-case label, as used in report headers.
    pub fn label(self) -> &'static str {
        match self {
            CycleCause::Active => "active",
            CycleCause::FetchStarve => "fetch-starve",
            CycleCause::DispatchBlock => "dispatch-block",
            CycleCause::IssueWait => "issue-wait",
            CycleCause::MemWait => "mem-wait",
            CycleCause::SquashRecovery => "squash-recovery",
            CycleCause::CommitBlock => "commit-block",
        }
    }

    /// `true` for every cause except [`Active`](CycleCause::Active).
    pub fn is_stall(self) -> bool {
        !matches!(self, CycleCause::Active)
    }
}

/// Structure occupancies sampled at the end of a cycle, attached to each
/// per-cycle event so the report can derive mean occupancy per structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Occupancy {
    /// Re-order buffer entries in use.
    pub rob: u32,
    /// Issue-queue entries in use.
    pub iq: u32,
    /// Load-queue entries in use.
    pub lq: u32,
    /// Store-queue entries in use.
    pub sq: u32,
    /// Fetch-queue (front-end) µops in flight.
    pub fetch_queue: u32,
}

/// Aggregated per-cycle attribution plus per-stage event counts for one
/// simulation run (or one measured region, via [`StallReport::delta`]).
///
/// # Examples
///
/// ```
/// use vpsim_stats::stall::{CycleCause, Occupancy, StallReport};
///
/// let mut r = StallReport::default();
/// r.record_cycles(CycleCause::Active, 3, Occupancy { rob: 12, ..Default::default() });
/// r.record_cycles(CycleCause::MemWait, 1, Occupancy { rob: 16, ..Default::default() });
/// assert_eq!(r.total_cycles(), 4);
/// assert_eq!(r.stall_cycles(), 1);
/// assert!((r.fraction(CycleCause::MemWait) - 0.25).abs() < 1e-12);
/// assert!((r.mean_rob() - 13.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StallReport {
    /// Cycles attributed to each cause, indexed by [`CycleCause::index`].
    pub cycles: [u64; CycleCause::COUNT],
    /// Cycle-weighted ROB occupancy sum (divide by total cycles for a mean).
    pub rob_occupancy: u64,
    /// Cycle-weighted issue-queue occupancy sum.
    pub iq_occupancy: u64,
    /// Cycle-weighted load-queue occupancy sum.
    pub lq_occupancy: u64,
    /// Cycle-weighted store-queue occupancy sum.
    pub sq_occupancy: u64,
    /// Cycle-weighted fetch-queue occupancy sum.
    pub fq_occupancy: u64,
    /// µops allocated into the window by the front end.
    pub fetched: u64,
    /// µops renamed and inserted into the backend.
    pub dispatched: u64,
    /// µop issue events (selective-reissue re-executions included).
    pub issued: u64,
    /// µop completion (writeback) events.
    pub writebacks: u64,
    /// µops retired.
    pub committed: u64,
    /// Value predictions validated at execute (a reissued µop revalidates).
    pub vp_validations: u64,
    /// Validations whose predicted value mismatched the computed result.
    pub vp_mispredictions: u64,
    /// Pipeline squashes caused by a value misprediction at commit.
    pub vp_squashes: u64,
    /// Pipeline squashes caused by a memory-order violation.
    pub order_squashes: u64,
    /// µops discarded by all squashes combined.
    pub squashed_uops: u64,
    /// Dependent µops re-executed by selective reissue.
    pub reissued: u64,
}

impl StallReport {
    /// Attribute `span` consecutive cycles to `cause`, sampled at occupancy
    /// `occ` (constant across the span — batched `idle_skip` spans by
    /// construction cover cycles in which no pipeline state changes).
    pub fn record_cycles(&mut self, cause: CycleCause, span: u64, occ: Occupancy) {
        self.cycles[cause.index()] += span;
        self.rob_occupancy += u64::from(occ.rob) * span;
        self.iq_occupancy += u64::from(occ.iq) * span;
        self.lq_occupancy += u64::from(occ.lq) * span;
        self.sq_occupancy += u64::from(occ.sq) * span;
        self.fq_occupancy += u64::from(occ.fetch_queue) * span;
    }

    /// Total cycles attributed (all causes, including `Active`).
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Cycles attributed to any stall cause (everything except `Active`).
    pub fn stall_cycles(&self) -> u64 {
        self.total_cycles() - self.cycles[CycleCause::Active.index()]
    }

    /// Cycles attributed to `cause`.
    pub fn cause_cycles(&self, cause: CycleCause) -> u64 {
        self.cycles[cause.index()]
    }

    /// Fraction of all attributed cycles assigned to `cause` (`0.0` for an
    /// empty report).
    pub fn fraction(&self, cause: CycleCause) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.cause_cycles(cause) as f64 / total as f64
        }
    }

    /// Mean ROB occupancy over all attributed cycles.
    pub fn mean_rob(&self) -> f64 {
        self.mean(self.rob_occupancy)
    }

    /// Mean issue-queue occupancy over all attributed cycles.
    pub fn mean_iq(&self) -> f64 {
        self.mean(self.iq_occupancy)
    }

    /// Mean load-queue occupancy over all attributed cycles.
    pub fn mean_lq(&self) -> f64 {
        self.mean(self.lq_occupancy)
    }

    /// Mean store-queue occupancy over all attributed cycles.
    pub fn mean_sq(&self) -> f64 {
        self.mean(self.sq_occupancy)
    }

    /// Mean fetch-queue occupancy over all attributed cycles.
    pub fn mean_fq(&self) -> f64 {
        self.mean(self.fq_occupancy)
    }

    fn mean(&self, weighted: u64) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            weighted as f64 / total as f64
        }
    }

    /// Field-wise difference `self - earlier`: the report for the region
    /// between two snapshots of the same accumulating tally.
    pub fn delta(&self, earlier: &StallReport) -> StallReport {
        let mut cycles = [0u64; CycleCause::COUNT];
        for (i, slot) in cycles.iter_mut().enumerate() {
            *slot = self.cycles[i] - earlier.cycles[i];
        }
        StallReport {
            cycles,
            rob_occupancy: self.rob_occupancy - earlier.rob_occupancy,
            iq_occupancy: self.iq_occupancy - earlier.iq_occupancy,
            lq_occupancy: self.lq_occupancy - earlier.lq_occupancy,
            sq_occupancy: self.sq_occupancy - earlier.sq_occupancy,
            fq_occupancy: self.fq_occupancy - earlier.fq_occupancy,
            fetched: self.fetched - earlier.fetched,
            dispatched: self.dispatched - earlier.dispatched,
            issued: self.issued - earlier.issued,
            writebacks: self.writebacks - earlier.writebacks,
            committed: self.committed - earlier.committed,
            vp_validations: self.vp_validations - earlier.vp_validations,
            vp_mispredictions: self.vp_mispredictions - earlier.vp_mispredictions,
            vp_squashes: self.vp_squashes - earlier.vp_squashes,
            order_squashes: self.order_squashes - earlier.order_squashes,
            squashed_uops: self.squashed_uops - earlier.squashed_uops,
            reissued: self.reissued - earlier.reissued,
        }
    }

    /// Column headers matching [`StallReport::cells`], for table rendering.
    pub fn headers() -> Vec<String> {
        let mut h = vec!["Cycles".to_string()];
        h.extend(CycleCause::ALL.iter().map(|c| c.label().to_string()));
        h.extend(["ROB-avg", "IQ-avg", "LQ-avg", "SQ-avg", "FQ-avg"].map(String::from));
        h
    }

    /// Formatted cells matching [`StallReport::headers`]: total cycles, the
    /// per-cause percentage breakdown, and mean structure occupancies.
    pub fn cells(&self) -> Vec<String> {
        let mut cells = vec![self.total_cycles().to_string()];
        cells.extend(CycleCause::ALL.iter().map(|c| fmt_pct(self.fraction(*c), 2)));
        cells.extend(
            [self.mean_rob(), self.mean_iq(), self.mean_lq(), self.mean_sq(), self.mean_fq()]
                .map(|v| fmt_f(v, 1)),
        );
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(rob: u32, iq: u32) -> Occupancy {
        Occupancy { rob, iq, lq: 1, sq: 2, fetch_queue: 3 }
    }

    #[test]
    fn attribution_is_exclusive_and_sums_to_total() {
        let mut r = StallReport::default();
        r.record_cycles(CycleCause::Active, 10, occ(8, 4));
        r.record_cycles(CycleCause::FetchStarve, 5, occ(0, 0));
        r.record_cycles(CycleCause::MemWait, 85, occ(32, 16));
        assert_eq!(r.total_cycles(), 100);
        assert_eq!(r.stall_cycles(), 90);
        let by_cause: u64 = CycleCause::ALL.iter().map(|c| r.cause_cycles(*c)).sum();
        assert_eq!(by_cause, r.total_cycles());
        assert!((r.fraction(CycleCause::MemWait) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn occupancy_means_are_cycle_weighted() {
        let mut r = StallReport::default();
        r.record_cycles(CycleCause::Active, 1, occ(10, 0));
        r.record_cycles(CycleCause::IssueWait, 3, occ(2, 4));
        // (10*1 + 2*3) / 4 = 4.0 ; (0*1 + 4*3) / 4 = 3.0
        assert!((r.mean_rob() - 4.0).abs() < 1e-12);
        assert!((r.mean_iq() - 3.0).abs() < 1e-12);
        assert!((r.mean_lq() - 1.0).abs() < 1e-12);
        assert!((r.mean_sq() - 2.0).abs() < 1e-12);
        assert!((r.mean_fq() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_fractions_and_means() {
        let r = StallReport::default();
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.fraction(CycleCause::Active), 0.0);
        assert_eq!(r.mean_rob(), 0.0);
    }

    #[test]
    fn delta_subtracts_every_field() {
        let mut early = StallReport::default();
        early.record_cycles(CycleCause::Active, 4, occ(2, 2));
        early.committed = 4;
        early.fetched = 6;
        let mut late = early;
        late.record_cycles(CycleCause::CommitBlock, 6, occ(30, 1));
        late.committed = 14;
        late.fetched = 20;
        late.vp_squashes = 2;
        let d = late.delta(&early);
        assert_eq!(d.total_cycles(), 6);
        assert_eq!(d.cause_cycles(CycleCause::CommitBlock), 6);
        assert_eq!(d.cause_cycles(CycleCause::Active), 0);
        assert_eq!(d.committed, 10);
        assert_eq!(d.fetched, 14);
        assert_eq!(d.vp_squashes, 2);
        assert_eq!(d.rob_occupancy, 180);
    }

    #[test]
    fn headers_and_cells_line_up() {
        let mut r = StallReport::default();
        r.record_cycles(CycleCause::Active, 50, occ(16, 8));
        r.record_cycles(CycleCause::DispatchBlock, 50, occ(16, 8));
        let headers = StallReport::headers();
        let cells = r.cells();
        assert_eq!(headers.len(), cells.len());
        assert_eq!(cells[0], "100");
        // Column 1 is "active", column 3 is "dispatch-block".
        assert_eq!(cells[1], "50.00%");
        assert_eq!(cells[3], "50.00%");
        assert_eq!(cells[headers.len() - 5], "16.0");
    }

    #[test]
    fn cause_index_is_consistent_with_all_order() {
        for (i, cause) in CycleCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
        assert!(CycleCause::MemWait.is_stall());
        assert!(!CycleCause::Active.is_stall());
    }
}
