//! Interval-sampling estimators: point estimate and confidence interval
//! from per-interval IPC observations.
//!
//! Sampled replay (`vpsim-uarch`'s sampling layer) measures K intervals of
//! the trace in detail and treats their IPCs as observations of the
//! workload's steady-state IPC. With systematic sampling the sample mean
//! is an unbiased point estimate, and the usual small-sample (Student's t)
//! half-width quantifies how far the truth plausibly lies from it —
//! exactly what a sweep needs to decide whether two configurations differ
//! by more than sampling noise.

use crate::mean;

/// A sample-based estimate: mean, 95 % half-width, and sample size.
///
/// The interval is `mean ± half_width`. [`SampleEstimate::relative_error`]
/// gives the half-width as a fraction of the mean, the number the ≤1 %
/// acceptance bound in CI is stated in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEstimate {
    /// Arithmetic mean of the observations (the point estimate).
    pub mean: f64,
    /// 95 % confidence half-width (`t · s / √n`); `0.0` when `n < 2`.
    pub half_width: f64,
    /// Number of observations the estimate is built from.
    pub n: usize,
}

impl SampleEstimate {
    /// Lower edge of the 95 % confidence interval.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper edge of the 95 % confidence interval.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Half-width as a fraction of the mean; `0.0` for a zero mean.
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided 95 % Student's t critical values for `df = 1..=30`. Beyond 30
/// degrees of freedom the normal approximation (1.96) is used, standard
/// practice for sampled-simulation error reporting.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95 % t critical value for `df` degrees of freedom.
fn t_critical(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T_95.len() {
        T_95[df - 1]
    } else {
        1.96
    }
}

/// Estimate the population mean from per-interval observations: sample
/// mean ± `t₀.₉₅ · s / √n` (sample standard deviation `s`, Student's t
/// with `n − 1` degrees of freedom).
///
/// Returns `None` for an empty slice. A single observation yields a
/// zero-width interval (there is no spread information; callers that need
/// a bound should sample ≥ 2 intervals).
///
/// # Examples
///
/// ```
/// let ipcs = [1.98, 2.02, 2.00, 1.99, 2.01];
/// let est = vpsim_stats::sample::confidence_interval(&ipcs).unwrap();
/// assert!((est.mean - 2.0).abs() < 1e-12);
/// assert!(est.lower() < 2.0 && 2.0 < est.upper());
/// assert!(est.relative_error() < 0.01, "tight sample: sub-1% error");
/// ```
pub fn confidence_interval(values: &[f64]) -> Option<SampleEstimate> {
    let m = mean::arithmetic(values)?;
    let n = values.len();
    if n < 2 {
        return Some(SampleEstimate { mean: m, half_width: 0.0, n });
    }
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64;
    let half_width = t_critical(n - 1) * var.sqrt() / (n as f64).sqrt();
    Some(SampleEstimate { mean: m, half_width, n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_none() {
        assert_eq!(confidence_interval(&[]), None);
    }

    #[test]
    fn single_observation_has_zero_width() {
        let est = confidence_interval(&[1.5]).unwrap();
        assert_eq!(est.mean, 1.5);
        assert_eq!(est.half_width, 0.0);
        assert_eq!(est.n, 1);
    }

    #[test]
    fn constant_observations_have_zero_width() {
        let est = confidence_interval(&[2.0; 10]).unwrap();
        assert_eq!(est.mean, 2.0);
        assert_eq!(est.half_width, 0.0);
    }

    #[test]
    fn hand_computed_two_point_interval() {
        // mean 2, s = √2, t(df=1) = 12.706 → half-width = 12.706·√2/√2.
        let est = confidence_interval(&[1.0, 3.0]).unwrap();
        assert_eq!(est.mean, 2.0);
        assert!((est.half_width - 12.706).abs() < 1e-9);
        assert!((est.lower() - (2.0 - 12.706)).abs() < 1e-9);
        assert!((est.upper() - (2.0 + 12.706)).abs() < 1e-9);
    }

    #[test]
    fn wider_spread_gives_wider_interval() {
        let tight = confidence_interval(&[1.9, 2.0, 2.1, 2.0, 1.95, 2.05]).unwrap();
        let loose = confidence_interval(&[1.0, 3.0, 1.5, 2.5, 1.2, 2.8]).unwrap();
        assert!(loose.half_width > tight.half_width);
    }

    #[test]
    fn more_samples_shrink_the_interval() {
        // Same alternating spread, more observations.
        let few: Vec<f64> = (0..4).map(|i| if i % 2 == 0 { 1.9 } else { 2.1 }).collect();
        let many: Vec<f64> = (0..24).map(|i| if i % 2 == 0 { 1.9 } else { 2.1 }).collect();
        let a = confidence_interval(&few).unwrap();
        let b = confidence_interval(&many).unwrap();
        assert!(b.half_width < a.half_width);
    }

    #[test]
    fn t_critical_matches_the_table_and_tail() {
        assert_eq!(t_critical(1), 12.706);
        assert_eq!(t_critical(30), 2.042);
        assert_eq!(t_critical(31), 1.96);
        assert_eq!(t_critical(0), f64::INFINITY);
    }

    #[test]
    fn relative_error_is_halfwidth_over_mean() {
        let est = SampleEstimate { mean: 2.0, half_width: 0.01, n: 20 };
        assert!((est.relative_error() - 0.005).abs() < 1e-15);
        let zero = SampleEstimate { mean: 0.0, half_width: 0.01, n: 20 };
        assert_eq!(zero.relative_error(), 0.0);
    }
}
