//! Statistics collection and presentation for the vpsim simulator.
//!
//! This crate is deliberately dependency-free: every number the benchmark
//! harness prints flows through the types defined here, so keeping it small
//! and well-tested makes the experiment tables trustworthy.
//!
//! The main entry points are:
//!
//! * [`RunMetrics`] — cycles/instructions of a simulation run, with
//!   [`RunMetrics::ipc`] and [`speedup`] helpers.
//! * [`VpStats`] — value-prediction coverage/accuracy bookkeeping exactly as
//!   defined in the paper (§8.2.2).
//! * [`BranchStats`], [`CacheStats`] — substrate statistics.
//! * [`mean`] — arithmetic/geometric/harmonic means used for the "a-mean"
//!   and "g-mean" rows of the figures.
//! * [`sample`] — point estimate + Student's-t confidence interval from
//!   per-interval IPC observations (the sampled-replay estimator).
//! * [`stall`] — per-cycle stall attribution ([`stall::CycleCause`],
//!   [`stall::StallReport`]) aggregated from the pipeline event tap.
//! * [`table::Table`] — ASCII, CSV and JSON rendering of result tables.
//!
//! # Examples
//!
//! ```
//! use vpsim_stats::{RunMetrics, speedup};
//!
//! let base = RunMetrics { cycles: 2_000, instructions: 1_000 };
//! let vp = RunMetrics { cycles: 1_600, instructions: 1_000 };
//! assert!((speedup(&base, &vp) - 1.25).abs() < 1e-12);
//! ```

pub mod mean;
pub mod sample;
pub mod stall;
pub mod table;

/// Cycles and retired-instruction counts of one simulation run.
///
/// # Examples
///
/// ```
/// use vpsim_stats::RunMetrics;
/// let m = RunMetrics { cycles: 500, instructions: 1_000 };
/// assert_eq!(m.ipc(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RunMetrics {
    /// Total cycles elapsed between the first fetch and the last commit.
    pub cycles: u64,
    /// Instructions retired (committed) during the measured region.
    pub instructions: u64,
}

impl RunMetrics {
    /// Instructions per cycle. Returns `0.0` for an empty run.
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// Cycles per instruction. Returns `0.0` for an empty run.
    pub fn cpi(&self) -> f64 {
        ratio(self.cycles, self.instructions)
    }
}

/// Speedup of `new` over `base`: `IPC(new) / IPC(base)` for runs retiring the
/// same instruction count, computed as a cycle ratio to avoid rounding.
///
/// Returns `1.0` when either run is degenerate (zero cycles).
pub fn speedup(base: &RunMetrics, new: &RunMetrics) -> f64 {
    if base.cycles == 0 || new.cycles == 0 || base.instructions == 0 || new.instructions == 0 {
        return 1.0;
    }
    // speedup = (inst_new/cyc_new) / (inst_base/cyc_base)
    (new.instructions as f64 * base.cycles as f64) / (new.cycles as f64 * base.instructions as f64)
}

/// Value-prediction bookkeeping, following the paper's definitions:
///
/// * **eligible** — µops producing a register and therefore candidates for VP;
/// * **used** — predictions actually injected into the pipeline (confidence
///   saturated at prediction time);
/// * **coverage** = used / eligible;
/// * **accuracy** = correct-used / used.
///
/// `hits`/`correct_unused` additionally track table hits whose confidence was
/// too low to be used, which the paper's §8.2.2 discussion of the
/// accuracy-vs-coverage trade-off relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VpStats {
    /// µops eligible for value prediction (produce a readable register).
    pub eligible: u64,
    /// Lookups that hit a predictor entry (confident or not).
    pub hits: u64,
    /// Predictions used by the pipeline (confidence saturated).
    pub used: u64,
    /// Used predictions whose value matched the architectural result.
    pub correct_used: u64,
    /// Used predictions whose value did not match (recovery triggered unless
    /// no consumer had issued).
    pub mispredicted: u64,
    /// Unused (low-confidence) predictions that would have been correct.
    pub correct_unused: u64,
    /// Mispredictions for which no dependent µop had issued, so recovery was
    /// skipped (the prediction is silently replaced by the computed result).
    pub harmless_mispredictions: u64,
}

impl VpStats {
    /// Fraction of eligible µops whose prediction was used.
    pub fn coverage(&self) -> f64 {
        ratio(self.used, self.eligible)
    }

    /// Fraction of used predictions that were correct.
    pub fn accuracy(&self) -> f64 {
        ratio(self.correct_used, self.used)
    }

    /// Mispredictions per kilo-instruction for a run of `instructions`.
    pub fn mispredictions_per_kinst(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.mispredicted as f64 * 1000.0 / instructions as f64
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &VpStats) {
        self.eligible += other.eligible;
        self.hits += other.hits;
        self.used += other.used;
        self.correct_used += other.correct_used;
        self.mispredicted += other.mispredicted;
        self.correct_unused += other.correct_unused;
        self.harmless_mispredictions += other.harmless_mispredictions;
    }
}

/// Conditional-branch direction and target prediction statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BranchStats {
    /// Conditional branches executed.
    pub conditional: u64,
    /// Conditional direction mispredictions.
    pub direction_mispredictions: u64,
    /// Indirect/return target mispredictions (BTB/RAS misses included).
    pub target_mispredictions: u64,
    /// Unconditional control transfers (jumps, calls, returns).
    pub unconditional: u64,
}

impl BranchStats {
    /// All control-flow mispredictions.
    pub fn total_mispredictions(&self) -> u64 {
        self.direction_mispredictions + self.target_mispredictions
    }

    /// Mispredictions per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.total_mispredictions() as f64 * 1000.0 / instructions as f64
        }
    }

    /// Direction prediction accuracy over conditional branches.
    pub fn direction_accuracy(&self) -> f64 {
        if self.conditional == 0 {
            1.0
        } else {
            1.0 - self.direction_mispredictions as f64 / self.conditional as f64
        }
    }
}

/// Per-cache access/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CacheStats {
    /// Demand accesses (reads + writes), excluding prefetches.
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Prefetches issued by this cache's prefetcher.
    pub prefetches: u64,
    /// Prefetched lines that were later hit by a demand access.
    pub useful_prefetches: u64,
}

impl CacheStats {
    /// Demand hit rate; `1.0` when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// The §3.2 statistic: how many VP-eligible µops were fetched in the cycle
/// immediately following the fetch of their previous dynamic occurrence.
///
/// The paper reports up to 15.3 % and a 3.4 % arithmetic mean over its
/// benchmark subset (8-wide fetch); the statistic motivates VTAGE's
/// insensitivity to back-to-back prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BackToBackStats {
    /// VP-eligible µops observed at fetch.
    pub eligible: u64,
    /// Eligible µops whose previous occurrence was fetched one cycle earlier.
    pub back_to_back: u64,
}

impl BackToBackStats {
    /// Fraction of eligible µops fetched back-to-back.
    pub fn fraction(&self) -> f64 {
        ratio(self.back_to_back, self.eligible)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_cpi() {
        let m = RunMetrics { cycles: 400, instructions: 1000 };
        assert!((m.ipc() - 2.5).abs() < 1e-12);
        assert!((m.cpi() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ipc_of_empty_run_is_zero() {
        assert_eq!(RunMetrics::default().ipc(), 0.0);
        assert_eq!(RunMetrics::default().cpi(), 0.0);
    }

    #[test]
    fn speedup_is_cycle_ratio_for_equal_instruction_counts() {
        let base = RunMetrics { cycles: 2000, instructions: 1000 };
        let new = RunMetrics { cycles: 1000, instructions: 1000 };
        assert!((speedup(&base, &new) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_accounts_for_different_instruction_counts() {
        let base = RunMetrics { cycles: 2000, instructions: 1000 };
        let new = RunMetrics { cycles: 2000, instructions: 2000 };
        assert!((speedup(&base, &new) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_of_degenerate_runs_is_one() {
        let ok = RunMetrics { cycles: 10, instructions: 10 };
        assert_eq!(speedup(&RunMetrics::default(), &ok), 1.0);
        assert_eq!(speedup(&ok, &RunMetrics::default()), 1.0);
    }

    #[test]
    fn vp_coverage_and_accuracy() {
        let s = VpStats {
            eligible: 1000,
            hits: 700,
            used: 400,
            correct_used: 399,
            mispredicted: 1,
            correct_unused: 100,
            harmless_mispredictions: 0,
        };
        assert!((s.coverage() - 0.4).abs() < 1e-12);
        assert!((s.accuracy() - 0.9975).abs() < 1e-12);
        assert!((s.mispredictions_per_kinst(10_000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn vp_stats_merge_adds_fields() {
        let mut a = VpStats {
            eligible: 1,
            hits: 2,
            used: 3,
            correct_used: 4,
            mispredicted: 5,
            correct_unused: 6,
            harmless_mispredictions: 7,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.eligible, 2);
        assert_eq!(a.hits, 4);
        assert_eq!(a.used, 6);
        assert_eq!(a.correct_used, 8);
        assert_eq!(a.mispredicted, 10);
        assert_eq!(a.correct_unused, 12);
        assert_eq!(a.harmless_mispredictions, 14);
    }

    #[test]
    fn branch_stats_mpki_and_accuracy() {
        let b = BranchStats {
            conditional: 1000,
            direction_mispredictions: 20,
            target_mispredictions: 5,
            unconditional: 100,
        };
        assert_eq!(b.total_mispredictions(), 25);
        assert!((b.mpki(100_000) - 0.25).abs() < 1e-12);
        assert!((b.direction_accuracy() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn branch_accuracy_with_no_branches_is_one() {
        assert_eq!(BranchStats::default().direction_accuracy(), 1.0);
    }

    #[test]
    fn cache_hit_rate() {
        let c = CacheStats { accesses: 100, misses: 10, prefetches: 0, useful_prefetches: 0 };
        assert!((c.hit_rate() - 0.9).abs() < 1e-12);
        assert!((c.mpki(1000) - 10.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn back_to_back_fraction() {
        let s = BackToBackStats { eligible: 200, back_to_back: 30 };
        assert!((s.fraction() - 0.15).abs() < 1e-12);
        assert_eq!(BackToBackStats::default().fraction(), 0.0);
    }
}
