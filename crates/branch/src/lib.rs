//! Branch prediction substrate for vpsim: a TAGE conditional-direction
//! predictor, a set-associative BTB for indirect targets, and a return
//! address stack.
//!
//! The paper's simulated front-end (Table 2) uses "TAGE 1+12 components,
//! 15K-entry total, 20 cycles min. mis. penalty; 2-way 4K-entry BTB,
//! 32-entry RAS". This crate reproduces that configuration. One deviation
//! is documented in `ARCHITECTURE.md` ("Model simplifications"): the
//! maximum TAGE history length is capped
//! at 128 bits so the predictor can share the pipeline's single
//! [`vpsim_core::HistoryState`] register (the original TAGE uses several
//! hundred bits; on our workloads the accuracy difference is marginal).
//!
//! All three structures follow the same in-order protocol as the value
//! predictors in `vpsim-core`: speculative lookup at fetch, training at
//! commit, [`Tage::squash_after`] on pipeline squashes.
//!
//! # Examples
//!
//! ```
//! use vpsim_branch::Tage;
//! use vpsim_core::HistoryState;
//!
//! let mut tage = Tage::with_defaults(1);
//! let mut hist = HistoryState::default();
//! // A loop branch taken 7 times then not taken, repeatedly.
//! let mut correct = 0;
//! let mut seq = 0;
//! for trip in 0..200 {
//!     let taken = trip % 8 != 7;
//!     let pred = tage.predict(seq, 0x40, &hist);
//!     if pred == taken { correct += 1; }
//!     tage.train(seq, taken);
//!     hist.push_branch(0x40, taken);
//!     seq += 1;
//! }
//! assert!(correct > 150, "TAGE must learn the loop pattern, got {correct}");
//! ```

mod btb;
mod ras;
mod tage;

pub use btb::Btb;
pub use ras::{Ras, RasCheckpoint};
pub use tage::{Tage, TageConfig};
