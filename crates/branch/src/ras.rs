//! Return Address Stack (paper Table 2: 32 entries).
//!
//! The RAS is updated speculatively at fetch (push on call, pop on return)
//! and repaired on squashes by restoring the stack-pointer checkpoint taken
//! when the squashing instruction was fetched. As in real hardware, entries
//! overwritten after the checkpoint are *not* restored — a deep
//! call/return sequence on the wrong path can still corrupt the stack,
//! which is the standard, accepted imprecision of sp-checkpoint repair.

use vpsim_core::state::{StateReader, StateWriter};

/// A fixed-size circular return address stack with sp checkpointing.
///
/// # Examples
///
/// ```
/// use vpsim_branch::Ras;
/// let mut ras = Ras::with_defaults();
/// ras.push(0x104);
/// ras.push(0x208);
/// assert_eq!(ras.pop(), Some(0x208));
/// assert_eq!(ras.pop(), Some(0x104));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u64>,
    /// Index of the next free slot (top of stack is `sp - 1`).
    sp: usize,
    /// Number of live entries (≤ capacity); avoids popping garbage.
    depth: usize,
}

/// A checkpoint of the RAS control state ([`Ras::checkpoint`] /
/// [`Ras::restore`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RasCheckpoint {
    sp: usize,
    depth: usize,
}

impl Ras {
    /// The paper's configuration: 32 entries.
    pub fn with_defaults() -> Self {
        Ras::new(32)
    }

    /// Create with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Ras { stack: vec![0; capacity], sp: 0, depth: 0 }
    }

    /// Push a return address (call at fetch). Overwrites the oldest entry
    /// when full (circular).
    pub fn push(&mut self, return_address: u64) {
        let cap = self.stack.len();
        self.stack[self.sp] = return_address;
        self.sp = (self.sp + 1) % cap;
        self.depth = (self.depth + 1).min(cap);
    }

    /// Pop the predicted return address (return at fetch); `None` when the
    /// stack is empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let cap = self.stack.len();
        self.sp = (self.sp + cap - 1) % cap;
        self.depth -= 1;
        Some(self.stack[self.sp])
    }

    /// Snapshot the control state for squash repair.
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint { sp: self.sp, depth: self.depth }
    }

    /// Restore a checkpoint taken earlier. Stack *contents* overwritten
    /// since the checkpoint are not recovered (see module docs).
    pub fn restore(&mut self, cp: RasCheckpoint) {
        self.sp = cp.sp % self.stack.len();
        self.depth = cp.depth.min(self.stack.len());
    }

    /// Serialize the stack contents and control state for a sampling
    /// checkpoint.
    pub fn save_state(&self, w: &mut StateWriter) {
        for &addr in &self.stack {
            w.u64(addr);
        }
        w.u64(self.sp as u64);
        w.u64(self.depth as u64);
    }

    /// Restore state captured by [`Ras::save_state`] into a stack of the
    /// same capacity.
    pub fn load_state(&mut self, r: &mut StateReader) -> Result<(), String> {
        for addr in &mut self.stack {
            *addr = r.u64()?;
        }
        let sp = r.u64()? as usize;
        let depth = r.u64()? as usize;
        if sp >= self.stack.len() || depth > self.stack.len() {
            return Err(format!("RAS state out of range: sp {sp}, depth {depth}"));
        }
        self.sp = sp;
        self.depth = depth;
        Ok(())
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.stack.len()
    }
}

impl Default for Ras {
    fn default() -> Self {
        Ras::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo_order() {
        let mut ras = Ras::new(4);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_keeps_youngest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "oldest entry was lost to wrap-around");
    }

    #[test]
    fn checkpoint_restore_repairs_wrong_path_pops() {
        let mut ras = Ras::new(8);
        ras.push(0xA);
        ras.push(0xB);
        let cp = ras.checkpoint();
        // Wrong path pops both entries.
        assert_eq!(ras.pop(), Some(0xB));
        assert_eq!(ras.pop(), Some(0xA));
        ras.restore(cp);
        // Contents below sp were never overwritten, so repair is exact here.
        assert_eq!(ras.pop(), Some(0xB));
        assert_eq!(ras.pop(), Some(0xA));
    }

    #[test]
    fn checkpoint_restore_after_wrong_path_pushes() {
        let mut ras = Ras::new(8);
        ras.push(0xA);
        let cp = ras.checkpoint();
        ras.push(0xBAD);
        ras.restore(cp);
        assert_eq!(ras.pop(), Some(0xA), "sp repair discards wrong-path push");
    }

    #[test]
    fn depth_tracks_live_entries() {
        let mut ras = Ras::new(4);
        assert_eq!(ras.depth(), 0);
        ras.push(1);
        ras.push(2);
        assert_eq!(ras.depth(), 2);
        ras.pop();
        assert_eq!(ras.depth(), 1);
        assert_eq!(ras.capacity(), 4);
    }

    #[test]
    fn save_load_state_round_trips_the_full_stack() {
        let mut ras = Ras::new(4);
        for addr in [0xA, 0xB, 0xC, 0xD, 0xE] {
            ras.push(addr); // wraps once
        }
        ras.pop();
        let mut w = StateWriter::new();
        ras.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Ras::new(4);
        let mut r = StateReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.depth(), ras.depth());
        loop {
            let (a, b) = (ras.pop(), restored.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn load_state_rejects_out_of_range_pointers() {
        let mut good = Ras::new(4);
        good.push(1);
        let mut w = StateWriter::new();
        good.save_state(&mut w);
        let mut bytes = w.into_bytes();
        // Corrupt sp to an out-of-range value.
        let sp_off = 4 * 8;
        bytes[sp_off..sp_off + 8].copy_from_slice(&99u64.to_le_bytes());
        assert!(Ras::new(4).load_state(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = Ras::new(0);
    }
}
