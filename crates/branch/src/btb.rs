//! Branch Target Buffer: a 2-way set-associative target cache
//! (paper Table 2: "2-way 4K-entry BTB").
//!
//! In this trace-driven model, direct targets are available from the
//! instruction immediate at decode, so the BTB's performance-critical role
//! is **indirect** target prediction (`JumpInd`); returns go through the
//! [`crate::Ras`] instead.

use vpsim_core::state::{StateReader, StateWriter};

/// A 2-way set-associative branch target buffer with LRU replacement.
///
/// # Examples
///
/// ```
/// use vpsim_branch::Btb;
/// let mut btb = Btb::with_defaults();
/// assert_eq!(btb.lookup(0x40), None);
/// btb.update(0x40, 0x1000);
/// assert_eq!(btb.lookup(0x40), Some(0x1000));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<[Way; 2]>,
    index_bits: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    tag: u64,
    target: u64,
    lru: bool, // true = this way is the least recently used
}

impl Btb {
    /// The paper's configuration: 4K entries, 2-way (2048 sets).
    pub fn with_defaults() -> Self {
        Btb::new(4096)
    }

    /// Create with `entries` total entries (2-way; must be an even power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is less than 2.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two() && entries >= 2);
        let sets = entries / 2;
        Btb { sets: vec![[Way::default(); 2]; sets], index_bits: sets.trailing_zeros() }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }

    fn tag(&self, pc: u64) -> u64 {
        pc >> (2 + self.index_bits)
    }

    /// Predicted target for the control µop at `pc`, if present.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let index = self.index(pc);
        let tag = self.tag(pc);
        let set = &mut self.sets[index];
        for w in 0..2 {
            if set[w].valid && set[w].tag == tag {
                set[w].lru = false;
                set[1 - w].lru = true;
                return Some(set[w].target);
            }
        }
        None
    }

    /// Install or refresh the target for `pc` (called at branch resolution).
    pub fn update(&mut self, pc: u64, target: u64) {
        let index = self.index(pc);
        let tag = self.tag(pc);
        let set = &mut self.sets[index];
        // Hit: refresh target and recency.
        for w in 0..2 {
            if set[w].valid && set[w].tag == tag {
                set[w].target = target;
                set[w].lru = false;
                set[1 - w].lru = true;
                return;
            }
        }
        // Miss: fill an invalid way, else the LRU way.
        let victim =
            (0..2).find(|&w| !set[w].valid).unwrap_or_else(|| if set[0].lru { 0 } else { 1 });
        set[victim] = Way { valid: true, tag, target, lru: false };
        set[1 - victim].lru = true;
    }

    /// Serialize every way (tags, targets, recency) for a sampling
    /// checkpoint.
    pub fn save_state(&self, w: &mut StateWriter) {
        for set in &self.sets {
            for way in set {
                w.bool(way.valid);
                w.u64(way.tag);
                w.u64(way.target);
                w.bool(way.lru);
            }
        }
    }

    /// Restore state captured by [`Btb::save_state`] into a BTB of the same
    /// geometry.
    pub fn load_state(&mut self, r: &mut StateReader) -> Result<(), String> {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                way.valid = r.bool()?;
                way.tag = r.u64()?;
                way.target = r.u64()?;
                way.lru = r.bool()?;
            }
        }
        Ok(())
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.sets.len() * 2
    }

    /// `true` if the BTB has no entries (never for a constructed BTB).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::with_defaults();
        assert_eq!(btb.lookup(0x40), None);
        btb.update(0x40, 0x999);
        assert_eq!(btb.lookup(0x40), Some(0x999));
    }

    #[test]
    fn update_refreshes_target() {
        let mut btb = Btb::with_defaults();
        btb.update(0x40, 0x1);
        btb.update(0x40, 0x2);
        assert_eq!(btb.lookup(0x40), Some(0x2));
    }

    #[test]
    fn two_way_associativity_holds_two_conflicting_pcs() {
        let mut btb = Btb::new(4); // 2 sets
        let stride = 2 * 4; // pcs mapping to the same set
        btb.update(0, 0xA);
        btb.update(stride, 0xB);
        assert_eq!(btb.lookup(0), Some(0xA));
        assert_eq!(btb.lookup(stride), Some(0xB));
    }

    #[test]
    fn lru_way_is_evicted_on_conflict() {
        let mut btb = Btb::new(4); // 2 sets, 2 ways
        let stride = 2 * 4;
        btb.update(0, 0xA);
        btb.update(stride, 0xB);
        // Touch pc 0 so `stride` becomes LRU.
        assert_eq!(btb.lookup(0), Some(0xA));
        btb.update(2 * stride, 0xC);
        assert_eq!(btb.lookup(0), Some(0xA), "MRU entry survives");
        assert_eq!(btb.lookup(stride), None, "LRU entry evicted");
        assert_eq!(btb.lookup(2 * stride), Some(0xC));
    }

    #[test]
    fn save_load_state_preserves_targets_and_recency() {
        let mut btb = Btb::new(8);
        for i in 0..16u64 {
            btb.update(i * 4, 0x1000 + i);
        }
        btb.lookup(0); // perturb recency
        let mut w = StateWriter::new();
        btb.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = Btb::new(8);
        let mut r = StateReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        for pc in (0..64).step_by(4) {
            assert_eq!(btb.lookup(pc), restored.lookup(pc), "pc {pc:#x}");
        }
        // Future fills pick the same victims.
        btb.update(0x400, 0xAA);
        restored.update(0x400, 0xAA);
        for pc in (0..64).step_by(4) {
            assert_eq!(btb.lookup(pc), restored.lookup(pc), "post-fill pc {pc:#x}");
        }
    }

    #[test]
    fn len_reports_total_entries() {
        assert_eq!(Btb::with_defaults().len(), 4096);
        assert!(!Btb::with_defaults().is_empty());
    }
}
