//! The TAGE conditional branch direction predictor (Seznec & Michaud,
//! JILP 2006) — the front-end predictor of the paper's Table 2
//! configuration, and the ancestor of ITTAGE from which VTAGE derives.

use vpsim_core::history::{fold, HistoryState};
use vpsim_core::inflight::Inflight;
use vpsim_core::state::{StateReader, StateWriter};
use vpsim_core::Lfsr;

/// Maximum tagged components.
const MAX_COMPONENTS: usize = 16;
/// `u`-bit graceful-aging period (branches between column resets).
const U_RESET_PERIOD: u64 = 256 * 1024;

/// TAGE geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// Entries in the bimodal base predictor.
    pub bimodal_entries: usize,
    /// Entries in each tagged component.
    pub component_entries: usize,
    /// History length per tagged component, strictly increasing (≤ 128).
    pub history_lengths: Vec<u32>,
    /// Tag width per tagged component.
    pub tag_bits: Vec<u32>,
}

impl Default for TageConfig {
    /// The paper's "1+12 components, 15K-entry total": an 8K-entry bimodal
    /// base plus 12 tagged components of 512 entries (14 336 entries
    /// total), geometric history lengths 4…128.
    fn default() -> Self {
        TageConfig {
            bimodal_entries: 8192,
            component_entries: 512,
            history_lengths: vec![4, 6, 8, 12, 16, 24, 32, 48, 64, 80, 100, 128],
            tag_bits: vec![8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13],
        }
    }
}

impl TageConfig {
    fn validate(&self) {
        assert!(self.bimodal_entries.is_power_of_two());
        assert!(self.component_entries.is_power_of_two());
        assert_eq!(self.history_lengths.len(), self.tag_bits.len());
        assert!(!self.history_lengths.is_empty() && self.history_lengths.len() <= MAX_COMPONENTS);
        assert!(self.history_lengths.windows(2).all(|w| w[0] < w[1]));
        assert!(self.history_lengths.iter().all(|&l| l <= 128), "history capped at 128 bits");
        assert!(self.tag_bits.iter().all(|&t| (1..=16).contains(&t)));
    }

    /// Total entries across all tables (the paper quotes ~15K).
    pub fn total_entries(&self) -> usize {
        self.bimodal_entries + self.component_entries * self.history_lengths.len()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    valid: bool,
    tag: u16,
    /// 3-bit signed counter in [-4, 3]; taken ⇔ `ctr >= 0`.
    ctr: i8,
    /// 2-bit usefulness counter.
    u: u8,
}

#[derive(Debug, Clone, Copy)]
struct Record {
    bim_index: u32,
    indices: [u16; MAX_COMPONENTS],
    tags: [u16; MAX_COMPONENTS],
    /// 0 = bimodal, 1..=N = tagged rank.
    provider: u8,
    /// Rank of the alternate prediction's provider.
    alt_provider: u8,
    pred: bool,
    alt_pred: bool,
    /// `true` when the provider entry was newly allocated (weak ctr, u==0):
    /// the alternate prediction was used instead (USE_ALT_ON_NA).
    used_alt: bool,
}

/// The TAGE direction predictor.
///
/// Speculative [`Tage::predict`] at fetch, in-order [`Tage::train`] at
/// commit, [`Tage::squash_after`] on squash — the same protocol as the
/// value predictors (prediction metadata is carried per in-flight branch,
/// as hardware does in the branch info queue).
#[derive(Debug, Clone)]
pub struct Tage {
    config: TageConfig,
    bimodal: Vec<i8>, // 2-bit counters in [-2, 1]; taken ⇔ >= 0
    components: Vec<Vec<TaggedEntry>>,
    comp_bits: u32,
    bim_bits: u32,
    lfsr: Lfsr,
    inflight: Inflight<Record>,
    trained_branches: u64,
}

impl Tage {
    /// The paper's configuration.
    pub fn with_defaults(seed: u64) -> Self {
        Tage::new(TageConfig::default(), seed)
    }

    /// Create with an explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`TageConfig`]).
    pub fn new(config: TageConfig, seed: u64) -> Self {
        config.validate();
        Tage {
            bimodal: vec![0; config.bimodal_entries],
            components: vec![
                vec![TaggedEntry::default(); config.component_entries];
                config.history_lengths.len()
            ],
            comp_bits: config.component_entries.trailing_zeros(),
            bim_bits: config.bimodal_entries.trailing_zeros(),
            config,
            lfsr: Lfsr::new(seed ^ 0x7A6E_0000),
            inflight: Inflight::new(),
            trained_branches: 0,
        }
    }

    /// The geometry in use.
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    fn bim_index(&self, pc: u64) -> u32 {
        ((pc >> 2) & ((1 << self.bim_bits) - 1)) as u32
    }

    fn comp_index(&self, pc: u64, hist: &HistoryState, rank: usize) -> u16 {
        let len = self.config.history_lengths[rank - 1];
        let pcs = pc >> 2;
        let h = pcs
            ^ (pcs >> (self.comp_bits as usize - rank % self.comp_bits as usize).max(1))
            ^ fold(hist.ghist, len, self.comp_bits)
            ^ fold(hist.path as u128, 3 * len.min(8), self.comp_bits);
        (h & ((1 << self.comp_bits) - 1)) as u16
    }

    fn comp_tag(&self, pc: u64, hist: &HistoryState, rank: usize) -> u16 {
        let len = self.config.history_lengths[rank - 1];
        let bits = self.config.tag_bits[rank - 1];
        let pcs = pc >> 2;
        let t = pcs ^ fold(hist.ghist, len, bits) ^ (fold(hist.ghist, len, (bits - 1).max(1)) << 1);
        (t & ((1u64 << bits) - 1)) as u16
    }

    /// Predict the direction of the conditional branch at `pc` under the
    /// speculative history `hist`. `seq` is the dynamic sequence number of
    /// the branch µop (in-order, as for value predictors).
    pub fn predict(&mut self, seq: u64, pc: u64, hist: &HistoryState) -> bool {
        let rec = self.lookup(pc, hist);
        let pred = rec.pred;
        self.inflight.push(seq, rec);
        pred
    }

    /// The table lookup shared by [`Tage::predict`] and
    /// [`Tage::train_committed`]: indices, tags, provider selection and
    /// the prediction, with no state change.
    fn lookup(&self, pc: u64, hist: &HistoryState) -> Record {
        let n = self.config.history_lengths.len();
        let bim_index = self.bim_index(pc);
        let mut indices = [0u16; MAX_COMPONENTS];
        let mut tags = [0u16; MAX_COMPONENTS];
        let mut provider = 0u8;
        let mut alt_provider = 0u8;
        for rank in 1..=n {
            indices[rank - 1] = self.comp_index(pc, hist, rank);
            tags[rank - 1] = self.comp_tag(pc, hist, rank);
            let e = &self.components[rank - 1][indices[rank - 1] as usize];
            if e.valid && e.tag == tags[rank - 1] {
                alt_provider = provider;
                provider = rank as u8;
            }
        }
        let bim_pred = self.bimodal[bim_index as usize] >= 0;
        let alt_pred = if alt_provider == 0 {
            bim_pred
        } else {
            self.components[alt_provider as usize - 1][indices[alt_provider as usize - 1] as usize]
                .ctr
                >= 0
        };
        let (pred, used_alt) = if provider == 0 {
            (bim_pred, false)
        } else {
            let e =
                &self.components[provider as usize - 1][indices[provider as usize - 1] as usize];
            // USE_ALT_ON_NA: a newly allocated entry (weak counter, not yet
            // useful) defers to the alternate prediction.
            let newly_allocated = e.u == 0 && (e.ctr == 0 || e.ctr == -1);
            if newly_allocated {
                (alt_pred, true)
            } else {
                (e.ctr >= 0, false)
            }
        };
        Record { bim_index, indices, tags, provider, alt_provider, pred, alt_pred, used_alt }
    }

    /// Train with the resolved direction of branch `seq` (commit order).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not the oldest in-flight branch.
    pub fn train(&mut self, seq: u64, taken: bool) {
        let rec = self.inflight.pop(seq);
        self.train_record(&rec, taken);
    }

    /// Predict-and-train fused for committed-path streaming (the sampling
    /// warmer): identical state updates to `predict` immediately followed
    /// by `train`, without touching the in-flight queue.
    pub fn train_committed(&mut self, pc: u64, taken: bool, hist: &HistoryState) {
        let rec = self.lookup(pc, hist);
        self.train_record(&rec, taken);
    }

    fn train_record(&mut self, rec: &Record, taken: bool) {
        let n = self.config.history_lengths.len();
        let mispredicted = rec.pred != taken;

        if rec.provider == 0 {
            bump2(&mut self.bimodal[rec.bim_index as usize], taken);
        } else {
            let rank = rec.provider as usize;
            let idx = rec.indices[rank - 1] as usize;
            // Provider counter always trains toward the outcome.
            {
                let e = &mut self.components[rank - 1][idx];
                if e.valid && e.tag == rec.tags[rank - 1] {
                    bump3(&mut e.ctr, taken);
                }
            }
            // The alternate trains too when the provider was newly
            // allocated and its prediction was used.
            if rec.used_alt {
                if rec.alt_provider == 0 {
                    bump2(&mut self.bimodal[rec.bim_index as usize], taken);
                } else {
                    let ar = rec.alt_provider as usize;
                    let e = &mut self.components[ar - 1][rec.indices[ar - 1] as usize];
                    if e.valid && e.tag == rec.tags[ar - 1] {
                        bump3(&mut e.ctr, taken);
                    }
                }
            }
            // Usefulness: when provider and alternate disagree, u tracks
            // whether the provider was right.
            let provider_pred = {
                let e = &self.components[rank - 1][idx];
                e.ctr >= 0
            };
            if provider_pred != rec.alt_pred {
                let e = &mut self.components[rank - 1][idx];
                if provider_pred == taken {
                    e.u = (e.u + 1).min(3);
                } else {
                    e.u = e.u.saturating_sub(1);
                }
            }
        }

        // Allocation on misprediction (never from the longest component).
        if mispredicted && (rec.provider as usize) < n {
            let start = rec.provider as usize + 1;
            let mut candidates = [0usize; MAX_COMPONENTS];
            let mut ncand = 0usize;
            for rank in start..=n {
                let e = &self.components[rank - 1][rec.indices[rank - 1] as usize];
                if !e.valid || e.u == 0 {
                    candidates[ncand] = rank;
                    ncand += 1;
                }
            }
            let candidates = &candidates[..ncand];
            if candidates.is_empty() {
                for rank in start..=n {
                    let e = &mut self.components[rank - 1][rec.indices[rank - 1] as usize];
                    e.u = e.u.saturating_sub(1);
                }
            } else {
                // Prefer shorter histories (2:1 bias), as in TAGE.
                let pick = if candidates.len() > 1 && !self.lfsr.chance(2) {
                    candidates[0]
                } else {
                    candidates[(self.lfsr.next_value() as usize) % candidates.len()]
                };
                self.components[pick - 1][rec.indices[pick - 1] as usize] = TaggedEntry {
                    valid: true,
                    tag: rec.tags[pick - 1],
                    ctr: if taken { 0 } else { -1 },
                    u: 0,
                };
            }
        }

        // Graceful aging of u bits.
        self.trained_branches += 1;
        if self.trained_branches.is_multiple_of(U_RESET_PERIOD) {
            for comp in &mut self.components {
                for e in comp.iter_mut() {
                    e.u >>= 1;
                }
            }
        }
    }

    /// Discard in-flight predictions younger than `seq`.
    pub fn squash_after(&mut self, seq: u64) {
        self.inflight.squash_after(seq);
    }

    /// Serialize the committed training state (bimodal + tagged tables,
    /// allocation LFSR, aging counter) for a sampling checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if predictions are in flight — checkpoints are only taken at
    /// quiescent points where every `predict` has been matched by a `train`
    /// (the functional warmer trains immediately after predicting).
    pub fn save_state(&self, w: &mut StateWriter) {
        assert!(self.inflight.is_empty(), "cannot checkpoint TAGE with in-flight predictions");
        for &ctr in &self.bimodal {
            w.i8(ctr);
        }
        for comp in &self.components {
            for e in comp {
                w.bool(e.valid);
                w.u16(e.tag);
                w.i8(e.ctr);
                w.u8(e.u);
            }
        }
        w.u64(self.lfsr.state());
        w.u64(self.trained_branches);
    }

    /// Restore state captured by [`Tage::save_state`] into a predictor
    /// constructed with the same geometry. In-flight predictions are
    /// discarded.
    pub fn load_state(&mut self, r: &mut StateReader) -> Result<(), String> {
        for ctr in &mut self.bimodal {
            *ctr = r.i8()?;
        }
        for comp in &mut self.components {
            for e in comp.iter_mut() {
                e.valid = r.bool()?;
                e.tag = r.u16()?;
                e.ctr = r.i8()?;
                e.u = r.u8()?;
            }
        }
        self.lfsr = Lfsr::from_state(r.u64()?);
        self.trained_branches = r.u64()?;
        self.inflight = Inflight::new();
        Ok(())
    }

    /// Storage in bits (for documentation tables).
    pub fn storage_bits(&self) -> usize {
        let mut bits = self.config.bimodal_entries * 2;
        for t in &self.config.tag_bits {
            bits += self.config.component_entries * (*t as usize + 3 + 2);
        }
        bits
    }
}

/// Saturating 2-bit signed bump in [-2, 1].
fn bump2(ctr: &mut i8, taken: bool) {
    *ctr = if taken { (*ctr + 1).min(1) } else { (*ctr - 1).max(-2) };
}

/// Saturating 3-bit signed bump in [-4, 3].
fn bump3(ctr: &mut i8, taken: bool) {
    *ctr = if taken { (*ctr + 1).min(3) } else { (*ctr - 1).max(-4) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern(pattern: &[bool], reps: usize, pc: u64) -> f64 {
        let mut tage = Tage::with_defaults(1);
        let mut hist = HistoryState::default();
        let mut seq = 0;
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..reps {
            for &taken in pattern {
                let pred = tage.predict(seq, pc, &hist);
                if pred == taken {
                    correct += 1;
                }
                total += 1;
                tage.train(seq, taken);
                hist.push_branch(pc, taken);
                seq += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn always_taken_is_learned_immediately() {
        let acc = run_pattern(&[true], 200, 0x40);
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn alternating_branch_is_captured_by_short_history() {
        let acc = run_pattern(&[true, false], 200, 0x40);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn loop_exit_every_8_is_captured() {
        let acc = run_pattern(&[true, true, true, true, true, true, true, false], 100, 0x40);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn long_period_pattern_uses_long_history() {
        // Period-24 pattern: needs > 16 bits of history.
        let mut pattern = vec![true; 23];
        pattern.push(false);
        let acc = run_pattern(&pattern, 100, 0x40);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn random_branches_cap_near_majority() {
        // Deterministic pseudo-random pattern: TAGE cannot do much better
        // than the taken-rate; sanity-check it does not pathologically
        // mispredict either.
        let mut x = 0x12345678u64;
        let pattern: Vec<bool> = (0..512)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 63) == 1
            })
            .collect();
        let acc = run_pattern(&pattern, 4, 0x40);
        assert!(acc > 0.35 && acc < 0.85, "accuracy {acc}");
    }

    #[test]
    fn distinct_branches_do_not_destroy_each_other() {
        let mut tage = Tage::with_defaults(1);
        let mut hist = HistoryState::default();
        let mut seq = 0;
        let mut correct = [0u32; 2];
        for round in 0..400 {
            for (i, (pc, taken)) in [(0x40u64, true), (0x80u64, round % 2 == 0)].iter().enumerate()
            {
                let pred = tage.predict(seq, *pc, &hist);
                if pred == *taken {
                    correct[i] += 1;
                }
                tage.train(seq, *taken);
                hist.push_branch(*pc, *taken);
                seq += 1;
            }
        }
        assert!(correct[0] > 380, "always-taken branch: {}", correct[0]);
        assert!(correct[1] > 320, "alternating branch: {}", correct[1]);
    }

    #[test]
    fn squash_discards_speculative_records() {
        let mut tage = Tage::with_defaults(1);
        let hist = HistoryState::default();
        tage.predict(0, 0x40, &hist);
        tage.predict(1, 0x44, &hist);
        tage.predict(2, 0x48, &hist);
        tage.squash_after(0);
        tage.train(0, true);
        tage.predict(1, 0x44, &hist);
        tage.train(1, false);
    }

    #[test]
    #[should_panic(expected = "oldest in-flight")]
    fn out_of_order_train_panics() {
        let mut tage = Tage::with_defaults(1);
        let hist = HistoryState::default();
        tage.predict(0, 0x40, &hist);
        tage.predict(1, 0x44, &hist);
        tage.train(1, true);
    }

    #[test]
    fn save_load_state_resumes_identically() {
        let mut warmed = Tage::with_defaults(9);
        let mut hist = HistoryState::default();
        let mut x = 0xDEADu64;
        for seq in 0..4_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = 0x40 + (x % 37) * 4;
            let taken = (x >> 62) != 0;
            warmed.predict(seq, pc, &hist);
            warmed.train(seq, taken);
            hist.push_branch(pc, taken);
        }
        let mut w = StateWriter::new();
        warmed.save_state(&mut w);
        let bytes = w.into_bytes();
        // A fresh predictor with a different seed converges to the warmed
        // one after load (the LFSR state travels with the checkpoint).
        let mut restored = Tage::with_defaults(12345);
        let mut r = StateReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        // Both must now predict and train identically.
        for seq in 4_000u64..6_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = 0x40 + (x % 37) * 4;
            let taken = (x >> 62) != 0;
            assert_eq!(warmed.predict(seq, pc, &hist), restored.predict(seq, pc, &hist));
            warmed.train(seq, taken);
            restored.train(seq, taken);
            hist.push_branch(pc, taken);
        }
    }

    #[test]
    #[should_panic(expected = "in-flight")]
    fn save_state_rejects_inflight_predictions() {
        let mut tage = Tage::with_defaults(1);
        tage.predict(0, 0x40, &HistoryState::default());
        tage.save_state(&mut StateWriter::new());
    }

    #[test]
    fn load_state_rejects_truncated_streams() {
        let mut tage = Tage::with_defaults(1);
        let mut w = StateWriter::new();
        tage.save_state(&mut w);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(tage.load_state(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    fn default_config_is_about_15k_entries() {
        let cfg = TageConfig::default();
        let total = cfg.total_entries();
        assert!((14_000..=16_384).contains(&total), "total {total}");
    }

    #[test]
    fn storage_bits_are_positive_and_scale_with_entries() {
        let small = Tage::new(
            TageConfig { bimodal_entries: 1024, component_entries: 128, ..TageConfig::default() },
            1,
        );
        let big = Tage::with_defaults(1);
        assert!(big.storage_bits() > small.storage_bits());
    }

    #[test]
    #[should_panic]
    fn invalid_history_lengths_panic() {
        let _ = Tage::new(
            TageConfig {
                history_lengths: vec![4, 4],
                tag_bits: vec![8, 8],
                ..TageConfig::default()
            },
            1,
        );
    }
}
