//! Property-based tests for the branch-prediction substrate.

use proptest::prelude::*;
use vpsim_branch::{Btb, Ras, Tage};
use vpsim_core::HistoryState;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TAGE tolerates any interleaving of predicts, trains and squashes
    /// that respects the in-order protocol.
    #[test]
    fn tage_protocol_safety(
        ops in prop::collection::vec((0u8..3, 0u64..16, any::<bool>()), 1..300),
    ) {
        let mut tage = Tage::with_defaults(7);
        let mut hist = HistoryState::default();
        let mut seq = 0u64;
        let mut inflight: Vec<(u64, bool)> = Vec::new();
        for (op, pc_sel, taken) in ops {
            match op {
                0 => {
                    let pc = 0x100 + pc_sel * 4;
                    let _ = tage.predict(seq, pc, &hist);
                    inflight.push((seq, taken));
                    hist.push_branch(pc, taken);
                    seq += 1;
                }
                1 => {
                    if !inflight.is_empty() {
                        let (s, t) = inflight.remove(0);
                        tage.train(s, t);
                    }
                }
                _ => {
                    if let Some(&(oldest, _)) = inflight.first() {
                        let boundary = oldest + pc_sel % 3;
                        inflight.retain(|&(s, _)| s <= boundary);
                        tage.squash_after(boundary);
                        seq = boundary + 1;
                    }
                }
            }
        }
        for (s, t) in inflight {
            tage.train(s, t);
        }
    }

    /// A perfectly biased branch is predicted almost perfectly after a
    /// short warm-up, whatever the PC.
    #[test]
    fn tage_learns_any_biased_branch(pc in (0u64..1 << 20).prop_map(|x| x * 4), taken in any::<bool>()) {
        let mut tage = Tage::with_defaults(1);
        let mut hist = HistoryState::default();
        let mut correct = 0;
        for seq in 0..200u64 {
            if tage.predict(seq, pc, &hist) == taken && seq >= 16 {
                correct += 1;
            }
            tage.train(seq, taken);
            hist.push_branch(pc, taken);
        }
        prop_assert!(correct >= 180, "{correct}/184 after warm-up");
    }

    /// BTB lookups return the most recent update for a PC, regardless of
    /// intervening traffic to other sets.
    #[test]
    fn btb_returns_latest_target(
        pc in (0u64..1 << 16).prop_map(|x| x * 4),
        targets in prop::collection::vec(0u64..1 << 30, 1..10),
        noise in prop::collection::vec((0u64..1 << 16, 0u64..1 << 30), 0..30),
    ) {
        let mut btb = Btb::with_defaults();
        for &(np, nt) in &noise {
            btb.update(np * 4, nt);
        }
        let last = *targets.last().unwrap();
        for &t in &targets {
            btb.update(pc, t);
        }
        prop_assert_eq!(btb.lookup(pc), Some(last));
    }

    /// RAS push/pop is LIFO for sequences within capacity.
    #[test]
    fn ras_is_lifo_within_capacity(addrs in prop::collection::vec(any::<u64>(), 1..32)) {
        let mut ras = Ras::with_defaults();
        for &a in &addrs {
            ras.push(a);
        }
        for &a in addrs.iter().rev() {
            prop_assert_eq!(ras.pop(), Some(a));
        }
        prop_assert_eq!(ras.pop(), None);
    }

    /// Checkpoint/restore round-trips the control state exactly when no
    /// wrap-around occurred.
    #[test]
    fn ras_checkpoint_round_trip(
        depth in 1usize..16,
        wrong_path in prop::collection::vec(any::<bool>(), 0..10),
    ) {
        let mut ras = Ras::with_defaults();
        for k in 0..depth {
            ras.push(k as u64 * 8);
        }
        let cp = ras.checkpoint();
        let before = ras.depth();
        for (i, push) in wrong_path.iter().enumerate() {
            if *push {
                ras.push(0xBAD0 + i as u64);
            } else {
                let _ = ras.pop();
            }
        }
        ras.restore(cp);
        prop_assert_eq!(ras.depth(), before);
    }
}
