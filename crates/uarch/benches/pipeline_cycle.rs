//! Criterion microbenchmark isolating the cycle-level timing loop from
//! functional execution: a trace is captured once up front, and every
//! iteration replays it through `Simulator::run_trace`, so the measured
//! time is purely the `Machine` hot path (fetch/dispatch/issue/complete/
//! commit over the slab window, wakeup scoreboard and completion wheel).
//!
//! The throughput annotation is µops, so criterion's per-element time *is*
//! nanoseconds per simulated µop — the number `sweep --timing-json`
//! reports as `ns_per_uop` for full grids (the paper grid moved from
//! ≈ 2100 to ≈ 530 ns/µop with the indexed window; these microkernels
//! are cheaper per µop than the full Table 3 suite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vpsim_core::PredictorKind;
use vpsim_isa::Trace;
use vpsim_uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};
use vpsim_workloads::microkernels;

const WARMUP: u64 = 5_000;
const MEASURE: u64 = 20_000;

fn bench_pipeline_cycle(c: &mut Criterion) {
    let kernels: Vec<(&str, vpsim_isa::Program)> = vec![
        ("strided", microkernels::strided_loop(256, 1)),
        ("pointer_chase", microkernels::pointer_chase(4096)),
        ("matmul", microkernels::matmul(12)),
    ];
    let configs: Vec<(&str, CoreConfig)> = vec![
        ("no_vp", CoreConfig::default()),
        (
            "vtage_squash",
            CoreConfig::default().with_vp(VpConfig::enabled(
                PredictorKind::VtageStride,
                RecoveryPolicy::SquashAtCommit,
            )),
        ),
        (
            "vtage_reissue",
            CoreConfig::default().with_vp(VpConfig::enabled(
                PredictorKind::VtageStride,
                RecoveryPolicy::SelectiveReissue,
            )),
        ),
    ];
    let mut group = c.benchmark_group("pipeline_cycle");
    group.throughput(Throughput::Elements(WARMUP + MEASURE));
    group.sample_size(10);
    for (kname, program) in &kernels {
        for (cname, config) in &configs {
            let sim = Simulator::new(config.clone());
            let trace = Trace::capture(program, sim.config().trace_budget(WARMUP, MEASURE));
            group.bench_with_input(BenchmarkId::new(*cname, kname), &trace, |b, t| {
                b.iter(|| black_box(sim.run_trace(t, WARMUP, MEASURE)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_cycle);
criterion_main!(benches);
