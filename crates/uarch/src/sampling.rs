//! Interval sampling with checkpointed fast-forward (the SMARTS/SimPoint
//! discipline adapted to the trace layer).
//!
//! A full detailed replay costs ~330 ns/µop; grid studies over long traces
//! only need *relative* IPC across predictor/recovery cells. Sampled mode
//! partitions the measured region of a captured trace into fixed-size
//! intervals of [`SampleConfig::period`] µops, deterministically selects
//! [`SampleConfig::intervals`] of them (systematic sampling seeded by the
//! scenario seed), and runs the detailed timing model only inside the
//! selected intervals. Between intervals the crate-private `Warmer` streams the trace
//! functionally — branch predictors, BTB, RAS, global history and cache
//! tags are updated with no cycle accounting — so long-lived
//! microarchitectural state is warm when each interval begins. Short-lived
//! state (value predictor tables' in-flight protocol, store sets, MSHRs,
//! DRAM timing) is re-established by [`SampleConfig::warmup`] detailed
//! µops at the head of every interval, whose statistics are discarded.
//!
//! The end-of-fast-forward state is captured in a serializable
//! [`Checkpoint`] (`vpstate1` binary format, FNV-1a-64 trailer like
//! `vpsres1`): together with the O(1) `TraceCursor::cursor_resume` seek,
//! any interval can be replayed without re-streaming the trace prefix.

use crate::config::CoreConfig;
use crate::result::RunResult;
use vpsim_branch::{Btb, Ras, Tage};
use vpsim_core::state::{StateReader, StateWriter};
use vpsim_core::HistoryState;
use vpsim_isa::{DynInst, Opcode};
use vpsim_mem::MemoryHierarchy;

/// Magic + format version prefix of the [`Checkpoint`] binary form. Bump
/// the trailing digit on any incompatible change to the state layout.
const MAGIC: &[u8; 8] = b"vpstate1";

/// Sampled-replay knobs (scenario keys `sample.intervals`,
/// `sample.period`, `sample.warmup`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleConfig {
    /// Number of intervals to replay in detail (K). Clamped to the number
    /// of whole periods the measured region contains.
    pub intervals: u64,
    /// Interval length in committed µops (P).
    pub period: u64,
    /// Detailed (timed, discarded) warmup µops at the head of each
    /// interval (W), re-establishing the short-lived state the functional
    /// warmer does not track.
    pub warmup: u64,
}

impl Default for SampleConfig {
    /// 20 intervals × 10 000 µops, 2 000 µops detailed warmup each —
    /// ≤1 % relative IPC error on the paper grid at a small fraction of
    /// the full replay cost (see "Sampling layer" in ARCHITECTURE.md).
    fn default() -> Self {
        SampleConfig { intervals: 20, period: 10_000, warmup: 2_000 }
    }
}

impl SampleConfig {
    /// Check the knobs are usable.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` or `period` is zero.
    pub fn validate(&self) {
        assert!(self.intervals > 0, "sample.intervals must be positive");
        assert!(self.period > 0, "sample.period must be positive");
    }
}

/// The deterministic interval selection for one run: which intervals of
/// the measured region replay in detail, and where their detailed warmup
/// begins.
#[derive(Debug, Clone)]
pub(crate) struct SamplePlan {
    /// First measured µop (the run-level warmup length).
    region_start: u64,
    /// Detailed measure length per interval.
    pub(crate) measure_per_interval: u64,
    /// Detailed warmup requested per interval (clamped at trace start).
    detailed_warmup: u64,
    /// Selected interval indices, ascending.
    selected: Vec<u64>,
}

impl SamplePlan {
    /// Systematic selection: the region `[warmup, warmup + measure)` holds
    /// `N = measure / period` whole intervals (one truncated interval when
    /// `measure < period`); `K = min(intervals, N)` of them are picked at
    /// stride `N / K` starting from offset `seed % stride`. The same
    /// (settings, seed) always selects the same intervals.
    pub(crate) fn new(warmup: u64, measure: u64, sample: SampleConfig, seed: u64) -> SamplePlan {
        sample.validate();
        let period = sample.period.min(measure.max(1));
        let num_intervals = (measure / period).max(1);
        let k = sample.intervals.min(num_intervals);
        let stride = num_intervals / k;
        let offset = seed % stride;
        let selected = (0..k).map(|j| offset + j * stride).collect();
        SamplePlan {
            region_start: warmup,
            measure_per_interval: period,
            detailed_warmup: sample.warmup,
            selected,
        }
    }

    /// `(detailed_start, detailed_warmup)` per selected interval, in trace
    /// position order. `detailed_start` is the trace position where the
    /// detailed machine begins (interval start minus warmup, clamped at
    /// the trace head — commit order equals trace order, so committed-µop
    /// counts are trace positions).
    pub(crate) fn detailed_starts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.selected.iter().map(move |idx| {
            let interval_start = self.region_start + idx * self.measure_per_interval;
            let start = interval_start.saturating_sub(self.detailed_warmup);
            (start, interval_start - start)
        })
    }
}

/// Functional-only warmer: streams trace records between sampled
/// intervals, updating exactly the long-lived structures — TAGE, BTB,
/// RAS, global branch/path history, and cache tags/LRU/dirty bits — with
/// no cycle-accurate timing. ~6× cheaper per µop than the detailed model
/// (TAGE training dominates what remains).
#[derive(Debug, Clone)]
pub(crate) struct Warmer {
    tage: Tage,
    btb: Btb,
    ras: Ras,
    mem: MemoryHierarchy,
    hist: HistoryState,
    /// µops processed functionally so far.
    pub(crate) ff_uops: u64,
}

impl Warmer {
    /// Fresh warm state for `cfg` — identical construction to the detailed
    /// machine's front end, so a checkpoint restores into a compatible
    /// geometry.
    pub(crate) fn new(cfg: &CoreConfig) -> Self {
        Warmer {
            tage: Tage::with_defaults(cfg.seed ^ 0xB4A9C),
            btb: Btb::with_defaults(),
            ras: Ras::with_defaults(),
            mem: MemoryHierarchy::new(cfg.mem.clone()),
            hist: HistoryState::default(),
            ff_uops: 0,
        }
    }

    /// Process one trace record: the same predictor/history updates the
    /// detailed fetch and commit stages perform, collapsed to their
    /// committed-path effect (fused predict+train, so the in-flight queue
    /// stays empty and every point is a checkpoint boundary).
    pub(crate) fn warm_uop(&mut self, di: &DynInst) {
        self.ff_uops += 1;
        self.mem.warm_fetch(di.pc);
        let op = di.inst.op;
        if op.is_cond_branch() {
            // Fused predict+train: state-identical to the detailed model's
            // fetch-predict / commit-train pair on the committed path,
            // without the in-flight queue round-trip.
            self.tage.train_committed(di.pc, di.taken, &self.hist);
            self.hist.push_branch(di.pc, di.taken);
        } else if op.is_control() {
            match op {
                Opcode::Call => self.ras.push(di.pc + 4),
                Opcode::Ret => {
                    self.ras.pop();
                }
                Opcode::JumpInd => self.btb.update(di.pc, di.next_pc),
                _ => {}
            }
            self.hist.push_path(di.pc);
        }
        match op {
            Opcode::Load => {
                if let Some(addr) = di.mem_addr {
                    self.mem.warm_load(addr);
                }
            }
            Opcode::Store => {
                if let Some(addr) = di.mem_addr {
                    self.mem.warm_store(addr);
                }
            }
            _ => {}
        }
    }

    /// Serialize the warm structures in checkpoint section order.
    fn state_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.hist.ghist as u64);
        w.u64((self.hist.ghist >> 64) as u64);
        w.u64(self.hist.path);
        self.tage.save_state(&mut w);
        self.btb.save_state(&mut w);
        self.ras.save_state(&mut w);
        self.mem.save_warm_state(&mut w);
        w.into_bytes()
    }
}

/// The warm structures a detailed interval machine starts from —
/// deserialized from a [`Checkpoint`] and installed over a freshly
/// constructed machine's front end.
pub(crate) struct WarmState {
    pub(crate) tage: Tage,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) mem: MemoryHierarchy,
    pub(crate) hist: HistoryState,
}

/// A serializable microarchitectural checkpoint: the trace coordinates at
/// the end of a fast-forward plus the warm structure state, so a sweep can
/// seek any sampled interval in O(1) without re-streaming the prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pos: u64,
    payload_pos: u64,
    ff_uops: u64,
    detailed_warmup: u64,
    state: Vec<u8>,
}

impl Checkpoint {
    /// Snapshot `warmer` at trace coordinates (`pos`, `payload_pos`).
    pub(crate) fn capture(
        warmer: &Warmer,
        pos: u64,
        payload_pos: u64,
        detailed_warmup: u64,
    ) -> Checkpoint {
        Checkpoint {
            pos,
            payload_pos,
            ff_uops: warmer.ff_uops,
            detailed_warmup,
            state: warmer.state_bytes(),
        }
    }

    /// Trace record position the detailed replay resumes from.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Payload-stream position paired with [`Checkpoint::pos`] (feeds
    /// `Trace::cursor_resume` for the O(1) seek).
    pub fn payload_pos(&self) -> u64 {
        self.payload_pos
    }

    /// µops the warmer fast-forwarded through to reach this point.
    pub fn ff_uops(&self) -> u64 {
        self.ff_uops
    }

    /// Detailed (discarded) warmup µops to simulate before measuring.
    pub fn detailed_warmup(&self) -> u64 {
        self.detailed_warmup
    }

    /// Rebuild the warm structures for `cfg`. Fails with a message (never
    /// a panic) when the state blob does not match `cfg`'s geometry.
    pub(crate) fn restore(&self, cfg: &CoreConfig) -> Result<WarmState, String> {
        let mut r = StateReader::new(&self.state);
        let ghist_lo = r.u64()?;
        let ghist_hi = r.u64()?;
        let path = r.u64()?;
        let hist = HistoryState { ghist: (ghist_hi as u128) << 64 | ghist_lo as u128, path };
        let mut tage = Tage::with_defaults(cfg.seed ^ 0xB4A9C);
        tage.load_state(&mut r)?;
        let mut btb = Btb::with_defaults();
        btb.load_state(&mut r)?;
        let mut ras = Ras::with_defaults();
        ras.load_state(&mut r)?;
        let mut mem = MemoryHierarchy::new(cfg.mem.clone());
        mem.load_warm_state(&mut r)?;
        r.finish()?;
        Ok(WarmState { tage, btb, ras, mem, hist })
    }

    /// Serialize into the `vpstate1` container: magic, the four trace/plan
    /// coordinates, the length-prefixed state blob, and a trailing FNV-1a
    /// 64 checksum over everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAGIC.len() + 5 * 8 + self.state.len() + 8);
        out.extend_from_slice(MAGIC);
        for v in [self.pos, self.payload_pos, self.ff_uops, self.detailed_warmup] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.state.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.state);
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialize a container produced by [`Checkpoint::to_bytes`].
    /// Rejects bad magic, any size mismatch, and checksum failures — a
    /// single flipped bit anywhere in the record is caught.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, String> {
        let header = MAGIC.len() + 5 * 8;
        if bytes.len() < header + 8 {
            return Err(format!("checkpoint is {} bytes, too short", bytes.len()));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err("bad magic (not a serialized checkpoint)".to_string());
        }
        let word = |i: usize| {
            u64::from_le_bytes(
                bytes[MAGIC.len() + i * 8..MAGIC.len() + (i + 1) * 8].try_into().unwrap(),
            )
        };
        let state_len = word(4) as usize;
        let want = header + state_len + 8;
        if bytes.len() != want {
            return Err(format!("checkpoint is {} bytes, expected {want}", bytes.len()));
        }
        let body = &bytes[..want - 8];
        let found = u64::from_le_bytes(bytes[want - 8..].try_into().unwrap());
        let expected = fnv1a(body);
        if found != expected {
            return Err(format!(
                "checksum mismatch: computed {expected:#018x}, stored {found:#018x}"
            ));
        }
        Ok(Checkpoint {
            pos: word(0),
            payload_pos: word(1),
            ff_uops: word(2),
            detailed_warmup: word(3),
            state: bytes[header..want - 8].to_vec(),
        })
    }
}

/// The outcome of a sampled replay: one detailed [`RunResult`] per
/// replayed interval, plus the fast-forward accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledResult {
    /// Detailed measurements of the selected intervals, in trace order.
    pub per_interval: Vec<RunResult>,
    /// µops the functional warmer streamed through (fast-forward volume).
    pub ff_uops: u64,
    /// µops the cycle-accurate model replayed (per-interval detailed
    /// warm-up plus measurement, summed over the replayed intervals) —
    /// the nominal detailed volume the sampled run paid for, comparable
    /// to a full run's `warmup + measure`.
    pub detailed_uops: u64,
}

impl SampledResult {
    /// Number of intervals that actually replayed (the trace may end
    /// before late intervals of a short workload).
    pub fn intervals_replayed(&self) -> u64 {
        self.per_interval.len() as u64
    }

    /// Field-wise sum of the per-interval counters: the sampled stand-in
    /// for a full run's [`RunResult`]. Ratio statistics (IPC, accuracy,
    /// miss rates) of the combined result are the sample estimates; raw
    /// counter magnitudes cover only the sampled µops.
    pub fn combined(&self) -> RunResult {
        let mut total = RunResult::default();
        for r in &self.per_interval {
            total.accumulate(r);
        }
        total
    }

    /// Per-interval IPC observations, in trace order — the input to the
    /// `vpsim-stats` confidence-interval estimator.
    pub fn interval_ipcs(&self) -> Vec<f64> {
        self.per_interval.iter().map(|r| r.metrics.ipc()).collect()
    }
}

/// FNV-1a 64 — storage-corruption checksum (not cryptographic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_selects_systematically_within_the_region() {
        let sample = SampleConfig { intervals: 4, period: 100, warmup: 20 };
        let plan = SamplePlan::new(1_000, 1_000, sample, 7);
        // N = 10 intervals, K = 4, stride = 2, offset = 7 % 2 = 1.
        let starts: Vec<(u64, u64)> = plan.detailed_starts().collect();
        assert_eq!(starts.len(), 4);
        for (j, (start, dwarm)) in starts.iter().enumerate() {
            let idx = 1 + 2 * j as u64;
            assert_eq!(*start, 1_000 + idx * 100 - 20);
            assert_eq!(*dwarm, 20);
        }
    }

    #[test]
    fn plan_clamps_warmup_at_the_trace_head() {
        let sample = SampleConfig { intervals: 1, period: 100, warmup: 500 };
        let plan = SamplePlan::new(0, 100, sample, 0);
        let starts: Vec<(u64, u64)> = plan.detailed_starts().collect();
        assert_eq!(starts, vec![(0, 0)], "interval 0 at region start has no room to warm");
    }

    #[test]
    fn plan_caps_intervals_at_the_region_size() {
        let sample = SampleConfig { intervals: 50, period: 1_000, warmup: 0 };
        let plan = SamplePlan::new(0, 3_000, sample, 9);
        assert_eq!(plan.detailed_starts().count(), 3, "only 3 whole periods exist");
    }

    #[test]
    fn plan_handles_a_region_shorter_than_one_period() {
        let sample = SampleConfig { intervals: 8, period: 10_000, warmup: 100 };
        let plan = SamplePlan::new(500, 2_000, sample, 3);
        let starts: Vec<(u64, u64)> = plan.detailed_starts().collect();
        assert_eq!(starts, vec![(400, 100)]);
        assert_eq!(plan.measure_per_interval, 2_000, "one truncated interval");
    }

    #[test]
    fn plan_is_deterministic_in_the_seed() {
        let sample = SampleConfig::default();
        let a: Vec<_> =
            SamplePlan::new(50_000, 200_000, sample, 0x2014).detailed_starts().collect();
        let b: Vec<_> =
            SamplePlan::new(50_000, 200_000, sample, 0x2014).detailed_starts().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_bytes_round_trip() {
        let warmer = Warmer::new(&CoreConfig::default());
        let cp = Checkpoint::capture(&warmer, 123, 45, 2_000);
        let bytes = cp.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes), Ok(cp));
    }

    #[test]
    fn checkpoint_bytes_detect_bit_flips() {
        let warmer = Warmer::new(&CoreConfig::default());
        let cp = Checkpoint::capture(&warmer, 9, 3, 100);
        let bytes = cp.to_bytes();
        // Probe a spread of positions (the blob is ~large; every 997th byte
        // plus the trailer keeps the test fast while covering all regions).
        for pos in (0..bytes.len()).step_by(997).chain([bytes.len() - 1]) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            assert!(Checkpoint::from_bytes(&corrupt).is_err(), "flip at byte {pos}");
        }
        assert!(Checkpoint::from_bytes(&bytes[..40]).is_err(), "truncated header");
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 1]).is_err(), "truncated trailer");
    }

    #[test]
    fn checkpoint_restores_into_matching_geometry() {
        let cfg = CoreConfig::default();
        let mut warmer = Warmer::new(&cfg);
        // Warm with a synthetic record stream.
        for seq in 0..1_000u64 {
            let di = DynInst {
                seq,
                pc: 0x40 + (seq % 64) * 4,
                index: (seq % 64) as u32,
                inst: vpsim_isa::Inst::default(),
                result: None,
                mem_addr: None,
                store_value: None,
                taken: false,
                next_pc: 0x44 + (seq % 64) * 4,
            };
            warmer.warm_uop(&di);
        }
        let cp = Checkpoint::capture(&warmer, 1_000, 0, 500);
        let restored = cp.restore(&cfg).unwrap();
        assert_eq!(restored.hist, warmer.hist);
        assert_eq!(cp.ff_uops(), 1_000);
        assert_eq!(cp.detailed_warmup(), 500);
    }
}
