//! The paper's §3.1 analytic recovery-cost model ("A Simple Synthetic
//! Example").
//!
//! `T_recov = P_value × N_misp`: with an average benefit per correct,
//! *used* prediction and an average misprediction penalty per recovery
//! scheme, the net gain in cycles per kilo-instruction is
//!
//! ```text
//! gain = eligible_per_kinst × coverage × accuracy × benefit × used_fraction
//!      − eligible_per_kinst × coverage × (1 − accuracy) × penalty
//! ```
//!
//! The paper instantiates it with 1000 eligible µops/Kinst, benefit 0.3
//! cycles, 50 % of predictions used before execution, and penalties 5
//! (selective reissue), 20 (squash at execute) and 40 (squash at commit):
//! 40 % coverage at 95 % accuracy gives ≈ +64 / −86 / −286 cycles per
//! Kinst, while 30 % coverage at 99.75 % accuracy gives ≈ +88 / +83 / +76 —
//! the argument for trading coverage for accuracy (FPC).

/// Parameters of the §3.1 analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyModel {
    /// Average benefit of one correct prediction, in cycles (0.3 in the
    /// paper, "taking into account the number of unused predictions").
    pub benefit_per_correct: f64,
    /// Fraction of predictions consumed before the producer executes —
    /// only those require recovery on a misprediction (50 % in the paper).
    pub used_fraction: f64,
    /// Value-prediction-eligible µops per kilo-instruction (the paper's
    /// example treats every µop as predicted: 1000).
    pub eligible_per_kinst: f64,
}

impl Default for PenaltyModel {
    fn default() -> Self {
        PenaltyModel { benefit_per_correct: 0.3, used_fraction: 0.5, eligible_per_kinst: 1000.0 }
    }
}

/// Average misprediction penalties (cycles) for the three §3.1.1 schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPenalties {
    /// Selective reissue (realistic estimate 5–7; the example uses 5).
    pub selective_reissue: f64,
    /// Pipeline squash at execute time (20–30; the example uses 20).
    pub squash_at_execute: f64,
    /// Pipeline squash at commit time (40–50; the example uses 40).
    pub squash_at_commit: f64,
}

impl Default for RecoveryPenalties {
    fn default() -> Self {
        RecoveryPenalties {
            selective_reissue: 5.0,
            squash_at_execute: 20.0,
            squash_at_commit: 40.0,
        }
    }
}

impl PenaltyModel {
    /// Net gain in cycles per kilo-instruction for a predictor with the
    /// given `coverage` and `accuracy` under an average misprediction
    /// `penalty`.
    ///
    /// The 0.3-cycle benefit already discounts unused predictions (the
    /// paper's wording); the `used_fraction` instead discounts the *loss*:
    /// a misprediction whose value no issued µop consumed needs no
    /// recovery (§3.1.1, §7.2.1).
    pub fn net_gain(&self, coverage: f64, accuracy: f64, penalty: f64) -> f64 {
        let predicted = self.eligible_per_kinst * coverage;
        let gain = predicted * accuracy * self.benefit_per_correct;
        let loss = predicted * (1.0 - accuracy) * penalty * self.used_fraction;
        gain - loss
    }

    /// The paper's two scenarios for all three schemes, in the order
    /// (selective reissue, squash at execute, squash at commit).
    pub fn scenario(&self, coverage: f64, accuracy: f64, p: &RecoveryPenalties) -> [f64; 3] {
        [
            self.net_gain(coverage, accuracy, p.selective_reissue),
            self.net_gain(coverage, accuracy, p.squash_at_execute),
            self.net_gain(coverage, accuracy, p.squash_at_commit),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's first scenario: 40 % coverage, 95 % accuracy → +64 for
    /// selective reissue, −86 for squash-at-execute, −286 for
    /// squash-at-commit (cycles per Kinst).
    #[test]
    fn scenario_low_accuracy_matches_paper() {
        let m = PenaltyModel::default();
        let [sr, sqe, sqc] = m.scenario(0.40, 0.95, &RecoveryPenalties::default());
        assert!((sr - 64.0).abs() < 3.0, "selective reissue {sr}");
        assert!((sqe - (-86.0)).abs() < 3.0, "squash@execute {sqe}");
        assert!((sqc - (-286.0)).abs() < 3.0, "squash@commit {sqc}");
    }

    /// The paper's second scenario: 30 % coverage, 99.75 % accuracy →
    /// ≈ +88 / +83 / +76.
    #[test]
    fn scenario_high_accuracy_matches_paper() {
        let m = PenaltyModel::default();
        let [sr, sqe, sqc] = m.scenario(0.30, 0.9975, &RecoveryPenalties::default());
        assert!((sr - 88.0).abs() < 3.0, "selective reissue {sr}");
        assert!((sqe - 83.0).abs() < 3.0, "squash@execute {sqe}");
        assert!((sqc - 76.0).abs() < 3.0, "squash@commit {sqc}");
    }

    #[test]
    fn high_accuracy_flattens_scheme_differences() {
        // The core claim of the paper: with accuracy high enough, the
        // recovery mechanism barely matters.
        let m = PenaltyModel::default();
        let p = RecoveryPenalties::default();
        let low = m.scenario(0.40, 0.95, &p);
        let high = m.scenario(0.30, 0.9975, &p);
        let spread_low = low[0] - low[2];
        let spread_high = high[0] - high[2];
        assert!(spread_high < spread_low / 10.0);
    }

    #[test]
    fn perfect_accuracy_gain_is_pure_benefit() {
        let m = PenaltyModel::default();
        let g = m.net_gain(1.0, 1.0, 40.0);
        assert!((g - 300.0).abs() < 1e-9); // 1000 × 0.3
    }

    #[test]
    fn zero_coverage_is_neutral() {
        let m = PenaltyModel::default();
        assert_eq!(m.net_gain(0.0, 0.5, 40.0), 0.0);
    }
}
