//! Opt-in structured event tap on the timing model.
//!
//! The pipeline (see [`crate::Simulator`]) is generic over a [`PipeEventSink`]
//! and emits one typed [`PipeEvent`] per per-µop pipeline transition
//! (fetch/dispatch/issue/writeback/commit/squash/VP-validate) plus exactly
//! one [`PipeEventKind::Cycle`] attribution record per simulated cycle
//! (batched `idle_skip` spans emit one record covering the whole span).
//!
//! # Zero-cost argument
//!
//! The sink is a monomorphized type parameter carrying the associated
//! constant [`PipeEventSink::ENABLED`]. Every emission site in the hot loop
//! is guarded by `if T::ENABLED`, which is a *compile-time* constant per
//! instantiation: with the default [`NullSink`] (`ENABLED = false`) the
//! guard folds to `if false` and the whole emission — including the stall
//! attribution performed to build the `Cycle` record — is dead code the
//! optimizer removes. The disabled path is therefore bit-identical to a
//! build without the tap: same instructions, same zero allocations per
//! steady-state cycle (`crates/uarch/tests/zero_alloc.rs`), same
//! `ns_per_uop` within perf-smoke noise.
//!
//! Enabled sinks are still allocation-free per event: [`StallTally`] is a
//! flat counter struct and [`CycleLog`] a ring buffer preallocated at
//! construction, so the tapped path admits the same steady-state
//! zero-allocation proof.
//!
//! # Differential witness
//!
//! The tap double-books quantities the pipeline already counts
//! independently in its private `Counters`. [`check_conservation`] asserts
//! the two bookkeepers agree exactly — total attributed cycles equal
//! measured cycles, stall attributions equal commit-idle cycles, commits /
//! squashes / reissues match — which turns the tap into a second,
//! independent witness of the timing model. See `tests/tap_equivalence.rs`
//! (tap on/off byte-identity) and `crates/uarch/tests/tap_conservation.rs`.

use crate::result::RunResult;
use std::fmt;

pub use vpsim_stats::stall::{CycleCause, Occupancy, StallReport};

/// Number of trailing cycle records a [`CycleLog`] contributes to a
/// deadlock panic report.
pub const DEADLOCK_TAIL: usize = 32;

/// What squashed the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SquashCause {
    /// A confidently-used value prediction validated wrong at commit.
    ValueMisprediction,
    /// A load issued before an older conflicting store (store-set miss).
    MemoryOrder,
}

impl SquashCause {
    /// Human-readable kebab-case label.
    pub fn label(self) -> &'static str {
        match self {
            SquashCause::ValueMisprediction => "value-misprediction",
            SquashCause::MemoryOrder => "memory-order",
        }
    }
}

/// The typed payload of a [`PipeEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeEventKind {
    /// µop allocated into the window by the front end.
    Fetch {
        /// Program counter of the fetched µop.
        pc: u64,
        /// Position within this cycle's fetch group (0-based).
        slot: u16,
    },
    /// µop renamed and inserted into ROB/IQ/LSQ.
    Dispatch {
        /// Position within this cycle's dispatch group.
        slot: u16,
    },
    /// µop selected for execution (selective reissue re-emits this).
    Issue {
        /// Issue-port slot within this cycle's issue group.
        slot: u16,
    },
    /// µop completed execution (result written back).
    Writeback,
    /// µop retired.
    Commit {
        /// Position within this cycle's retire group.
        slot: u16,
    },
    /// Pipeline squash; `seq` is the boundary — every µop younger than it
    /// was discarded.
    Squash {
        /// What triggered the squash.
        cause: SquashCause,
        /// In-flight µops discarded (the squashing µop itself excluded).
        squashed: u32,
    },
    /// A used value prediction was checked against the computed result at
    /// execute (a reissued µop validates again on re-execution).
    VpValidate {
        /// `true` when predicted and computed values matched.
        correct: bool,
    },
    /// A dependent µop was rolled back for re-execution by selective
    /// reissue.
    Reissue,
    /// Per-cycle attribution record: `span` consecutive cycles starting at
    /// the event's `cycle`, all attributed to `cause` at occupancy `occ`.
    /// Emitted exactly once per simulated cycle (`span > 1` only for
    /// `idle_skip` fast-forward spans, during which no state changes).
    Cycle {
        /// Exclusive attribution of the span.
        cause: CycleCause,
        /// Number of consecutive cycles covered.
        span: u64,
        /// Structure occupancies, constant across the span.
        occ: Occupancy,
    },
    /// The warm-up boundary: counters were snapshotted here; everything
    /// after this event belongs to the measured region.
    MeasureStart,
}

/// One tap record: a cycle stamp, the µop's global sequence number (0 for
/// per-cycle records, which are not tied to a µop) and the typed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeEvent {
    /// Cycle the event occurred (start cycle for batched `Cycle` spans).
    pub cycle: u64,
    /// Global dynamic sequence number of the µop (0 for cycle records).
    pub seq: u64,
    /// Typed payload.
    pub kind: PipeEventKind,
}

impl fmt::Display for PipeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10}] ", self.cycle)?;
        match self.kind {
            PipeEventKind::Fetch { pc, slot } => {
                write!(f, "seq {:>8}  fetch       slot {slot} pc {pc:#x}", self.seq)
            }
            PipeEventKind::Dispatch { slot } => {
                write!(f, "seq {:>8}  dispatch    slot {slot}", self.seq)
            }
            PipeEventKind::Issue { slot } => {
                write!(f, "seq {:>8}  issue       slot {slot}", self.seq)
            }
            PipeEventKind::Writeback => write!(f, "seq {:>8}  writeback", self.seq),
            PipeEventKind::Commit { slot } => {
                write!(f, "seq {:>8}  commit      slot {slot}", self.seq)
            }
            PipeEventKind::Squash { cause, squashed } => {
                write!(f, "seq {:>8}  squash      {} dropped {squashed}", self.seq, cause.label())
            }
            PipeEventKind::VpValidate { correct } => write!(
                f,
                "seq {:>8}  vp-validate {}",
                self.seq,
                if correct { "correct" } else { "wrong" }
            ),
            PipeEventKind::Reissue => write!(f, "seq {:>8}  reissue", self.seq),
            PipeEventKind::Cycle { cause, span, occ } => write!(
                f,
                "cycle x{span:<6} {:<15} rob={} iq={} lq={} sq={} fq={}",
                cause.label(),
                occ.rob,
                occ.iq,
                occ.lq,
                occ.sq,
                occ.fetch_queue
            ),
            PipeEventKind::MeasureStart => write!(f, "measure-start"),
        }
    }
}

/// A consumer of pipeline events, threaded through the timing model as a
/// monomorphized type parameter.
///
/// Implementors must keep [`event`](PipeEventSink::event) allocation-free —
/// it runs inside the steady-state hot loop that
/// `crates/uarch/tests/zero_alloc.rs` proves allocates nothing per cycle.
pub trait PipeEventSink {
    /// Compile-time switch: when `false` (the [`NullSink`] default) every
    /// emission site folds to dead code and the tap costs literally
    /// nothing.
    const ENABLED: bool = true;

    /// Receive one event. Called only when [`ENABLED`](Self::ENABLED) is
    /// `true`.
    fn event(&mut self, ev: PipeEvent);

    /// Recent-history dump for deadlock panics; sinks that retain a cycle
    /// log return a rendered tail here.
    fn deadlock_tail(&self) -> Option<String> {
        None
    }
}

/// The default sink: keeps the tap compiled out.
///
/// `ENABLED = false` makes every `if T::ENABLED` emission guard a
/// compile-time `false`, so the instantiation the public
/// [`Simulator`](crate::Simulator) entry points use is instruction-for-
/// instruction the pre-tap pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl PipeEventSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: PipeEvent) {}
}

/// Fan-out: both halves of a pair receive every event. Compose e.g.
/// `(StallTally, CycleLog)` to aggregate and log in one run.
impl<A: PipeEventSink, B: PipeEventSink> PipeEventSink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn event(&mut self, ev: PipeEvent) {
        if A::ENABLED {
            self.0.event(ev);
        }
        if B::ENABLED {
            self.1.event(ev);
        }
    }

    fn deadlock_tail(&self) -> Option<String> {
        self.0.deadlock_tail().or_else(|| self.1.deadlock_tail())
    }
}

/// A sink that reduces the event stream to a [`StallReport`]: per-cause
/// cycle attribution, occupancy sums and per-stage event counts.
///
/// A [`PipeEventKind::MeasureStart`] record snapshots the running totals,
/// so [`measured`](StallTally::measured) reports the post-warm-up region —
/// aligned with the exact program point where the pipeline snapshots its
/// own counters, which is what makes [`check_conservation`] exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallTally {
    totals: StallReport,
    snapshot: StallReport,
}

impl StallTally {
    /// Whole-run totals (warm-up included).
    pub fn totals(&self) -> &StallReport {
        &self.totals
    }

    /// The measured region: totals since the [`PipeEventKind::MeasureStart`]
    /// snapshot (the whole run when no warm-up boundary was crossed).
    pub fn measured(&self) -> StallReport {
        self.totals.delta(&self.snapshot)
    }
}

impl PipeEventSink for StallTally {
    #[inline(always)]
    fn event(&mut self, ev: PipeEvent) {
        match ev.kind {
            PipeEventKind::Fetch { .. } => self.totals.fetched += 1,
            PipeEventKind::Dispatch { .. } => self.totals.dispatched += 1,
            PipeEventKind::Issue { .. } => self.totals.issued += 1,
            PipeEventKind::Writeback => self.totals.writebacks += 1,
            PipeEventKind::Commit { .. } => self.totals.committed += 1,
            PipeEventKind::Squash { cause, squashed } => {
                match cause {
                    SquashCause::ValueMisprediction => self.totals.vp_squashes += 1,
                    SquashCause::MemoryOrder => self.totals.order_squashes += 1,
                }
                self.totals.squashed_uops += u64::from(squashed);
            }
            PipeEventKind::VpValidate { correct } => {
                self.totals.vp_validations += 1;
                if !correct {
                    self.totals.vp_mispredictions += 1;
                }
            }
            PipeEventKind::Reissue => self.totals.reissued += 1,
            PipeEventKind::Cycle { cause, span, occ } => {
                self.totals.record_cycles(cause, span, occ);
            }
            PipeEventKind::MeasureStart => self.snapshot = self.totals,
        }
    }
}

/// A bounded ring buffer of the most recent events — the raw feed for the
/// cycle-log text viewer (`simulate --cycle-log`) and for deadlock panics.
///
/// The buffer is allocated once at construction; recording an event never
/// allocates (ring overwrite), so the log is safe inside the zero-alloc
/// hot loop.
#[derive(Debug, Clone)]
pub struct CycleLog {
    buf: Vec<PipeEvent>,
    head: usize,
    total: u64,
}

impl CycleLog {
    /// A log retaining the most recent `capacity` events (`capacity > 0`).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cycle log capacity must be positive");
        CycleLog { buf: Vec::with_capacity(capacity), head: 0, total: 0 }
    }

    /// Events currently retained (`min(total recorded, capacity)`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Events ever recorded (including those already overwritten).
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<PipeEvent> {
        let len = self.buf.len();
        let take = n.min(len);
        let mut out = Vec::with_capacity(take);
        // Chronological order: the ring starts at `head` once it wrapped.
        let start = if len < self.buf.capacity() { 0 } else { self.head };
        for k in (len - take)..len {
            out.push(self.buf[(start + k) % len]);
        }
        out
    }

    /// Render the most recent `n` events as one line each, oldest first.
    pub fn render_tail(&self, n: usize) -> String {
        let mut out = String::new();
        for ev in self.tail(n) {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

impl PipeEventSink for CycleLog {
    #[inline(always)]
    fn event(&mut self, ev: PipeEvent) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
        }
        self.head = (self.head + 1) % self.buf.capacity();
        self.total += 1;
    }

    fn deadlock_tail(&self) -> Option<String> {
        if self.is_empty() {
            None
        } else {
            Some(format!(
                "last {} of {} tap events:\n{}",
                self.len().min(DEADLOCK_TAIL),
                self.total_events(),
                self.render_tail(DEADLOCK_TAIL)
            ))
        }
    }
}

/// Assert the tap's independent bookkeeping reconciles exactly with the
/// pipeline's own counters for the same measured region.
///
/// The conservation laws checked:
///
/// 1. attributed cycles (all causes) == measured cycles;
/// 2. stall-cause cycles == the pipeline's commit-idle cycle counter
///    (equivalently: `Active` cycles == cycles in which a µop retired);
/// 3. commit events == retired instructions;
/// 4. squash events == value-misprediction + memory-order squash counters,
///    cause by cause;
/// 5. reissue events == reissued-µop counter.
///
/// Returns every violated law, or `Ok(())` when the two witnesses agree.
pub fn check_conservation(result: &RunResult, report: &StallReport) -> Result<(), String> {
    let mut errors = Vec::new();
    let mut check = |law: &str, tap: u64, counters: u64| {
        if tap != counters {
            errors.push(format!("{law}: tap says {tap}, counters say {counters}"));
        }
    };
    check("attributed cycles == measured cycles", report.total_cycles(), result.metrics.cycles);
    check(
        "stall attributions == commit-idle cycles",
        report.stall_cycles(),
        result.stalls.commit_idle_cycles,
    );
    check("commit events == retired instructions", report.committed, result.metrics.instructions);
    check("vp squash events == vp squashes", report.vp_squashes, result.vp_squashes);
    check(
        "memory-order squash events == violations",
        report.order_squashes,
        result.memory_order_violations,
    );
    check("reissue events == reissued µops", report.reissued, result.reissued_uops);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, seq: u64, kind: PipeEventKind) -> PipeEvent {
        PipeEvent { cycle, seq, kind }
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        assert!(NullSink.deadlock_tail().is_none());
    }

    #[test]
    fn pair_sink_enables_if_either_half_does() {
        const {
            assert!(<(StallTally, NullSink)>::ENABLED);
            assert!(<(NullSink, CycleLog)>::ENABLED);
            assert!(!<(NullSink, NullSink)>::ENABLED);
        }
    }

    #[test]
    fn pair_sink_fans_out_and_prefers_first_tail() {
        let mut pair = (StallTally::default(), CycleLog::with_capacity(4));
        pair.event(ev(3, 7, PipeEventKind::Writeback));
        assert_eq!(pair.0.totals().writebacks, 1);
        assert_eq!(pair.1.len(), 1);
        assert!(pair.deadlock_tail().unwrap().contains("writeback"));
    }

    #[test]
    fn tally_reduces_events_to_a_report() {
        let mut t = StallTally::default();
        t.event(ev(1, 1, PipeEventKind::Fetch { pc: 0x40, slot: 0 }));
        t.event(ev(2, 1, PipeEventKind::Dispatch { slot: 0 }));
        t.event(ev(3, 1, PipeEventKind::Issue { slot: 0 }));
        t.event(ev(4, 1, PipeEventKind::Writeback));
        t.event(ev(5, 1, PipeEventKind::VpValidate { correct: false }));
        t.event(ev(5, 1, PipeEventKind::Reissue));
        t.event(ev(6, 1, PipeEventKind::Commit { slot: 0 }));
        t.event(ev(
            6,
            1,
            PipeEventKind::Squash { cause: SquashCause::ValueMisprediction, squashed: 9 },
        ));
        t.event(ev(7, 2, PipeEventKind::Squash { cause: SquashCause::MemoryOrder, squashed: 2 }));
        let occ = Occupancy::default();
        t.event(ev(1, 0, PipeEventKind::Cycle { cause: CycleCause::Active, span: 5, occ }));
        t.event(ev(6, 0, PipeEventKind::Cycle { cause: CycleCause::MemWait, span: 2, occ }));
        let r = t.totals();
        assert_eq!((r.fetched, r.dispatched, r.issued, r.writebacks, r.committed), (1, 1, 1, 1, 1));
        assert_eq!((r.vp_validations, r.vp_mispredictions, r.reissued), (1, 1, 1));
        assert_eq!((r.vp_squashes, r.order_squashes, r.squashed_uops), (1, 1, 11));
        assert_eq!(r.total_cycles(), 7);
        assert_eq!(r.stall_cycles(), 2);
    }

    #[test]
    fn measure_start_snapshots_the_warmup_region() {
        let mut t = StallTally::default();
        let occ = Occupancy::default();
        t.event(ev(1, 0, PipeEventKind::Cycle { cause: CycleCause::Active, span: 10, occ }));
        t.event(ev(1, 1, PipeEventKind::Commit { slot: 0 }));
        t.event(ev(11, 0, PipeEventKind::MeasureStart));
        t.event(ev(11, 0, PipeEventKind::Cycle { cause: CycleCause::IssueWait, span: 4, occ }));
        t.event(ev(15, 2, PipeEventKind::Commit { slot: 0 }));
        let m = t.measured();
        assert_eq!(m.total_cycles(), 4);
        assert_eq!(m.committed, 1);
        assert_eq!(t.totals().total_cycles(), 14);
        assert_eq!(t.totals().committed, 2);
    }

    #[test]
    fn without_measure_start_measured_equals_totals() {
        let mut t = StallTally::default();
        let occ = Occupancy::default();
        t.event(ev(1, 0, PipeEventKind::Cycle { cause: CycleCause::FetchStarve, span: 3, occ }));
        assert_eq!(t.measured(), *t.totals());
    }

    #[test]
    fn cycle_log_retains_the_most_recent_events_in_order() {
        let mut log = CycleLog::with_capacity(3);
        for i in 0..5u64 {
            log.event(ev(i, i, PipeEventKind::Writeback));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_events(), 5);
        let tail: Vec<u64> = log.tail(8).iter().map(|e| e.cycle).collect();
        assert_eq!(tail, vec![2, 3, 4]);
        let tail2: Vec<u64> = log.tail(2).iter().map(|e| e.cycle).collect();
        assert_eq!(tail2, vec![3, 4]);
    }

    #[test]
    fn cycle_log_tail_before_wrap() {
        let mut log = CycleLog::with_capacity(8);
        for i in 0..3u64 {
            log.event(ev(i, i, PipeEventKind::Writeback));
        }
        let tail: Vec<u64> = log.tail(2).iter().map(|e| e.cycle).collect();
        assert_eq!(tail, vec![1, 2]);
        assert!(log.deadlock_tail().unwrap().contains("last 3 of 3"));
    }

    #[test]
    fn event_rendering_is_greppable() {
        let occ = Occupancy { rob: 4, iq: 2, lq: 1, sq: 0, fetch_queue: 3 };
        let lines = [
            ev(10, 5, PipeEventKind::Fetch { pc: 0x400, slot: 2 }).to_string(),
            ev(11, 5, PipeEventKind::VpValidate { correct: true }).to_string(),
            ev(12, 0, PipeEventKind::Cycle { cause: CycleCause::MemWait, span: 7, occ })
                .to_string(),
            ev(13, 9, PipeEventKind::Squash { cause: SquashCause::MemoryOrder, squashed: 3 })
                .to_string(),
            ev(14, 0, PipeEventKind::MeasureStart).to_string(),
        ];
        assert!(lines[0].contains("fetch") && lines[0].contains("0x400"));
        assert!(lines[1].contains("vp-validate correct"));
        assert!(lines[2].contains("mem-wait") && lines[2].contains("x7"));
        assert!(lines[3].contains("memory-order") && lines[3].contains("dropped 3"));
        assert!(lines[4].contains("measure-start"));
    }

    #[test]
    fn conservation_accepts_matching_books_and_names_violations() {
        let mut result = RunResult::default();
        result.metrics.cycles = 10;
        result.metrics.instructions = 6;
        result.stalls.commit_idle_cycles = 4;
        let mut report = StallReport::default();
        report.record_cycles(CycleCause::Active, 6, Occupancy::default());
        report.record_cycles(CycleCause::CommitBlock, 4, Occupancy::default());
        report.committed = 6;
        assert!(check_conservation(&result, &report).is_ok());

        report.committed = 5;
        let err = check_conservation(&result, &report).unwrap_err();
        assert!(err.contains("commit events"), "unexpected error: {err}");
        assert!(err.contains("tap says 5"));
    }
}
