//! Core configuration (paper Table 2).

use vpsim_core::{ConfidenceScheme, PredictorKind};
use vpsim_mem::MemoryConfig;

/// Value-misprediction recovery policy (paper §3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryPolicy {
    /// Flush everything younger than the mispredicted µop when it commits.
    /// Cheap hardware, high per-event penalty (~40–50 cycles); the paper's
    /// practical proposal, viable once FPC pushes accuracy above 99.5 %.
    SquashAtCommit,
    /// Idealistic 0-cycle selective reissue: at execute time, every µop
    /// that transitively consumed the wrong value re-enters the scheduler
    /// immediately. Value-speculatively issued µops hold their IQ entries
    /// until they become non-speculative (§7.2.1).
    SelectiveReissue,
}

impl std::fmt::Display for RecoveryPolicy {
    /// Canonical short name: `squash` or `reissue` (re-parseable by
    /// [`FromStr`](std::str::FromStr)).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryPolicy::SquashAtCommit => "squash",
            RecoveryPolicy::SelectiveReissue => "reissue",
        })
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    /// Parse `squash` / `reissue` (long spellings `squash-at-commit` and
    /// `selective-reissue` are accepted too, case-insensitively).
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_uarch::RecoveryPolicy;
    ///
    /// let r: RecoveryPolicy = "squash".parse().unwrap();
    /// assert_eq!(r, RecoveryPolicy::SquashAtCommit);
    /// assert_eq!(r.to_string().parse::<RecoveryPolicy>().unwrap(), r);
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "squash" | "squash-at-commit" => Ok(RecoveryPolicy::SquashAtCommit),
            "reissue" | "selective-reissue" => Ok(RecoveryPolicy::SelectiveReissue),
            other => Err(format!("unknown recovery policy {other} (valid: squash, reissue)")),
        }
    }
}

/// Value-prediction configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct VpConfig {
    /// Which predictor to instantiate (paper Table 1 sizing).
    pub kind: PredictorKind,
    /// Confidence flavour (baseline 3-bit vs FPC).
    pub scheme: ConfidenceScheme,
    /// Recovery mechanism.
    pub recovery: RecoveryPolicy,
}

impl VpConfig {
    /// A predictor with the recovery-matched FPC vector from §5.
    pub fn enabled(kind: PredictorKind, recovery: RecoveryPolicy) -> Self {
        let scheme = match recovery {
            RecoveryPolicy::SquashAtCommit => ConfidenceScheme::fpc_squash(),
            RecoveryPolicy::SelectiveReissue => ConfidenceScheme::fpc_reissue(),
        };
        VpConfig { kind, scheme, recovery }
    }

    /// A predictor with the baseline 3-bit confidence counters.
    pub fn baseline_counters(kind: PredictorKind, recovery: RecoveryPolicy) -> Self {
        VpConfig { kind, scheme: ConfidenceScheme::baseline(), recovery }
    }
}

/// Functional-unit pool sizes and latencies (Table 2: "8ALU(1c),
/// 4MulDiv(3c/25c*), 8FP(3c), 4FPMulDiv(5c/10c*), 4Ld/Str; * = not
/// pipelined").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Simple integer ALUs (also execute control µops).
    pub alu_units: usize,
    /// ALU latency.
    pub alu_latency: u64,
    /// Integer multiply/divide units.
    pub muldiv_units: usize,
    /// Integer multiply latency (pipelined).
    pub mul_latency: u64,
    /// Integer divide latency (not pipelined).
    pub div_latency: u64,
    /// FP add-class units.
    pub fp_units: usize,
    /// FP add latency.
    pub fp_latency: u64,
    /// FP multiply/divide units.
    pub fpmuldiv_units: usize,
    /// FP multiply latency (pipelined).
    pub fpmul_latency: u64,
    /// FP divide latency (not pipelined).
    pub fpdiv_latency: u64,
    /// Load ports.
    pub load_ports: usize,
    /// Store ports.
    pub store_ports: usize,
}

impl Default for FuConfig {
    fn default() -> Self {
        FuConfig {
            alu_units: 8,
            alu_latency: 1,
            muldiv_units: 4,
            mul_latency: 3,
            div_latency: 25,
            fp_units: 8,
            fp_latency: 3,
            fpmuldiv_units: 4,
            fpmul_latency: 5,
            fpdiv_latency: 10,
            load_ports: 4,
            store_ports: 4,
        }
    }
}

/// Full core configuration (defaults = paper Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Fetch/decode/rename width in µops.
    pub fetch_width: usize,
    /// Maximum taken branches fetched per cycle.
    pub taken_branches_per_cycle: usize,
    /// Front-end depth in cycles (fetch → dispatch; "slow front-end, 15
    /// cycles").
    pub frontend_depth: u64,
    /// Issue width.
    pub issue_width: usize,
    /// Retire width.
    pub retire_width: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Issue queue entries.
    pub iq_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Integer physical registers.
    pub int_prf: usize,
    /// Floating-point physical registers.
    pub fp_prf: usize,
    /// Store-set SSIT entries (Table 2: 1K-SSID/LFST).
    pub store_set_entries: usize,
    /// Functional units.
    pub fu: FuConfig,
    /// Memory hierarchy.
    pub mem: MemoryConfig,
    /// Value prediction, if enabled.
    pub vp: Option<VpConfig>,
    /// Seed for all randomized structures (FPC LFSRs, TAGE allocation).
    pub seed: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 8,
            taken_branches_per_cycle: 2,
            frontend_depth: 15,
            issue_width: 8,
            retire_width: 8,
            rob_entries: 256,
            iq_entries: 128,
            lq_entries: 48,
            sq_entries: 48,
            int_prf: 256,
            fp_prf: 256,
            store_set_entries: 1024,
            fu: FuConfig::default(),
            mem: MemoryConfig::default(),
            vp: None,
            seed: 0xC0DE_2014,
        }
    }
}

impl CoreConfig {
    /// Builder-style: enable value prediction.
    pub fn with_vp(mut self, vp: VpConfig) -> Self {
        self.vp = Some(vp);
        self
    }

    /// Builder-style: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// How many functionally-executed µops a captured
    /// [`Trace`](vpsim_isa::Trace) must cover for
    /// [`Simulator::run_trace`](crate::Simulator::run_trace) to be
    /// byte-identical to inline execution of `warmup + measure` committed
    /// instructions on this core.
    ///
    /// Fetch can run ahead of commit by at most the fetch-queue capacity
    /// plus the ROB size (squashed µops are refetched from an internal
    /// queue, never re-pulled from the source), so the bound is
    /// `warmup + measure + fetch_queue + rob_entries`. Shorter programs
    /// need only their full length.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_uarch::CoreConfig;
    ///
    /// let c = CoreConfig::default(); // 128-entry fetch queue + 256 ROB
    /// assert_eq!(c.trace_budget(50_000, 200_000), 250_384);
    /// ```
    pub fn trace_budget(&self, warmup: u64, measure: u64) -> u64 {
        warmup
            .saturating_add(measure)
            .saturating_add((crate::pipeline::FETCH_QUEUE + self.rob_entries) as u64)
    }

    /// Validate invariants.
    ///
    /// # Panics
    ///
    /// Panics if any width or structure size is zero.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.issue_width > 0 && self.retire_width > 0);
        assert!(self.rob_entries > 0 && self.iq_entries > 0);
        assert!(self.lq_entries > 0 && self.sq_entries > 0);
        assert!(self.int_prf >= 64 && self.fp_prf >= 64, "PRF must cover architectural state");
        assert!(self.store_set_entries.is_power_of_two());
        assert!(self.frontend_depth >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.rob_entries, 256);
        assert_eq!(c.iq_entries, 128);
        assert_eq!(c.lq_entries, 48);
        assert_eq!(c.sq_entries, 48);
        assert_eq!(c.int_prf, 256);
        assert_eq!(c.fp_prf, 256);
        assert_eq!(c.frontend_depth, 15);
        assert_eq!(c.fu.alu_units, 8);
        assert_eq!(c.fu.div_latency, 25);
        assert!(c.vp.is_none());
        c.validate();
    }

    #[test]
    fn vp_config_picks_matching_fpc_vector() {
        let squash = VpConfig::enabled(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit);
        assert_eq!(squash.scheme, ConfidenceScheme::fpc_squash());
        let reissue = VpConfig::enabled(PredictorKind::Vtage, RecoveryPolicy::SelectiveReissue);
        assert_eq!(reissue.scheme, ConfidenceScheme::fpc_reissue());
        let base = VpConfig::baseline_counters(PredictorKind::Lvp, RecoveryPolicy::SquashAtCommit);
        assert_eq!(base.scheme, ConfidenceScheme::baseline());
    }

    #[test]
    fn builders_compose() {
        let c = CoreConfig::default()
            .with_seed(7)
            .with_vp(VpConfig::enabled(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit));
        assert_eq!(c.seed, 7);
        assert!(c.vp.is_some());
    }

    #[test]
    #[should_panic]
    fn zero_rob_is_rejected() {
        let c = CoreConfig { rob_entries: 0, ..CoreConfig::default() };
        c.validate();
    }

    #[test]
    fn recovery_policy_round_trips() {
        for r in [RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue] {
            assert_eq!(r.to_string().parse::<RecoveryPolicy>().unwrap(), r);
        }
        assert_eq!(
            "squash-at-commit".parse::<RecoveryPolicy>(),
            Ok(RecoveryPolicy::SquashAtCommit)
        );
        let err = "rollback".parse::<RecoveryPolicy>().unwrap_err();
        assert!(err.contains("squash") && err.contains("reissue"), "{err}");
    }
}
