//! The paper's §4 register-file port cost model.
//!
//! Area of a multiported register file is approximately proportional to
//! `(R + W) × (R + 2W)` (Zyuban & Kogge). With the baseline `R = 2W`, the
//! area factor is `12W²`. Naively doubling write ports for value
//! prediction gives `24W²` (2× area); limiting the extra prediction-write
//! ports to `W/2` (buffering extra writes) gives `3.5W × 5W = 17.5W²` —
//! i.e. `35W²/2`, saving half of the naive overhead. The paper concludes
//! the energy and area overheads can be reduced below 25 % and 50 %
//! respectively.

/// Register file port configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFilePorts {
    /// Read ports.
    pub reads: u32,
    /// Write ports.
    pub writes: u32,
}

impl RegFilePorts {
    /// The paper's baseline assumption `R = 2W` for a `w`-wide machine.
    pub fn baseline(writes: u32) -> Self {
        RegFilePorts { reads: 2 * writes, writes }
    }

    /// Area factor `(R + W)(R + 2W)` (arbitrary units of W²).
    pub fn area_factor(&self) -> f64 {
        let r = self.reads as f64;
        let w = self.writes as f64;
        (r + w) * (r + 2.0 * w)
    }
}

/// §4 cost comparison for adding value-prediction write ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpPortCost {
    /// Baseline area factor (12W²).
    pub baseline: f64,
    /// Naive doubling of write ports (24W²).
    pub naive_vp: f64,
    /// W/2 extra write ports with write buffering (17.5W²).
    pub buffered_vp: f64,
}

/// Evaluate the §4 model for a machine with `w` base write ports.
pub fn vp_port_cost(w: u32) -> VpPortCost {
    let base = RegFilePorts::baseline(w);
    let naive = RegFilePorts { reads: 2 * w, writes: 2 * w };
    let buffered = RegFilePorts { reads: 2 * w, writes: w + w / 2 + (w % 2) / 2 };
    // For odd w the paper's closed form 35W²/2 assumes W/2 exactly; use the
    // fractional port count to stay faithful to the formula.
    let buffered_area = {
        let r = 2.0 * w as f64;
        let wr = w as f64 + w as f64 / 2.0;
        (r + wr) * (r + 2.0 * wr)
    };
    let _ = buffered;
    VpPortCost {
        baseline: base.area_factor(),
        naive_vp: naive.area_factor(),
        buffered_vp: buffered_area,
    }
}

impl VpPortCost {
    /// Area overhead of the naive scheme relative to baseline (1.0 = +100 %).
    pub fn naive_overhead(&self) -> f64 {
        self.naive_vp / self.baseline - 1.0
    }

    /// Area overhead of the buffered scheme relative to baseline.
    pub fn buffered_overhead(&self) -> f64 {
        self.buffered_vp / self.baseline - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_area_is_12_w_squared() {
        for w in [1u32, 2, 4, 8] {
            let area = RegFilePorts::baseline(w).area_factor();
            assert!((area - 12.0 * (w * w) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn naive_vp_doubles_area() {
        let c = vp_port_cost(8);
        assert!((c.naive_overhead() - 1.0).abs() < 1e-9, "naive doubles the area");
    }

    #[test]
    fn buffered_vp_saves_half_the_overhead() {
        let c = vp_port_cost(8);
        // 17.5W² vs 12W²: ≈ 45.8 % overhead — less than half the naive 100 %.
        assert!((c.buffered_vp / c.baseline - 35.0 / 24.0).abs() < 1e-9);
        assert!(c.buffered_overhead() < 0.5);
        assert!(c.buffered_overhead() > 0.4);
    }

    #[test]
    fn overheads_scale_independent_of_width() {
        let small = vp_port_cost(2);
        let large = vp_port_cost(16);
        assert!((small.naive_overhead() - large.naive_overhead()).abs() < 1e-9);
        assert!((small.buffered_overhead() - large.buffered_overhead()).abs() < 1e-9);
    }
}
