//! Simulation run results.

use vpsim_stats::{BackToBackStats, BranchStats, CacheStats, RunMetrics, VpStats};

/// Per-cause cycle attribution for the front half of the machine.
///
/// Fetch causes are mutually exclusive per cycle; dispatch causes record
/// the *first* structural resource that blocked an otherwise-ready µop in
/// a cycle. Cycles where everything flowed appear in no bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Fetch idle waiting for an unresolved (mispredicted) branch.
    pub fetch_branch_cycles: u64,
    /// Fetch idle on a redirect/refill (I-cache miss fill or post-squash
    /// resume).
    pub fetch_redirect_cycles: u64,
    /// Fetch idle because the fetch queue was full (back-pressure).
    pub fetch_queue_full_cycles: u64,
    /// Dispatch blocked by a full ROB.
    pub dispatch_rob_cycles: u64,
    /// Dispatch blocked by a full issue queue.
    pub dispatch_iq_cycles: u64,
    /// Dispatch blocked by a full load queue.
    pub dispatch_lq_cycles: u64,
    /// Dispatch blocked by a full store queue.
    pub dispatch_sq_cycles: u64,
    /// Dispatch blocked by physical-register exhaustion.
    pub dispatch_prf_cycles: u64,
    /// Cycles in which no µop committed.
    pub commit_idle_cycles: u64,
}

impl StallBreakdown {
    /// Total attributed fetch-stall cycles.
    pub fn fetch_total(&self) -> u64 {
        self.fetch_branch_cycles + self.fetch_redirect_cycles + self.fetch_queue_full_cycles
    }

    /// Total attributed dispatch-stall cycles.
    pub fn dispatch_total(&self) -> u64 {
        self.dispatch_rob_cycles
            + self.dispatch_iq_cycles
            + self.dispatch_lq_cycles
            + self.dispatch_sq_cycles
            + self.dispatch_prf_cycles
    }

    pub(crate) fn diff(&self, before: &StallBreakdown) -> StallBreakdown {
        StallBreakdown {
            fetch_branch_cycles: self.fetch_branch_cycles - before.fetch_branch_cycles,
            fetch_redirect_cycles: self.fetch_redirect_cycles - before.fetch_redirect_cycles,
            fetch_queue_full_cycles: self.fetch_queue_full_cycles - before.fetch_queue_full_cycles,
            dispatch_rob_cycles: self.dispatch_rob_cycles - before.dispatch_rob_cycles,
            dispatch_iq_cycles: self.dispatch_iq_cycles - before.dispatch_iq_cycles,
            dispatch_lq_cycles: self.dispatch_lq_cycles - before.dispatch_lq_cycles,
            dispatch_sq_cycles: self.dispatch_sq_cycles - before.dispatch_sq_cycles,
            dispatch_prf_cycles: self.dispatch_prf_cycles - before.dispatch_prf_cycles,
            commit_idle_cycles: self.commit_idle_cycles - before.commit_idle_cycles,
        }
    }
}

/// Everything a simulation run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles and committed instructions over the measured region.
    pub metrics: RunMetrics,
    /// Value prediction statistics (coverage, accuracy, …).
    pub vp: VpStats,
    /// Branch prediction statistics.
    pub branch: BranchStats,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// §3.2 back-to-back fetch statistics for VP-eligible µops.
    pub back_to_back: BackToBackStats,
    /// Pipeline squashes triggered by value mispredictions at commit.
    pub vp_squashes: u64,
    /// µops re-executed by the selective reissue mechanism.
    pub reissued_uops: u64,
    /// Memory-order violations (store-set training events).
    pub memory_order_violations: u64,
    /// Cycle attribution for fetch/dispatch/commit stalls.
    pub stalls: StallBreakdown,
}

/// Magic + format version prefix of the [`RunResult`] binary form. Bump
/// the trailing digit on any incompatible change (including adding or
/// reordering counter fields).
const MAGIC: &[u8; 8] = b"vpsres1\n";

/// Number of `u64` counters in the serialized form.
const N_FIELDS: usize = 39;

impl RunResult {
    /// Serialize into a fixed-size checksummed binary record: the
    /// magic/version prefix, every counter as a little-endian `u64` in
    /// declaration order, and a trailing FNV-1a 64 checksum. Used by the
    /// service layer's persistent result cache; [`RunResult::from_bytes`]
    /// is the exact inverse.
    pub fn to_bytes(&self) -> Vec<u8> {
        let fields = self.field_values();
        let mut out = Vec::with_capacity(MAGIC.len() + (N_FIELDS + 1) * 8);
        out.extend_from_slice(MAGIC);
        for v in fields {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialize a record produced by [`RunResult::to_bytes`]. Rejects
    /// (with a human-readable message, never a panic) bad magic, any size
    /// mismatch, and checksum failures — a single flipped bit anywhere in
    /// the record is caught.
    pub fn from_bytes(bytes: &[u8]) -> Result<RunResult, String> {
        let want = MAGIC.len() + (N_FIELDS + 1) * 8;
        if bytes.len() != want {
            return Err(format!("result record is {} bytes, expected {want}", bytes.len()));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err("bad magic (not a serialized run result)".to_string());
        }
        let body = &bytes[..want - 8];
        let found = u64::from_le_bytes(bytes[want - 8..].try_into().unwrap());
        let expected = fnv1a(body);
        if found != expected {
            return Err(format!(
                "checksum mismatch: computed {expected:#018x}, stored {found:#018x}"
            ));
        }
        let mut fields = [0u64; N_FIELDS];
        for (i, field) in fields.iter_mut().enumerate() {
            let at = MAGIC.len() + i * 8;
            *field = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        }
        let mut result = RunResult::default();
        for (dst, v) in result.field_slots().into_iter().zip(fields) {
            *dst = v;
        }
        Ok(result)
    }

    /// Every counter, in the fixed serialization order.
    fn field_values(&self) -> [u64; N_FIELDS] {
        let mut me = *self;
        me.field_slots().map(|slot| *slot)
    }

    /// Add every counter of `other` into `self` — the combination step of
    /// sampled replay, where per-interval results sum into one estimate.
    /// Ratio statistics (IPC, accuracies, miss rates) of the sum are the
    /// µop-weighted combination of the parts.
    pub(crate) fn accumulate(&mut self, other: &RunResult) {
        let mut rhs = *other;
        let values = rhs.field_slots().map(|slot| *slot);
        for (dst, v) in self.field_slots().into_iter().zip(values) {
            *dst += v;
        }
    }

    /// Mutable references to every counter, in the same fixed order as
    /// [`RunResult::field_values`] — the single source of truth for the
    /// wire layout, so the two can never drift apart.
    fn field_slots(&mut self) -> [&mut u64; N_FIELDS] {
        [
            &mut self.metrics.cycles,
            &mut self.metrics.instructions,
            &mut self.vp.eligible,
            &mut self.vp.hits,
            &mut self.vp.used,
            &mut self.vp.correct_used,
            &mut self.vp.mispredicted,
            &mut self.vp.correct_unused,
            &mut self.vp.harmless_mispredictions,
            &mut self.branch.conditional,
            &mut self.branch.direction_mispredictions,
            &mut self.branch.target_mispredictions,
            &mut self.branch.unconditional,
            &mut self.l1i.accesses,
            &mut self.l1i.misses,
            &mut self.l1i.prefetches,
            &mut self.l1i.useful_prefetches,
            &mut self.l1d.accesses,
            &mut self.l1d.misses,
            &mut self.l1d.prefetches,
            &mut self.l1d.useful_prefetches,
            &mut self.l2.accesses,
            &mut self.l2.misses,
            &mut self.l2.prefetches,
            &mut self.l2.useful_prefetches,
            &mut self.back_to_back.eligible,
            &mut self.back_to_back.back_to_back,
            &mut self.vp_squashes,
            &mut self.reissued_uops,
            &mut self.memory_order_violations,
            &mut self.stalls.fetch_branch_cycles,
            &mut self.stalls.fetch_redirect_cycles,
            &mut self.stalls.fetch_queue_full_cycles,
            &mut self.stalls.dispatch_rob_cycles,
            &mut self.stalls.dispatch_iq_cycles,
            &mut self.stalls.dispatch_lq_cycles,
            &mut self.stalls.dispatch_sq_cycles,
            &mut self.stalls.dispatch_prf_cycles,
            &mut self.stalls.commit_idle_cycles,
        ]
    }
}

/// FNV-1a 64 — storage-corruption checksum (not cryptographic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn diff_cache(after: &CacheStats, before: &CacheStats) -> CacheStats {
    CacheStats {
        accesses: after.accesses - before.accesses,
        misses: after.misses - before.misses,
        prefetches: after.prefetches - before.prefetches,
        useful_prefetches: after.useful_prefetches - before.useful_prefetches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_cache_subtracts_fieldwise() {
        let before = CacheStats { accesses: 10, misses: 2, prefetches: 1, useful_prefetches: 0 };
        let after = CacheStats { accesses: 30, misses: 7, prefetches: 5, useful_prefetches: 3 };
        let d = diff_cache(&after, &before);
        assert_eq!(d.accesses, 20);
        assert_eq!(d.misses, 5);
        assert_eq!(d.prefetches, 4);
        assert_eq!(d.useful_prefetches, 3);
    }

    #[test]
    fn default_result_is_zeroed() {
        let r = RunResult::default();
        assert_eq!(r.metrics.instructions, 0);
        assert_eq!(r.vp_squashes, 0);
    }

    /// A result with every counter distinct, so any field swap or drop in
    /// the serialization order breaks round-tripping.
    fn distinct_result() -> RunResult {
        let mut r = RunResult::default();
        for (i, slot) in r.field_slots().into_iter().enumerate() {
            *slot = 1_000_003u64.wrapping_mul(i as u64 + 1);
        }
        r
    }

    #[test]
    fn result_bytes_round_trip() {
        for r in [RunResult::default(), distinct_result()] {
            let bytes = r.to_bytes();
            assert_eq!(bytes.len(), MAGIC.len() + (N_FIELDS + 1) * 8);
            assert_eq!(RunResult::from_bytes(&bytes), Ok(r));
        }
    }

    #[test]
    fn result_bytes_detect_any_bit_flip() {
        let bytes = distinct_result().to_bytes();
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << (pos % 8);
            assert!(RunResult::from_bytes(&corrupt).is_err(), "flip at byte {pos}");
        }
    }

    #[test]
    fn result_bytes_reject_size_mismatch() {
        let bytes = distinct_result().to_bytes();
        assert!(RunResult::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(RunResult::from_bytes(&long).is_err());
        assert!(RunResult::from_bytes(b"").is_err());
    }
}
