//! Simulation run results.

use vpsim_stats::{BackToBackStats, BranchStats, CacheStats, RunMetrics, VpStats};

/// Per-cause cycle attribution for the front half of the machine.
///
/// Fetch causes are mutually exclusive per cycle; dispatch causes record
/// the *first* structural resource that blocked an otherwise-ready µop in
/// a cycle. Cycles where everything flowed appear in no bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Fetch idle waiting for an unresolved (mispredicted) branch.
    pub fetch_branch_cycles: u64,
    /// Fetch idle on a redirect/refill (I-cache miss fill or post-squash
    /// resume).
    pub fetch_redirect_cycles: u64,
    /// Fetch idle because the fetch queue was full (back-pressure).
    pub fetch_queue_full_cycles: u64,
    /// Dispatch blocked by a full ROB.
    pub dispatch_rob_cycles: u64,
    /// Dispatch blocked by a full issue queue.
    pub dispatch_iq_cycles: u64,
    /// Dispatch blocked by a full load queue.
    pub dispatch_lq_cycles: u64,
    /// Dispatch blocked by a full store queue.
    pub dispatch_sq_cycles: u64,
    /// Dispatch blocked by physical-register exhaustion.
    pub dispatch_prf_cycles: u64,
    /// Cycles in which no µop committed.
    pub commit_idle_cycles: u64,
}

impl StallBreakdown {
    /// Total attributed fetch-stall cycles.
    pub fn fetch_total(&self) -> u64 {
        self.fetch_branch_cycles + self.fetch_redirect_cycles + self.fetch_queue_full_cycles
    }

    /// Total attributed dispatch-stall cycles.
    pub fn dispatch_total(&self) -> u64 {
        self.dispatch_rob_cycles
            + self.dispatch_iq_cycles
            + self.dispatch_lq_cycles
            + self.dispatch_sq_cycles
            + self.dispatch_prf_cycles
    }

    pub(crate) fn diff(&self, before: &StallBreakdown) -> StallBreakdown {
        StallBreakdown {
            fetch_branch_cycles: self.fetch_branch_cycles - before.fetch_branch_cycles,
            fetch_redirect_cycles: self.fetch_redirect_cycles - before.fetch_redirect_cycles,
            fetch_queue_full_cycles: self.fetch_queue_full_cycles - before.fetch_queue_full_cycles,
            dispatch_rob_cycles: self.dispatch_rob_cycles - before.dispatch_rob_cycles,
            dispatch_iq_cycles: self.dispatch_iq_cycles - before.dispatch_iq_cycles,
            dispatch_lq_cycles: self.dispatch_lq_cycles - before.dispatch_lq_cycles,
            dispatch_sq_cycles: self.dispatch_sq_cycles - before.dispatch_sq_cycles,
            dispatch_prf_cycles: self.dispatch_prf_cycles - before.dispatch_prf_cycles,
            commit_idle_cycles: self.commit_idle_cycles - before.commit_idle_cycles,
        }
    }
}

/// Everything a simulation run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunResult {
    /// Cycles and committed instructions over the measured region.
    pub metrics: RunMetrics,
    /// Value prediction statistics (coverage, accuracy, …).
    pub vp: VpStats,
    /// Branch prediction statistics.
    pub branch: BranchStats,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// §3.2 back-to-back fetch statistics for VP-eligible µops.
    pub back_to_back: BackToBackStats,
    /// Pipeline squashes triggered by value mispredictions at commit.
    pub vp_squashes: u64,
    /// µops re-executed by the selective reissue mechanism.
    pub reissued_uops: u64,
    /// Memory-order violations (store-set training events).
    pub memory_order_violations: u64,
    /// Cycle attribution for fetch/dispatch/commit stalls.
    pub stalls: StallBreakdown,
}

pub(crate) fn diff_cache(after: &CacheStats, before: &CacheStats) -> CacheStats {
    CacheStats {
        accesses: after.accesses - before.accesses,
        misses: after.misses - before.misses,
        prefetches: after.prefetches - before.prefetches,
        useful_prefetches: after.useful_prefetches - before.useful_prefetches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_cache_subtracts_fieldwise() {
        let before = CacheStats { accesses: 10, misses: 2, prefetches: 1, useful_prefetches: 0 };
        let after = CacheStats { accesses: 30, misses: 7, prefetches: 5, useful_prefetches: 3 };
        let d = diff_cache(&after, &before);
        assert_eq!(d.accesses, 20);
        assert_eq!(d.misses, 5);
        assert_eq!(d.prefetches, 4);
        assert_eq!(d.useful_prefetches, 3);
    }

    #[test]
    fn default_result_is_zeroed() {
        let r = RunResult::default();
        assert_eq!(r.metrics.instructions, 0);
        assert_eq!(r.vp_squashes, 0);
    }
}
