//! Slab-backed struct-of-arrays instruction window and its companion
//! hot-loop structures.
//!
//! The timing model ([`crate::pipeline`]) used to keep its in-flight µops
//! in a `VecDeque<Slot>` of ~200-byte slots and rediscover everything by
//! scanning it: completion scanned the whole window every cycle, issue
//! re-checked every waiting µop's operands, poison sets were per-slot
//! `Vec<u64>`s cloned on inheritance, and dispatch walked over every
//! already-dispatched slot to find the front-end region. This module
//! replaces that with indexed structures sized once at construction so the
//! steady-state simulation loop performs **zero heap allocation per cycle**
//! (verified by `crates/uarch/tests/zero_alloc.rs`):
//!
//! * [`Window`] — a fixed-capacity slab in struct-of-arrays layout with a
//!   free list and per-slot **generation stamps**. Slab indices are stable
//!   for a µop's whole lifetime; a parallel ROB-order ring (`order`) keeps
//!   the commit/seq order, and `seq → slab index` is O(1) because the
//!   window always holds a contiguous seq range.
//! * **Poison tracking** — each slot's selective-reissue poison set is a
//!   bitmask over *producer slab indices* plus an inverted
//!   producer→consumers list, so issue-time inheritance is a word-wise OR
//!   (no `Vec` clone) and validation/reissue walk exactly the affected
//!   consumers instead of the whole window. Stale inverted entries are
//!   skipped lazily by re-checking the bitmask — the generation stamp of
//!   the *slot* guards everything else that can outlive a µop.
//! * **Wakeup scoreboard** — waiting consumers register on their unready
//!   producers (`waiters`); a producer's writeback re-checks exactly those
//!   consumers and sets their bit in a seq-indexed `ready` bitset that the
//!   issue stage iterates in age order. The bitset is a conservative
//!   candidate filter: issue re-verifies operands, so spurious set bits are
//!   harmless and selective reissue (which can make a "ready" consumer
//!   unready again) only needs lazy repair.
//! * **Address-indexed LSQ** — in-flight loads and stores are threaded
//!   onto line-hashed bucket chains (intrusive doubly-linked, age-ordered
//!   because dispatch is in-order), so store-to-load forwarding and
//!   memory-order violation checks walk only same-line µops instead of
//!   the whole ROB-order ring. Entries join at dispatch and leave at
//!   [`Window::release`] (commit or squash), mirroring the LQ/SQ held
//!   flags.
//! * [`CompletionWheel`] — completion events bucketed by cycle on the
//!   shared [`vpsim_event::TimingWheel`] (the wheel grows to the largest
//!   in-flight latency), replacing the every-cycle full-window completion
//!   scan. Events carry `(cycle, slab index, generation)` and are dropped
//!   lazily when the slot was squashed or reissued.
//! * [`FetchB2b`] — the §3.2 back-to-back fetch statistic over a two-cycle
//!   PC ring. The previous `HashMap<pc, cycle>` grew without bound on
//!   endless workloads; only the previous cycle's fetch group can ever
//!   match, so two `fetch_width`-sized buffers are exact and O(1) memory.

use std::collections::VecDeque;
use vpsim_branch::RasCheckpoint;
use vpsim_core::HistoryState;
use vpsim_event::{Timed, TimingWheel};
use vpsim_isa::{DynInst, FuClass, Opcode, RegClass};

/// Sentinel for "not yet scheduled" cycles.
pub(crate) const UNSCHEDULED: u64 = u64::MAX;

/// Sentinel slab index for "no link" in the LSQ bucket chains.
const NONE: u32 = u32::MAX;

/// Pipeline stage of a window slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Stage {
    /// Fetched, traversing the in-order front-end.
    FrontEnd,
    /// Dispatched into ROB/IQ, waiting for operands.
    Waiting,
    /// Issued to a functional unit.
    Issued,
    /// Result produced; waiting to retire.
    Completed,
}

/// Boolean slot attributes, packed into one flag word per slot.
pub(crate) mod flag {
    /// Predictor produced any value (hit), confident or not.
    pub const PRED_HIT: u16 = 1 << 0;
    /// Predictor produced a correct value that was not confident.
    pub const PRED_CORRECT_UNUSED: u16 = 1 << 1;
    /// The injected confident prediction turned out wrong.
    pub const PRED_WRONG: u16 = 1 << 2;
    /// Some consumer issued using the predicted value before execution.
    pub const PRED_CONSUMER_ISSUED: u16 = 1 << 3;
    /// Squash younger µops when this µop commits (squash-at-commit).
    pub const VP_SQUASH_AT_COMMIT: u16 = 1 << 4;
    /// Slot holds an issue-queue entry.
    pub const IQ_HELD: u16 = 1 << 5;
    /// Slot holds a load-queue entry.
    pub const LQ_HELD: u16 = 1 << 6;
    /// Slot holds a store-queue entry.
    pub const SQ_HELD: u16 = 1 << 7;
    /// Fetch-time branch misprediction (direction or target).
    pub const BR_MISPRED: u16 = 1 << 8;
    /// µop is value-prediction eligible (writes a register).
    pub const ELIGIBLE: u16 = 1 << 9;
}

/// A scheduled completion: slot `idx` (validated by `gen`) finishes
/// execution at cycle `at`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// Absolute completion cycle.
    pub at: u64,
    /// Slab index of the completing slot.
    pub idx: u32,
    /// Generation stamp of the slot when the event was scheduled.
    pub gen: u32,
}

/// Snapshot of the window head used by the event tap's stall attribution
/// ([`Window::head_info`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeadInfo {
    /// Pipeline stage of the oldest in-flight µop.
    pub stage: Stage,
    /// Functional-unit class of the head µop.
    pub fu: FuClass,
    /// Global dynamic sequence number of the head µop.
    pub seq: u64,
    /// Cycle the head µop leaves (or left) the in-order front-end.
    pub fe_exit: u64,
}

/// A consumer registered for wakeup, validated by its generation stamp.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    /// Slab index of the waiting consumer.
    pub idx: u32,
    /// Generation stamp of the consumer when it registered.
    pub gen: u32,
}

/// The instruction window: a struct-of-arrays slab plus ROB-order ring.
///
/// Fields are directly accessible to the pipeline (same crate); the
/// methods here own the bookkeeping that must stay consistent — slot
/// allocation/release, the seq-indexed ready bitset and the poison
/// bitmasks with their inverted lists.
#[derive(Debug)]
pub(crate) struct Window {
    cap: usize,
    /// Bit-position mask for the seq-indexed `ready` bitset
    /// (`capacity.next_power_of_two() - 1`).
    pos_mask: u64,
    /// Words per poison bitmask (one bit per slab slot).
    poison_words: usize,

    // ----- slab arrays (struct-of-arrays, all of length `cap`) -----
    /// The dynamic µop occupying each slot.
    pub di: Vec<DynInst>,
    /// Pipeline stage.
    pub state: Vec<Stage>,
    /// Packed boolean attributes ([`flag`]).
    pub flags: Vec<u16>,
    /// Cycle the µop leaves the in-order front-end.
    pub fe_exit: Vec<u64>,
    /// Cycle the µop dispatched ([`UNSCHEDULED`] while in the front-end).
    pub dispatched_at: Vec<u64>,
    /// Cycle the µop last issued.
    pub issued_at: Vec<u64>,
    /// Cycle the µop's execution completes.
    pub complete_at: Vec<u64>,
    /// Producer seq per source operand (`None` = value architectural).
    pub deps: Vec<[Option<u64>; 2]>,
    /// Store-set predicted dependence (loads only).
    pub store_dep: Vec<Option<u64>>,
    /// LFST slot this store occupies (store-set bookkeeping hint).
    pub lfst_slot: Vec<Option<u16>>,
    /// Confident predicted value injected at dispatch.
    pub predicted: Vec<Option<u64>>,
    /// The predictor's value regardless of confidence.
    pub pred_any: Vec<Option<u64>>,
    /// Physical-register class held by this µop's destination.
    pub prf_class: Vec<Option<RegClass>>,
    /// Speculative history after this µop (squash restore point).
    pub hist_after: Vec<HistoryState>,
    /// RAS checkpoint after this µop (squash restore point).
    pub ras_cp: Vec<RasCheckpoint>,
    /// Generation stamp, bumped on release; anything that may outlive the
    /// slot (completion events, waiter registrations) carries a copy and
    /// is discarded lazily on mismatch.
    pub gen: Vec<u32>,
    /// Wakeup scoreboard: waiting consumers to re-check when this slot's
    /// value becomes available. Consumed (drained) at writeback.
    pub waiters: Vec<Vec<Waiter>>,
    /// Inverted poison index: consumers whose poison mask has this slot's
    /// bit. Entries are validated against the bitmask when walked.
    pub poisoned: Vec<Vec<u32>>,

    // ----- address-indexed LSQ (line-hashed bucket chains) -----
    /// Right shift applied to the fibonacci-hashed line address to pick a
    /// bucket (`64 - log2(bucket count)`).
    lsq_shift: u32,
    /// Oldest dispatched store chained on each bucket.
    store_head: Vec<u32>,
    /// Youngest dispatched store chained on each bucket.
    store_tail: Vec<u32>,
    /// Oldest dispatched load chained on each bucket.
    load_head: Vec<u32>,
    /// Youngest dispatched load chained on each bucket.
    load_tail: Vec<u32>,
    /// Next-younger chain link per slot ([`NONE`] when last or unlinked).
    mem_next: Vec<u32>,
    /// Next-older chain link per slot ([`NONE`] when first or unlinked).
    mem_prev: Vec<u32>,
    /// Bucket a slot is chained on ([`NONE`] when not on any chain).
    mem_bucket: Vec<u32>,

    /// Flattened poison bitmasks, `poison_words` words per slot, one bit
    /// per *producer slab index*.
    poison: Vec<u64>,
    /// Free slab indices.
    free: Vec<u32>,
    /// ROB-order ring of slab indices, oldest first.
    order: VecDeque<u32>,
    /// Issue-candidate bitset indexed by `seq & pos_mask`: waiting slots
    /// whose operands are (conservatively) ready.
    ready: Vec<u64>,
}

impl Window {
    /// A window able to hold `cap` in-flight µops (fetch queue + ROB).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        let pos = cap.next_power_of_two().max(64);
        let poison_words = cap.div_ceil(64);
        Window {
            cap,
            pos_mask: (pos - 1) as u64,
            poison_words,
            di: vec![DynInst::default(); cap],
            state: vec![Stage::FrontEnd; cap],
            flags: vec![0; cap],
            fe_exit: vec![0; cap],
            dispatched_at: vec![0; cap],
            issued_at: vec![0; cap],
            complete_at: vec![0; cap],
            deps: vec![[None, None]; cap],
            store_dep: vec![None; cap],
            lfst_slot: vec![None; cap],
            predicted: vec![None; cap],
            pred_any: vec![None; cap],
            prf_class: vec![None; cap],
            hist_after: vec![HistoryState::default(); cap],
            ras_cp: vec![RasCheckpoint::default(); cap],
            gen: vec![0; cap],
            waiters: vec![Vec::new(); cap],
            poisoned: vec![Vec::new(); cap],
            lsq_shift: 64 - pos.trailing_zeros(),
            store_head: vec![NONE; pos],
            store_tail: vec![NONE; pos],
            load_head: vec![NONE; pos],
            load_tail: vec![NONE; pos],
            mem_next: vec![NONE; cap],
            mem_prev: vec![NONE; cap],
            mem_bucket: vec![NONE; cap],
            poison: vec![0; cap * poison_words],
            free: (0..cap as u32).rev().collect(),
            order: VecDeque::with_capacity(cap),
            ready: vec![0; pos / 64],
        }
    }

    /// In-flight µops (front-end included).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total slab capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Free-list occupancy (slots available for fetch).
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Slab index of the oldest in-flight µop.
    pub fn front(&self) -> Option<u32> {
        self.order.front().copied()
    }

    /// Slab index of the youngest in-flight µop.
    pub fn back(&self) -> Option<u32> {
        self.order.back().copied()
    }

    /// Slab index at ROB-order position `off` (0 = oldest).
    pub fn at(&self, off: usize) -> u32 {
        self.order[off]
    }

    /// Seq of the oldest in-flight µop.
    fn front_seq(&self) -> Option<u64> {
        self.front().map(|i| self.di[i as usize].seq)
    }

    /// Commit-time view of the oldest in-flight µop, for the event tap's
    /// per-cycle stall attribution ([`crate::tap`]): the head µop bounds
    /// everything behind it, so its stage + FU class name the machine's
    /// current bottleneck.
    pub fn head_info(&self) -> Option<HeadInfo> {
        let i = self.front()? as usize;
        Some(HeadInfo {
            stage: self.state[i],
            fu: self.di[i].inst.fu_class(),
            seq: self.di[i].seq,
            fe_exit: self.fe_exit[i],
        })
    }

    /// O(1) `seq → slab index`; `None` when `seq` already committed or is
    /// not in flight. Relies on the window holding a contiguous seq range
    /// (squashed µops are refetched in order).
    pub fn idx_of(&self, seq: u64) -> Option<u32> {
        let front = self.front_seq()?;
        if seq < front {
            return None; // committed
        }
        let off = (seq - front) as usize;
        (off < self.order.len()).then(|| self.order[off])
    }

    /// Allocate a slot for `di` at the back of the ROB order.
    ///
    /// # Panics
    ///
    /// Panics if the window is full — the pipeline's fetch-queue and ROB
    /// occupancy checks make that unreachable.
    pub fn alloc(
        &mut self,
        di: DynInst,
        fe_exit: u64,
        hist_after: HistoryState,
        ras_cp: RasCheckpoint,
    ) -> u32 {
        let idx = self.free.pop().expect("window slab full: occupancy checks violated");
        let i = idx as usize;
        debug_assert!(self.waiters[i].is_empty() && self.poisoned[i].is_empty());
        debug_assert!(self.poison_is_empty(idx));
        debug_assert_eq!(self.mem_bucket[i], NONE, "recycled slot still on an LSQ chain");
        if let Some(&b) = self.order.back() {
            debug_assert!(di.seq == self.di[b as usize].seq + 1, "window seqs must be contiguous");
        }
        self.di[i] = di;
        self.state[i] = Stage::FrontEnd;
        self.flags[i] = 0;
        self.fe_exit[i] = fe_exit;
        self.dispatched_at[i] = UNSCHEDULED;
        self.issued_at[i] = UNSCHEDULED;
        self.complete_at[i] = UNSCHEDULED;
        self.deps[i] = [None, None];
        self.store_dep[i] = None;
        self.lfst_slot[i] = None;
        self.predicted[i] = None;
        self.pred_any[i] = None;
        self.prf_class[i] = None;
        self.hist_after[i] = hist_after;
        self.ras_cp[i] = ras_cp;
        self.order.push_back(idx);
        idx
    }

    /// Remove the oldest µop from the ROB order (commit). The slab fields
    /// stay readable until [`Window::release`].
    pub fn pop_front(&mut self) -> u32 {
        self.order.pop_front().expect("pop_front on empty window")
    }

    /// Remove the youngest µop from the ROB order (squash). The slab
    /// fields stay readable until [`Window::release`].
    pub fn pop_back(&mut self) -> u32 {
        self.order.pop_back().expect("pop_back on empty window")
    }

    /// Return a popped slot to the free list: bump its generation (lazily
    /// invalidating any events/registrations that still name it) and clear
    /// the state that must not leak to the next occupant.
    pub fn release(&mut self, idx: u32) {
        let i = idx as usize;
        self.lsq_remove(idx);
        self.gen[i] = self.gen[i].wrapping_add(1);
        self.waiters[i].clear();
        self.poisoned[i].clear();
        self.poison[i * self.poison_words..(i + 1) * self.poison_words].fill(0);
        self.ready_clear(self.di[i].seq);
        self.free.push(idx);
    }

    /// `true` if `ev` still refers to the µop it was scheduled for and
    /// that µop is an issued slot due at or before `now`.
    pub fn event_live(&self, ev: Event, now: u64) -> bool {
        let i = ev.idx as usize;
        self.gen[i] == ev.gen && self.state[i] == Stage::Issued && self.complete_at[i] <= now
    }

    // ----- flag helpers -----

    /// Read one [`flag`] bit.
    pub fn flag(&self, idx: u32, bit: u16) -> bool {
        self.flags[idx as usize] & bit != 0
    }

    /// Set one [`flag`] bit.
    pub fn set_flag(&mut self, idx: u32, bit: u16) {
        self.flags[idx as usize] |= bit;
    }

    /// Clear one [`flag`] bit.
    pub fn clear_flag(&mut self, idx: u32, bit: u16) {
        self.flags[idx as usize] &= !bit;
    }

    // ----- ready bitset (issue candidates) -----

    /// Mark the µop with `seq` as an issue candidate.
    pub fn ready_set(&mut self, seq: u64) {
        let pos = seq & self.pos_mask;
        self.ready[(pos >> 6) as usize] |= 1 << (pos & 63);
    }

    /// Remove the µop with `seq` from the issue candidates.
    pub fn ready_clear(&mut self, seq: u64) {
        let pos = seq & self.pos_mask;
        self.ready[(pos >> 6) as usize] &= !(1 << (pos & 63));
    }

    /// `true` when no µop is an issue candidate — a handful of word
    /// compares, cheap enough to gate the pipeline's idle fast-forward.
    pub fn ready_is_empty(&self) -> bool {
        self.ready.iter().all(|&w| w == 0)
    }

    /// Collect the issue candidates in age (seq) order into `out`
    /// (cleared first). Candidates are slab indices; every set bit belongs
    /// to an in-flight waiting µop by construction.
    pub fn collect_ready(&self, out: &mut Vec<u32>) {
        out.clear();
        let Some(front) = self.front_seq() else { return };
        let words = self.ready.len();
        let start = front & self.pos_mask;
        let (start_word, start_bit) = ((start >> 6) as usize, start & 63);
        for wi in 0..=words {
            let w = (start_word + wi) % words;
            let mut bits = self.ready[w];
            if wi == 0 {
                bits &= !0u64 << start_bit;
            } else if wi == words {
                bits &= !(!0u64 << start_bit);
            }
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let pos = (w as u64) << 6 | b;
                let off = (pos.wrapping_sub(start)) & self.pos_mask;
                debug_assert!((off as usize) < self.order.len(), "stale ready bit");
                let idx = self.order[off as usize];
                debug_assert_eq!(self.state[idx as usize], Stage::Waiting);
                out.push(idx);
            }
        }
    }

    // ----- poison bitmasks -----

    /// `true` if consumer `c`'s poison set names producer slot `p`.
    pub fn poison_contains(&self, c: u32, p: u32) -> bool {
        let w = self.poison[c as usize * self.poison_words + (p >> 6) as usize];
        w & (1 << (p & 63)) != 0
    }

    /// Add producer slot `p` to consumer `c`'s poison set. Returns `true`
    /// if the bit was newly set (the caller then records the inverted
    /// `poisoned[p] -> c` entry).
    pub fn poison_insert(&mut self, c: u32, p: u32) -> bool {
        let slot = &mut self.poison[c as usize * self.poison_words + (p >> 6) as usize];
        let bit = 1u64 << (p & 63);
        let fresh = *slot & bit == 0;
        *slot |= bit;
        fresh
    }

    /// Remove producer slot `p` from consumer `c`'s poison set.
    pub fn poison_remove(&mut self, c: u32, p: u32) {
        self.poison[c as usize * self.poison_words + (p >> 6) as usize] &= !(1 << (p & 63));
    }

    /// Clear consumer `c`'s whole poison set (selective reissue).
    pub fn poison_clear(&mut self, c: u32) {
        let w = self.poison_words;
        self.poison[c as usize * w..(c as usize + 1) * w].fill(0);
    }

    /// `true` if consumer `c` carries no poison.
    pub fn poison_is_empty(&self, c: u32) -> bool {
        let w = self.poison_words;
        self.poison[c as usize * w..(c as usize + 1) * w].iter().all(|&x| x == 0)
    }

    /// Consumer `c` inherits producer `p`'s poison set (word-wise OR) —
    /// O(1) per dependence instead of the old per-slot `Vec` clone. Newly
    /// set bits are recorded in the inverted lists so validation and
    /// reissue can find `c` from each poison source.
    pub fn poison_inherit(&mut self, c: u32, p: u32) {
        let w = self.poison_words;
        for k in 0..w {
            let add = self.poison[p as usize * w + k] & !self.poison[c as usize * w + k];
            if add == 0 {
                continue;
            }
            self.poison[c as usize * w + k] |= add;
            let mut bits = add;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.poisoned[(k << 6) | b].push(c);
            }
        }
    }

    // ----- address-indexed LSQ -----

    /// Bucket for a byte address: fibonacci hash of its 64-byte line, so
    /// streaming accesses spread across buckets instead of clustering.
    fn lsq_bucket(&self, addr: u64) -> usize {
        ((addr >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.lsq_shift) as usize
    }

    /// Thread a just-dispatched load or store onto its bucket chain.
    /// Dispatch is in-order, so appending at the tail keeps every chain
    /// age-sorted. Non-memory µops and address-less slots are ignored.
    pub fn lsq_insert(&mut self, idx: u32) {
        let i = idx as usize;
        let Some(addr) = self.di[i].mem_addr else { return };
        let op = self.di[i].inst.op;
        let is_load = op == Opcode::Load;
        if !is_load && op != Opcode::Store {
            return;
        }
        let b = self.lsq_bucket(addr);
        debug_assert_eq!(self.mem_bucket[i], NONE, "slot already chained");
        let t = if is_load { self.load_tail[b] } else { self.store_tail[b] };
        self.mem_prev[i] = t;
        self.mem_next[i] = NONE;
        self.mem_bucket[i] = b as u32;
        if t != NONE {
            debug_assert!(self.di[t as usize].seq < self.di[i].seq, "chain must stay age-sorted");
            self.mem_next[t as usize] = idx;
        } else if is_load {
            self.load_head[b] = idx;
        } else {
            self.store_head[b] = idx;
        }
        if is_load {
            self.load_tail[b] = idx;
        } else {
            self.store_tail[b] = idx;
        }
    }

    /// Unlink a slot from its bucket chain (no-op when it is not on one).
    /// Called from [`Window::release`], so commit and squash both drop
    /// chain entries exactly when the slot dies.
    fn lsq_remove(&mut self, idx: u32) {
        let i = idx as usize;
        let b = self.mem_bucket[i];
        if b == NONE {
            return;
        }
        let b = b as usize;
        let is_load = self.di[i].inst.op == Opcode::Load;
        let (p, n) = (self.mem_prev[i], self.mem_next[i]);
        if p != NONE {
            self.mem_next[p as usize] = n;
        } else if is_load {
            self.load_head[b] = n;
        } else {
            self.store_head[b] = n;
        }
        if n != NONE {
            self.mem_prev[n as usize] = p;
        } else if is_load {
            self.load_tail[b] = p;
        } else {
            self.store_tail[b] = p;
        }
        self.mem_bucket[i] = NONE;
    }

    /// Youngest dispatched store to exactly `addr` with seq below
    /// `before_seq` — the store a load at `before_seq` would forward from.
    /// Walks the bucket's store chain youngest-first, so the first match
    /// is the answer (equivalent to the old backward ROB-ring scan:
    /// everything older than a dispatched load is itself dispatched).
    pub fn youngest_older_store(&self, addr: u64, before_seq: u64) -> Option<u32> {
        let mut cur = self.store_tail[self.lsq_bucket(addr)];
        while cur != NONE {
            let i = cur as usize;
            if self.di[i].seq < before_seq && self.di[i].mem_addr == Some(addr) {
                return Some(cur);
            }
            cur = self.mem_prev[i];
        }
        None
    }

    /// Oldest issued or completed load to exactly `addr` with seq above
    /// `after_seq` — the memory-order violation a store at `after_seq`
    /// must squash. Walks the bucket's load chain oldest-first.
    pub fn oldest_younger_issued_load(&self, addr: u64, after_seq: u64) -> Option<u32> {
        let mut cur = self.load_head[self.lsq_bucket(addr)];
        while cur != NONE {
            let i = cur as usize;
            if self.di[i].seq > after_seq
                && self.di[i].mem_addr == Some(addr)
                && matches!(self.state[i], Stage::Issued | Stage::Completed)
            {
                return Some(cur);
            }
            cur = self.mem_next[i];
        }
        None
    }
}

impl Timed for Event {
    fn due_at(&self) -> u64 {
        self.at
    }
}

/// Completion events bucketed by cycle — the shared [`TimingWheel`] from
/// `vpsim-event`, instantiated over pipeline [`Event`]s.
///
/// The wheel grows to the largest in-flight latency; events due at or
/// before the current cycle land in its carry list and are processed next
/// cycle (matching the old per-cycle scan, which a same-cycle issue could
/// never reach), and `defer` re-queues events postponed when a
/// memory-order squash aborts the completion stage mid-pass.
pub(crate) type CompletionWheel = TimingWheel<Event>;

/// Back-to-back fetch detection (§3.2) over a two-cycle PC ring.
///
/// A µop fetches "back-to-back" when its PC was also fetched in the
/// immediately preceding cycle — the case where a fetch-time value
/// predictor must use its own prediction as the last value. Only the
/// previous cycle's fetch group (at most `fetch_width` PCs) can match, so
/// two small buffers replace the unbounded `HashMap<pc, cycle>` the model
/// used to carry: memory stays flat on endless workloads
/// (`capacity()` is asserted in the regression test).
#[derive(Debug)]
pub(crate) struct FetchB2b {
    cycles: [u64; 2],
    pcs: [Vec<u64>; 2],
}

impl FetchB2b {
    /// An empty tracker.
    pub fn new() -> Self {
        FetchB2b { cycles: [u64::MAX; 2], pcs: [Vec::new(), Vec::new()] }
    }

    /// Record that `pc` fetches at cycle `now`; returns `true` when the
    /// most recent previous fetch of `pc` was exactly at `now - 1`.
    pub fn fetched(&mut self, pc: u64, now: u64) -> bool {
        let cur = (now & 1) as usize;
        if self.cycles[cur] != now {
            self.cycles[cur] = now;
            self.pcs[cur].clear();
        }
        let prev = cur ^ 1;
        let b2b = self.cycles[prev] == now.wrapping_sub(1)
            && self.pcs[prev].contains(&pc)
            && !self.pcs[cur].contains(&pc);
        self.pcs[cur].push(pc);
        b2b
    }

    /// Total retained PC entries — bounded by two fetch groups; the
    /// memory-flatness regression test asserts this never grows past
    /// `2 * fetch_width`.
    #[cfg(test)]
    pub fn capacity(&self) -> usize {
        self.pcs[0].len() + self.pcs[1].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn di(seq: u64) -> DynInst {
        DynInst { seq, ..DynInst::default() }
    }

    fn fresh(cap: usize, n: u64) -> Window {
        let mut w = Window::new(cap);
        for s in 0..n {
            w.alloc(di(s), 0, HistoryState::default(), RasCheckpoint::default());
        }
        w
    }

    #[test]
    fn alloc_assigns_stable_indices_and_idx_of_resolves() {
        let mut w = fresh(8, 5);
        assert_eq!(w.len(), 5);
        for s in 0..5 {
            let idx = w.idx_of(s).unwrap();
            assert_eq!(w.di[idx as usize].seq, s);
        }
        assert_eq!(w.idx_of(5), None);
        // Commit the front two: their seqs now resolve to None.
        for _ in 0..2 {
            let idx = w.pop_front();
            w.release(idx);
        }
        assert_eq!(w.idx_of(0), None);
        assert_eq!(w.idx_of(1), None);
        let idx = w.idx_of(2).unwrap();
        assert_eq!(w.di[idx as usize].seq, 2);
        // Freed slots are recycled, indices stay stable for live slots.
        let live: Vec<u32> = (2..5).map(|s| w.idx_of(s).unwrap()).collect();
        w.alloc(di(5), 0, HistoryState::default(), RasCheckpoint::default());
        for (k, s) in (2..5).enumerate() {
            assert_eq!(w.idx_of(s).unwrap(), live[k]);
        }
    }

    #[test]
    fn release_bumps_generation() {
        let mut w = fresh(4, 2);
        let idx = w.pop_front();
        let g = w.gen[idx as usize];
        w.release(idx);
        assert_eq!(w.gen[idx as usize], g + 1);
        let ev = Event { at: 5, idx, gen: g };
        assert!(!w.event_live(ev, 5), "stale generation must invalidate events");
    }

    #[test]
    fn ready_bitset_iterates_in_seq_order_across_wrap() {
        // Force the seq positions to wrap the bitset: commit far enough
        // that front_seq & pos_mask lands near the top.
        let cap = 6; // pos space rounds up to 64
        let mut w = Window::new(cap);
        for s in 0..200u64 {
            w.alloc(di(s), 0, HistoryState::default(), RasCheckpoint::default());
            if w.len() == cap {
                let idx = w.pop_front();
                w.release(idx);
            }
        }
        // Window now holds seqs 195..=199 (len 5). Mark all ready.
        for s in 195..200u64 {
            let i = w.idx_of(s).unwrap();
            w.state[i as usize] = Stage::Waiting;
            w.ready_set(s);
        }
        let mut out = Vec::new();
        w.collect_ready(&mut out);
        let seqs: Vec<u64> = out.iter().map(|&i| w.di[i as usize].seq).collect();
        assert_eq!(seqs, vec![195, 196, 197, 198, 199]);
        w.ready_clear(197);
        w.collect_ready(&mut out);
        let seqs: Vec<u64> = out.iter().map(|&i| w.di[i as usize].seq).collect();
        assert_eq!(seqs, vec![195, 196, 198, 199]);
    }

    #[test]
    fn poison_masks_union_and_invert() {
        let mut w = fresh(8, 6);
        let (a, b, c) = (w.idx_of(0).unwrap(), w.idx_of(1).unwrap(), w.idx_of(2).unwrap());
        assert!(w.poison_insert(c, a));
        assert!(!w.poison_insert(c, a), "duplicate insert reports not-fresh");
        w.poisoned[a as usize].push(c);
        assert!(w.poison_contains(c, a));
        assert!(!w.poison_is_empty(c));
        // Inheritance: another consumer ORs c's mask in and the inverted
        // list learns about it.
        let d = w.idx_of(3).unwrap();
        w.poison_inherit(d, c);
        assert!(w.poison_contains(d, a));
        assert_eq!(w.poisoned[a as usize], vec![c, d]);
        // Removing and clearing.
        w.poison_remove(c, a);
        assert!(w.poison_is_empty(c));
        w.poison_insert(d, b);
        w.poison_clear(d);
        assert!(w.poison_is_empty(d));
    }

    fn mem_di(seq: u64, op: Opcode, addr: u64) -> DynInst {
        let mut d = DynInst { seq, mem_addr: Some(addr), ..DynInst::default() };
        d.inst.op = op;
        d
    }

    #[test]
    fn lsq_chains_resolve_forwarding_and_violations_by_address() {
        let mut w = Window::new(16);
        // seq 0: store A, seq 1: store B, seq 2: store A, seq 3: load A,
        // seq 4: load B — dispatched (chained) in order.
        let a = 0x1000u64;
        let b = 0x2040u64;
        for (seq, op, addr) in [
            (0, Opcode::Store, a),
            (1, Opcode::Store, b),
            (2, Opcode::Store, a),
            (3, Opcode::Load, a),
            (4, Opcode::Load, b),
        ] {
            let idx = w.alloc(
                mem_di(seq, op, addr),
                0,
                HistoryState::default(),
                RasCheckpoint::default(),
            );
            w.lsq_insert(idx);
        }
        // A load at seq 3 forwards from the *youngest older* store to A: seq 2.
        let s = w.youngest_older_store(a, 3).unwrap();
        assert_eq!(w.di[s as usize].seq, 2);
        // Nothing older than seq 0 exists, and address C was never stored.
        assert_eq!(w.youngest_older_store(a, 0), None);
        assert_eq!(w.youngest_older_store(0x3000, 5), None);
        // Violation check: loads only count once issued.
        assert_eq!(w.oldest_younger_issued_load(a, 0), None);
        let l3 = w.idx_of(3).unwrap();
        w.state[l3 as usize] = Stage::Issued;
        let v = w.oldest_younger_issued_load(a, 0).unwrap();
        assert_eq!(w.di[v as usize].seq, 3);
        // A store younger than the load sees no violation.
        assert_eq!(w.oldest_younger_issued_load(a, 3), None);
        // Squash the two loads: release unlinks them from the chains.
        for _ in 0..2 {
            let idx = w.pop_back();
            w.release(idx);
        }
        assert_eq!(w.oldest_younger_issued_load(a, 0), None);
        // Stores still chained; releasing the middle store relinks around it.
        let s1 = w.idx_of(2).unwrap();
        w.lsq_remove(s1);
        let s = w.youngest_older_store(a, 3).unwrap();
        assert_eq!(w.di[s as usize].seq, 0);
    }

    #[test]
    fn completion_wheel_delivers_at_the_right_cycle_and_grows() {
        let mut wh = CompletionWheel::new(4);
        wh.schedule(0, Event { at: 3, idx: 1, gen: 0 });
        wh.schedule(0, Event { at: 1000, idx: 2, gen: 0 }); // forces growth
        wh.schedule(0, Event { at: 0, idx: 3, gen: 0 }); // due now → carry
        let due = wh.take_due(0);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].idx, 3);
        assert!(wh.take_due(1).is_empty());
        assert!(wh.take_due(2).is_empty());
        let due = wh.take_due(3);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].idx, 1);
        for n in 4..1000 {
            assert!(wh.take_due(n).is_empty(), "cycle {n}");
        }
        assert_eq!(wh.take_due(1000).len(), 1);
        // Deferred events resurface next cycle.
        wh.defer(Event { at: 1000, idx: 9, gen: 0 });
        assert_eq!(wh.take_due(1001).len(), 1);
    }

    #[test]
    fn b2b_matches_the_hashmap_semantics() {
        let mut t = FetchB2b::new();
        assert!(!t.fetched(0x40, 0), "first fetch is never back-to-back");
        assert!(t.fetched(0x40, 1), "previous-cycle fetch matches");
        assert!(!t.fetched(0x40, 1), "same-cycle refetch is not back-to-back");
        assert!(t.fetched(0x40, 2));
        assert!(!t.fetched(0x40, 4), "a gap cycle breaks the chain");
        assert!(!t.fetched(0x80, 5), "different pc does not match");
        assert!(t.fetched(0x40, 5), "0x40 was fetched in the previous cycle");
        assert!(!t.fetched(0x40, 7), "two idle cycles break the chain");
    }

    #[test]
    fn b2b_memory_stays_flat_on_endless_unique_pcs() {
        // The old HashMap grew one entry per distinct PC; the ring must
        // hold at most two fetch groups no matter how many PCs stream by.
        let mut t = FetchB2b::new();
        for cycle in 0..1_000_000u64 {
            for lane in 0..8u64 {
                t.fetched(0x1000 + cycle * 64 + lane * 8, cycle);
            }
            assert!(t.capacity() <= 16, "tracker grew: {}", t.capacity());
        }
    }
}
