//! Cycle-level out-of-order superscalar core with value-prediction
//! integration — the simulation substrate for the paper's evaluation.
//!
//! The default [`CoreConfig`] reproduces the paper's Table 2 machine:
//! a 4 GHz, 8-wide, 19-cycle-deep pipeline (15-cycle front-end, 4-cycle
//! back-end) with a 256-entry ROB, 128-entry IQ, 48/48-entry LQ/SQ,
//! 256+256 physical registers, store-set memory dependence prediction,
//! full bypass, and the Table 2 functional-unit pools, on top of the
//! `vpsim-branch` front-end predictors and `vpsim-mem` cache hierarchy.
//!
//! Value prediction (from `vpsim-core`) plugs in via [`VpConfig`]:
//! prediction at fetch, predicted values written before dispatch,
//! validation/training at commit, and either of the paper's two recovery
//! schemes ([`RecoveryPolicy`]).
//!
//! The core is driven through `vpsim-isa`'s `InstSource` abstraction:
//! [`Simulator::run`]/[`Simulator::run_with_warmup`] stream the functional
//! executor inline, while [`Simulator::run_trace`] replays a pre-captured
//! `Trace` — byte-identical results, no functional re-execution (see
//! "Trace layer" in `ARCHITECTURE.md`). [`CoreConfig::trace_budget`] gives
//! the capture length that makes replay exact.
//!
//! The crate also hosts the paper's two analytic models:
//! [`penalty::PenaltyModel`] (§3.1 recovery-cost arithmetic) and
//! [`regfile`] (§4 register-file port cost).
//!
//! For per-cycle observability the pipeline carries an opt-in event tap
//! ([`tap`]): [`Simulator::run_source_with_sink`] streams typed pipeline
//! events into a [`tap::PipeEventSink`] (stall attribution via
//! [`tap::StallTally`], a bounded cycle log via [`tap::CycleLog`]), while
//! the default [`tap::NullSink`] keeps the tap compiled out of the ordinary
//! entry points — see "Observability internals" in `ARCHITECTURE.md`.
//!
//! # Examples
//!
//! ```
//! use vpsim_uarch::{CoreConfig, Simulator, VpConfig, RecoveryPolicy};
//! use vpsim_core::PredictorKind;
//! use vpsim_isa::{ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! let (i, n) = (Reg::int(1), Reg::int(2));
//! b.load_imm(n, 500);
//! let top = b.bind_label();
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let base = Simulator::new(CoreConfig::default()).run(&program, 10_000);
//! let vp = Simulator::new(
//!     CoreConfig::default()
//!         .with_vp(VpConfig::enabled(PredictorKind::VtageStride, RecoveryPolicy::SquashAtCommit)),
//! )
//! .run(&program, 10_000);
//! assert!(vp.metrics.ipc() >= base.metrics.ipc() * 0.95);
//! # Ok::<(), vpsim_isa::ProgramError>(())
//! ```

mod config;
pub mod penalty;
mod pipeline;
pub mod regfile;
mod result;
pub mod sampling;
mod storesets;
pub mod tap;
mod window;

pub use config::{CoreConfig, FuConfig, RecoveryPolicy, VpConfig};
pub use pipeline::Simulator;
pub use result::RunResult;
pub use sampling::{Checkpoint, SampleConfig, SampledResult};
pub use storesets::StoreSets;
