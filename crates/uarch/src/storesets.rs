//! Store-set memory dependence prediction (Chrysos & Emer, ISCA 1998) —
//! paper Table 2: "1K-SSID/LFST Store Sets".
//!
//! Loads and stores that have violated memory ordering in the past are
//! placed in the same *store set*; a load dispatching with a store set
//! waits for the last fetched store of that set (tracked in the LFST)
//! before issuing. Independent memory instructions issue out of order.

/// Store-set predictor: SSIT (PC → store set id) + LFST (set id → last
/// in-flight store sequence number).
///
/// # Examples
///
/// ```
/// use vpsim_uarch::StoreSets;
/// let mut ss = StoreSets::new(1024);
/// // Until a violation is observed, loads are predicted independent.
/// assert_eq!(ss.load_dependence(0x40), None);
/// ss.record_violation(0x40, 0x80);
/// let slot = ss.store_dispatched(0x80, 7);
/// assert_eq!(ss.load_dependence(0x40), Some(7));
/// ss.store_executed(7, slot);
/// assert_eq!(ss.load_dependence(0x40), None);
/// ```
#[derive(Debug, Clone)]
pub struct StoreSets {
    ssit: Vec<Option<u16>>,
    lfst: Vec<Option<u64>>,
    index_bits: u32,
    next_ssid: u16,
}

impl StoreSets {
    /// Create with `entries` SSIT entries (power of two) and as many
    /// LFST slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        StoreSets {
            ssit: vec![None; entries],
            lfst: vec![None; entries],
            index_bits: entries.trailing_zeros(),
            next_ssid: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (pc >> 13)) & ((1 << self.index_bits) - 1)) as usize
    }

    /// The in-flight store a load at `pc` must wait for, if any.
    pub fn load_dependence(&self, pc: u64) -> Option<u64> {
        let ssid = self.ssit[self.index(pc)]?;
        self.lfst[ssid as usize]
    }

    /// Record that store `seq` at `pc` was dispatched (it becomes the last
    /// fetched store of its set). Stores without a set are untracked.
    /// Returns the LFST slot written, if any — the caller passes it back
    /// to [`StoreSets::store_executed`] so clearing is O(1) instead of a
    /// full LFST scan (a store occupies at most one slot).
    pub fn store_dispatched(&mut self, pc: u64, seq: u64) -> Option<u16> {
        let ssid = self.ssit[self.index(pc)]?;
        self.lfst[ssid as usize] = Some(seq);
        Some(ssid)
    }

    /// Clear the LFST entry when store `seq` executes (younger loads no
    /// longer need to wait). `slot` is the hint
    /// [`StoreSets::store_dispatched`] returned for this store; the entry
    /// is only cleared while it still names `seq` (a younger store of the
    /// same set may have superseded it).
    pub fn store_executed(&mut self, seq: u64, slot: Option<u16>) {
        if let Some(ssid) = slot {
            if self.lfst[ssid as usize] == Some(seq) {
                self.lfst[ssid as usize] = None;
            }
        }
    }

    /// Remove LFST entries for squashed stores (`seq > boundary`).
    pub fn squash_after(&mut self, boundary: u64) {
        for slot in self.lfst.iter_mut() {
            if matches!(*slot, Some(s) if s > boundary) {
                *slot = None;
            }
        }
    }

    /// A memory-order violation between `load_pc` and `store_pc`: merge
    /// both into one store set (Chrysos & Emer's merge rule, simplified to
    /// "adopt the smaller existing SSID").
    pub fn record_violation(&mut self, load_pc: u64, store_pc: u64) {
        let li = self.index(load_pc);
        let si = self.index(store_pc);
        let ssid = match (self.ssit[li], self.ssit[si]) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) | (None, Some(a)) => a,
            (None, None) => {
                let id = self.next_ssid;
                self.next_ssid = (self.next_ssid + 1) % self.lfst.len() as u16;
                id
            }
        };
        self.ssit[li] = Some(ssid);
        self.ssit[si] = Some(ssid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_loads_are_independent() {
        let ss = StoreSets::new(64);
        assert_eq!(ss.load_dependence(0x1234), None);
    }

    #[test]
    fn violation_links_load_to_store() {
        let mut ss = StoreSets::new(64);
        ss.record_violation(0x10, 0x20);
        let slot = ss.store_dispatched(0x20, 42);
        assert!(slot.is_some());
        assert_eq!(ss.load_dependence(0x10), Some(42));
        ss.store_executed(42, slot);
        assert_eq!(ss.load_dependence(0x10), None);
    }

    #[test]
    fn unrelated_store_does_not_block() {
        let mut ss = StoreSets::new(64);
        ss.record_violation(0x10, 0x20);
        assert_eq!(ss.store_dispatched(0x999, 1), None); // no set: untracked
        assert_eq!(ss.load_dependence(0x10), None);
    }

    #[test]
    fn superseded_store_execution_keeps_the_younger_entry() {
        // Store 1 dispatches, then store 2 of the same set supersedes it.
        // Store 1 executing must not clear store 2's LFST entry.
        let mut ss = StoreSets::new(64);
        ss.record_violation(0x10, 0x20);
        let s1 = ss.store_dispatched(0x20, 1);
        let s2 = ss.store_dispatched(0x20, 2);
        assert_eq!(s1, s2, "same set, same slot");
        ss.store_executed(1, s1);
        assert_eq!(ss.load_dependence(0x10), Some(2));
        ss.store_executed(2, s2);
        assert_eq!(ss.load_dependence(0x10), None);
    }

    #[test]
    fn merge_adopts_common_ssid() {
        let mut ss = StoreSets::new(64);
        ss.record_violation(0x10, 0x20);
        ss.record_violation(0x30, 0x40);
        // Now link the two sets via a shared violation.
        ss.record_violation(0x10, 0x40);
        ss.store_dispatched(0x40, 9);
        assert_eq!(ss.load_dependence(0x10), Some(9));
    }

    #[test]
    fn squash_clears_young_stores() {
        let mut ss = StoreSets::new(64);
        ss.record_violation(0x10, 0x20);
        ss.store_dispatched(0x20, 100);
        ss.squash_after(50);
        assert_eq!(ss.load_dependence(0x10), None);
        ss.store_dispatched(0x20, 40);
        ss.squash_after(50);
        assert_eq!(ss.load_dependence(0x10), Some(40), "older store survives");
    }

    #[test]
    fn newer_store_in_set_supersedes_older() {
        let mut ss = StoreSets::new(64);
        ss.record_violation(0x10, 0x20);
        ss.store_dispatched(0x20, 1);
        ss.store_dispatched(0x20, 2);
        assert_eq!(ss.load_dependence(0x10), Some(2));
    }
}
