//! The cycle-level out-of-order core.
//!
//! A trace-driven, correct-path timing model of the paper's Table 2
//! pipeline: 8-wide fetch (2 taken branches/cycle), a 15-cycle in-order
//! front-end, rename/dispatch into a 256-entry ROB + 128-entry IQ +
//! 48/48-entry LQ/SQ, an 8-wide scheduler over the Table 2 functional-unit
//! pools with full bypass, store-set memory dependence prediction, and
//! 8-wide in-order retire.
//!
//! **Value prediction integration** (paper §4, §7.2): the predictor is
//! consulted at fetch for every µop that writes a register; a confident
//! prediction is written to the physical register before dispatch, so
//! consumers may issue immediately. Validation is implicit at execute
//! (the trace supplies the architectural result); *recovery* follows the
//! configured [`RecoveryPolicy`]: squash-at-commit flushes younger µops
//! when the mispredicted µop retires, while the idealistic selective
//! reissue reschedules transitively dependent µops the cycle the
//! misprediction is detected. In both modes, a misprediction whose value
//! was never consumed by an issued µop costs nothing (the prediction is
//! silently replaced — §7.2.1).
//!
//! **Hot-loop architecture** (see "Timing-model internals" in
//! `ARCHITECTURE.md`): in-flight µops live in a slab-backed
//! struct-of-arrays [`Window`] with a ROB-order ring. Completion is
//! event-driven through a [`CompletionWheel`] instead of a per-cycle
//! window scan; issue selection iterates a seq-ordered ready bitset fed by
//! a producer→consumer wakeup scoreboard; dispatch starts directly at the
//! front-end region; and selective-reissue poison is a bitmask per slot
//! with inverted producer lists, so inheritance is a word-wise OR and
//! validation touches exactly the poisoned consumers. All per-cycle
//! scratch buffers are machine-owned, so the steady-state loop performs
//! zero heap allocation per cycle (`crates/uarch/tests/zero_alloc.rs`).
//! Every restructure is behavior-preserving: results are byte-identical
//! to the scan-based window (`tests/golden/pipeline_results.txt`).
//!
//! **Trace-driven simplifications** (see `ARCHITECTURE.md`):
//! wrong-path instructions are not fetched; a branch misprediction instead
//! blocks fetch until the branch executes, reproducing the ≥ 20-cycle
//! penalty. Branches are resolved on data-speculative paths (§7.2), i.e.
//! with their correct outcome even if an operand was a wrong prediction —
//! the same idealization the paper applies.

use crate::config::{CoreConfig, RecoveryPolicy};
use crate::result::{diff_cache, RunResult, StallBreakdown};
use crate::sampling::{Checkpoint, SampleConfig, SamplePlan, SampledResult, Warmer};
use crate::storesets::StoreSets;
use crate::tap::{
    CycleCause, NullSink, Occupancy, PipeEvent, PipeEventKind, PipeEventSink, SquashCause,
};
use crate::window::{flag, CompletionWheel, Event, FetchB2b, Stage, Waiter, Window, UNSCHEDULED};
use std::collections::VecDeque;
use vpsim_branch::{Btb, Ras, RasCheckpoint, Tage};
use vpsim_core::{HistoryState, PredictCtx, Predictor};
use vpsim_isa::{DynInst, Executor, FuClass, InstSource, Opcode, Program, RegClass, Trace};
use vpsim_mem::MemoryHierarchy;
use vpsim_stats::{BackToBackStats, BranchStats, RunMetrics, VpStats};

/// Fetch-queue capacity (µops buffered between fetch and dispatch).
/// Referenced by [`CoreConfig::trace_budget`]: together with the ROB size
/// it bounds how far fetch can run ahead of commit, and therefore how many
/// µops a captured trace must cover to replay byte-identically.
pub(crate) const FETCH_QUEUE: usize = 128;
/// Cycles without a commit after which the simulator declares a deadlock
/// (a model bug, not a workload property).
const DEADLOCK_LIMIT: u64 = 1_000_000;
/// Initial completion-wheel horizon; the wheel grows on demand when a
/// memory access schedules further out.
const WHEEL_HORIZON: usize = 1024;

/// Retire-stage counters, diffed against a warm-up snapshot to produce a
/// [`RunResult`]. All fields are plain integers, so the snapshot is a
/// `Copy` assignment and measurement is a field-wise [`Counters::delta`] —
/// no per-interval clone.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    committed: u64,
    eligible: u64,
    hits: u64,
    used: u64,
    correct_used: u64,
    mispredicted: u64,
    correct_unused: u64,
    harmless: u64,
    cond_branches: u64,
    dir_mispred: u64,
    target_mispred: u64,
    uncond: u64,
    b2b_eligible: u64,
    b2b: u64,
    vp_squashes: u64,
    violations: u64,
    reissued: u64,
    stalls: StallBreakdown,
}

impl Counters {
    /// Field-wise difference against an earlier snapshot of the same
    /// accumulator.
    fn delta(&self, s: &Counters) -> Counters {
        Counters {
            committed: self.committed - s.committed,
            eligible: self.eligible - s.eligible,
            hits: self.hits - s.hits,
            used: self.used - s.used,
            correct_used: self.correct_used - s.correct_used,
            mispredicted: self.mispredicted - s.mispredicted,
            correct_unused: self.correct_unused - s.correct_unused,
            harmless: self.harmless - s.harmless,
            cond_branches: self.cond_branches - s.cond_branches,
            dir_mispred: self.dir_mispred - s.dir_mispred,
            target_mispred: self.target_mispred - s.target_mispred,
            uncond: self.uncond - s.uncond,
            b2b_eligible: self.b2b_eligible - s.b2b_eligible,
            b2b: self.b2b - s.b2b,
            vp_squashes: self.vp_squashes - s.vp_squashes,
            violations: self.violations - s.violations,
            reissued: self.reissued - s.reissued,
            stalls: self.stalls.diff(&s.stalls),
        }
    }
}

/// Render a schedule cycle for diagnostics (`-` = not yet scheduled).
fn fmt_cycle(c: u64) -> String {
    if c == UNSCHEDULED {
        "-".into()
    } else {
        c.to_string()
    }
}

#[derive(Debug, Clone)]
struct FuPools {
    alu: Vec<u64>,
    muldiv: Vec<u64>,
    fp: Vec<u64>,
    fpmuldiv: Vec<u64>,
}

impl FuPools {
    fn new(cfg: &CoreConfig) -> Self {
        FuPools {
            alu: vec![0; cfg.fu.alu_units],
            muldiv: vec![0; cfg.fu.muldiv_units],
            fp: vec![0; cfg.fu.fp_units],
            fpmuldiv: vec![0; cfg.fu.fpmuldiv_units],
        }
    }

    fn pool(&mut self, class: FuClass) -> Option<&mut Vec<u64>> {
        match class {
            FuClass::IntAlu => Some(&mut self.alu),
            FuClass::IntMulDiv => Some(&mut self.muldiv),
            FuClass::FpAlu => Some(&mut self.fp),
            FuClass::FpMulDiv => Some(&mut self.fpmuldiv),
            FuClass::Load | FuClass::Store => None, // ports counted separately
        }
    }

    /// Try to claim a unit of `class` at `now`, occupying it until
    /// `busy_until`. Returns false if all units are busy.
    fn claim(&mut self, class: FuClass, now: u64, busy_until: u64) -> bool {
        match self.pool(class) {
            None => true,
            Some(units) => match units.iter_mut().find(|b| **b <= now) {
                Some(b) => {
                    *b = busy_until;
                    true
                }
                None => false,
            },
        }
    }
}

/// One issue-select decision, applied after the selection scan (two-phase
/// issue, as in the original scan-based scheduler). `spec_start..spec_start
/// + spec_len` indexes the machine-owned speculative-producer scratch.
#[derive(Debug, Clone, Copy)]
struct Pick {
    idx: u32,
    complete_at: u64,
    spec_start: u32,
    spec_len: u32,
}

/// The simulator: construct once from a [`CoreConfig`], then run programs.
///
/// # Examples
///
/// ```
/// use vpsim_uarch::{CoreConfig, Simulator};
/// use vpsim_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let (i, n) = (Reg::int(1), Reg::int(2));
/// b.load_imm(n, 1000);
/// let top = b.bind_label();
/// b.addi(i, i, 1);
/// b.blt(i, n, top);
/// b.halt();
/// let program = b.build()?;
///
/// let result = Simulator::new(CoreConfig::default()).run(&program, 100_000);
/// assert!(result.metrics.ipc() > 0.5);
/// # Ok::<(), vpsim_isa::ProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: CoreConfig,
}

impl Simulator {
    /// Create a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: CoreConfig) -> Self {
        config.validate();
        Simulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Run `program` until `max_instructions` commit (or the program ends).
    pub fn run(&self, program: &Program, max_instructions: u64) -> RunResult {
        self.run_with_warmup(program, 0, max_instructions)
    }

    /// Run with a warm-up: simulate `warmup` committed instructions with
    /// statistics discarded, then measure the next `measure` instructions.
    ///
    /// This is the streaming path: the functional [`Executor`] runs inline,
    /// one µop ahead of fetch. [`Simulator::run_trace`] produces the same
    /// result from a pre-captured trace without re-executing.
    pub fn run_with_warmup(&self, program: &Program, warmup: u64, measure: u64) -> RunResult {
        self.run_source(Executor::new(program), warmup, measure)
    }

    /// Replay a captured [`Trace`] instead of executing inline. The result
    /// is byte-identical to [`Simulator::run_with_warmup`] on the same
    /// program provided the trace covers at least
    /// [`CoreConfig::trace_budget`]`(warmup, measure)` µops (or the whole
    /// program, if it is shorter).
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_uarch::{CoreConfig, Simulator};
    /// use vpsim_isa::{ProgramBuilder, Reg, Trace};
    ///
    /// let mut b = ProgramBuilder::new();
    /// let (i, n) = (Reg::int(1), Reg::int(2));
    /// b.load_imm(n, 1000);
    /// let top = b.bind_label();
    /// b.addi(i, i, 1);
    /// b.blt(i, n, top);
    /// b.halt();
    /// let program = b.build()?;
    ///
    /// let sim = Simulator::new(CoreConfig::default());
    /// let trace = Trace::capture(&program, sim.config().trace_budget(0, 2_000));
    /// assert_eq!(sim.run_trace(&trace, 0, 2_000), sim.run(&program, 2_000));
    /// # Ok::<(), vpsim_isa::ProgramError>(())
    /// ```
    pub fn run_trace(&self, trace: &Trace, warmup: u64, measure: u64) -> RunResult {
        self.run_source(trace.cursor(), warmup, measure)
    }

    /// Drive the core from any [`InstSource`] — the generic face behind
    /// [`Simulator::run_with_warmup`] (streaming executor) and
    /// [`Simulator::run_trace`] (trace replay).
    pub fn run_source<S: InstSource>(&self, source: S, warmup: u64, measure: u64) -> RunResult {
        self.run_source_with_sink(source, warmup, measure, &mut NullSink)
    }

    /// Like [`Simulator::run_source`], but streams typed pipeline events
    /// into `sink` (see [`crate::tap`]). The simulated machine is
    /// unaffected: the returned [`RunResult`] is byte-identical to the
    /// sink-free entry points (`tests/tap_equivalence.rs` proves this for
    /// arbitrary scenarios).
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_uarch::tap::{check_conservation, StallTally};
    /// use vpsim_uarch::{CoreConfig, Simulator};
    /// use vpsim_isa::{Executor, ProgramBuilder, Reg};
    ///
    /// let mut b = ProgramBuilder::new();
    /// let (i, n) = (Reg::int(1), Reg::int(2));
    /// b.load_imm(n, 500);
    /// let top = b.bind_label();
    /// b.addi(i, i, 1);
    /// b.blt(i, n, top);
    /// b.halt();
    /// let program = b.build()?;
    ///
    /// let sim = Simulator::new(CoreConfig::default());
    /// let mut tally = StallTally::default();
    /// let result = sim.run_source_with_sink(Executor::new(&program), 0, 1_000, &mut tally);
    /// let report = tally.measured();
    /// assert_eq!(report.total_cycles(), result.metrics.cycles);
    /// check_conservation(&result, &report).unwrap();
    /// # Ok::<(), vpsim_isa::ProgramError>(())
    /// ```
    pub fn run_source_with_sink<S: InstSource, T: PipeEventSink>(
        &self,
        source: S,
        warmup: u64,
        measure: u64,
        sink: &mut T,
    ) -> RunResult {
        let mut machine = Machine::new(&self.config, source, sink);
        machine.simulate(warmup, measure)
    }

    /// [`Simulator::run_trace`] with an event sink: replay a captured
    /// trace while streaming pipeline events into `sink`.
    pub fn run_trace_with_sink<T: PipeEventSink>(
        &self,
        trace: &Trace,
        warmup: u64,
        measure: u64,
        sink: &mut T,
    ) -> RunResult {
        self.run_source_with_sink(trace.cursor(), warmup, measure, sink)
    }

    /// Test-only instrumentation hook: identical to
    /// [`Simulator::run_source`], but invokes `mark` once, the first time
    /// the committed-instruction count reaches `mark_at`. The
    /// zero-allocation regression test uses this to start counting heap
    /// allocations only after the machine reaches steady state.
    #[doc(hidden)]
    pub fn run_source_marked<S: InstSource>(
        &self,
        source: S,
        warmup: u64,
        measure: u64,
        mark_at: u64,
        mark: &mut dyn FnMut(),
    ) -> RunResult {
        self.run_source_marked_with_sink(source, warmup, measure, mark_at, mark, &mut NullSink)
    }

    /// [`Simulator::run_source_marked`] with an event sink — lets the
    /// zero-allocation test prove the *enabled* tap path also stays
    /// allocation-free in steady state.
    #[doc(hidden)]
    pub fn run_source_marked_with_sink<S: InstSource, T: PipeEventSink>(
        &self,
        source: S,
        warmup: u64,
        measure: u64,
        mark_at: u64,
        mark: &mut dyn FnMut(),
        sink: &mut T,
    ) -> RunResult {
        let mut machine = Machine::new(&self.config, source, sink);
        machine.simulate_marked(warmup, measure, mark_at, mark)
    }

    /// Sampled replay (see [`crate::sampling`]): run the detailed timing
    /// model only inside [`SampleConfig`]-selected intervals of the
    /// measured region, fast-forwarding between them with the functional
    /// warmer. Returns one [`RunResult`] per replayed interval; combine
    /// with [`SampledResult::combined`] or feed
    /// [`SampledResult::interval_ipcs`] to the `vpsim-stats` estimator.
    ///
    /// Every interval goes through a serialized [`Checkpoint`] and
    /// [`Trace::cursor_resume`] — the exact path a persisted checkpoint
    /// replays through later — so there is no untested fast path.
    ///
    /// The trace may end before late intervals of a short workload; those
    /// intervals are skipped (reflected in
    /// [`SampledResult::intervals_replayed`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_uarch::{CoreConfig, SampleConfig, Simulator};
    /// use vpsim_isa::{ProgramBuilder, Reg, Trace};
    ///
    /// let mut b = ProgramBuilder::new();
    /// let (i, n) = (Reg::int(1), Reg::int(2));
    /// b.load_imm(n, 60_000);
    /// let top = b.bind_label();
    /// b.addi(i, i, 1);
    /// b.blt(i, n, top);
    /// b.halt();
    /// let program = b.build()?;
    ///
    /// let sim = Simulator::new(CoreConfig::default());
    /// let trace = Trace::capture(&program, sim.config().trace_budget(0, 100_000));
    /// let sample = SampleConfig { intervals: 4, period: 5_000, warmup: 1_000 };
    /// let sampled = sim.run_sampled(&trace, 0, 100_000, sample);
    /// assert_eq!(sampled.intervals_replayed(), 4);
    /// let full = sim.run_trace(&trace, 0, 100_000);
    /// let est = sampled.combined().metrics.ipc();
    /// assert!((est - full.metrics.ipc()).abs() / full.metrics.ipc() < 0.05);
    /// # Ok::<(), vpsim_isa::ProgramError>(())
    /// ```
    pub fn run_sampled(
        &self,
        trace: &Trace,
        warmup: u64,
        measure: u64,
        sample: SampleConfig,
    ) -> SampledResult {
        let plan = SamplePlan::new(warmup, measure, sample, self.config.seed);
        let mut warmer = Warmer::new(&self.config);
        let mut cursor = trace.cursor();
        let mut per_interval = Vec::new();
        let mut detailed_uops = 0;
        for (start, dwarm) in plan.detailed_starts() {
            while (cursor.pos() as u64) < start {
                match cursor.next() {
                    Some(di) => warmer.warm_uop(&di),
                    None => break,
                }
            }
            if (cursor.pos() as u64) < start {
                break; // Trace exhausted before this interval: skip the rest.
            }
            let cp = Checkpoint::capture(
                &warmer,
                cursor.pos() as u64,
                cursor.payload_pos() as u64,
                dwarm,
            );
            let res = self
                .run_interval_from(trace, &cp, plan.measure_per_interval)
                .expect("an in-memory checkpoint matches its own trace and config");
            per_interval.push(res);
            detailed_uops += dwarm + plan.measure_per_interval;
        }
        SampledResult { per_interval, ff_uops: warmer.ff_uops, detailed_uops }
    }

    /// Produce the serialized-state [`Checkpoint`]s [`Simulator::run_sampled`]
    /// would replay from, without running any detailed interval — one
    /// fast-forward pass over the trace. Persist them (via
    /// [`Checkpoint::to_bytes`]) and any selected interval replays later in
    /// O(1) seek time with [`Simulator::run_interval_from`].
    pub fn sample_checkpoints(
        &self,
        trace: &Trace,
        warmup: u64,
        measure: u64,
        sample: SampleConfig,
    ) -> Vec<Checkpoint> {
        let plan = SamplePlan::new(warmup, measure, sample, self.config.seed);
        let mut warmer = Warmer::new(&self.config);
        let mut cursor = trace.cursor();
        let mut checkpoints = Vec::new();
        for (start, dwarm) in plan.detailed_starts() {
            while (cursor.pos() as u64) < start {
                match cursor.next() {
                    Some(di) => warmer.warm_uop(&di),
                    None => break,
                }
            }
            if (cursor.pos() as u64) < start {
                break;
            }
            checkpoints.push(Checkpoint::capture(
                &warmer,
                cursor.pos() as u64,
                cursor.payload_pos() as u64,
                dwarm,
            ));
        }
        checkpoints
    }

    /// Replay one detailed interval of `measure` committed µops from a
    /// [`Checkpoint`]: seek the trace to the checkpointed coordinates in
    /// O(1), restore the warm front-end structures, simulate the
    /// checkpoint's detailed warmup with statistics discarded, then
    /// measure. Fails (never panics) when the checkpoint does not match
    /// `trace` or this simulator's configuration geometry.
    pub fn run_interval_from(
        &self,
        trace: &Trace,
        checkpoint: &Checkpoint,
        measure: u64,
    ) -> Result<RunResult, String> {
        let cursor = trace
            .cursor_resume(checkpoint.pos() as usize, checkpoint.payload_pos() as usize)
            .map_err(|e| e.to_string())?;
        let warm = checkpoint.restore(&self.config)?;
        let mut sink = NullSink;
        let mut machine = Machine::new(&self.config, cursor, &mut sink);
        machine.tage = warm.tage;
        machine.btb = warm.btb;
        machine.ras = warm.ras;
        machine.mem = warm.mem;
        machine.fetch_hist = warm.hist;
        Ok(machine.simulate(checkpoint.detailed_warmup(), measure))
    }
}

struct Machine<'a, S, T: PipeEventSink> {
    cfg: &'a CoreConfig,
    /// Event tap ([`crate::tap`]). `T::ENABLED` guards every emission at
    /// compile time, so a [`NullSink`] machine carries no tap code at all.
    sink: &'a mut T,
    /// Youngest seq ever squashed: front-end µops at or below this mark
    /// are squash-recovery refetches for stall attribution. Maintained
    /// only when the tap is enabled.
    squash_hwm: Option<u64>,
    source: S,
    source_done: bool,
    refetch: VecDeque<DynInst>,
    w: Window,
    wheel: CompletionWheel,
    b2b: FetchB2b,
    mem: MemoryHierarchy,
    tage: Tage,
    btb: Btb,
    ras: Ras,
    predictor: Option<Box<dyn Predictor>>,
    recovery: RecoveryPolicy,
    store_sets: StoreSets,
    fetch_hist: HistoryState,
    rename: [Option<u64>; vpsim_isa::NUM_ARCH_REGS],
    now: u64,
    fetch_blocked_on: Option<u64>,
    fetch_resume_at: u64,
    fe_count: usize,
    rob_used: usize,
    iq_used: usize,
    lq_used: usize,
    sq_used: usize,
    int_prf_used: usize,
    fp_prf_used: usize,
    fu: FuPools,
    counters: Counters,
    last_commit_cycle: u64,
    /// Commit-count ceiling: the retire stage stops mid-group here so a
    /// measurement of N instructions is exactly N.
    stop_at: u64,
    // ----- machine-owned per-cycle scratch (zero-alloc steady state) -----
    /// Issue candidates collected from the ready bitset, age order.
    ready_scratch: Vec<u32>,
    /// Issue-select decisions, applied after the selection scan.
    picks: Vec<Pick>,
    /// Flattened speculative-producer seqs referenced by [`Pick`]s.
    spec_buf: Vec<u64>,
    /// Waiter drain buffer for writeback wakeups.
    wake_scratch: Vec<Waiter>,
}

impl<'a, S: InstSource, T: PipeEventSink> Machine<'a, S, T> {
    fn new(cfg: &'a CoreConfig, source: S, sink: &'a mut T) -> Self {
        let (predictor, recovery) = match &cfg.vp {
            Some(vp) => (Some(vp.kind.build(vp.scheme.clone(), cfg.seed)), vp.recovery),
            None => (None, RecoveryPolicy::SquashAtCommit),
        };
        Machine {
            cfg,
            sink,
            squash_hwm: None,
            source,
            source_done: false,
            refetch: VecDeque::new(),
            w: Window::new(FETCH_QUEUE + cfg.rob_entries),
            wheel: CompletionWheel::new(WHEEL_HORIZON),
            b2b: FetchB2b::new(),
            mem: MemoryHierarchy::new(cfg.mem.clone()),
            tage: Tage::with_defaults(cfg.seed ^ 0xB4A9C),
            btb: Btb::with_defaults(),
            ras: Ras::with_defaults(),
            predictor,
            recovery,
            store_sets: StoreSets::new(cfg.store_set_entries),
            fetch_hist: HistoryState::default(),
            rename: [None; vpsim_isa::NUM_ARCH_REGS],
            now: 0,
            fetch_blocked_on: None,
            fetch_resume_at: 0,
            fe_count: 0,
            rob_used: 0,
            iq_used: 0,
            lq_used: 0,
            sq_used: 0,
            int_prf_used: 0,
            fp_prf_used: 0,
            fu: FuPools::new(cfg),
            counters: Counters::default(),
            last_commit_cycle: 0,
            stop_at: u64::MAX,
            ready_scratch: Vec::with_capacity(cfg.issue_width.max(16)),
            picks: Vec::with_capacity(cfg.issue_width),
            spec_buf: Vec::with_capacity(2 * cfg.issue_width),
            wake_scratch: Vec::new(),
        }
    }

    fn simulate(&mut self, warmup: u64, measure: u64) -> RunResult {
        self.simulate_marked(warmup, measure, u64::MAX, &mut || ())
    }

    fn simulate_marked(
        &mut self,
        warmup: u64,
        measure: u64,
        mark_at: u64,
        mark: &mut dyn FnMut(),
    ) -> RunResult {
        let target = warmup.saturating_add(measure);
        // Retire pauses exactly at the warm-up boundary so the measurement
        // window is precisely `measure` instructions.
        self.stop_at = if warmup > 0 { warmup } else { target };
        let mut snapshot = self.counters;
        let mut snap_cycle = 0u64;
        let mut snap_caches = (self.mem.l1i_stats, self.mem.l1d_stats, self.mem.l2_stats);
        let mut snapped = warmup == 0;
        let mut marked = false;

        while self.counters.committed < target {
            if self.w.is_empty() && self.refetch.is_empty() && self.source_done {
                break;
            }
            self.idle_skip();
            let committed_before = self.counters.committed;
            self.commit();
            let idle = self.counters.committed == committed_before;
            if idle {
                self.counters.stalls.commit_idle_cycles += 1;
            }
            // Attribute the cycle at commit-time machine state; the record
            // itself is emitted just before `now` advances so Cycle events
            // pair 1:1 with clock movement (the conservation invariant).
            let cycle_cause =
                if T::ENABLED && idle { self.stall_cause() } else { CycleCause::Active };
            if !marked && self.counters.committed >= mark_at {
                mark();
                marked = true;
            }
            if !snapped && self.counters.committed >= warmup {
                snapshot = self.counters;
                snap_cycle = self.now;
                snap_caches = (self.mem.l1i_stats, self.mem.l1d_stats, self.mem.l2_stats);
                snapped = true;
                self.stop_at = target;
                self.emit(0, PipeEventKind::MeasureStart);
            }
            if self.counters.committed >= target {
                break;
            }
            self.complete();
            self.issue();
            self.dispatch();
            self.fetch();
            if T::ENABLED {
                let occ = self.occupancy();
                self.emit(0, PipeEventKind::Cycle { cause: cycle_cause, span: 1, occ });
            }
            self.now += 1;
            if self.now - self.last_commit_cycle >= DEADLOCK_LIMIT {
                panic!("{}", self.deadlock_report());
            }
        }

        let d = self.counters.delta(&snapshot);
        RunResult {
            metrics: RunMetrics {
                cycles: self.now.saturating_sub(snap_cycle),
                instructions: d.committed,
            },
            vp: VpStats {
                eligible: d.eligible,
                hits: d.hits,
                used: d.used,
                correct_used: d.correct_used,
                mispredicted: d.mispredicted,
                correct_unused: d.correct_unused,
                harmless_mispredictions: d.harmless,
            },
            branch: BranchStats {
                conditional: d.cond_branches,
                direction_mispredictions: d.dir_mispred,
                target_mispredictions: d.target_mispred,
                unconditional: d.uncond,
            },
            l1i: diff_cache(&self.mem.l1i_stats, &snap_caches.0),
            l1d: diff_cache(&self.mem.l1d_stats, &snap_caches.1),
            l2: diff_cache(&self.mem.l2_stats, &snap_caches.2),
            back_to_back: BackToBackStats { eligible: d.b2b_eligible, back_to_back: d.b2b },
            vp_squashes: d.vp_squashes,
            reissued_uops: d.reissued,
            memory_order_violations: d.violations,
            stalls: d.stalls,
        }
    }

    /// Diagnostic for the [`DEADLOCK_LIMIT`] panic: a deadlock is a model
    /// bug, so the message must carry enough machine state to localize it
    /// from a CI log alone — the stuck cycle, the ROB head (the µop whose
    /// non-retirement wedges everything), every queue occupancy and the
    /// window slab's free-list state.
    /// When the attached sink retains history (a [`crate::tap::CycleLog`]),
    /// the report additionally dumps the most recent cycle records, so the
    /// panic shows *how* the machine wedged, not just its final state.
    fn deadlock_report(&self) -> String {
        let head = match self.w.front() {
            Some(idx) => {
                let i = idx as usize;
                format!(
                    "seq {} pc {:#x} {:?} in {:?} (dispatched@{} issued@{} complete@{})",
                    self.w.di[i].seq,
                    self.w.di[i].pc,
                    self.w.di[i].inst.op,
                    self.w.state[i],
                    fmt_cycle(self.w.dispatched_at[i]),
                    fmt_cycle(self.w.issued_at[i]),
                    fmt_cycle(self.w.complete_at[i]),
                )
            }
            None => "none (window empty)".into(),
        };
        let mut report = format!(
            "pipeline deadlock: no commit for {DEADLOCK_LIMIT} cycles at cycle {} \
             (committed {}, last commit at cycle {}); ROB head: {head}; \
             occupancy: rob {}/{}, iq {}/{}, lq {}/{}, sq {}/{}, fetch-queue {}/{FETCH_QUEUE}, \
             window slab {}/{} (free {}), refetch {}; fetch blocked on {:?}",
            self.now,
            self.counters.committed,
            self.last_commit_cycle,
            self.rob_used,
            self.cfg.rob_entries,
            self.iq_used,
            self.cfg.iq_entries,
            self.lq_used,
            self.cfg.lq_entries,
            self.sq_used,
            self.cfg.sq_entries,
            self.fe_count,
            self.w.len(),
            self.w.capacity(),
            self.w.free_slots(),
            self.refetch.len(),
            self.fetch_blocked_on,
        );
        if let Some(tail) = self.sink.deadlock_tail() {
            report.push('\n');
            report.push_str(&tail);
        }
        report
    }

    // ----- event tap -----

    /// Emit one tap event stamped with the current cycle. With the default
    /// [`NullSink`] (`T::ENABLED == false`) the guard is a compile-time
    /// constant and the whole call folds away.
    #[inline(always)]
    fn emit(&mut self, seq: u64, kind: PipeEventKind) {
        if T::ENABLED {
            self.sink.event(PipeEvent { cycle: self.now, seq, kind });
        }
    }

    /// Structure occupancies for a per-cycle attribution record.
    fn occupancy(&self) -> Occupancy {
        Occupancy {
            rob: self.rob_used as u32,
            iq: self.iq_used as u32,
            lq: self.lq_used as u32,
            sq: self.sq_used as u32,
            fetch_queue: self.fe_count as u32,
        }
    }

    /// Exclusive stall attribution for a cycle in which nothing retired,
    /// decided by the state of the oldest in-flight µop — the one whose
    /// non-retirement bounds everything younger (same head-first logic as
    /// [`Machine::idle_skip`], which is why a batched span has a constant
    /// cause):
    ///
    /// * head completed → retire-port pressure ([`CycleCause::CommitBlock`]);
    /// * head waiting/issued → execution latency: memory µops are
    ///   [`CycleCause::MemWait`], the rest [`CycleCause::IssueWait`];
    /// * head still in the front-end → [`CycleCause::SquashRecovery`] when
    ///   it is a post-squash refetch, otherwise
    ///   [`CycleCause::DispatchBlock`] if it already left decode (a
    ///   structural resource is full) or [`CycleCause::FetchStarve`];
    /// * empty window → the front end is the bottleneck: squash refill
    ///   ([`CycleCause::SquashRecovery`]) or plain fetch starvation.
    fn stall_cause(&self) -> CycleCause {
        match self.w.head_info() {
            Some(h) => match h.stage {
                Stage::Completed => CycleCause::CommitBlock,
                Stage::Waiting | Stage::Issued => match h.fu {
                    FuClass::Load | FuClass::Store => CycleCause::MemWait,
                    _ => CycleCause::IssueWait,
                },
                Stage::FrontEnd => {
                    if self.in_recovery(h.seq) {
                        CycleCause::SquashRecovery
                    } else if h.fe_exit <= self.now {
                        CycleCause::DispatchBlock
                    } else {
                        CycleCause::FetchStarve
                    }
                }
            },
            None => match self.refetch.front() {
                Some(di) if self.in_recovery(di.seq) => CycleCause::SquashRecovery,
                _ => CycleCause::FetchStarve,
            },
        }
    }

    /// `true` when `seq` is at or below the squash high-water mark, i.e.
    /// the µop is being re-fetched because a squash discarded it.
    fn in_recovery(&self, seq: u64) -> bool {
        self.squash_hwm.is_some_and(|hwm| seq <= hwm)
    }

    // ----- idle fast-forward -----

    /// Jump the clock across provably-dead cycles.
    ///
    /// A cycle does work only if some stage can make progress: commit needs
    /// a completed ROB head, complete/issue need a due wheel event or a
    /// ready µop, dispatch needs an arrived front-end µop plus free
    /// resources, and fetch needs to be unblocked. When every stage is
    /// blocked, the earliest cycle anything changes is bounded by the next
    /// completion-wheel event (all wakeups — completions, fills, branch
    /// resolutions — ride on it), the head front-end µop's decode exit, or
    /// a fetch redirect's resume cycle. Skip straight there, batching the
    /// per-cycle stall counters the skipped cycles would have incremented,
    /// so every counter stays byte-identical to cycle-by-cycle execution.
    fn idle_skip(&mut self) {
        // Commit is blocked only when a non-completed head wedges the ROB;
        // an empty window means fetch still has work, so fall through.
        match self.w.front() {
            Some(front) if self.w.state[front as usize] != Stage::Completed => {}
            _ => return,
        }
        // Issue: nothing is ready now, and nothing becomes ready except
        // through a wheel event (producer completion, fill, resolution).
        if !self.w.ready_is_empty() {
            return;
        }
        // The deadlock check fires after cycle `last_commit + LIMIT - 1`;
        // never skip past it so the panic reports the same cycle.
        let mut wake = self.last_commit_cycle + DEADLOCK_LIMIT - 1;
        type Counter = fn(&mut StallBreakdown) -> &mut u64;
        // Dispatch: blocked because the fetch queue is empty, the head
        // front-end µop has not left decode yet, or its first structural
        // resource is exhausted (same attribution order as `dispatch`).
        let mut dispatch_counter: Option<Counter> = None;
        if self.fe_count > 0 {
            let i = self.w.at(self.w.len() - self.fe_count) as usize;
            if self.w.fe_exit[i] > self.now {
                wake = wake.min(self.w.fe_exit[i]);
            } else if self.rob_used >= self.cfg.rob_entries {
                dispatch_counter = Some(|s| &mut s.dispatch_rob_cycles);
            } else if self.iq_used >= self.cfg.iq_entries {
                dispatch_counter = Some(|s| &mut s.dispatch_iq_cycles);
            } else {
                let op = self.w.di[i].inst.op;
                if op == Opcode::Load && self.lq_used >= self.cfg.lq_entries {
                    dispatch_counter = Some(|s| &mut s.dispatch_lq_cycles);
                } else if op == Opcode::Store && self.sq_used >= self.cfg.sq_entries {
                    dispatch_counter = Some(|s| &mut s.dispatch_sq_cycles);
                } else {
                    match self.w.di[i].inst.dst.map(|d| d.class()) {
                        Some(RegClass::Int) if 32 + self.int_prf_used >= self.cfg.int_prf => {
                            dispatch_counter = Some(|s| &mut s.dispatch_prf_cycles);
                        }
                        Some(RegClass::Float) if 32 + self.fp_prf_used >= self.cfg.fp_prf => {
                            dispatch_counter = Some(|s| &mut s.dispatch_prf_cycles);
                        }
                        _ => return, // dispatch would make progress
                    }
                }
            }
        }
        // Fetch: same priority order as `fetch`. An unblocked front end
        // with trace input left means the cycle is live.
        let mut fetch_counter: Option<Counter> = None;
        if self.fetch_blocked_on.is_some() {
            fetch_counter = Some(|s| &mut s.fetch_branch_cycles);
        } else if self.now < self.fetch_resume_at {
            fetch_counter = Some(|s| &mut s.fetch_redirect_cycles);
            wake = wake.min(self.fetch_resume_at);
        } else if self.fe_count >= FETCH_QUEUE {
            fetch_counter = Some(|s| &mut s.fetch_queue_full_cycles);
        } else if !(self.source_done && self.refetch.is_empty()) {
            return; // fetch would make progress
        }
        if let Some(due) = self.wheel.next_due_at_or_after(self.now) {
            wake = wake.min(due);
        }
        if wake <= self.now {
            return;
        }
        let skipped = wake - self.now;
        self.counters.stalls.commit_idle_cycles += skipped;
        if let Some(c) = dispatch_counter {
            *c(&mut self.counters.stalls) += skipped;
        }
        if let Some(c) = fetch_counter {
            *c(&mut self.counters.stalls) += skipped;
        }
        if T::ENABLED {
            // One batched attribution record for the whole span: no state
            // changes across skipped cycles, so the cause and occupancy a
            // cycle-by-cycle run would record are constant.
            let cause = self.stall_cause();
            let occ = self.occupancy();
            self.emit(0, PipeEventKind::Cycle { cause, span: skipped, occ });
        }
        self.now = wake;
    }

    // ----- commit stage -----

    fn commit(&mut self) {
        for slot in 0..self.cfg.retire_width {
            if self.counters.committed >= self.stop_at {
                break;
            }
            let Some(front) = self.w.front() else { break };
            if self.w.state[front as usize] != Stage::Completed {
                break;
            }
            let idx = self.w.pop_front();
            let i = idx as usize;
            let seq = self.w.di[i].seq;
            self.last_commit_cycle = self.now;
            self.rob_used -= 1;
            if self.w.flag(idx, flag::IQ_HELD) {
                self.iq_used -= 1;
            }
            if self.w.flag(idx, flag::LQ_HELD) {
                self.lq_used -= 1;
            }
            if self.w.flag(idx, flag::SQ_HELD) {
                self.sq_used -= 1;
            }
            match self.w.prf_class[i] {
                Some(RegClass::Int) => self.int_prf_used -= 1,
                Some(RegClass::Float) => self.fp_prf_used -= 1,
                None => {}
            }
            // Only this µop's destination can map to it (set at dispatch),
            // so the rename release is a single-slot check, not a scan.
            if let Some(d) = self.w.di[i].inst.dst {
                if self.rename[d.index()] == Some(seq) {
                    self.rename[d.index()] = None;
                }
            }
            // Commit-time cache state update for stores.
            if self.w.di[i].inst.op == Opcode::Store {
                let addr = self.w.di[i].mem_addr.expect("store has an address");
                self.mem.store(self.w.di[i].pc, addr, self.now);
            }
            // Train the value predictor (in order, every eligible µop).
            if self.w.flag(idx, flag::ELIGIBLE) {
                if let Some(p) = self.predictor.as_mut() {
                    p.train(seq, self.w.di[i].result.expect("eligible µop has a result"));
                }
                self.counters.eligible += 1;
                if self.w.flag(idx, flag::PRED_HIT) {
                    self.counters.hits += 1;
                }
                if self.w.predicted[i].is_some() {
                    self.counters.used += 1;
                    if self.w.flag(idx, flag::PRED_WRONG) {
                        self.counters.mispredicted += 1;
                        if !self.w.flag(idx, flag::PRED_CONSUMER_ISSUED) {
                            self.counters.harmless += 1;
                        }
                    } else {
                        self.counters.correct_used += 1;
                    }
                } else if self.w.flag(idx, flag::PRED_CORRECT_UNUSED) {
                    self.counters.correct_unused += 1;
                }
            }
            // Train the branch predictors.
            let op = self.w.di[i].inst.op;
            if op.is_cond_branch() {
                self.tage.train(seq, self.w.di[i].taken);
                self.counters.cond_branches += 1;
                if self.w.flag(idx, flag::BR_MISPRED) {
                    self.counters.dir_mispred += 1;
                }
            } else if op.is_control() {
                self.counters.uncond += 1;
                if op == Opcode::JumpInd {
                    self.btb.update(self.w.di[i].pc, self.w.di[i].next_pc);
                }
                if self.w.flag(idx, flag::BR_MISPRED) {
                    self.counters.target_mispred += 1;
                }
            }
            self.counters.committed += 1;
            self.emit(seq, PipeEventKind::Commit { slot: slot as u16 });
            // Value-misprediction squash at commit.
            let squash = self.w.flag(idx, flag::VP_SQUASH_AT_COMMIT);
            let hist = self.w.hist_after[i];
            let cp = self.w.ras_cp[i];
            self.w.release(idx);
            if squash {
                self.counters.vp_squashes += 1;
                self.squash_after(seq, hist, cp, SquashCause::ValueMisprediction);
                break;
            }
        }
    }

    // ----- completion (execute/writeback) stage -----

    /// Event-driven completion. The cycle's due events (completion wheel
    /// bucket plus any deferred carry-overs) replace the old full-window
    /// scan; stale events — squashed or reissued slots — are dropped by
    /// their generation/state check. Two passes preserve the scan's
    /// semantics exactly:
    ///
    /// 1. *Writeback wakeups*: every due value wakes the consumers
    ///    registered on it, even when pass 2 is aborted mid-cycle by a
    ///    memory-order squash (the old scan's issue stage saw
    ///    `complete_at <= now` values as ready regardless).
    /// 2. *Completion processing* in age order: stage flip, branch
    ///    unblock, memory-order violation detection (aborting the pass on
    ///    a squash, deferring the untouched remainder to the next cycle),
    ///    and value-prediction validation/recovery.
    fn complete(&mut self) {
        let mut due = self.wheel.take_due(self.now);
        due.retain(|ev| self.w.event_live(*ev, self.now));
        due.sort_unstable_by_key(|ev| self.w.di[ev.idx as usize].seq);

        // Pass 1: writeback wakeups.
        for ev in &due {
            let p = ev.idx as usize;
            if self.w.waiters[p].is_empty() {
                continue;
            }
            let mut waiters = std::mem::take(&mut self.w.waiters[p]);
            self.wake_scratch.clear();
            self.wake_scratch.append(&mut waiters);
            debug_assert!(waiters.is_empty());
            self.w.waiters[p] = waiters;
            for k in 0..self.wake_scratch.len() {
                let wt = self.wake_scratch[k];
                let c = wt.idx as usize;
                if self.w.gen[c] == wt.gen && self.w.state[c] == Stage::Waiting {
                    self.refresh_ready(wt.idx);
                }
            }
        }

        // Pass 2: completion processing in age order.
        for k in 0..due.len() {
            let ev = due[k];
            // Re-check liveness: an earlier completion may have reissued
            // this µop within the same cycle.
            if !self.w.event_live(ev, self.now) {
                continue;
            }
            let idx = ev.idx;
            let i = idx as usize;
            self.w.state[i] = Stage::Completed;
            let seq = self.w.di[i].seq;
            let op = self.w.di[i].inst.op;
            self.emit(seq, PipeEventKind::Writeback);

            // Branch resolution unblocks fetch.
            if self.w.flag(idx, flag::BR_MISPRED) && self.fetch_blocked_on == Some(seq) {
                self.fetch_blocked_on = None;
                self.fetch_resume_at = self.fetch_resume_at.max(self.now + 1);
            }

            // Store execution: memory-order violation detection.
            if op == Opcode::Store {
                self.store_sets.store_executed(seq, self.w.lfst_slot[i]);
                let addr = self.w.di[i].mem_addr;
                if let Some(violating_load) = self.find_violating_load(seq, addr) {
                    self.counters.violations += 1;
                    let store_pc = self.w.di[i].pc;
                    let load_idx = self.w.idx_of(violating_load).expect("load in window");
                    let load_pc = self.w.di[load_idx as usize].pc;
                    self.store_sets.record_violation(load_pc, store_pc);
                    // Squash from the violating load (it refetches) and
                    // stop this stage; unprocessed completions carry over
                    // to the next cycle, exactly like the old scan's
                    // early return.
                    let boundary = violating_load - 1;
                    let bidx = self.w.idx_of(boundary).expect("boundary in window") as usize;
                    let hist = self.w.hist_after[bidx];
                    let cp = self.w.ras_cp[bidx];
                    for &ev in due.iter().skip(k + 1) {
                        self.wheel.defer(ev);
                    }
                    self.squash_after(boundary, hist, cp, SquashCause::MemoryOrder);
                    self.wheel.recycle(due);
                    return;
                }
            }

            // Value prediction validation at execute. The computed result
            // replaces the prediction (paper §7.2: "a prediction is …
            // replaced by its non-speculative counterpart when it is
            // computed"), so the predictor's speculative value tracking is
            // repaired for *any* wrong prediction, confident or not —
            // otherwise a cold or glitched chain self-feeds forever.
            if let (Some(guess), Some(actual)) = (self.w.pred_any[i], self.w.di[i].result) {
                if guess != actual {
                    let pc = self.w.di[i].pc;
                    if let Some(p) = self.predictor.as_mut() {
                        p.resolve(seq, pc, actual);
                    }
                }
            }
            if let (Some(pred), Some(actual)) = (self.w.predicted[i], self.w.di[i].result) {
                self.emit(seq, PipeEventKind::VpValidate { correct: pred == actual });
                if pred != actual {
                    self.w.set_flag(idx, flag::PRED_WRONG);
                    if self.w.flag(idx, flag::PRED_CONSUMER_ISSUED) {
                        match self.recovery {
                            RecoveryPolicy::SquashAtCommit => {
                                self.w.set_flag(idx, flag::VP_SQUASH_AT_COMMIT);
                            }
                            RecoveryPolicy::SelectiveReissue => {
                                self.selective_reissue(idx);
                            }
                        }
                    }
                } else if self.recovery == RecoveryPolicy::SelectiveReissue {
                    self.validate_poison(idx);
                }
            }
        }
        self.wheel.recycle(due);
    }

    /// Youngest check: find the oldest load younger than store `seq` to the
    /// same address that has already left the scheduler. The window's
    /// address-indexed load chains walk only same-line loads in age order,
    /// so the first match is the oldest.
    fn find_violating_load(&self, store_seq: u64, addr: Option<u64>) -> Option<u64> {
        let idx = self.w.oldest_younger_issued_load(addr?, store_seq)?;
        Some(self.w.di[idx as usize].seq)
    }

    /// Selective reissue: every issued/completed µop transitively dependent
    /// on the mispredicted value of producer slot `p` re-enters the
    /// scheduler this cycle (idealistic 0-cycle repair, §7.2.1). The
    /// inverted poison list names exactly those consumers; entries whose
    /// bit was already cleared (reissued by another producer, or stale
    /// after slot recycling) are skipped by the bitmask check.
    fn selective_reissue(&mut self, p: u32) {
        let mut list = std::mem::take(&mut self.w.poisoned[p as usize]);
        for &c in &list {
            if !self.w.poison_contains(c, p) {
                continue;
            }
            let ci = c as usize;
            debug_assert!(matches!(self.w.state[ci], Stage::Issued | Stage::Completed));
            debug_assert!(self.w.di[ci].seq > self.w.di[p as usize].seq);
            self.w.state[ci] = Stage::Waiting;
            self.w.issued_at[ci] = UNSCHEDULED;
            self.w.complete_at[ci] = UNSCHEDULED;
            self.w.poison_clear(c);
            self.w.ready_set(self.w.di[ci].seq);
            self.counters.reissued += 1;
            self.emit(self.w.di[ci].seq, PipeEventKind::Reissue);
        }
        list.clear();
        debug_assert!(self.w.poisoned[p as usize].is_empty());
        self.w.poisoned[p as usize] = list;
    }

    /// A predicted value validated correct: clear producer slot `p` from
    /// the poison sets of exactly its recorded consumers and release IQ
    /// entries of now-non-speculative completed µops.
    fn validate_poison(&mut self, p: u32) {
        let mut list = std::mem::take(&mut self.w.poisoned[p as usize]);
        for &c in &list {
            if !self.w.poison_contains(c, p) {
                continue;
            }
            self.w.poison_remove(c, p);
            if self.w.poison_is_empty(c)
                && self.w.state[c as usize] == Stage::Completed
                && self.w.flag(c, flag::IQ_HELD)
            {
                self.w.clear_flag(c, flag::IQ_HELD);
                self.iq_used -= 1;
            }
        }
        list.clear();
        debug_assert!(self.w.poisoned[p as usize].is_empty());
        self.w.poisoned[p as usize] = list;
    }

    // ----- issue stage -----

    /// Issue selection over the ready bitset in age order (two-phase:
    /// select, then apply — identical priority and resource order to the
    /// old full-window scan). The bitset is a conservative candidate
    /// filter; operands are re-verified here, and a consumer found unready
    /// (e.g. its producer was reissued since the wakeup) re-registers on
    /// the scoreboard and leaves the set.
    fn issue(&mut self) {
        let mut issued = 0usize;
        let mut loads = 0usize;
        let mut stores = 0usize;
        self.picks.clear();
        self.spec_buf.clear();
        let mut cand = std::mem::take(&mut self.ready_scratch);
        self.w.collect_ready(&mut cand);

        for &idx in &cand {
            if issued >= self.cfg.issue_width {
                break;
            }
            let i = idx as usize;
            debug_assert_eq!(self.w.state[i], Stage::Waiting);
            debug_assert!(self.w.dispatched_at[i] < self.now);
            let fu = self.w.di[i].inst.fu_class();
            if fu == FuClass::Load && loads >= self.cfg.fu.load_ports {
                continue;
            }
            if fu == FuClass::Store && stores >= self.cfg.fu.store_ports {
                continue;
            }
            // Operand readiness (re-verified; the ground truth).
            let spec_start = self.spec_buf.len();
            if !self.check_operands(idx) {
                self.spec_buf.truncate(spec_start);
                continue;
            }
            // Loads: memory dependence rules.
            let mut forwarded = false;
            if fu == FuClass::Load {
                match self.load_memory_ready(idx) {
                    Err(store) => {
                        self.spec_buf.truncate(spec_start);
                        // Park on the blocking store instead of busy-polling
                        // the ready set: its completion event's pass-1
                        // wakeup re-arms this load on exactly the cycle the
                        // poll would have seen it complete.
                        self.w.ready_clear(self.w.di[i].seq);
                        self.w.waiters[store as usize].push(Waiter { idx, gen: self.w.gen[i] });
                        continue;
                    }
                    Ok(f) => forwarded = f,
                }
            }
            // Functional unit claim.
            let latency = self.execute_latency(&self.w.di[i]);
            let pipelined =
                !matches!(self.w.di[i].inst.op, Opcode::Div | Opcode::Rem | Opcode::FDiv);
            let busy_until = if pipelined { self.now + 1 } else { self.now + latency };
            if !self.fu.claim(fu, self.now, busy_until) {
                self.spec_buf.truncate(spec_start);
                continue;
            }
            // Completion time.
            let complete_at = match fu {
                FuClass::Load => {
                    let addr = self.w.di[i].mem_addr.expect("load address");
                    if forwarded {
                        self.now + 1 + 2 // AGU + store-buffer forward
                    } else {
                        let pc = self.w.di[i].pc;
                        self.mem.load(pc, addr, self.now + 1)
                    }
                }
                FuClass::Store => self.now + 1, // AGU; data to store buffer
                _ => self.now + latency,
            };
            self.picks.push(Pick {
                idx,
                complete_at,
                spec_start: spec_start as u32,
                spec_len: (self.spec_buf.len() - spec_start) as u32,
            });
            issued += 1;
            if fu == FuClass::Load {
                loads += 1;
            }
            if fu == FuClass::Store {
                stores += 1;
            }
        }
        self.ready_scratch = cand;

        for k in 0..self.picks.len() {
            let Pick { idx, complete_at, spec_start, spec_len } = self.picks[k];
            let i = idx as usize;
            self.emit(self.w.di[i].seq, PipeEventKind::Issue { slot: k as u16 });
            // Mark speculative consumption on the producers and poison
            // this µop with each distinct speculative source.
            for s in spec_start..spec_start + spec_len {
                let pseq = self.spec_buf[s as usize];
                if let Some(p) = self.w.idx_of(pseq) {
                    self.w.set_flag(p, flag::PRED_CONSUMER_ISSUED);
                    if self.w.poison_insert(idx, p) {
                        self.w.poisoned[p as usize].push(idx);
                    }
                }
            }
            // Inherit poison from executed-but-unvalidated producers: a
            // word-wise OR of the producer's bitmask (O(1) per dependence
            // instead of the old Vec clone).
            if self.recovery == RecoveryPolicy::SelectiveReissue {
                let deps = self.w.deps[i];
                for dep in deps.iter().flatten() {
                    if let Some(p) = self.w.idx_of(*dep) {
                        if matches!(self.w.state[p as usize], Stage::Issued | Stage::Completed) {
                            self.w.poison_inherit(idx, p);
                        }
                    }
                }
            }
            let free_iq = match self.recovery {
                RecoveryPolicy::SquashAtCommit => true,
                RecoveryPolicy::SelectiveReissue => self.w.poison_is_empty(idx),
            };
            self.w.state[i] = Stage::Issued;
            self.w.issued_at[i] = self.now;
            self.w.complete_at[i] = complete_at;
            self.w.ready_clear(self.w.di[i].seq);
            self.wheel.schedule(self.now, Event { at: complete_at, idx, gen: self.w.gen[i] });
            if free_iq && self.w.flag(idx, flag::IQ_HELD) {
                self.w.clear_flag(idx, flag::IQ_HELD);
                self.iq_used -= 1;
            }
        }
    }

    /// Ground-truth operand check for waiting consumer `c`, with the same
    /// readiness rules as the original scheduler: a register operand is
    /// ready when its producer committed, completed, writes back this
    /// cycle, or carries an injected prediction (speculative readiness —
    /// those producers are appended to `spec_buf`). On failure, `c` is
    /// registered on every unready producer's wakeup list and leaves the
    /// ready set.
    fn check_operands(&mut self, c: u32) -> bool {
        let ci = c as usize;
        let deps = self.w.deps[ci];
        let cgen = self.w.gen[ci];
        let mut ok = true;
        for dep in deps.iter().flatten() {
            match self.w.idx_of(*dep) {
                None => {} // committed: read from the register file
                Some(p) => {
                    let pi = p as usize;
                    match self.w.state[pi] {
                        Stage::Completed => {}
                        Stage::Issued if self.w.complete_at[pi] <= self.now => {}
                        _ if self.w.predicted[pi].is_some()
                            && self.w.state[pi] != Stage::FrontEnd =>
                        {
                            self.spec_buf.push(*dep);
                        }
                        _ => {
                            ok = false;
                            self.w.waiters[pi].push(Waiter { idx: c, gen: cgen });
                        }
                    }
                }
            }
        }
        if !ok {
            self.w.ready_clear(self.w.di[ci].seq);
        }
        ok
    }

    /// Re-evaluate waiting µop `c` for the ready set: mark it a candidate
    /// when all operands are ready, otherwise (re-)register it on its
    /// unready producers. Called at dispatch and on writeback wakeups.
    fn refresh_ready(&mut self, c: u32) {
        let start = self.spec_buf.len();
        let ok = self.check_operands(c);
        self.spec_buf.truncate(start);
        if ok {
            self.w.ready_set(self.w.di[c as usize].seq);
        }
    }

    /// Memory-side readiness for a load: `Err(store)` = must wait for the
    /// in-flight store at slot `store` to execute; `Ok(fwd)` with
    /// `fwd = true` when store-to-load forwarding supplies the data.
    fn load_memory_ready(&self, idx: u32) -> Result<bool, u32> {
        let i = idx as usize;
        // Store-set predicted dependence: wait until that store executed.
        if let Some(dep) = self.w.store_dep[i] {
            if let Some(pidx) = self.w.idx_of(dep) {
                if self.w.state[pidx as usize] != Stage::Completed {
                    return Err(pidx);
                }
            }
        }
        // Youngest older store to the same address, if any, via the
        // window's address-indexed store chains. If that store has not
        // executed, issuing now would violate ordering; without a
        // store-set prediction the hardware issues anyway (and pays a
        // violation squash when the store executes), and with one we
        // never get here. We model the speculative issue faithfully.
        let addr = self.w.di[i].mem_addr.expect("load address");
        let forwarded = match self.w.youngest_older_store(addr, self.w.di[i].seq) {
            Some(s) => self.w.state[s as usize] == Stage::Completed,
            None => false,
        };
        Ok(forwarded)
    }

    fn execute_latency(&self, di: &DynInst) -> u64 {
        let fu = &self.cfg.fu;
        match di.inst.op {
            Opcode::Mul => fu.mul_latency,
            Opcode::Div | Opcode::Rem => fu.div_latency,
            Opcode::FMul => fu.fpmul_latency,
            Opcode::FDiv => fu.fpdiv_latency,
            op if op.fu_class() == FuClass::FpAlu => fu.fp_latency,
            _ => fu.alu_latency,
        }
    }

    // ----- dispatch (rename) stage -----

    /// In-order dispatch straight from the front-end region: the
    /// front-end µops are exactly the youngest `fe_count` entries of the
    /// ROB order ring, so dispatch starts there instead of skipping over
    /// every already-dispatched slot.
    fn dispatch(&mut self) {
        let len = self.w.len();
        let mut off = len - self.fe_count;
        let mut dispatched = 0usize;
        while off < len {
            if dispatched >= self.cfg.fetch_width {
                break;
            }
            let idx = self.w.at(off);
            let i = idx as usize;
            debug_assert_eq!(self.w.state[i], Stage::FrontEnd);
            if self.w.fe_exit[i] > self.now {
                break; // in-order front-end: younger µops are even later
            }
            // Structural resources (attribute the first blocker per cycle).
            if self.rob_used >= self.cfg.rob_entries {
                self.counters.stalls.dispatch_rob_cycles += 1;
                break;
            }
            if self.iq_used >= self.cfg.iq_entries {
                self.counters.stalls.dispatch_iq_cycles += 1;
                break;
            }
            let op = self.w.di[i].inst.op;
            if op == Opcode::Load && self.lq_used >= self.cfg.lq_entries {
                self.counters.stalls.dispatch_lq_cycles += 1;
                break;
            }
            if op == Opcode::Store && self.sq_used >= self.cfg.sq_entries {
                self.counters.stalls.dispatch_sq_cycles += 1;
                break;
            }
            let dst_class = self.w.di[i].inst.dst.map(|d| d.class());
            match dst_class {
                Some(RegClass::Int) if 32 + self.int_prf_used >= self.cfg.int_prf => {
                    self.counters.stalls.dispatch_prf_cycles += 1;
                    break;
                }
                Some(RegClass::Float) if 32 + self.fp_prf_used >= self.cfg.fp_prf => {
                    self.counters.stalls.dispatch_prf_cycles += 1;
                    break;
                }
                _ => {}
            }
            // Rename.
            let seq = self.w.di[i].seq;
            let sources = self.w.di[i].inst.source_pair();
            let mut deps = [None, None];
            for (k, r) in sources.iter().flatten().enumerate() {
                deps[k] = self.rename[r.index()];
            }
            if let Some(d) = self.w.di[i].inst.dst {
                self.rename[d.index()] = Some(seq);
            }
            // Memory structures.
            let (mut lq_held, mut sq_held) = (false, false);
            let mut store_dep = None;
            let pc = self.w.di[i].pc;
            if op == Opcode::Load {
                lq_held = true;
                self.lq_used += 1;
                store_dep = self.store_sets.load_dependence(pc);
            } else if op == Opcode::Store {
                sq_held = true;
                self.sq_used += 1;
                self.w.lfst_slot[i] = self.store_sets.store_dispatched(pc, seq);
            }
            match dst_class {
                Some(RegClass::Int) => self.int_prf_used += 1,
                Some(RegClass::Float) => self.fp_prf_used += 1,
                None => {}
            }
            self.rob_used += 1;
            self.iq_used += 1;
            self.fe_count -= 1;
            dispatched += 1;
            self.emit(seq, PipeEventKind::Dispatch { slot: (dispatched - 1) as u16 });
            self.w.state[i] = Stage::Waiting;
            self.w.dispatched_at[i] = self.now;
            self.w.deps[i] = deps;
            self.w.store_dep[i] = store_dep;
            self.w.set_flag(idx, flag::IQ_HELD);
            if lq_held {
                self.w.set_flag(idx, flag::LQ_HELD);
            }
            if sq_held {
                self.w.set_flag(idx, flag::SQ_HELD);
            }
            self.w.prf_class[i] = dst_class;
            // Loads and stores join the address-indexed LSQ chains here;
            // release (commit or squash) unlinks them.
            self.w.lsq_insert(idx);
            // Scoreboard entry: immediately ready, or registered on its
            // unready producers for wakeup.
            self.refresh_ready(idx);
            off += 1;
        }
    }

    // ----- fetch stage -----

    fn next_trace_inst(&mut self) -> Option<DynInst> {
        if let Some(di) = self.refetch.pop_front() {
            return Some(di);
        }
        match self.source.next_inst() {
            Some(di) => Some(di),
            None => {
                self.source_done = true;
                None
            }
        }
    }

    fn fetch(&mut self) {
        if self.fetch_blocked_on.is_some() {
            self.counters.stalls.fetch_branch_cycles += 1;
            return;
        }
        if self.now < self.fetch_resume_at {
            self.counters.stalls.fetch_redirect_cycles += 1;
            return;
        }
        if self.fe_count >= FETCH_QUEUE {
            self.counters.stalls.fetch_queue_full_cycles += 1;
            return;
        }
        let mut fetched = 0usize;
        let mut taken_branches = 0usize;
        while fetched < self.cfg.fetch_width && self.fe_count < FETCH_QUEUE {
            let Some(di) = self.next_trace_inst() else { break };
            // Instruction cache.
            let iready = self.mem.fetch_inst(di.pc, self.now);
            let l1i_latency = 2;
            if iready > self.now + l1i_latency {
                // Miss: this µop retries when the line arrives.
                self.refetch.push_front(di);
                self.fetch_resume_at = iready;
                break;
            }
            let seq = di.seq;
            let pc = di.pc;
            let pre_hist = self.fetch_hist;
            let op = di.inst.op;
            // Branch prediction.
            let mut mispred = false;
            if op.is_cond_branch() {
                let pred_taken = self.tage.predict(seq, pc, &pre_hist);
                mispred = pred_taken != di.taken;
                self.fetch_hist.push_branch(pc, di.taken);
            } else if op.is_control() {
                match op {
                    Opcode::Call => self.ras.push(pc + 4),
                    Opcode::Ret => {
                        let predicted = self.ras.pop();
                        mispred = predicted != Some(di.next_pc);
                    }
                    Opcode::JumpInd => {
                        let predicted = self.btb.lookup(pc);
                        mispred = predicted != Some(di.next_pc);
                    }
                    _ => {} // direct jumps/calls: target from decode
                }
                self.fetch_hist.push_path(pc);
            }
            // Window slot + value prediction at fetch.
            let idx = self.w.alloc(
                di,
                self.now + self.cfg.frontend_depth,
                self.fetch_hist,
                self.ras.checkpoint(),
            );
            if mispred {
                self.w.set_flag(idx, flag::BR_MISPRED);
            }
            if di.vp_eligible() {
                self.w.set_flag(idx, flag::ELIGIBLE);
                self.counters.b2b_eligible += 1;
                if self.b2b.fetched(pc, self.now) {
                    self.counters.b2b += 1;
                }
                if let Some(p) = self.predictor.as_mut() {
                    let ctx = PredictCtx { seq, pc, hist: pre_hist, actual: di.result };
                    let pred = p.predict(&ctx);
                    if pred.value.is_some() {
                        self.w.set_flag(idx, flag::PRED_HIT);
                    }
                    self.w.pred_any[idx as usize] = pred.value;
                    match pred.confident_value() {
                        Some(v) => self.w.predicted[idx as usize] = Some(v),
                        None => {
                            if pred.value == di.result {
                                self.w.set_flag(idx, flag::PRED_CORRECT_UNUSED);
                            }
                        }
                    }
                }
            }
            self.fe_count += 1;
            fetched += 1;
            self.emit(seq, PipeEventKind::Fetch { pc, slot: (fetched - 1) as u16 });
            if di.taken {
                taken_branches += 1;
            }
            if mispred {
                self.fetch_blocked_on = Some(seq);
                break;
            }
            if taken_branches >= self.cfg.taken_branches_per_cycle {
                break;
            }
        }
    }

    // ----- squash -----

    /// Remove every µop younger than `boundary` from the window, queue them
    /// for refetch, and restore front-end state. Fetch resumes next cycle.
    fn squash_after(
        &mut self,
        boundary: u64,
        hist: HistoryState,
        ras_cp: RasCheckpoint,
        cause: SquashCause,
    ) {
        let mut squashed = 0u32;
        while let Some(back) = self.w.back() {
            if self.w.di[back as usize].seq <= boundary {
                break;
            }
            let idx = self.w.pop_back();
            let i = idx as usize;
            if T::ENABLED {
                // pop_back walks youngest-first: the first popped µop is
                // the squash high-water mark.
                if squashed == 0 {
                    let youngest = self.w.di[i].seq;
                    self.squash_hwm =
                        Some(self.squash_hwm.map_or(youngest, |hwm| hwm.max(youngest)));
                }
                squashed += 1;
            }
            match self.w.state[i] {
                Stage::FrontEnd => self.fe_count -= 1,
                _ => {
                    self.rob_used -= 1;
                    if self.w.flag(idx, flag::IQ_HELD) {
                        self.iq_used -= 1;
                    }
                    if self.w.flag(idx, flag::LQ_HELD) {
                        self.lq_used -= 1;
                    }
                    if self.w.flag(idx, flag::SQ_HELD) {
                        self.sq_used -= 1;
                    }
                    match self.w.prf_class[i] {
                        Some(RegClass::Int) => self.int_prf_used -= 1,
                        Some(RegClass::Float) => self.fp_prf_used -= 1,
                        None => {}
                    }
                }
            }
            self.refetch.push_front(self.w.di[i]);
            self.w.release(idx);
        }
        // Rebuild the rename map from the surviving dispatched window.
        self.rename = [None; vpsim_isa::NUM_ARCH_REGS];
        for off in 0..self.w.len() {
            let i = self.w.at(off) as usize;
            if self.w.state[i] == Stage::FrontEnd {
                continue;
            }
            if let Some(d) = self.w.di[i].inst.dst {
                self.rename[d.index()] = Some(self.w.di[i].seq);
            }
        }
        if let Some(p) = self.predictor.as_mut() {
            p.squash_after(boundary);
        }
        self.tage.squash_after(boundary);
        self.store_sets.squash_after(boundary);
        self.fetch_hist = hist;
        self.ras.restore(ras_cp);
        if matches!(self.fetch_blocked_on, Some(s) if s > boundary) {
            self.fetch_blocked_on = None;
        }
        self.fetch_resume_at = self.fetch_resume_at.max(self.now + 1);
        self.emit(boundary, PipeEventKind::Squash { cause, squashed });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VpConfig;
    use vpsim_core::PredictorKind;
    use vpsim_isa::{ProgramBuilder, Reg};

    fn counted_loop(iters: i64, body_adds: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let (i, n, acc) = (Reg::int(1), Reg::int(2), Reg::int(3));
        b.load_imm(i, 0);
        b.load_imm(n, iters);
        let top = b.bind_label();
        for _ in 0..body_adds {
            b.addi(acc, acc, 1);
        }
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        b.build().unwrap()
    }

    fn base_sim() -> Simulator {
        Simulator::new(CoreConfig::default())
    }

    fn vp_sim(kind: PredictorKind, recovery: RecoveryPolicy) -> Simulator {
        Simulator::new(CoreConfig::default().with_vp(VpConfig::enabled(kind, recovery)))
    }

    #[test]
    fn empty_window_run_terminates() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let r = base_sim().run(&p, 1000);
        assert_eq!(r.metrics.instructions, 1);
    }

    #[test]
    fn independent_ops_reach_high_ipc() {
        // 8 independent add chains: should sustain IPC well above 2.
        let mut b = ProgramBuilder::new();
        let n = Reg::int(0);
        b.load_imm(n, 2000);
        let counter = Reg::int(15);
        let top = b.bind_label();
        for k in 1..=8u8 {
            b.addi(Reg::int(k), Reg::int(k), 3);
        }
        b.addi(counter, counter, 1);
        b.blt(counter, n, top);
        b.halt();
        let p = b.build().unwrap();
        let r = base_sim().run(&p, 50_000);
        assert!(r.metrics.ipc() > 2.0, "ipc {}", r.metrics.ipc());
    }

    #[test]
    fn dependent_chain_is_serialized() {
        // A single long dependence chain: IPC ≈ 1 at best (1-cycle ALU).
        let mut b = ProgramBuilder::new();
        let (x, n, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        b.load_imm(n, 2000);
        let top = b.bind_label();
        for _ in 0..8 {
            b.addi(x, x, 1); // serial chain
        }
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let r = base_sim().run(&p, 50_000);
        assert!(r.metrics.ipc() < 1.6, "ipc {}", r.metrics.ipc());
    }

    #[test]
    fn branch_mispredictions_cost_cycles() {
        // A data-dependent unpredictable branch vs a biased one.
        fn branchy(pattern_reg_seed: i64) -> Program {
            let mut b = ProgramBuilder::new();
            let (x, i, n, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
            b.load_imm(x, pattern_reg_seed);
            b.load_imm(n, 4000);
            let top = b.bind_label();
            // x = x * 6364136223846793005 + 1442695040888963407 (LCG)
            b.load_imm(t, 6364136223846793005);
            b.mul(x, x, t);
            b.load_imm(t, 1442695040888963407);
            b.add(x, x, t);
            b.shri(t, x, 63);
            let skip = b.label();
            let zero = Reg::int(0);
            b.beq(t, zero, skip); // unpredictable direction
            b.addi(Reg::int(5), Reg::int(5), 1);
            b.bind(skip);
            b.addi(i, i, 1);
            b.blt(i, n, top);
            b.halt();
            b.build().unwrap()
        }
        let random = base_sim().run(&branchy(12345), 30_000);
        // The biased version: same structure but the branch never fires.
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg::int(2), Reg::int(3));
        b.load_imm(n, 4000);
        let top = b.bind_label();
        for _ in 0..6 {
            b.addi(Reg::int(5), Reg::int(5), 1);
        }
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let biased = base_sim().run(&b.build().unwrap(), 30_000);
        assert!(
            random.branch.direction_accuracy() < 0.9,
            "LCG branch should be hard: {}",
            random.branch.direction_accuracy()
        );
        assert!(biased.metrics.ipc() > random.metrics.ipc());
    }

    #[test]
    fn cache_misses_show_up_in_stats() {
        // Pointer-chase over a large footprint.
        let mut b = ProgramBuilder::new();
        let (p, i, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
        // next[k] = (k + 8191) % 16384: a single 16K-entry cycle (gcd with
        // the table size is 1) striding ~512 KB per hop — hostile to L1D.
        let entries = 1 << 14;
        for k in 0..entries {
            let next = ((k + 8191) % entries) as u64 * 64;
            b.data(0x100000 + k as u64 * 64, 0x100000 + next);
        }
        b.load_imm(p, 0x100000);
        b.load_imm(n, 20000);
        let top = b.bind_label();
        b.load(p, p, 0); // p = *p
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let r = base_sim().run(&b.build().unwrap(), 60_000);
        assert!(r.l1d.misses > 1000, "l1d misses {}", r.l1d.misses);
        assert!(r.metrics.ipc() < 1.0, "pointer chase must be slow, ipc {}", r.metrics.ipc());
    }

    #[test]
    fn oracle_vp_breaks_dependence_chains() {
        let p = counted_loop(3000, 8);
        let base = base_sim().run(&p, 40_000);
        let oracle = vp_sim(PredictorKind::Oracle, RecoveryPolicy::SquashAtCommit).run(&p, 40_000);
        assert!(
            oracle.metrics.ipc() > base.metrics.ipc() * 1.2,
            "oracle {} vs base {}",
            oracle.metrics.ipc(),
            base.metrics.ipc()
        );
        assert_eq!(oracle.vp_squashes, 0, "oracle never mispredicts");
        assert!(oracle.vp.accuracy() > 0.9999);
    }

    #[test]
    fn stride_vp_speeds_up_serial_counter_loop() {
        // The loop counter chain is strided: a stride predictor breaks it.
        let p = counted_loop(4000, 0);
        let base = base_sim().run(&p, 40_000);
        let vp =
            vp_sim(PredictorKind::TwoDeltaStride, RecoveryPolicy::SquashAtCommit).run(&p, 40_000);
        assert!(
            vp.metrics.ipc() >= base.metrics.ipc() * 0.99,
            "vp {} vs base {}",
            vp.metrics.ipc(),
            base.metrics.ipc()
        );
        assert!(vp.vp.coverage() > 0.2, "coverage {}", vp.vp.coverage());
        assert!(vp.vp.accuracy() > 0.99, "accuracy {}", vp.vp.accuracy());
    }

    #[test]
    fn vp_stats_are_consistent() {
        let p = counted_loop(2000, 4);
        let r = vp_sim(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit).run(&p, 30_000);
        assert!(r.vp.used <= r.vp.eligible);
        assert!(r.vp.hits <= r.vp.eligible);
        assert_eq!(r.vp.used, r.vp.correct_used + r.vp.mispredicted);
        assert!(r.vp.harmless_mispredictions <= r.vp.mispredicted);
        assert!(r.back_to_back.eligible >= r.vp.eligible);
    }

    #[test]
    fn squash_at_commit_recovers_correctly() {
        // A value pattern that breaks after the predictor becomes
        // confident: constant for 500 iterations, then switches.
        let mut b = ProgramBuilder::new();
        let (x, i, n, addr) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        b.data(0x1000, 7);
        b.load_imm(n, 3000);
        b.load_imm(addr, 0x1000);
        let top = b.bind_label();
        b.load(x, addr, 0); // predictable… until memory changes
        b.addi(Reg::int(5), x, 1); // consumer
        b.addi(i, i, 1);
        // Halfway: store a new value to 0x1000.
        let skip = b.label();
        b.load_imm(Reg::int(6), 1500);
        b.bne(i, Reg::int(6), skip);
        b.load_imm(Reg::int(7), 99);
        b.store(addr, Reg::int(7), 0);
        b.bind(skip);
        b.blt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let r = vp_sim(PredictorKind::Lvp, RecoveryPolicy::SquashAtCommit).run(&p, 60_000);
        // The run completes with correct results and at most a few squashes.
        assert!(r.metrics.instructions > 15_000);
        assert!(r.vp_squashes >= 1, "the value break must trigger a squash");
        assert!(r.vp.accuracy() > 0.99);
    }

    #[test]
    fn selective_reissue_reexecutes_dependents() {
        let mut b = ProgramBuilder::new();
        let (x, y, i, n) = (Reg::int(1), Reg::int(5), Reg::int(2), Reg::int(3));
        b.data(0x1000, 1);
        b.load_imm(n, 2000);
        let addr = Reg::int(4);
        b.load_imm(addr, 0x1000);
        let top = b.bind_label();
        b.load(x, addr, 0);
        b.addi(y, x, 1);
        b.store(addr, y, 0); // value grows: stride-predictable
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let r =
            vp_sim(PredictorKind::TwoDeltaStride, RecoveryPolicy::SelectiveReissue).run(&p, 40_000);
        assert!(r.metrics.instructions > 10_000);
        // With baseline counters we would see reissues; with FPC they are
        // rare but the machinery must not corrupt anything.
        assert_eq!(r.vp_squashes, 0, "reissue mode never squashes for VP");
    }

    #[test]
    fn store_load_forwarding_and_violations() {
        // A tight store→load dependence through memory.
        let mut b = ProgramBuilder::new();
        let (x, i, n, addr) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        b.load_imm(addr, 0x2000);
        b.load_imm(n, 3000);
        let top = b.bind_label();
        b.addi(x, x, 1);
        b.store(addr, x, 0);
        b.load(Reg::int(5), addr, 0); // must see the store's value
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let r = base_sim().run(&p, 40_000);
        assert!(r.metrics.instructions > 10_000);
        // Store sets learn after the first violation; there must be far
        // fewer violations than iterations.
        assert!(r.memory_order_violations < 100, "violations {}", r.memory_order_violations);
    }

    #[test]
    fn back_to_back_stat_fires_in_tight_loops() {
        // A 3-µop loop body: the same PC is fetched in consecutive cycles.
        let p = counted_loop(4000, 1);
        let r = base_sim().run(&p, 20_000);
        assert!(
            r.back_to_back.fraction() > 0.05,
            "tight loop must show back-to-back fetches, got {}",
            r.back_to_back.fraction()
        );
    }

    #[test]
    fn warmup_excludes_cold_effects() {
        let p = counted_loop(20_000, 4);
        let sim = base_sim();
        let cold = sim.run(&p, 40_000);
        let warm = sim.run_with_warmup(&p, 20_000, 20_000);
        assert_eq!(warm.metrics.instructions, 20_000);
        assert!(warm.metrics.ipc() >= cold.metrics.ipc() * 0.95);
    }

    #[test]
    fn trace_replay_matches_inline_execution() {
        use vpsim_isa::Trace;
        let p = counted_loop(3000, 4);
        for sim in [
            base_sim(),
            vp_sim(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit),
            vp_sim(PredictorKind::TwoDeltaStride, RecoveryPolicy::SelectiveReissue),
        ] {
            let inline = sim.run_with_warmup(&p, 2_000, 10_000);
            let trace = Trace::capture(&p, sim.config().trace_budget(2_000, 10_000));
            let replayed = sim.run_trace(&trace, 2_000, 10_000);
            assert_eq!(inline, replayed, "replay must be byte-identical");
        }
    }

    #[test]
    fn short_program_trace_replays_to_the_end() {
        use vpsim_isa::Trace;
        // The program ends long before the budget: the trace is complete
        // and replay must agree with inline execution of the whole thing.
        let p = counted_loop(50, 1);
        let sim = base_sim();
        let trace = Trace::capture(&p, sim.config().trace_budget(0, 100_000));
        assert_eq!(sim.run_trace(&trace, 0, 100_000), sim.run(&p, 100_000));
    }

    #[test]
    fn deadlock_report_names_the_stuck_state() {
        // Drive a machine a few cycles without letting anything commit,
        // then render the report the DEADLOCK_LIMIT panic would print.
        let p = counted_loop(100, 2);
        let cfg = CoreConfig::default();
        let mut sink = NullSink;
        let mut m = Machine::new(&cfg, vpsim_isa::Executor::new(&p), &mut sink);
        for _ in 0..300 {
            m.fetch();
            m.now += 1;
        }
        let report = m.deadlock_report();
        for needle in
            ["pipeline deadlock", "ROB head", "iq 0/128", "lq 0/48", "fetch-queue", "window slab"]
        {
            assert!(report.contains(needle), "missing {needle:?} in: {report}");
        }
        // The head µop is still traversing the front-end, and the slab
        // reports its free-list occupancy.
        assert!(report.contains("FrontEnd"), "{report}");
        assert!(report.contains("(free "), "{report}");
    }

    #[test]
    fn deadlock_panic_dumps_the_cycle_log_tail() {
        // Wedge fetch forever: the machine spins commit-idle cycles until
        // the DEADLOCK_LIMIT panic fires, and the panic message must carry
        // the attached cycle log's tail alongside the occupancy snapshot.
        let p = counted_loop(100, 2);
        let cfg = CoreConfig::default();
        let mut log = crate::tap::CycleLog::with_capacity(256);
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = Machine::new(&cfg, vpsim_isa::Executor::new(&p), &mut log);
            m.fetch_blocked_on = Some(u64::MAX);
            m.simulate(0, 100)
        }))
        .expect_err("a wedged machine must hit the deadlock panic");
        let message = panic
            .downcast_ref::<String>()
            .expect("deadlock panics with a formatted report")
            .clone();
        assert!(message.contains("pipeline deadlock"), "{message}");
        assert!(
            message.contains(&format!("last {} of", crate::tap::DEADLOCK_TAIL)),
            "missing cycle-log tail in: {message}"
        );
        assert!(message.contains("fetch-starve"), "tail must show the stall cause: {message}");
        assert!(log.total_events() >= DEADLOCK_LIMIT, "one record per wedged cycle");
    }

    #[test]
    fn run_source_marked_fires_once_at_the_boundary() {
        let p = counted_loop(2000, 2);
        let sim = base_sim();
        let mut hits = 0usize;
        let marked =
            sim.run_source_marked(vpsim_isa::Executor::new(&p), 0, 6_000, 3_000, &mut || hits += 1);
        assert_eq!(hits, 1, "mark fires exactly once");
        assert_eq!(marked, sim.run(&p, 6_000), "the hook must not change results");
    }

    #[test]
    fn deterministic_across_runs() {
        let p = counted_loop(3000, 4);
        let sim = vp_sim(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit);
        let a = sim.run(&p, 30_000);
        let b = sim.run(&p, 30_000);
        assert_eq!(a, b, "same config + program ⇒ identical results");
    }

    #[test]
    fn fpc_achieves_higher_accuracy_than_baseline() {
        // Block-constant values: constant for 64 iterations, then a random
        // jump. Block length must exceed the pipeline's fetch-ahead lag
        // (~20 occurrences here) or confidence saturates exactly when the
        // fetch-time prediction is stale. The baseline 3-bit counters then
        // saturate within a block (7 correct) and mispredict at every
        // block boundary; FPC (expected 129 correct to saturate) almost
        // never gains enough confidence to be burned — the §5 trade-off.
        let mut b = ProgramBuilder::new();
        let (i, n, t, v) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let c = Reg::int(5);
        b.load_imm(n, 8000);
        b.load_imm(c, 6364136223846793005);
        let top = b.bind_label();
        b.shri(t, i, 6); // block id
        b.mul(v, t, c); // block-constant pseudo-random value
        b.addi(Reg::int(6), v, 1); // consumer of the predicted value
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build().unwrap();
        let mk = |scheme| {
            Simulator::new(CoreConfig::default().with_vp(VpConfig {
                kind: PredictorKind::Lvp,
                scheme,
                recovery: RecoveryPolicy::SquashAtCommit,
            }))
        };
        let base = mk(vpsim_core::ConfidenceScheme::baseline()).run(&p, 50_000);
        let fpc = mk(vpsim_core::ConfidenceScheme::fpc_squash()).run(&p, 50_000);
        assert!(base.vp.mispredicted > 50, "baseline must get burned: {}", base.vp.mispredicted);
        assert!(
            fpc.vp.mispredicted * 4 < base.vp.mispredicted,
            "fpc {} vs baseline {} mispredictions",
            fpc.vp.mispredicted,
            base.vp.mispredicted
        );
        // Coverage is the price of FPC's accuracy (§5).
        assert!(fpc.vp.used < base.vp.used, "fpc {} vs base {} used", fpc.vp.used, base.vp.used);
        // The paper's core claim: under squash-at-commit, high accuracy
        // beats high coverage.
        assert!(
            fpc.metrics.ipc() >= base.metrics.ipc(),
            "fpc {} vs baseline {} IPC",
            fpc.metrics.ipc(),
            base.metrics.ipc()
        );
    }
}
