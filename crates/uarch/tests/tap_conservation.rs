//! Conservation laws of the pipeline event tap, end to end.
//!
//! The tap's value rests on one invariant: its derived statistics
//! reconcile **exactly** with the simulator's own `Counters`-backed
//! [`RunResult`] — every measured cycle is attributed to exactly one
//! cause, commit events match retired instructions, and squash/reissue
//! events match their counters. `vpsim_uarch::tap::check_conservation`
//! encodes the laws; this suite drives them across recovery policies,
//! warm-up boundaries and stall-shaped kernels, plus the stage-count
//! sanity inequalities the exact laws don't cover.

use vpsim_core::PredictorKind;
use vpsim_isa::{Executor, Program, ProgramBuilder, Reg};
use vpsim_stats::stall::{CycleCause, StallReport};
use vpsim_uarch::tap::{check_conservation, CycleLog, StallTally};
use vpsim_uarch::{CoreConfig, RecoveryPolicy, RunResult, Simulator, VpConfig};

/// A loop mixing ALU chains, loads, stores and a back-edge branch.
fn mixed_kernel(iterations: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (x, y, i, n, addr) = (Reg::int(1), Reg::int(5), Reg::int(2), Reg::int(3), Reg::int(4));
    b.data(0x1000, 1);
    b.load_imm(n, iterations);
    b.load_imm(addr, 0x1000);
    let top = b.bind_label();
    b.load(x, addr, 0);
    b.addi(y, x, 1);
    b.store(addr, y, 0);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build().unwrap()
}

fn run_tapped(
    config: CoreConfig,
    program: &Program,
    warmup: u64,
    measure: u64,
) -> (RunResult, StallReport) {
    let mut tally = StallTally::default();
    let result = Simulator::new(config).run_source_with_sink(
        Executor::new(program),
        warmup,
        measure,
        &mut tally,
    );
    (result, tally.measured())
}

#[test]
fn attribution_sums_to_measured_cycles_without_warmup() {
    let (result, report) = run_tapped(CoreConfig::default(), &mixed_kernel(1_000_000), 0, 20_000);
    assert_eq!(report.total_cycles(), result.metrics.cycles);
    assert_eq!(report.committed, result.metrics.instructions);
    check_conservation(&result, &report).unwrap();
}

#[test]
fn attribution_sums_to_measured_cycles_across_the_warmup_boundary() {
    // The MeasureStart snapshot must land at the exact program point where
    // the pipeline snapshots its own counters, or the measured-region
    // report would be off by the boundary cycle.
    let (result, report) =
        run_tapped(CoreConfig::default(), &mixed_kernel(1_000_000), 7_500, 20_000);
    assert_eq!(report.total_cycles(), result.metrics.cycles);
    check_conservation(&result, &report).unwrap();
}

#[test]
fn conservation_holds_under_both_recovery_policies() {
    for policy in [RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue] {
        let config =
            CoreConfig::default().with_vp(VpConfig::enabled(PredictorKind::TwoDeltaStride, policy));
        let (result, report) = run_tapped(config, &mixed_kernel(1_000_000), 2_000, 20_000);
        check_conservation(&result, &report)
            .unwrap_or_else(|violation| panic!("{policy:?}: {violation}"));
        // The squash/reissue laws are only interesting if mispredictions
        // actually occurred under this kernel.
        match policy {
            RecoveryPolicy::SquashAtCommit => {
                assert_eq!(report.vp_squashes, result.vp_squashes)
            }
            RecoveryPolicy::SelectiveReissue => {
                assert_eq!(report.reissued, result.reissued_uops)
            }
        }
    }
}

#[test]
fn stage_counts_obey_pipeline_order() {
    // Informational counts aren't boundary-exact (a µop can be fetched
    // before the warm-up boundary and commit after it), but over a full
    // unwindowed run the pipeline's funnel shape must hold.
    let (result, report) = run_tapped(
        CoreConfig::default()
            .with_vp(VpConfig::enabled(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit)),
        &mixed_kernel(1_000_000),
        0,
        20_000,
    );
    assert!(report.fetched >= report.dispatched, "{report:?}");
    assert!(report.dispatched >= report.committed, "{report:?}");
    assert!(report.issued >= report.committed, "{report:?}");
    assert!(report.writebacks >= report.committed, "{report:?}");
    assert!(report.vp_validations >= report.vp_mispredictions, "{report:?}");
    assert_eq!(report.committed, result.metrics.instructions);
}

#[test]
fn every_measured_cycle_has_exactly_one_cause() {
    let (result, report) = run_tapped(CoreConfig::default(), &mixed_kernel(1_000_000), 0, 20_000);
    let by_cause: u64 = CycleCause::ALL.iter().map(|&c| report.cause_cycles(c)).sum();
    assert_eq!(by_cause, result.metrics.cycles, "attribution must be exclusive and exhaustive");
    assert_eq!(report.stall_cycles(), result.stalls.commit_idle_cycles);
}

#[test]
fn short_programs_conserve_when_the_source_runs_dry() {
    // A program far shorter than the measurement budget drains the window
    // and exits early; the partial run must still attribute every cycle.
    let program = mixed_kernel(50);
    let mut sink = (StallTally::default(), CycleLog::with_capacity(64));
    let result = Simulator::new(CoreConfig::default()).run_source_with_sink(
        Executor::new(&program),
        0,
        100_000,
        &mut sink,
    );
    let report = sink.0.measured();
    check_conservation(&result, &report).unwrap();
    assert!(result.metrics.instructions < 100_000, "the kernel halts early by construction");
    assert_eq!(report.total_cycles(), result.metrics.cycles);
}
