//! Checkpoint serialization property: replaying a detailed interval from
//! a checkpoint that went through `to_bytes` → `from_bytes` is
//! byte-identical to replaying from the original in-memory checkpoint —
//! for every predictor kind and recovery policy the simulator supports.
//!
//! This is the guarantee the sweep-as-a-service layer leans on when it
//! persists `vpstate1` checkpoints and replays intervals in a different
//! process: serialization must never perturb a result.

use proptest::prelude::*;
use vpsim_core::PredictorKind;
use vpsim_isa::{ProgramBuilder, Reg, Trace};
use vpsim_uarch::{Checkpoint, CoreConfig, RecoveryPolicy, SampleConfig, Simulator, VpConfig};

/// An endless loop exercising every structure the warmer checkpoints:
/// strided loads and stores (caches), a data-dependent conditional branch
/// (TAGE + history), and a call/return pair every `modulus` iterations
/// (RAS, BTB-adjacent control flow).
fn program(modulus: i64, stride: i64) -> vpsim_isa::Program {
    let mut b = ProgramBuilder::new();
    let (i, n, addr, x, t, link, acc, zero) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
    );
    b.load_imm(n, i64::MAX / 2);
    let top = b.bind_label();
    b.addi(i, i, 1);
    b.andi(t, i, modulus);
    b.shli(addr, t, 3);
    b.load(x, addr, 64);
    b.add(acc, acc, x);
    b.store(addr, acc, 64 + stride);
    let skip = b.label();
    let func = b.label();
    b.bne(t, zero, skip);
    b.call(link, func);
    b.bind(skip);
    b.blt(i, n, top);
    b.halt();
    b.bind(func);
    b.addi(acc, acc, 3);
    b.ret(link);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn serialized_checkpoints_replay_byte_identically_for_every_predictor(
        modulus_bits in 1u32..4,
        stride in prop::sample::select(vec![0i64, 8, 24]),
        warmup in 0u64..2_000,
        measure in 5_000u64..9_000,
        intervals in 2u64..4,
        period in 600u64..1_500,
        sample_warmup in 0u64..500,
        seed in 0u64..1u64 << 48,
    ) {
        let program = program((1 << modulus_bits) - 1, stride);
        let sample = SampleConfig { intervals, period, warmup: sample_warmup };
        // One trace serves every configuration: capture with the default
        // core's budget (trace_budget depends only on warmup/measure and
        // the fetch-ahead bound, identical across VP configurations).
        let trace = Trace::capture(
            &program,
            CoreConfig::default().with_seed(seed).trace_budget(warmup, measure),
        );
        let mut configs = vec![CoreConfig::default().with_seed(seed)];
        for kind in PredictorKind::ALL {
            for recovery in [RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue] {
                configs.push(
                    CoreConfig::default()
                        .with_seed(seed)
                        .with_vp(VpConfig::enabled(kind, recovery)),
                );
            }
        }
        for config in configs {
            let sim = Simulator::new(config);
            let checkpoints = sim.sample_checkpoints(&trace, warmup, measure, sample);
            prop_assert!(!checkpoints.is_empty(), "region admits at least one interval");
            // `measure >> period` here, so each interval replays exactly
            // `period` µops (the plan's per-interval measurement window).
            let mut direct = Vec::new();
            for cp in &checkpoints {
                let bytes = cp.to_bytes();
                let revived = Checkpoint::from_bytes(&bytes)
                    .expect("a freshly serialized checkpoint deserializes");
                prop_assert_eq!(
                    revived.to_bytes(),
                    bytes,
                    "serialization is a fixed point"
                );
                let from_memory = sim.run_interval_from(&trace, cp, period).unwrap();
                let from_bytes = sim.run_interval_from(&trace, &revived, period).unwrap();
                prop_assert_eq!(from_memory, from_bytes, "serialization perturbed a replay");
                direct.push(from_memory);
            }
            // The one-shot sampled run takes the identical path: same
            // checkpoints, same per-interval results.
            let sampled = sim.run_sampled(&trace, warmup, measure, sample);
            prop_assert_eq!(sampled.per_interval, direct);
        }
    }
}
