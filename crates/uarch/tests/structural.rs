//! Structural-resource tests: each Table 2 resource, when artificially
//! shrunk, must actually bite. These pin down that the simulator models
//! real constraints rather than idealized dataflow.

use vpsim_core::PredictorKind;
use vpsim_isa::{Program, ProgramBuilder, Reg};
use vpsim_uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};

/// A loop of `width` independent operation chains, `make_op` emitting each.
fn parallel_loop(width: u8, mut make_op: impl FnMut(&mut ProgramBuilder, Reg)) -> Program {
    let mut b = ProgramBuilder::new();
    let limit = Reg::int(31);
    b.load_imm(limit, i64::MAX);
    let counter = Reg::int(30);
    let top = b.bind_label();
    for k in 1..=width {
        make_op(&mut b, Reg::int(k));
    }
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
    b.build().unwrap()
}

fn ipc(config: CoreConfig, program: &Program) -> f64 {
    Simulator::new(config).run(program, 30_000).metrics.ipc()
}

#[test]
fn non_pipelined_divider_throttles_throughput() {
    // 4 independent divide chains vs 4 independent multiply chains: muls
    // are pipelined (3c), divides occupy a unit for 25 cycles.
    let divs = parallel_loop(4, |b, r| {
        b.div(r, r, r);
    });
    let muls = parallel_loop(4, |b, r| {
        b.mul(r, r, r);
    });
    let div_ipc = ipc(CoreConfig::default(), &divs);
    let mul_ipc = ipc(CoreConfig::default(), &muls);
    assert!(
        mul_ipc > div_ipc * 2.0,
        "pipelined muls ({mul_ipc:.2}) must far outrun non-pipelined divides ({div_ipc:.2})"
    );
}

#[test]
fn alu_pool_width_binds_independent_work() {
    let adds = parallel_loop(8, |b, r| {
        b.addi(r, r, 1);
    });
    let wide = ipc(CoreConfig::default(), &adds);
    let narrow = ipc(
        CoreConfig {
            fu: vpsim_uarch::FuConfig { alu_units: 2, ..Default::default() },
            ..CoreConfig::default()
        },
        &adds,
    );
    assert!(
        wide > narrow * 1.5,
        "8 ALUs ({wide:.2}) must beat 2 ALUs ({narrow:.2}) on independent adds"
    );
}

#[test]
fn load_ports_bind_parallel_loads() {
    let mut b = ProgramBuilder::new();
    b.data_block(0x10000, &[1, 2, 3, 4, 5, 6, 7, 8]);
    let limit = Reg::int(31);
    let base = Reg::int(29);
    b.load_imm(limit, i64::MAX);
    b.load_imm(base, 0x10000);
    let counter = Reg::int(30);
    let top = b.bind_label();
    for k in 1..=6u8 {
        b.load(Reg::int(k), base, (k as i64) * 8);
    }
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
    let p = b.build().unwrap();
    let four_ports = ipc(CoreConfig::default(), &p);
    let one_port = ipc(
        CoreConfig {
            fu: vpsim_uarch::FuConfig { load_ports: 1, ..Default::default() },
            ..CoreConfig::default()
        },
        &p,
    );
    assert!(
        four_ports > one_port * 1.5,
        "4 load ports ({four_ports:.2}) must beat 1 ({one_port:.2})"
    );
}

/// One DRAM-missing load plus filler per iteration: latency-bound, far
/// below DRAM bandwidth, so the in-flight window determines how many
/// misses overlap.
fn latency_bound_stream() -> Program {
    let mut b = ProgramBuilder::new();
    let limit = Reg::int(31);
    let ptr = Reg::int(1);
    b.load_imm(limit, i64::MAX);
    b.load_imm(ptr, 0x10_0000);
    let counter = Reg::int(30);
    let top = b.bind_label();
    b.load(Reg::int(2), ptr, 0);
    b.addi(ptr, ptr, 4096); // a fresh line (and usually row) every time
    for k in 3..=8u8 {
        b.addi(Reg::int(k), Reg::int(k), 1);
    }
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
    b.build().unwrap()
}

#[test]
fn rob_size_limits_memory_level_parallelism() {
    let p = latency_bound_stream();
    let big = ipc(CoreConfig::default(), &p);
    let small = ipc(CoreConfig { rob_entries: 16, iq_entries: 8, ..CoreConfig::default() }, &p);
    assert!(big > small * 1.5, "ROB 256 ({big:.2}) must beat ROB 16 ({small:.2}) on MLP");
}

#[test]
fn store_queue_pressure_stalls_store_heavy_code() {
    let mut b = ProgramBuilder::new();
    let limit = Reg::int(31);
    let base = Reg::int(29);
    b.load_imm(limit, i64::MAX);
    b.load_imm(base, 0x200000);
    let counter = Reg::int(30);
    let v = Reg::int(1);
    let top = b.bind_label();
    for k in 0..6 {
        b.store(base, v, k * 8);
    }
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
    let p = b.build().unwrap();
    let normal = ipc(CoreConfig::default(), &p);
    let tiny_sq = ipc(CoreConfig { sq_entries: 4, ..CoreConfig::default() }, &p);
    assert!(normal > tiny_sq, "SQ 48 ({normal:.2}) must beat SQ 4 ({tiny_sq:.2})");
}

#[test]
fn prf_pressure_limits_in_flight_writers() {
    // The latency-bound stream keeps ~200 writers in flight under the
    // default config; 64 INT registers allow only 32, strangling MLP the
    // same way a tiny ROB does.
    let p = latency_bound_stream();
    let normal = ipc(CoreConfig::default(), &p);
    let tight = ipc(CoreConfig { int_prf: 64, ..CoreConfig::default() }, &p);
    assert!(normal > tight * 1.5, "PRF 256 ({normal:.2}) must beat PRF 64 ({tight:.2})");
}

#[test]
fn taken_branch_fetch_limit_binds_branchy_code() {
    // Three taken jumps per 12 µops vs straight-line equivalents.
    let mut b = ProgramBuilder::new();
    let limit = Reg::int(31);
    b.load_imm(limit, i64::MAX);
    let counter = Reg::int(30);
    let top = b.bind_label();
    for _ in 0..3 {
        let next = b.label();
        b.addi(Reg::int(1), Reg::int(1), 1);
        b.jump(next); // unconditional taken
        b.bind(next);
        b.addi(Reg::int(2), Reg::int(2), 1);
    }
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
    let branchy = b.build().unwrap();

    let straight = parallel_loop(8, |b, r| {
        b.addi(r, r, 1);
    });
    let branchy_ipc = ipc(CoreConfig::default(), &branchy);
    let straight_ipc = ipc(CoreConfig::default(), &straight);
    assert!(
        straight_ipc > branchy_ipc * 1.5,
        "straight-line ({straight_ipc:.2}) must beat taken-branch-dense ({branchy_ipc:.2})"
    );
}

#[test]
fn frontend_depth_sets_misprediction_cost() {
    // An unpredictable branch with a short vs long front-end: the longer
    // pipeline pays more per misprediction.
    let mut b = ProgramBuilder::new();
    let (x, limit) = (Reg::int(1), Reg::int(31));
    b.load_imm(x, 0x1234_5678);
    b.load_imm(limit, i64::MAX);
    let counter = Reg::int(30);
    let top = b.bind_label();
    // LCG + branch on a high bit.
    b.load_imm(Reg::int(2), 6364136223846793005);
    b.mul(x, x, Reg::int(2));
    b.load_imm(Reg::int(2), 1442695040888963407);
    b.add(x, x, Reg::int(2));
    b.shri(Reg::int(3), x, 62);
    let skip = b.label();
    b.beq(Reg::int(3), Reg::int(0), skip);
    b.addi(Reg::int(4), Reg::int(4), 1);
    b.bind(skip);
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
    let p = b.build().unwrap();
    let shallow = ipc(CoreConfig { frontend_depth: 5, ..CoreConfig::default() }, &p);
    let deep = ipc(CoreConfig { frontend_depth: 15, ..CoreConfig::default() }, &p);
    assert!(
        shallow > deep * 1.05,
        "5-deep front-end ({shallow:.2}) must beat 15-deep ({deep:.2}) under mispredicts"
    );
}

#[test]
fn selective_reissue_survives_tiny_iq() {
    // Reissue mode holds IQ entries for speculative µops; with a tiny IQ
    // and an always-confident predictor this must throttle, not deadlock.
    let mut b = ProgramBuilder::new();
    let limit = Reg::int(31);
    b.load_imm(limit, i64::MAX);
    let counter = Reg::int(30);
    let x = Reg::int(1);
    let top = b.bind_label();
    // Blocks of 64 (> fetch-ahead lag) so the hair-trigger counter does
    // reach confidence and the reissue machinery actually fires.
    b.shri(Reg::int(2), counter, 6);
    b.mul(x, Reg::int(2), Reg::int(2)); // bursty values
    b.add(Reg::int(3), Reg::int(3), x);
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
    let p = b.build().unwrap();
    let cfg = CoreConfig { iq_entries: 8, ..CoreConfig::default() }.with_vp(VpConfig {
        kind: PredictorKind::Lvp,
        scheme: vpsim_core::ConfidenceScheme::full(1),
        recovery: RecoveryPolicy::SelectiveReissue,
    });
    let r = Simulator::new(cfg).run(&p, 40_000);
    assert_eq!(r.metrics.instructions, 40_000);
    assert!(r.reissued_uops > 0);
}

#[test]
fn icache_miss_stalls_cold_fetch() {
    // A program larger than one I-line executed once: cold fetch pays
    // instruction-cache fills (visible as L1I misses).
    let mut b = ProgramBuilder::new();
    for _ in 0..4096 {
        b.addi(Reg::int(1), Reg::int(1), 1);
    }
    b.halt();
    let p = b.build().unwrap();
    let r = Simulator::new(CoreConfig::default()).run(&p, 5_000);
    assert!(r.l1i.misses > 30, "cold straight-line code must miss L1I: {}", r.l1i.misses);
}

#[test]
fn stall_attribution_identifies_the_bottleneck() {
    // Branch-misprediction-bound code: fetch-branch stalls dominate.
    let mut b = ProgramBuilder::new();
    let (x, limit) = (Reg::int(1), Reg::int(31));
    b.load_imm(x, 0xDEAD);
    b.load_imm(limit, i64::MAX);
    let counter = Reg::int(30);
    let top = b.bind_label();
    b.load_imm(Reg::int(2), 6364136223846793005);
    b.mul(x, x, Reg::int(2));
    b.shri(Reg::int(3), x, 62);
    let skip = b.label();
    b.beq(Reg::int(3), Reg::int(0), skip);
    b.addi(Reg::int(4), Reg::int(4), 1);
    b.bind(skip);
    b.addi(counter, counter, 1);
    b.blt(counter, limit, top);
    b.halt();
    let branchy = Simulator::new(CoreConfig::default()).run(&b.build().unwrap(), 30_000);
    assert!(
        branchy.stalls.fetch_branch_cycles > branchy.stalls.dispatch_total(),
        "branchy code must be fetch-branch bound: {:?}",
        branchy.stalls
    );

    // Window-bound code (serial DRAM chase): ROB-dispatch stalls dominate.
    let chase = Simulator::new(CoreConfig::default())
        .run(&vpsim_workloads::microkernels::pointer_chase(1 << 16), 30_000);
    // The serial chase fills the 48-entry LQ long before the 256-entry
    // ROB: the dominant dispatch stall is the load queue.
    assert!(
        chase.stalls.dispatch_lq_cycles > chase.stalls.fetch_branch_cycles,
        "pointer chase must be window bound: {:?}",
        chase.stalls
    );
    assert!(chase.stalls.commit_idle_cycles > chase.metrics.cycles / 2);
}

#[test]
fn unconsumed_mispredictions_are_harmless() {
    // The predicted µop's value is never read by any other µop: wrong
    // predictions must be recorded as harmless and cause no squashes
    // (paper §7.2.1: recovery is unnecessary if no dependent issued).
    let mut b = ProgramBuilder::new();
    let (i, dead) = (Reg::int(1), Reg::int(3));
    let limit = Reg::int(31);
    b.load_imm(limit, i64::MAX);
    let top = b.bind_label();
    b.addi(i, i, 1);
    // `dead` is bursty (changes every 256 iterations — well beyond the
    // ~64-iteration fetch-ahead of this tight loop) and never read; `i`
    // itself is strided, so LVP never becomes confident about it.
    b.shri(dead, i, 8);
    b.blt(i, limit, top);
    b.halt();
    let p = b.build().unwrap();
    let r = Simulator::new(CoreConfig::default().with_vp(VpConfig {
        kind: PredictorKind::Lvp,
        scheme: vpsim_core::ConfidenceScheme::full(1),
        recovery: RecoveryPolicy::SquashAtCommit,
    }))
    .run(&p, 60_000);
    assert!(r.vp.mispredicted > 50, "bursty values must mispredict: {}", r.vp.mispredicted);
    assert_eq!(
        r.vp.harmless_mispredictions, r.vp.mispredicted,
        "every misprediction is unconsumed, hence harmless"
    );
    assert_eq!(r.vp_squashes, 0, "harmless mispredictions must not squash");
}

#[test]
fn selective_reissue_is_transitive() {
    // A three-deep dependent chain off a predicted, glitching producer:
    // when the producer mispredicts, the whole issued chain re-executes.
    let mut b = ProgramBuilder::new();
    let (i, t, a, c, d) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4), Reg::int(5));
    let limit = Reg::int(31);
    b.load_imm(limit, i64::MAX);
    let top = b.bind_label();
    b.addi(i, i, 1);
    b.shri(t, i, 6); // glitches every 64 iterations
    b.mul(a, t, t); // predicted producer
    b.addi(c, a, 1); // direct consumer
    b.addi(d, c, 1); // transitive consumer
    b.blt(i, limit, top);
    b.halt();
    let p = b.build().unwrap();
    let r = Simulator::new(CoreConfig::default().with_vp(VpConfig {
        kind: PredictorKind::Lvp,
        scheme: vpsim_core::ConfidenceScheme::full(1),
        recovery: RecoveryPolicy::SelectiveReissue,
    }))
    .run(&p, 60_000);
    let consumed_wrong = r.vp.mispredicted - r.vp.harmless_mispredictions;
    assert!(consumed_wrong > 20, "consumed mispredictions expected: {consumed_wrong}");
    assert!(
        r.reissued_uops >= consumed_wrong,
        "each consumed misprediction reissues at least its direct consumer: {} < {}",
        r.reissued_uops,
        consumed_wrong
    );
    assert_eq!(r.vp_squashes, 0);
}
