//! The zero-allocation invariant of the timing-model hot loop.
//!
//! After the slab-window refactor, every per-cycle structure the `Machine`
//! touches — window slab, ready bitset, poison masks, completion wheel,
//! wakeup/waiter lists, issue scratch, fetch ring — is allocated once and
//! reused, so steady-state simulation performs **zero heap allocations per
//! cycle**. This test enforces it with a counting global allocator and the
//! `Simulator::run_source_marked` hook: allocations are counted only after
//! the machine has committed a warm-up prefix (so one-time growth —
//! wheel horizon, buffer capacities, predictor in-flight queues reaching
//! their high-water mark — is excluded), exactly the "debug-assert
//! allocation counter behind a test hook" the refactor promises.
//!
//! Scope: the no-VP core is strictly zero-alloc. With a value predictor
//! attached, predictor-internal tables may still rehash, so the VP case
//! asserts a near-zero bound per committed instruction rather than zero.
//!
//! The pipeline event tap is held to the same standard: with the default
//! `NullSink` the instrumented entry points must stay strictly zero-alloc
//! (the tap compiles out), and with a live `(StallTally, CycleLog)` sink
//! the steady state must *still* be zero-alloc — the tally is a flat
//! struct and the cycle log a preallocated ring, so no event ever touches
//! the heap.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use vpsim_core::PredictorKind;
use vpsim_isa::{Executor, ProgramBuilder, Reg, Trace};
use vpsim_uarch::tap::{CycleLog, NullSink, StallTally};
use vpsim_uarch::{CoreConfig, RecoveryPolicy, Simulator, VpConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);
/// The counting allocator and `COUNTING` flag are process-global, so the
/// tests in this binary must not overlap — a concurrent test's heap
/// traffic would be charged to whichever window is armed. Every test
/// takes this lock first (and survives a poisoned lock so one failure
/// doesn't cascade).
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize_test() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A loop with ALU chains, loads, stores and branches — every stage of the
/// pipeline is exercised, with a memory footprint that is fully touched
/// during the warm-up prefix.
fn mixed_kernel() -> vpsim_isa::Program {
    let mut b = ProgramBuilder::new();
    let (x, y, i, n, addr) = (Reg::int(1), Reg::int(5), Reg::int(2), Reg::int(3), Reg::int(4));
    b.data(0x1000, 1);
    b.load_imm(n, 1_000_000);
    b.load_imm(addr, 0x1000);
    let top = b.bind_label();
    b.load(x, addr, 0);
    b.addi(y, x, 1);
    b.store(addr, y, 0);
    b.addi(Reg::int(6), Reg::int(6), 3);
    b.addi(Reg::int(7), Reg::int(6), 1);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build().unwrap()
}

/// Run `config` on the mixed kernel, counting allocations only after
/// `warm` committed instructions; returns allocations during the last
/// `measured` committed instructions.
fn allocations_in_steady_state(config: CoreConfig, warm: u64, measured: u64) -> u64 {
    let program = mixed_kernel();
    let sim = Simulator::new(config);
    ALLOCATIONS.store(0, Ordering::SeqCst);
    let mut armed = false;
    sim.run_source_marked(Executor::new(&program), 0, warm + measured, warm, &mut || {
        COUNTING.store(true, Ordering::SeqCst);
        armed = true;
    });
    COUNTING.store(false, Ordering::SeqCst);
    assert!(armed, "mark hook must fire");
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn no_vp_steady_state_is_allocation_free() {
    let _serial = serialize_test();
    // The inline executor writes to a fixed store footprint and the
    // machine's scratch reaches its high-water mark well inside the
    // warm-up, so the measured region must allocate nothing at all.
    let allocs = allocations_in_steady_state(CoreConfig::default(), 60_000, 60_000);
    assert_eq!(allocs, 0, "no-VP steady state must not allocate ({allocs} allocations)");
}

#[test]
fn trace_replay_steady_state_is_allocation_free() {
    let _serial = serialize_test();
    // Replay is the sweep engine's hot path; it must be as clean as the
    // inline path.
    let program = mixed_kernel();
    let sim = Simulator::new(CoreConfig::default());
    let trace = Trace::capture(&program, sim.config().trace_budget(0, 120_000));
    ALLOCATIONS.store(0, Ordering::SeqCst);
    sim.run_source_marked(trace.cursor(), 0, 120_000, 60_000, &mut || {
        COUNTING.store(true, Ordering::SeqCst);
    });
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(allocs, 0, "replay steady state must not allocate ({allocs} allocations)");
}

#[test]
fn disabled_tap_steady_state_is_allocation_free() {
    let _serial = serialize_test();
    // The explicit-NullSink spelling must be exactly as clean as the
    // sink-free entry points: `T::ENABLED = false` compiles every emission
    // site out, so this is the same machine instruction-for-instruction.
    let program = mixed_kernel();
    let sim = Simulator::new(CoreConfig::default());
    ALLOCATIONS.store(0, Ordering::SeqCst);
    let mut sink = NullSink;
    sim.run_source_marked_with_sink(
        Executor::new(&program),
        0,
        120_000,
        60_000,
        &mut || {
            COUNTING.store(true, Ordering::SeqCst);
        },
        &mut sink,
    );
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(allocs, 0, "disabled tap must not allocate ({allocs} allocations)");
}

#[test]
fn enabled_tap_steady_state_is_allocation_free() {
    let _serial = serialize_test();
    // The enabled tap is also allocation-free per event: `StallTally` is a
    // flat accumulator and `CycleLog` overwrites its preallocated ring, so
    // a fully-instrumented no-VP run must stay at exactly zero steady-state
    // allocations — the tap's cost is arithmetic, never the heap.
    let program = mixed_kernel();
    let sim = Simulator::new(CoreConfig::default());
    let mut sink = (StallTally::default(), CycleLog::with_capacity(256));
    ALLOCATIONS.store(0, Ordering::SeqCst);
    sim.run_source_marked_with_sink(
        Executor::new(&program),
        0,
        120_000,
        60_000,
        &mut || {
            COUNTING.store(true, Ordering::SeqCst);
        },
        &mut sink,
    );
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(allocs, 0, "enabled tap must not allocate per event ({allocs} allocations)");
    assert!(sink.1.total_events() > 120_000, "the tap actually observed the run");
}

#[test]
fn vp_steady_state_allocations_are_bounded() {
    let _serial = serialize_test();
    // Predictor-internal structures (in-flight queues, speculative
    // windows) stabilize after warm-up; the pipeline itself contributes
    // nothing. Allow a tiny residue for predictor table management but
    // fail loudly if per-cycle allocation ever creeps back in.
    let config = CoreConfig::default()
        .with_vp(VpConfig::enabled(PredictorKind::VtageStride, RecoveryPolicy::SquashAtCommit));
    let measured = 60_000u64;
    let allocs = allocations_in_steady_state(config, 60_000, measured);
    assert!(
        allocs * 1000 < measured,
        "VP steady state allocates too much: {allocs} allocations / {measured} instructions"
    );
}

#[test]
fn selective_reissue_steady_state_allocations_are_bounded() {
    let _serial = serialize_test();
    // The reissue path exercises poison inheritance — formerly a Vec
    // clone per issued µop — which must now be allocation-free.
    let config = CoreConfig::default().with_vp(VpConfig::enabled(
        PredictorKind::TwoDeltaStride,
        RecoveryPolicy::SelectiveReissue,
    ));
    let measured = 60_000u64;
    let allocs = allocations_in_steady_state(config, 60_000, measured);
    assert!(
        allocs * 1000 < measured,
        "reissue steady state allocates too much: {allocs} allocations / {measured} instructions"
    );
}
