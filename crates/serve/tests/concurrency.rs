//! Concurrent job execution: multiple in-flight submissions interleave on
//! the shared worker pool (byte-identically), busy refusals carry a
//! RETRY-AFTER hint the client honours, and abandoned jobs have their
//! pending cells reclaimed instead of being simulated for a dead socket.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use vpsim_bench::protocol::{self, Format, View};
use vpsim_bench::remote;
use vpsim_bench::scenario::{preset, Scenario};
use vpsim_serve::{start, ServerConfig};

fn scenario_with_seed(seed: u32) -> Scenario {
    let mut scenario = preset("smoke").expect("smoke preset exists");
    scenario.set("warmup=500").unwrap();
    scenario.set("measure=2000").unwrap();
    scenario.set(&format!("seed={seed}")).unwrap();
    scenario
}

#[test]
fn concurrent_submissions_interleave_and_stay_byte_identical() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: None,
        threads: 2,
        queue_cap: 8,
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    let scenarios: Vec<Scenario> = (0..4)
        .map(|i| {
            let mut s = scenario_with_seed(0x5EED + i);
            // Slow enough (hundreds of ms) that four simultaneous clients
            // reliably overlap in the admission window.
            s.set("measure=20000").unwrap();
            s
        })
        .collect();
    let local: Vec<String> = scenarios
        .iter()
        .map(|s| protocol::render_output(&s.to_spec().run(), View::Long, Format::Csv))
        .collect();

    // All four clients submit at once; the pool interleaves their cells
    // fairly, and each response is still byte-identical to a local run.
    let tables: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = scenarios
            .iter()
            .map(|scenario| {
                let addr = addr.clone();
                scope.spawn(move || {
                    remote::submit(&addr, scenario, View::Long, Format::Csv, |_| {})
                        .expect("concurrent submission succeeds")
                        .table
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for (table, expected) in tables.iter().zip(&local) {
        assert_eq!(table, expected, "concurrent output is byte-identical to a local run");
    }

    // The completion counter ticks just after `DONE` is flushed, so a
    // client can observe its table before the server has counted it.
    let metrics = handle.metrics();
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.jobs_completed.load(Ordering::Relaxed) < 4 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(metrics.jobs_completed.load(Ordering::Relaxed), 4);
    assert!(
        metrics.peak_concurrent_jobs.load(Ordering::Relaxed) >= 2,
        "simultaneous multi-second jobs were admitted together (peak {})",
        metrics.peak_concurrent_jobs.load(Ordering::Relaxed)
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn busy_refusals_carry_retry_after_and_clients_recover() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: None,
        threads: 1,
        queue_cap: 1,
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    // Occupy the single admission slot with a submission slow enough
    // (hundreds of ms of simulation) that the probe below lands while it
    // is still in flight.
    let mut slow = scenario_with_seed(0xA11CE);
    slow.set("measure=50000").unwrap();
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let request =
        format!("{}\n{slow}{}\n", protocol::submit_line(View::Long, Format::Ascii), "END");
    stream.write_all(request.as_bytes()).unwrap();
    let mut ok = String::new();
    reader.read_line(&mut ok).unwrap();
    assert!(ok.starts_with("OK "), "occupying job is admitted: {ok}");

    // A second raw submission is refused with a parseable RETRY-AFTER.
    let probe = TcpStream::connect(&addr).expect("connect");
    let mut probe_reader = BufReader::new(probe.try_clone().expect("clone"));
    let mut probe = probe;
    probe.write_all(request.as_bytes()).unwrap();
    let mut refusal = String::new();
    probe_reader.read_line(&mut refusal).unwrap();
    let msg = refusal.trim_end().strip_prefix("ERR ").expect("busy refusal is an ERR").to_string();
    assert!(msg.contains("server busy"), "refusal names the condition: {msg}");
    assert!(
        protocol::parse_retry_after(&msg).is_some(),
        "refusal carries a RETRY-AFTER hint: {msg}"
    );
    drop(probe);
    drop(probe_reader);

    // The retrying client keeps backing off until the slot frees up. Drain
    // the occupying job concurrently so it does.
    let local = protocol::render_output(&slow.to_spec().run(), View::Long, Format::Ascii);
    let outcome = std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            remote::submit(&addr, &slow, View::Long, Format::Ascii, |_| {})
                .expect("retrying client eventually succeeds")
        });
        for line in (&mut reader).lines() {
            if line.map_or(true, |l| l == protocol::DONE) {
                break;
            }
        }
        drop(stream);
        submitter.join().expect("submitter thread")
    });
    assert_eq!(outcome.table, local, "post-retry output is byte-identical");

    handle.shutdown();
    handle.join();
}

#[test]
fn abandoned_jobs_reclaim_their_pending_cells() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: None,
        threads: 1,
        queue_cap: 2,
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    // A wide, slow grid: 4 predictors over 2 benchmarks (plus baselines)
    // is 10 cells, so plenty remain pending when the client vanishes.
    let mut scenario = scenario_with_seed(0xDEAD);
    scenario.set("predictors=lvp,2d-str,fcm,vtage").unwrap();
    scenario.set("measure=20000").unwrap();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let line = protocol::submit_line(View::Long, Format::Ascii);
    let request = format!("{line}\n{scenario}{}\n", "END");
    stream.write_all(request.as_bytes()).unwrap();
    let mut ok = String::new();
    reader.read_line(&mut ok).unwrap();
    assert!(ok.starts_with("OK "), "job is admitted: {ok}");

    // Vanish mid-stream: the handler notices on its next cell write and
    // the scheduler reclaims everything still pending.
    drop(reader);
    drop(stream);

    let metrics = handle.metrics();
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if metrics.jobs_abandoned.load(Ordering::Relaxed) >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(metrics.jobs_abandoned.load(Ordering::Relaxed), 1, "the disconnect was noticed");
    assert!(
        metrics.cells_reclaimed.load(Ordering::Relaxed) > 0,
        "pending cells were reclaimed instead of simulated for a dead socket"
    );
    assert_eq!(metrics.jobs_completed.load(Ordering::Relaxed), 0);

    handle.shutdown();
    handle.join();
}
