//! End-to-end service tests: a real server on an ephemeral port, real TCP
//! clients, and byte-identical comparison against local execution.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use vpsim_bench::protocol::{self, Format, View};
use vpsim_bench::remote;
use vpsim_bench::scenario::preset;
use vpsim_serve::{start, ServerConfig};

/// Fresh scratch directory per call (temp dir + pid + counter), so
/// parallel tests never share a store.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vpsim-serve-{tag}-{}-{n}", std::process::id()))
}

fn small_scenario() -> vpsim_bench::scenario::Scenario {
    let mut scenario = preset("smoke").expect("smoke preset exists");
    scenario.set("warmup=500").unwrap();
    scenario.set("measure=2000").unwrap();
    scenario.set("seed=0xBEEF").unwrap();
    scenario
}

#[test]
fn remote_submissions_match_local_and_repeat_from_cache() {
    let dir = scratch_dir("service");
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(dir.clone()),
        threads: 2,
        queue_cap: 4,
    })
    .expect("server starts");
    let addr = handle.addr().to_string();
    remote::ping(&addr).expect("server answers PING");

    let scenario = small_scenario();
    let spec = scenario.to_spec();
    let job_count = spec.job_count();
    let local_long = protocol::render_output(&spec.run(), View::Long, Format::Csv);
    let local_matrix = protocol::render_output(&spec.run(), View::Matrix, Format::Ascii);

    // First submission simulates every cell and fills the stores.
    let mut cells_first = Vec::new();
    let first = remote::submit(&addr, &scenario, View::Long, Format::Csv, |cell| {
        cells_first.push(cell.to_string())
    })
    .expect("first submission succeeds");
    assert_eq!(first.cells, job_count);
    assert_eq!(cells_first.len(), job_count);
    assert_eq!(first.table, local_long, "remote table is byte-identical to a local run");
    assert!(first.stats.contains("result_cache_hits=0"), "first run: {}", first.stats);

    // Second submission is served entirely from the result cache:
    // byte-identical output, zero cells simulated.
    let mut cells_second = Vec::new();
    let second = remote::submit(&addr, &scenario, View::Long, Format::Csv, |cell| {
        cells_second.push(cell.to_string())
    })
    .expect("second submission succeeds");
    assert_eq!(second.table, first.table, "resubmission is byte-identical");
    assert_eq!(cells_second, cells_first, "streamed cells are byte-identical");
    assert!(
        second.stats.contains(&format!("result_cache_hits={job_count}")),
        "second run served from cache: {}",
        second.stats
    );
    assert!(second.stats.contains("cells_simulated=0"), "second run: {}", second.stats);

    // A different view/format over the same cached cells still matches
    // local rendering exactly.
    let matrix = remote::submit(&addr, &scenario, View::Matrix, Format::Ascii, |_| {})
        .expect("matrix submission succeeds");
    assert_eq!(matrix.table, local_matrix);
    assert!(matrix.stats.contains("cells_simulated=0"), "cells stay cached: {}", matrix.stats);

    // Graceful shutdown over the wire; afterwards the port is closed.
    remote::shutdown(&addr).expect("server acknowledges SHUTDOWN");
    handle.join();
    assert!(remote::ping(&addr).is_err(), "server is gone after shutdown");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_input_gets_err_replies_without_losing_the_connection() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: None,
        threads: 1,
        queue_cap: 1,
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let mut line = String::new();

    // A scenario that does not parse: ERR, connection survives.
    stream.write_all(b"SUBMIT long csv\nnot a scenario\nEND\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR "), "bad scenario is rejected gracefully: {line}");

    // Bad SUBMIT arguments: ERR, connection survives.
    line.clear();
    stream.write_all(b"SUBMIT sideways yaml\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR "), "bad arguments are rejected gracefully: {line}");

    // Unknown commands: ERR, connection survives.
    line.clear();
    stream.write_all(b"FROBNICATE\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR "), "unknown command is rejected gracefully: {line}");

    // The same connection still answers a well-formed request.
    line.clear();
    stream.write_all(b"PING\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), protocol::PONG, "connection survived three errors");

    handle.shutdown();
    drop(stream);
    handle.join();
}

#[test]
fn in_memory_server_still_answers_and_stops_via_handle() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: None,
        threads: 1,
        queue_cap: 2,
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    let scenario = small_scenario();
    let spec = scenario.to_spec();
    let local = protocol::render_output(&spec.run(), View::Long, Format::Json);
    let outcome = remote::submit(&addr, &scenario, View::Long, Format::Json, |_| {})
        .expect("submission succeeds without stores");
    assert_eq!(outcome.table, local);
    assert!(
        outcome.stats.contains("trace_store_hits=0 trace_store_misses=0"),
        "no stores configured: {}",
        outcome.stats
    );

    handle.shutdown();
    handle.join();
}
