//! Cell sharding across server processes: two servers sharing one store
//! directory each simulate a disjoint subset of the grid, and the
//! shard-merging client reassembles a table byte-identical to a local run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use vpsim_bench::protocol::{self, Format, View};
use vpsim_bench::remote;
use vpsim_bench::scenario::preset;
use vpsim_serve::{start, ServerConfig, ServerHandle};

/// Fresh scratch directory per call (temp dir + pid + counter), so
/// parallel tests never share a store.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vpsim-serve-{tag}-{}-{n}", std::process::id()))
}

fn small_scenario() -> vpsim_bench::scenario::Scenario {
    let mut scenario = preset("smoke").expect("smoke preset exists");
    scenario.set("warmup=500").unwrap();
    scenario.set("measure=2000").unwrap();
    scenario.set("seed=0xBEEF").unwrap();
    scenario
}

fn worker(store: &Path) -> ServerHandle {
    start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir: Some(store.to_path_buf()),
        threads: 1,
        queue_cap: 4,
    })
    .expect("server starts")
}

#[test]
fn two_workers_sharing_a_store_merge_byte_identically() {
    let dir = scratch_dir("shard");
    let a = worker(&dir);
    let b = worker(&dir);
    let addrs = vec![a.addr().to_string(), b.addr().to_string()];

    let scenario = small_scenario();
    let spec = scenario.to_spec();
    let job_count = spec.job_count();
    let local = protocol::render_output(&spec.run(), View::Long, Format::Csv);

    // First pass: each worker simulates only its shard, and the merged
    // table is byte-identical to a local run.
    let mut cells = Vec::new();
    let first = remote::submit_workers(&addrs, &scenario, View::Long, Format::Csv, |cell| {
        cells.push(cell.to_string())
    })
    .expect("sharded submission succeeds");
    assert_eq!(first.cells, job_count);
    assert_eq!(cells.len(), job_count, "every cell streams exactly once across shards");
    assert_eq!(first.table, local, "shard-merged table is byte-identical to a local run");
    for line in first.stats.lines() {
        assert!(line.contains("result_cache_hits=0"), "first pass simulates: {line}");
        assert!(!line.contains("cells_simulated=0"), "each shard simulates cells: {line}");
    }
    // The shards partition the grid: per-worker emitted-cell counts sum
    // to the whole job count without overlap.
    let shard_cells: Vec<usize> =
        cells.iter().map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap()).collect();
    assert_eq!(shard_cells, (0..job_count).collect::<Vec<_>>(), "merged stream is index-ordered");

    // Second pass with the shard assignment swapped: every cell was
    // simulated by the *other* worker, so both serve entirely from the
    // shared result cache — byte-identical, zero simulations.
    let swapped = vec![addrs[1].clone(), addrs[0].clone()];
    let second = remote::submit_workers(&swapped, &scenario, View::Long, Format::Csv, |_| {})
        .expect("swapped resubmission succeeds");
    assert_eq!(second.table, local, "resubmission is byte-identical");
    for line in second.stats.lines() {
        assert!(
            line.contains("cells_simulated=0"),
            "swapped shards hit the shared result cache: {line}"
        );
    }

    // The merged client path also reports the served-timing fields.
    assert!(first.stats.contains("queue_wait_ms="), "stats carry queue wait: {}", first.stats);

    a.shutdown();
    b.shutdown();
    a.join();
    b.join();
    let _ = std::fs::remove_dir_all(&dir);
}
