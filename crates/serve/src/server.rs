//! The TCP job server: accept loop, per-connection handlers, and the
//! fair-scheduled worker pool shared by every in-flight job. See the
//! [crate docs](crate) for the shape and [`vpsim_bench::protocol`] for
//! the wire format.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use vpsim_bench::protocol::{self, Submit};
use vpsim_bench::scenario::Scenario;
use vpsim_bench::store::Stores;

use crate::scheduler::{JobEntry, Scheduler, ServeMetrics};

/// Everything the `serve` binary can configure.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7014` (`:0` picks a free port;
    /// [`ServerHandle::addr`] reports the actual one).
    pub addr: String,
    /// Root of the persistent stores (traces + results). `None` runs
    /// fully in-memory: still correct, nothing survives the process.
    pub store_dir: Option<PathBuf>,
    /// Size of the shared worker pool. Workers interleave cells from
    /// every in-flight job round-robin, so one submission on an idle
    /// server still uses the whole pool. Submitted scenarios' own
    /// `threads` keys are ignored for execution — the sweep engine is
    /// byte-identical across thread counts anyway.
    pub threads: usize,
    /// Maximum concurrently admitted jobs. Submissions beyond it receive
    /// a graceful `ERR server busy … RETRY-AFTER <ms>` reply instead of
    /// queueing unboundedly; `sweep --remote` retries on that hint.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: None,
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            queue_cap: 16,
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send `SHUTDOWN` over the wire),
/// then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the shutdown flag, for signal handlers and watchers:
    /// storing `true` stops the server exactly like [`ServerHandle::shutdown`].
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Live observability counters: completed/abandoned jobs, reclaimed
    /// cells, peak concurrency.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Request a graceful stop: the accept loop closes, in-flight jobs
    /// finish, handler connections are closed.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the server has fully stopped.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Bind and start serving in background threads; returns once the socket
/// is listening. Fails on an unbindable address or an unusable store
/// directory.
pub fn start(config: ServerConfig) -> Result<ServerHandle, String> {
    let stores = match &config.store_dir {
        Some(dir) => Stores::open(dir)?,
        None => Stores::default(),
    };
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| format!("cannot resolve bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot make the listener non-blocking: {e}"))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let scheduler = Scheduler::new(config.queue_cap);
    let metrics = Arc::clone(&scheduler.metrics);
    let accept = {
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || accept_loop(listener, stores, &config, scheduler, &shutdown))
    };
    Ok(ServerHandle { addr, shutdown, metrics, accept: Some(accept) })
}

/// Everything a connection handler needs, shared across all of them.
struct Shared {
    scheduler: Arc<Scheduler>,
    stores: Stores,
    shutdown: Arc<AtomicBool>,
    /// Monotonically increasing job ids, for disconnect logs.
    next_job: AtomicU64,
}

fn accept_loop(
    listener: TcpListener,
    stores: Stores,
    config: &ServerConfig,
    scheduler: Arc<Scheduler>,
    shutdown: &Arc<AtomicBool>,
) {
    let workers: Vec<_> = (0..config.threads.max(1))
        .map(|_| {
            let scheduler = Arc::clone(&scheduler);
            thread::spawn(move || scheduler.worker_loop())
        })
        .collect();
    let shared = Arc::new(Shared {
        scheduler,
        stores,
        shutdown: Arc::clone(shutdown),
        next_job: AtomicU64::new(0),
    });
    // Live connections, so shutdown can force-close them and unblock
    // their handlers' reads; each handler deregisters itself on exit.
    let live: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::default();
    let mut handlers = Vec::new();
    let mut next_id = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    live.lock().unwrap().push((id, clone));
                }
                let shared = Arc::clone(&shared);
                let live = Arc::clone(&live);
                handlers.push(thread::spawn(move || {
                    handle_connection(stream, peer, &shared);
                    live.lock().unwrap().retain(|(i, _)| *i != id);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("warning: accept failed: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // Graceful stop: no new connections; force-close the live sockets to
    // unblock handler reads; close the scheduler — workers drain every
    // pending cell first, so a handler blocked on a result always wakes
    // (its subsequent writes fail and it bails) — then join everyone.
    for (_, stream) in live.lock().unwrap().iter() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    shared.scheduler.close();
    for worker in workers {
        let _ = worker.join();
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Releases the admission ticket on every exit path.
struct Ticket<'a>(&'a Scheduler);

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Serve one connection: commands in, replies out, until EOF or a fatal
/// I/O error. Malformed input of every kind gets an `ERR` line and the
/// loop continues — a bad scenario never costs the client its connection.
fn handle_connection(stream: TcpStream, peer: SocketAddr, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client EOF, reset, or shutdown
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let reply_err = |stream: &mut TcpStream, msg: &str| -> std::io::Result<()> {
            write_line(stream, &protocol::err_line(msg))
        };
        if line == protocol::PING {
            if write_line(&mut stream, protocol::PONG).is_err() {
                return;
            }
        } else if line == protocol::SHUTDOWN {
            let _ = write_line(&mut stream, protocol::BYE);
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        } else if let Some(parsed) = protocol::parse_submit(line) {
            let submit = match parsed {
                Ok(submit) => submit,
                Err(e) => {
                    // Malformed SUBMIT arguments: the scenario block was
                    // never announced, so there is nothing to drain.
                    if reply_err(&mut stream, &e).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let mut text = String::new();
            loop {
                let mut block_line = String::new();
                match reader.read_line(&mut block_line) {
                    Ok(0) | Err(_) => return, // EOF mid-submission
                    Ok(_) => {}
                }
                if block_line.trim_end_matches(['\r', '\n']) == protocol::END_MARKER {
                    break;
                }
                text.push_str(&block_line);
            }
            let scenario = match text.parse::<Scenario>() {
                Ok(scenario) => scenario,
                Err(e) => {
                    if reply_err(&mut stream, &format!("invalid scenario: {e}")).is_err() {
                        return;
                    }
                    continue;
                }
            };
            match serve_submission(&mut stream, peer, shared, submit, scenario) {
                Served::Next => {}
                Served::Hangup => return,
            }
        } else {
            let head: String = line.chars().take(32).collect();
            if reply_err(&mut stream, &format!("unknown command {head} (SUBMIT|PING|SHUTDOWN)"))
                .is_err()
            {
                return;
            }
        }
    }
}

enum Served {
    /// Keep reading commands on this connection.
    Next,
    /// The connection is dead (or the server is stopping): hang up.
    Hangup,
}

/// Admit, prepare, and stream one submission. The handler thread owns the
/// response wire format; the worker pool owns the simulation.
fn serve_submission(
    stream: &mut TcpStream,
    peer: SocketAddr,
    shared: &Shared,
    submit: Submit,
    scenario: Scenario,
) -> Served {
    if let Err(active) = shared.scheduler.admit() {
        // Crude load-proportional hint: the busier the pool, the longer
        // the suggested wait.
        let retry_after_ms = 100 * active.max(1) as u64;
        let busy = protocol::busy_line(active, retry_after_ms);
        return if write_line(stream, &busy).is_err() { Served::Hangup } else { Served::Next };
    }
    let ticket = Ticket(&shared.scheduler);
    let id = shared.next_job.fetch_add(1, Ordering::Relaxed);
    let mut spec = scenario.to_spec();
    spec.settings.threads = 1;
    spec.stores = shared.stores.clone();
    let prepared = Arc::new(spec.prepare_shard(submit.shard));
    let entry = JobEntry::new(id, Arc::clone(&prepared));
    if shared.scheduler.enqueue(Arc::clone(&entry)).is_err() {
        let _ = write_line(stream, &protocol::err_line("server is shutting down"));
        return Served::Hangup;
    }
    let Ok(write_half) = stream.try_clone() else {
        shared.scheduler.abandon(&entry);
        return Served::Hangup;
    };
    let mut reply = Reply { writer: BufWriter::new(write_half), broken: false };
    reply.line(&protocol::ok_line(prepared.emit_indices().len()));
    for &index in prepared.emit_indices() {
        let result = match prepared.result(index) {
            Some(result) => result,
            None => match entry.wait_cell(index) {
                Ok(result) => result,
                Err(e) => {
                    // A worker died in one of our cells: reclaim the rest
                    // and report, but keep the connection usable. This is
                    // an internal failure, not a disconnect — `fail`, not
                    // `abandon`, so the abandonment metrics stay honest.
                    shared.scheduler.fail(&entry);
                    reply.line(&protocol::err_line(&e));
                    return if reply.broken { Served::Hangup } else { Served::Next };
                }
            },
        };
        reply.line(&protocol::cell_line(&prepared.jobs()[index], &result));
        if reply.broken {
            break;
        }
    }
    if reply.broken {
        eprintln!("client {peer} disconnected mid-job {id}; reclaiming its unfinished cells");
        shared.scheduler.abandon(&entry);
        return Served::Hangup;
    }
    drop(ticket);
    match submit.shard {
        None => {
            // Full submission: every cell is present, render the table.
            let results = prepared.finish();
            let table = protocol::render_output(&results, submit.view, submit.format);
            reply.line(&protocol::table_header(table.len()));
            reply.raw(table.as_bytes());
            if !reply.broken {
                let _ = reply.writer.flush();
            }
        }
        Some(_) => {
            // Shard: the client merges raw results across workers, so
            // send full-precision counters instead of a rendered table.
            for &index in prepared.emit_indices() {
                let result = prepared.result(index).expect("emitted cell has a result");
                reply.line(&protocol::result_line(index, &result));
            }
        }
    }
    reply.line(&protocol::stats_line_served(&prepared.timing(), entry.queue_wait(), entry.wall()));
    reply.line(protocol::DONE);
    if reply.broken {
        eprintln!("client {peer} disconnected mid-job {id}");
        shared.scheduler.abandon(&entry);
        return Served::Hangup;
    }
    shared.scheduler.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
    Served::Next
}

/// Buffered response writer that turns broken-pipe errors into a sticky
/// no-op: a client that disconnects mid-stream stops receiving, and the
/// handler abandons the job so its pending cells are reclaimed.
struct Reply {
    writer: BufWriter<TcpStream>,
    broken: bool,
}

impl Reply {
    fn line(&mut self, line: &str) {
        self.raw(line.as_bytes());
        self.raw(b"\n");
        if !self.broken && self.writer.flush().is_err() {
            self.broken = true;
        }
    }

    fn raw(&mut self, bytes: &[u8]) {
        if !self.broken && self.writer.write_all(bytes).is_err() {
            self.broken = true;
        }
    }
}
