//! The TCP job server: accept loop, per-connection handlers, bounded job
//! queue, single executor. See the [crate docs](crate) for the shape and
//! [`vpsim_bench::protocol`] for the wire format.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use vpsim_bench::protocol::{self, Format, View};
use vpsim_bench::scenario::Scenario;
use vpsim_bench::store::Stores;

/// Everything the `serve` binary can configure.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7014` (`:0` picks a free port;
    /// [`ServerHandle::addr`] reports the actual one).
    pub addr: String,
    /// Root of the persistent stores (traces + results). `None` runs
    /// fully in-memory: still correct, nothing survives the process.
    pub store_dir: Option<PathBuf>,
    /// Worker threads per job. Submitted scenarios' own `threads` keys
    /// are ignored — execution cost is the server's business, and the
    /// sweep engine is byte-identical across thread counts anyway.
    pub threads: usize,
    /// Capacity of the job queue. Submissions beyond it receive a
    /// graceful `ERR server busy …` reply instead of queueing unboundedly.
    pub queue_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            store_dir: None,
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            queue_cap: 16,
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send `SHUTDOWN` over the wire),
/// then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the shutdown flag, for signal handlers and watchers:
    /// storing `true` stops the server exactly like [`ServerHandle::shutdown`].
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Request a graceful stop: the accept loop closes, in-flight jobs
    /// finish, handler connections are closed.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the server has fully stopped.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// One accepted submission, queued for the executor. The executor writes
/// the entire response (`OK` through `DONE`) to `stream`, then signals
/// `done` so the owning handler resumes reading commands.
struct Job {
    scenario: Scenario,
    view: View,
    format: Format,
    stream: TcpStream,
    done: mpsc::SyncSender<()>,
}

/// Bind and start serving in background threads; returns once the socket
/// is listening. Fails on an unbindable address or an unusable store
/// directory.
pub fn start(config: ServerConfig) -> Result<ServerHandle, String> {
    let stores = match &config.store_dir {
        Some(dir) => Stores::open(dir)?,
        None => Stores::default(),
    };
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| format!("cannot resolve bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot make the listener non-blocking: {e}"))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = {
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || accept_loop(listener, stores, &config, &shutdown))
    };
    Ok(ServerHandle { addr, shutdown, accept: Some(accept) })
}

fn accept_loop(
    listener: TcpListener,
    stores: Stores,
    config: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
) {
    let (jobs_tx, jobs_rx) = mpsc::sync_channel::<Job>(config.queue_cap.max(1));
    let executor = {
        let stores = stores.clone();
        let threads = config.threads.max(1);
        thread::spawn(move || {
            while let Ok(job) = jobs_rx.recv() {
                execute(job, &stores, threads);
            }
        })
    };
    // Live connections, so shutdown can force-close them and unblock
    // their handlers' reads; each handler deregisters itself on exit.
    let live: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::default();
    let mut handlers = Vec::new();
    let mut next_id = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    live.lock().unwrap().push((id, clone));
                }
                let jobs_tx = jobs_tx.clone();
                let shutdown = Arc::clone(shutdown);
                let live = Arc::clone(&live);
                handlers.push(thread::spawn(move || {
                    handle_connection(stream, &jobs_tx, &shutdown);
                    live.lock().unwrap().retain(|(i, _)| *i != id);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("warning: accept failed: {e}");
                thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // Graceful stop: no new connections, force-close the live ones to
    // unblock their handlers, let queued jobs drain, then join everyone.
    drop(jobs_tx);
    for (_, stream) in live.lock().unwrap().iter() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for handler in handlers {
        let _ = handler.join();
    }
    let _ = executor.join();
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Serve one connection: commands in, replies out, until EOF or a fatal
/// I/O error. Malformed input of every kind gets an `ERR` line and the
/// loop continues — a bad scenario never costs the client its connection.
fn handle_connection(stream: TcpStream, jobs: &mpsc::SyncSender<Job>, shutdown: &Arc<AtomicBool>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client EOF, reset, or shutdown
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let reply_err = |stream: &mut TcpStream, msg: &str| -> std::io::Result<()> {
            write_line(stream, &protocol::err_line(msg))
        };
        if line == protocol::PING {
            if write_line(&mut stream, protocol::PONG).is_err() {
                return;
            }
        } else if line == protocol::SHUTDOWN {
            let _ = write_line(&mut stream, protocol::BYE);
            shutdown.store(true, Ordering::SeqCst);
            return;
        } else if let Some(parsed) = protocol::parse_submit(line) {
            let (view, format) = match parsed {
                Ok(pair) => pair,
                Err(e) => {
                    // Malformed SUBMIT arguments: the scenario block was
                    // never announced, so there is nothing to drain.
                    if reply_err(&mut stream, &e).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let mut text = String::new();
            loop {
                let mut block_line = String::new();
                match reader.read_line(&mut block_line) {
                    Ok(0) | Err(_) => return, // EOF mid-submission
                    Ok(_) => {}
                }
                if block_line.trim_end_matches(['\r', '\n']) == protocol::END_MARKER {
                    break;
                }
                text.push_str(&block_line);
            }
            let scenario = match text.parse::<Scenario>() {
                Ok(scenario) => scenario,
                Err(e) => {
                    if reply_err(&mut stream, &format!("invalid scenario: {e}")).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let Ok(job_stream) = stream.try_clone() else { return };
            let (done_tx, done_rx) = mpsc::sync_channel(1);
            let job = Job { scenario, view, format, stream: job_stream, done: done_tx };
            match jobs.try_send(job) {
                // The executor writes the whole response; wait for it
                // before reading the next command so replies never
                // interleave on this connection.
                Ok(()) => {
                    let _ = done_rx.recv();
                }
                Err(mpsc::TrySendError::Full(_)) => {
                    let msg = "server busy: job queue is full, retry later";
                    if reply_err(&mut stream, msg).is_err() {
                        return;
                    }
                }
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    let _ = reply_err(&mut stream, "server is shutting down");
                    return;
                }
            }
        } else {
            let head: String = line.chars().take(32).collect();
            if reply_err(&mut stream, &format!("unknown command {head} (SUBMIT|PING|SHUTDOWN)"))
                .is_err()
            {
                return;
            }
        }
    }
}

/// Buffered response writer that turns broken-pipe errors into a sticky
/// no-op: a client that disconnects mid-stream stops receiving, but the
/// simulation still completes (and still lands in the result cache).
struct Reply {
    writer: BufWriter<TcpStream>,
    broken: bool,
}

impl Reply {
    fn line(&mut self, line: &str) {
        self.raw(line.as_bytes());
        self.raw(b"\n");
        if !self.broken && self.writer.flush().is_err() {
            self.broken = true;
        }
    }

    fn raw(&mut self, bytes: &[u8]) {
        if !self.broken && self.writer.write_all(bytes).is_err() {
            self.broken = true;
        }
    }
}

/// Run one submission through the sweep engine, streaming per-cell lines
/// in job-index order, then the rendered table, stats, and `DONE`.
fn execute(job: Job, stores: &Stores, threads: usize) {
    let Job { scenario, view, format, stream, done } = job;
    let mut reply = Reply { writer: BufWriter::new(stream), broken: false };
    let mut spec = scenario.to_spec();
    spec.settings.threads = threads;
    spec.stores = stores.clone();
    reply.line(&protocol::ok_line(spec.job_count()));
    let results = spec.run_streamed(|cell_job, result| {
        reply.line(&protocol::cell_line(cell_job, result));
    });
    let table = protocol::render_output(&results, view, format);
    reply.line(&protocol::table_header(table.len()));
    reply.raw(table.as_bytes());
    if !reply.broken {
        let _ = reply.writer.flush();
    }
    reply.line(&protocol::stats_line(&results.timing));
    reply.line(protocol::DONE);
    // Hand the connection back to its handler.
    let _ = done.send(());
}
