//! Sweep-as-a-service: a long-running job server over the deterministic
//! sweep engine.
//!
//! The `serve` binary (and the [`start`] library entry point behind it)
//! accepts `.vps` scenarios over a std-only TCP socket using the
//! newline-delimited protocol in [`vpsim_bench::protocol`], runs them
//! through [`vpsim_bench::sweep::SweepSpec::run_streamed`], and streams
//! per-cell results back as they complete — in strict job-index order —
//! followed by the final merged table, byte-identical to what a local
//! `sweep` run prints.
//!
//! Persistence comes from [`vpsim_bench::store::Stores`]: with a store
//! directory configured, captured traces survive restarts and finished
//! grid cells are never simulated twice — a resubmitted scenario is
//! served entirely from the result cache with zero simulations, still
//! byte-identical.
//!
//! Architecture (all `std`, no dependencies):
//!
//! * an accept loop on a non-blocking listener, polling a shutdown flag;
//! * one handler thread per connection, parsing requests and replying
//!   `ERR <msg>` to malformed input without dropping the connection;
//! * a bounded job queue ([`std::sync::mpsc::sync_channel`]) feeding a
//!   single executor thread, so concurrent submissions are serialized
//!   and each runs on the server's full worker-thread budget;
//! * graceful shutdown via the `SHUTDOWN` command, a signal (the binary
//!   bridges SIGINT/SIGTERM to [`ServerHandle::shutdown`]), or stdin EOF.
//!
//! See "Service layer" in `ARCHITECTURE.md` at the repository root.

mod server;

pub use server::{start, ServerConfig, ServerHandle};
