//! Sweep-as-a-service: a long-running job server over the deterministic
//! sweep engine.
//!
//! The `serve` binary (and the [`start`] library entry point behind it)
//! accepts `.vps` scenarios over a std-only TCP socket using the
//! newline-delimited protocol in [`vpsim_bench::protocol`], prepares them
//! with [`vpsim_bench::sweep::SweepSpec::prepare_shard`], and streams
//! per-cell results back as they complete — in strict job-index order —
//! followed by the final merged table, byte-identical to what a local
//! `sweep` run prints.
//!
//! Persistence comes from [`vpsim_bench::store::Stores`]: with a store
//! directory configured, captured traces survive restarts (and are
//! replayed zero-copy via `mmap` on store hits), and finished grid cells
//! are never simulated twice — a resubmitted scenario is served entirely
//! from the result cache with zero simulations, still byte-identical.
//!
//! Architecture (all `std`, no dependencies):
//!
//! * an accept loop on a non-blocking listener, polling a shutdown flag;
//! * one handler thread per connection, parsing requests and replying
//!   `ERR <msg>` to malformed input without dropping the connection;
//! * a shared worker pool behind a fair [`Scheduler`]: every admitted
//!   job's unsimulated cells queue per job, and workers pick cells
//!   **round-robin across jobs**, so concurrent submissions interleave
//!   instead of serializing — a small grid behind a large one starts
//!   streaming immediately. Results park in each job's index-ordered
//!   reorder buffer, keeping per-connection output deterministic;
//! * admission control: at most `queue_cap` jobs in flight; excess
//!   submissions get `ERR server busy … RETRY-AFTER <ms>`, which the
//!   `sweep --remote` client honours with jittered exponential backoff;
//! * shard support: `SUBMIT … shard <i>/<n>` runs only cells with
//!   `index % n == i` and answers with raw `RESULT` frames, so several
//!   server processes sharing one `--store` directory can split a grid
//!   and the `sweep --workers` client can merge it byte-identically;
//! * abandoned-job reclamation: when a client disconnects mid-stream the
//!   handler logs the peer and job id, and the scheduler drops the job's
//!   pending cells instead of simulating them for a dead socket
//!   ([`ServeMetrics`] counts it);
//! * graceful shutdown via the `SHUTDOWN` command, a signal (the binary
//!   bridges SIGINT/SIGTERM to [`ServerHandle::shutdown`]), or stdin EOF.
//!
//! See "Service layer" in `ARCHITECTURE.md` at the repository root.

mod scheduler;
mod server;

pub use scheduler::{JobEntry, Scheduler, ServeMetrics};
pub use server::{start, ServerConfig, ServerHandle};
