//! `serve` — run the sweep job server.
//!
//! ```text
//! Usage: serve [options]
//!
//! Options:
//!   --addr HOST:PORT  Bind address (port 0 picks a free port; the
//!                     actual address is printed to stderr)
//!                                          [default: 127.0.0.1:7014]
//!   --store DIR       Persist captured traces (DIR/traces) and finished
//!                     per-cell results (DIR/results) under DIR; without
//!                     it the server runs fully in-memory
//!   --threads N       Simulation worker threads, shared by all in-flight
//!                     jobs                 [default: all hardware threads]
//!   --queue N         Max concurrent jobs; further submissions get a
//!                     graceful "ERR server busy" reply with a
//!                     RETRY-AFTER hint                       [default: 16]
//!   --no-stdin-exit   Do not shut down on stdin EOF (for running the
//!                     server in the background with stdin closed)
//! ```
//!
//! The server stops gracefully — in-flight jobs finish, connections are
//! closed — on SIGINT/SIGTERM, on stdin EOF (unless `--no-stdin-exit`),
//! or on a `SHUTDOWN` protocol command from any client.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use vpsim_serve::{start, ServerConfig};

#[cfg(unix)]
mod sig {
    use super::{AtomicBool, Ordering};

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Route SIGINT (2) and SIGTERM (15) into a flag the main thread can
    /// poll; only async-signal-safe work happens in the handler itself.
    pub fn install() {
        for signum in [2, 15] {
            unsafe {
                signal(signum, on_signal as *const () as usize);
            }
        }
    }

    pub fn pending() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }
}

struct Options {
    config: ServerConfig,
    stdin_exit: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut config = ServerConfig { addr: "127.0.0.1:7014".into(), ..ServerConfig::default() };
    let mut stdin_exit = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = val()?.clone(),
            "--store" => config.store_dir = Some(val()?.into()),
            "--threads" => {
                config.threads =
                    val()?.parse().map_err(|_| "--threads requires a number".to_string())?
            }
            "--queue" => {
                config.queue_cap =
                    val()?.parse().map_err(|_| "--queue requires a number".to_string())?
            }
            "--no-stdin-exit" => stdin_exit = false,
            other => return Err(format!("unknown option {other}")),
        }
    }
    if config.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(Options { config, stdin_exit })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: serve [options]; see the source header for details");
            return ExitCode::FAILURE;
        }
    };
    let store = options.config.store_dir.clone();
    let handle = match start(options.config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("listening on {}", handle.addr());
    match &store {
        Some(dir) => eprintln!("stores under {}", dir.display()),
        None => eprintln!("no --store directory: running in-memory only"),
    }

    // Every shutdown path funnels into the same flag the server polls.
    let flag = handle.shutdown_flag();
    #[cfg(unix)]
    {
        sig::install();
        let flag = std::sync::Arc::clone(&flag);
        std::thread::spawn(move || loop {
            if sig::pending() {
                flag.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
    if options.stdin_exit {
        let flag = std::sync::Arc::clone(&flag);
        std::thread::spawn(move || {
            // Drain stdin; EOF means whoever launched us has hung up.
            let mut sink = Vec::new();
            let _ = std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut sink);
            flag.store(true, Ordering::SeqCst);
        });
    }

    handle.join();
    eprintln!("server stopped");
    ExitCode::SUCCESS
}
