//! Fair multi-job cell scheduler: the worker pool's shared state.
//!
//! Each admitted submission becomes a [`JobEntry`] whose unsimulated
//! cells queue here. A pool of workers picks cells **round-robin per
//! job** — one cell from job A, one from job B, … — so a small grid
//! submitted behind a large one starts streaming immediately instead of
//! waiting for the whole predecessor. Results are parked in the job's
//! [`PreparedSweep`] slots (an index-ordered reorder buffer), so each
//! connection handler can stream its cells in strict job-index order no
//! matter how the pool interleaved them.
//!
//! Abandoned jobs (client gone mid-stream) have their pending cells
//! reclaimed — dropped from the queue and counted in
//! [`ServeMetrics::cells_reclaimed`] — rather than simulated for a dead
//! socket. Cells already running when the job is abandoned complete
//! normally; their results still land in the shared result cache, so the
//! work is never wasted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use vpsim_bench::sweep::PreparedSweep;
use vpsim_bench::RunResult;

/// Counters the server exposes for observability and tests. All relaxed:
/// they are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Submissions that streamed through `DONE`.
    pub jobs_completed: AtomicU64,
    /// Submissions whose client disconnected mid-stream.
    pub jobs_abandoned: AtomicU64,
    /// Submissions aborted by a worker failure (a panic inside a cell);
    /// the client stayed connected and received an `ERR`. Disjoint from
    /// [`ServeMetrics::jobs_abandoned`], which counts only disconnects.
    pub jobs_failed: AtomicU64,
    /// Pending cells reclaimed from abandoned jobs (never simulated).
    pub cells_reclaimed: AtomicU64,
    /// High-water mark of concurrently admitted jobs.
    pub peak_concurrent_jobs: AtomicU64,
}

impl ServeMetrics {
    fn bump_peak(&self, active: u64) {
        self.peak_concurrent_jobs.fetch_max(active, Ordering::Relaxed);
    }
}

/// One admitted job: the prepared sweep plus the progress state its
/// connection handler waits on.
pub struct JobEntry {
    id: u64,
    prepared: Arc<PreparedSweep>,
    admitted: Instant,
    progress: Mutex<JobProgress>,
    ready: Condvar,
}

#[derive(Default)]
struct JobProgress {
    /// When the pool first picked one of this job's cells; `None` until
    /// then (and forever, for fully-cached jobs).
    first_dispatch: Option<Instant>,
    abandoned: bool,
    /// A worker panicked inside one of this job's cells.
    failed: bool,
}

impl JobEntry {
    /// Wrap a prepared sweep for scheduling under `id`.
    pub fn new(id: u64, prepared: Arc<PreparedSweep>) -> Arc<Self> {
        Arc::new(JobEntry {
            id,
            prepared,
            admitted: Instant::now(),
            progress: Mutex::new(JobProgress::default()),
            ready: Condvar::new(),
        })
    }

    /// The job id (for logs and abandonment).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// How long the job sat admitted before the pool started it: zero
    /// for fully-cached jobs, queueing delay under load otherwise.
    pub fn queue_wait(&self) -> Duration {
        self.progress
            .lock()
            .unwrap()
            .first_dispatch
            .map_or(Duration::ZERO, |t| t.duration_since(self.admitted))
    }

    /// Admission-to-now wall clock.
    pub fn wall(&self) -> Duration {
        self.admitted.elapsed()
    }

    fn note_dispatch(&self) {
        let mut p = self.progress.lock().unwrap();
        if p.first_dispatch.is_none() {
            p.first_dispatch = Some(Instant::now());
        }
    }

    /// Block until cell `index` has a result (cached or simulated).
    /// `Err` if a worker died simulating one of this job's cells.
    pub fn wait_cell(&self, index: usize) -> Result<RunResult, String> {
        let mut p = self.progress.lock().unwrap();
        loop {
            if let Some(result) = self.prepared.result(index) {
                return Ok(result);
            }
            if p.failed {
                return Err(format!("internal error while simulating cell {index}"));
            }
            p = self.ready.wait(p).unwrap();
        }
    }
}

struct RunQueue {
    entry: Arc<JobEntry>,
    pending: VecDeque<usize>,
    running: usize,
}

struct SchedState {
    queue: Vec<RunQueue>,
    /// Round-robin pointer into `queue`.
    next: usize,
    /// Currently admitted jobs (tickets held by handlers), which bounds
    /// admission — not the same as `queue.len()`: fully-cached jobs
    /// never enqueue, and a drained queue leaves before its handler
    /// finishes streaming.
    active: usize,
    closed: bool,
}

/// The shared scheduler: admission control, the per-job cell queues, and
/// the worker pool's pick loop.
pub struct Scheduler {
    state: Mutex<SchedState>,
    work: Condvar,
    cap: usize,
    /// Observability counters (see [`ServeMetrics`]).
    pub metrics: Arc<ServeMetrics>,
}

impl Scheduler {
    /// A scheduler admitting at most `cap` concurrent jobs.
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState { queue: Vec::new(), next: 0, active: 0, closed: false }),
            work: Condvar::new(),
            cap: cap.max(1),
            metrics: Arc::default(),
        })
    }

    /// Take an admission ticket. `Err(active)` with the current in-flight
    /// count when the cap is reached — the caller turns that into an
    /// `ERR server busy … RETRY-AFTER` reply.
    pub fn admit(&self) -> Result<(), usize> {
        let mut st = self.state.lock().unwrap();
        if st.closed || st.active >= self.cap {
            return Err(st.active);
        }
        st.active += 1;
        self.metrics.bump_peak(st.active as u64);
        Ok(())
    }

    /// Return an admission ticket (every successful [`Scheduler::admit`]
    /// must be paired with exactly one release).
    pub fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.active = st.active.saturating_sub(1);
    }

    /// Queue a job's unsimulated cells for the pool. `Err` once the
    /// scheduler has closed (server shutting down).
    pub fn enqueue(&self, entry: Arc<JobEntry>) -> Result<(), String> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err("server is shutting down".into());
        }
        let pending: VecDeque<usize> = entry.prepared.sim_indices().iter().copied().collect();
        if !pending.is_empty() {
            st.queue.push(RunQueue { entry, pending, running: 0 });
            self.work.notify_all();
        }
        Ok(())
    }

    /// Mark a job abandoned (its client is gone): reclaim every pending
    /// cell and wake anything waiting on it. Cells already running
    /// complete normally and still feed the shared result cache.
    pub fn abandon(&self, entry: &JobEntry) {
        if !self.mark_done(entry) {
            return;
        }
        self.metrics.jobs_abandoned.fetch_add(1, Ordering::Relaxed);
        let reclaimed = self.drop_pending(entry);
        self.metrics.cells_reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        entry.ready.notify_all();
    }

    /// Abort a job after a worker failure (a panic inside one of its
    /// cells). Same reclaim as [`Scheduler::abandon`] — the handler has
    /// already errored the client out, so its remaining cells are dead
    /// work — but counted in [`ServeMetrics::jobs_failed`], not
    /// `jobs_abandoned`/`cells_reclaimed`: the client is still connected,
    /// and those counters measure disconnects.
    pub fn fail(&self, entry: &JobEntry) {
        if !self.mark_done(entry) {
            return;
        }
        self.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        self.drop_pending(entry);
        entry.ready.notify_all();
    }

    /// Flip the job's abandoned bit; `false` if it was already set (the
    /// job was torn down once — don't double-count).
    fn mark_done(&self, entry: &JobEntry) -> bool {
        let mut p = entry.progress.lock().unwrap();
        !std::mem::replace(&mut p.abandoned, true)
    }

    /// Drop the job's pending cells from the run queue; returns how many
    /// were reclaimed. Cells already running finish normally.
    fn drop_pending(&self, entry: &JobEntry) -> u64 {
        let mut st = self.state.lock().unwrap();
        let Some(qi) = st.queue.iter().position(|q| q.entry.id == entry.id) else { return 0 };
        let reclaimed = st.queue[qi].pending.len() as u64;
        st.queue[qi].pending.clear();
        if st.queue[qi].running == 0 {
            st.queue.remove(qi);
            if st.next > qi {
                st.next -= 1;
            }
        }
        reclaimed
    }

    /// Stop the pool: workers finish draining every non-abandoned pending
    /// cell (so handlers blocked on a result always wake), then exit.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.work.notify_all();
    }

    fn pick(st: &mut SchedState) -> Option<(Arc<JobEntry>, usize)> {
        let n = st.queue.len();
        for k in 0..n {
            let qi = (st.next + k) % n;
            if let Some(cell) = st.queue[qi].pending.pop_front() {
                st.queue[qi].running += 1;
                st.queue[qi].entry.note_dispatch();
                st.next = (qi + 1) % n;
                return Some((Arc::clone(&st.queue[qi].entry), cell));
            }
        }
        None
    }

    /// The worker body: pick the next cell fairly across jobs, simulate
    /// it, park the result, notify the job's handler; repeat until the
    /// scheduler is closed **and** drained.
    pub fn worker_loop(&self) {
        loop {
            let task = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if let Some(task) = Self::pick(&mut st) {
                        break Some(task);
                    }
                    if st.closed {
                        break None;
                    }
                    st = self.work.wait(st).unwrap();
                }
            };
            let Some((entry, cell)) = task else { return };
            // A panic inside a cell (a simulator bug) must not kill the
            // pool: mark the job failed so its handler errors out, and
            // keep serving everyone else.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                entry.prepared.run_cell(cell)
            }));
            {
                let mut st = self.state.lock().unwrap();
                if let Some(qi) = st.queue.iter().position(|q| q.entry.id == entry.id) {
                    st.queue[qi].running -= 1;
                    if st.queue[qi].pending.is_empty() && st.queue[qi].running == 0 {
                        st.queue.remove(qi);
                        if st.next > qi {
                            st.next -= 1;
                        }
                    }
                }
            }
            // Publish under the progress mutex even on success, when
            // there is nothing to write: `wait_cell` checks the parked
            // result while holding it, so taking the lock here means the
            // waiter has either already seen the result or is parked in
            // `wait` by the time we notify — the wakeup cannot fall into
            // the gap between its check and its wait and be lost.
            {
                let mut p = entry.progress.lock().unwrap();
                if outcome.is_err() {
                    p.failed = true;
                }
            }
            entry.ready.notify_all();
        }
    }
}
