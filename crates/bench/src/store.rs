//! Persistent, content-addressed stores for the service layer.
//!
//! Two stores, both plain directories of checksummed binary files, both
//! safe to share between processes (writes are atomic temp-file renames,
//! and every load re-verifies the embedded checksums):
//!
//! * [`TraceStore`] — captured [`Trace`]s keyed by workload × scale ×
//!   seed. The in-memory [`crate::trace_cache::TraceCache`] falls through
//!   to it (see [`crate::trace_cache::TraceCache::get_with_store`]), so a
//!   capture made by one process is a disk hit for every later process.
//! * [`ResultCache`] — finished [`RunResult`]s keyed by the canonical
//!   hash of one grid cell ([`cell_key`]): sizing + workload + grid-point
//!   label + the fully-resolved [`vpsim_uarch::CoreConfig`]. The whole simulator is
//!   deterministic, so a cached cell is *the* answer — the sweep engine
//!   skips its simulation entirely.
//!
//! Keys are hashed with SHA-256 (hand-rolled below; the build environment
//! is dependency-free by design) over canonical *rendered* text, which
//! makes the result-cache key automatically invariant under `.vps`
//! render→parse round-trips: equal scenarios render identically, so they
//! hash identically. A corrupt or truncated entry is detected by its
//! checksum on load, logged to stderr, evicted, and transparently
//! re-produced by the caller.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::runner::RunSettings;
use crate::sweep::SweepJob;
use vpsim_isa::{Trace, TraceBlob, TraceView};
use vpsim_uarch::RunResult;

// ---------------------------------------------------------------------------
// SHA-256 (content addressing) — std-only, FIPS 180-4
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 digest of `data` — the content-addressing hash for store
/// filenames and scenario identities. (Integrity checksums inside the
/// serialized formats themselves use the cheaper FNV-1a 64.)
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Whole blocks stream straight from `data`; only the final partial
    // block plus the 0x80/length padding (at most two 64-byte blocks) is
    // staged on the stack — no heap allocation, no message copy.
    let whole = data.len() - data.len() % 64;
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut tail = [0u8; 128];
    let rem = data.len() - whole;
    tail[..rem].copy_from_slice(&data[whole..]);
    tail[rem] = 0x80;
    let tail_len = if rem < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    let blocks = data[..whole].chunks_exact(64).chain(tail[..tail_len].chunks_exact(64));
    let mut w = [0u32; 64];
    for block in blocks {
        for (t, slot) in w.iter_mut().take(16).enumerate() {
            *slot = u32::from_be_bytes(block[4 * t..4 * t + 4].try_into().unwrap());
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16].wrapping_add(s0).wrapping_add(w[t - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 =
                hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(SHA256_K[t]).wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (i, v) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_be_bytes());
    }
    out
}

/// Lowercase hex of a digest (one allocation, exact size).
pub fn hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xF) as usize] as char);
    }
    out
}

/// FNV-1a 64 — the whole-file integrity checksum of store entries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Atomic file plumbing shared by both stores
// ---------------------------------------------------------------------------

/// Write `body` + trailing FNV-1a 64 to `path` atomically: temp file in
/// the same directory, then rename, so concurrent readers only ever see a
/// complete entry (or none).
fn write_checksummed(dir: &Path, path: &Path, body: &[u8]) -> Result<(), String> {
    let mut data = Vec::with_capacity(body.len() + 8);
    data.extend_from_slice(body);
    data.extend_from_slice(&fnv1a(body).to_le_bytes());
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        path.file_name().and_then(|n| n.to_str()).unwrap_or("entry")
    ));
    std::fs::write(&tmp, &data).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot rename {} into place: {e}", tmp.display())
    })
}

/// Read `path` and verify its trailing checksum; `Ok(None)` when the
/// entry does not exist, `Err` when it exists but is corrupt or truncated
/// (the caller logs and evicts).
///
/// The file is read once into an exactly-sized buffer (stat, then
/// `read_exact`) — unlike `fs::read`'s grow-as-you-go loop this performs
/// one allocation of the final size and no copies, which matters for
/// multi-megabyte trace-store entries on the sweep's hot path. Entries
/// are written by atomic rename, so the open file cannot change under the
/// stat.
fn read_checksummed(path: &Path) -> Result<Option<Vec<u8>>, String> {
    use std::io::Read;
    let mut file = match std::fs::File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read: {e}")),
    };
    let len = file.metadata().map_err(|e| format!("cannot stat: {e}"))?.len() as usize;
    if len < 8 {
        return Err("truncated entry (shorter than its checksum)".into());
    }
    let mut data = vec![0u8; len];
    file.read_exact(&mut data).map_err(|e| format!("cannot read: {e}"))?;
    let body_len = data.len() - 8;
    let found = u64::from_le_bytes(data[body_len..].try_into().unwrap());
    let expected = fnv1a(&data[..body_len]);
    if found != expected {
        return Err(format!("checksum mismatch (computed {expected:#018x}, stored {found:#018x})"));
    }
    data.truncate(body_len);
    Ok(Some(data))
}

/// Log a corrupt entry to stderr and evict it so the next producer
/// rewrites a clean copy.
fn evict_corrupt(what: &str, path: &Path, why: &str) {
    eprintln!("warning: evicting corrupt {what} {}: {why}", path.display());
    let _ = std::fs::remove_file(path);
}

// ---------------------------------------------------------------------------
// Memory-mapped entry bytes (zero-copy load path)
// ---------------------------------------------------------------------------

/// Raw `mmap(2)`/`munmap(2)` — the same std-only `extern "C"` pattern the
/// `serve` binary uses for `signal(2)`; the build environment is
/// dependency-free by design. Gated to 64-bit unix targets: the `i64`
/// offset below matches the ABI only where `off_t` is 64-bit; on 32-bit
/// targets (where libc may route through `mmap2`/`mmap64`) the
/// declaration would mismatch the real symbol — undefined behavior at
/// the call boundary even though we only ever pass offset 0 — so those
/// builds take the full-read fallback instead.
#[cfg(all(unix, target_pointer_width = "64"))]
mod mmap_sys {
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
}

/// A read-only, whole-file memory mapping.
///
/// Store entries are written by atomic temp-file rename, so a mapped file
/// can never change in place under the mapping; eviction or replacement
/// unlinks/renames the *name*, and on unix the unlinked inode stays alive
/// until the last mapping drops — a live [`Mmap`] never observes store
/// churn and cannot fault on it.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// Safety: the mapping is PROT_READ + MAP_PRIVATE for its entire lifetime
// — an immutable byte buffer, freed exactly once in Drop.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `len` bytes of `file` read-only. `None` when mapping is
    /// unavailable (empty file, a target other than 64-bit unix, or
    /// `mmap` failure) — callers fall back to a full read.
    #[cfg(all(unix, target_pointer_width = "64"))]
    fn of_file(file: &std::fs::File, len: usize) -> Option<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        let ptr = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void *)-1.
        if ptr.is_null() || ptr as usize == usize::MAX {
            return None;
        }
        Some(Mmap { ptr, len })
    }

    #[cfg(not(all(unix, target_pointer_width = "64")))]
    fn of_file(_file: &std::fs::File, _len: usize) -> Option<Mmap> {
        None
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Safety: ptr/len describe a live PROT_READ mapping until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        unsafe {
            mmap_sys::munmap(self.ptr as *mut u8, self.len);
        }
    }
}

impl fmt::Debug for Mmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mmap({} bytes)", self.len)
    }
}

/// The backing bytes of one trace-store entry plus the sub-range holding
/// the serialized [`Trace`] (between the entry header and the outer
/// checksum trailer). `AsRef<[u8]>` yields exactly that body — the form
/// [`TraceBlob`] parses.
#[derive(Debug)]
pub struct EntryBytes {
    storage: EntryStorage,
    body: std::ops::Range<usize>,
}

#[derive(Debug)]
enum EntryStorage {
    /// Page-cache-backed mapping: a store hit costs page faults on the
    /// bytes actually replayed, not an allocation plus a full copy.
    Mapped(Mmap),
    /// Full-read fallback when mapping is unavailable.
    Heap(Vec<u8>),
}

impl EntryStorage {
    fn bytes(&self) -> &[u8] {
        match self {
            EntryStorage::Mapped(m) => m,
            EntryStorage::Heap(v) => v,
        }
    }
}

impl AsRef<[u8]> for EntryBytes {
    fn as_ref(&self) -> &[u8] {
        &self.storage.bytes()[self.body.clone()]
    }
}

/// A trace-store entry opened for zero-copy replay: a validated
/// [`TraceBlob`] over the (usually memory-mapped) entry file, plus the
/// capture metadata the coverage check needs. Obtained from
/// [`TraceStore::map`]; replay it with [`MappedTrace::view`], or
/// materialize an owned [`Trace`] with [`MappedTrace::to_trace`] when a
/// consumer needs one (e.g. interval sampling).
#[derive(Debug)]
pub struct MappedTrace {
    blob: TraceBlob<EntryBytes>,
    budget: u64,
    complete: bool,
}

impl MappedTrace {
    /// `true` if this entry satisfies a request for `budget` µops.
    pub fn covers(&self, budget: u64) -> bool {
        self.complete || self.budget >= budget
    }

    /// Capture limit the trace was taken with.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The program ended before the budget: the trace is the complete
    /// execution and satisfies any request.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Number of dynamic records in the entry.
    pub fn len(&self) -> usize {
        self.blob.len()
    }

    /// `true` if the entry holds no records.
    pub fn is_empty(&self) -> bool {
        self.blob.is_empty()
    }

    /// `true` when the entry is backed by a memory mapping (false on the
    /// full-read fallback path) — exposed for metrics and tests.
    pub fn is_mapped(&self) -> bool {
        matches!(self.blob.bytes().storage, EntryStorage::Mapped(_))
    }

    /// Borrowed struct-of-arrays view for zero-copy replay.
    pub fn view(&self) -> TraceView<'_> {
        self.blob.view()
    }

    /// Materialize an owned [`Trace`] (one exact allocation per section —
    /// the price of ownership, paid only by consumers that need it).
    pub fn to_trace(&self) -> Trace {
        self.blob.to_trace()
    }
}

// ---------------------------------------------------------------------------
// TraceStore
// ---------------------------------------------------------------------------

/// Header prefix of a trace-store entry (the budget/complete metadata in
/// front of the serialized [`Trace`]).
const TRACE_ENTRY_MAGIC: &[u8; 8] = b"vpstse1\n";

/// A trace fetched from a [`TraceStore`], with the capture metadata the
/// coverage check needs.
pub struct StoredTrace {
    /// The deserialized trace.
    pub trace: Arc<Trace>,
    /// Capture limit the trace was taken with.
    pub budget: u64,
    /// The program ended before the budget: the trace is the complete
    /// execution and satisfies any request.
    pub complete: bool,
}

impl StoredTrace {
    /// `true` if this entry satisfies a request for `budget` µops.
    pub fn covers(&self, budget: u64) -> bool {
        self.complete || self.budget >= budget
    }
}

/// On-disk, content-addressed store of captured traces, keyed by
/// workload × scale × seed. See the [module docs](self) for the entry
/// format and corruption handling.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceStore {
    /// Open (creating if needed) a trace store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<TraceStore, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create trace store {}: {e}", dir.display()))?;
        Ok(TraceStore { dir, hits: AtomicU64::new(0), misses: AtomicU64::new(0) })
    }

    /// The entry path for a workload identity: `trace-<sha256(key)>.bin`.
    fn path(&self, name: &str, scale: usize, seed: u64) -> PathBuf {
        let key = format!("vpsim-trace/v1\nworkload = {name}\nscale = {scale}\nseed = {seed}\n");
        self.dir.join(format!("trace-{}.bin", hex(&sha256(key.as_bytes()))))
    }

    /// Open the stored capture for a workload identity for zero-copy
    /// replay, if present and intact. The entry file is memory-mapped
    /// (full-read fallback when mapping is unavailable), its outer
    /// checksum and header are verified, and the trace body is validated
    /// in place by [`TraceBlob::parse`] — no section is copied. Corrupt
    /// entries (bad outer checksum, bad header, or a trace body that
    /// fails validation) are logged to stderr, evicted, and reported as
    /// absent — the caller recaptures and the next [`TraceStore::save`]
    /// heals the store. Does not touch the hit/miss counters; coverage is
    /// the caller's call.
    ///
    /// Safety of the mapping against concurrent store writers: see
    /// [`Mmap`] — atomic-rename writes plus unix unlink semantics mean a
    /// mapped entry is immutable for the mapping's lifetime.
    pub fn map(&self, name: &str, scale: usize, seed: u64) -> Option<MappedTrace> {
        let path = self.path(name, scale, seed);
        let file = match std::fs::File::open(&path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                evict_corrupt("trace-store entry", &path, &format!("cannot read: {e}"));
                return None;
            }
        };
        let len = match file.metadata() {
            Ok(meta) => meta.len() as usize,
            Err(e) => {
                evict_corrupt("trace-store entry", &path, &format!("cannot stat: {e}"));
                return None;
            }
        };
        let header_len = TRACE_ENTRY_MAGIC.len() + 8 + 1;
        if len < header_len + 8 {
            evict_corrupt("trace-store entry", &path, "truncated entry");
            return None;
        }
        let storage = match Mmap::of_file(&file, len) {
            Some(map) => EntryStorage::Mapped(map),
            None => {
                use std::io::Read;
                let mut data = vec![0u8; len];
                let mut file = file;
                if let Err(e) = file.read_exact(&mut data) {
                    evict_corrupt("trace-store entry", &path, &format!("cannot read: {e}"));
                    return None;
                }
                EntryStorage::Heap(data)
            }
        };
        let (budget, complete) = {
            let all = storage.bytes();
            let body_len = len - 8;
            let found = u64::from_le_bytes(all[body_len..].try_into().unwrap());
            let expected = fnv1a(&all[..body_len]);
            if found != expected {
                evict_corrupt(
                    "trace-store entry",
                    &path,
                    &format!("checksum mismatch (computed {expected:#018x}, stored {found:#018x})"),
                );
                return None;
            }
            if &all[..TRACE_ENTRY_MAGIC.len()] != TRACE_ENTRY_MAGIC {
                evict_corrupt("trace-store entry", &path, "bad entry header");
                return None;
            }
            let budget = u64::from_le_bytes(
                all[TRACE_ENTRY_MAGIC.len()..TRACE_ENTRY_MAGIC.len() + 8].try_into().unwrap(),
            );
            (budget, all[TRACE_ENTRY_MAGIC.len() + 8] != 0)
        };
        let entry = EntryBytes { storage, body: header_len..len - 8 };
        match TraceBlob::parse(entry) {
            Ok(blob) => Some(MappedTrace { blob, budget, complete }),
            Err(e) => {
                evict_corrupt("trace-store entry", &path, &e.to_string());
                None
            }
        }
    }

    /// Load the stored capture for a workload identity as an owned
    /// [`Trace`], if present and intact — [`TraceStore::map`] plus one
    /// materialization; same eviction behavior. Kept for consumers that
    /// need ownership (e.g. interval sampling); the sweep hot path uses
    /// [`TraceStore::map`] directly.
    pub fn load(&self, name: &str, scale: usize, seed: u64) -> Option<StoredTrace> {
        let mapped = self.map(name, scale, seed)?;
        Some(StoredTrace {
            trace: Arc::new(mapped.to_trace()),
            budget: mapped.budget,
            complete: mapped.complete,
        })
    }

    /// Persist a capture for a workload identity (atomically; overwrites
    /// any previous entry). Write failures are logged to stderr and
    /// swallowed — the store is a cache, not the source of truth.
    pub fn save(
        &self,
        name: &str,
        scale: usize,
        seed: u64,
        budget: u64,
        complete: bool,
        trace: &Trace,
    ) {
        let mut body = Vec::new();
        body.extend_from_slice(TRACE_ENTRY_MAGIC);
        body.extend_from_slice(&budget.to_le_bytes());
        body.push(complete as u8);
        body.extend_from_slice(&trace.to_bytes());
        if let Err(e) = write_checksummed(&self.dir, &self.path(name, scale, seed), &body) {
            eprintln!("warning: trace store: {e}");
        }
    }

    /// Count one disk hit (an intact, covering entry served a request).
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one disk miss (absent, corrupt, or insufficient entry).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Disk hits recorded since this store was opened.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Disk misses recorded since this store was opened.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

/// On-disk cache of finished [`RunResult`]s, keyed by [`cell_key`]. One
/// small checksummed file per grid cell; see the [module docs](self).
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a result cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultCache, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create result cache {}: {e}", dir.display()))?;
        Ok(ResultCache { dir })
    }

    fn path(&self, key_hex: &str) -> PathBuf {
        self.dir.join(format!("cell-{key_hex}.bin"))
    }

    /// Load the cached result for a cell key, if present and intact.
    /// Corrupt entries are logged to stderr, evicted, and reported as
    /// absent, so the cell is simply simulated again.
    pub fn load(&self, key_hex: &str) -> Option<RunResult> {
        let path = self.path(key_hex);
        let body = match read_checksummed(&path) {
            Ok(Some(body)) => body,
            Ok(None) => return None,
            Err(why) => {
                evict_corrupt("result-cache entry", &path, &why);
                return None;
            }
        };
        match RunResult::from_bytes(&body) {
            Ok(result) => Some(result),
            Err(e) => {
                evict_corrupt("result-cache entry", &path, &e);
                None
            }
        }
    }

    /// Persist a finished cell result (atomically). Write failures are
    /// logged to stderr and swallowed.
    pub fn save(&self, key_hex: &str, result: &RunResult) {
        if let Err(e) = write_checksummed(&self.dir, &self.path(key_hex), &result.to_bytes()) {
            eprintln!("warning: result cache: {e}");
        }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// The canonical identity of one grid cell, hashed to the result-cache
/// key (hex SHA-256). Covers everything that determines the cell's
/// [`RunResult`]: simulation sizing and seed, the workload, the grid
/// point (or baseline), and the fully-resolved [`vpsim_uarch::CoreConfig`]
/// (via its `Debug` rendering, which spells out every structural field —
/// so any config change, including future new fields, changes the key).
/// Execution details that cannot affect results — worker threads, the
/// trace-cache toggle — are deliberately excluded. Sampling
/// ([`RunSettings::sample`]) *does* affect results (a sampled cell is an
/// estimate, not the full replay), so its knobs are appended — but only
/// when sampling is on, which keeps every pre-sampling key byte-identical
/// to what earlier versions produced: existing result stores stay valid.
pub fn cell_key(settings: &RunSettings, job: &SweepJob) -> String {
    let point = match &job.point {
        Some(p) => p.label(),
        None => "baseline".to_string(),
    };
    let mut identity = format!(
        "vpsim-cell/v1\nwarmup = {}\nmeasure = {}\nscale = {}\nseed = {}\n\
         benchmark = {}\npoint = {}\nconfig = {:?}\n",
        settings.warmup,
        settings.measure,
        settings.scale,
        settings.seed,
        job.bench.name,
        point,
        job.config,
    );
    if let Some(sample) = settings.sample {
        identity.push_str(&format!(
            "sample = {}x{}+{}\n",
            sample.intervals, sample.period, sample.warmup
        ));
    }
    hex(&sha256(identity.as_bytes()))
}

// ---------------------------------------------------------------------------
// Stores bundle
// ---------------------------------------------------------------------------

/// The optional persistent stores a sweep runs against. `Default` is
/// fully in-memory (no persistence); [`Stores::open`] roots both stores
/// under one directory — the layout the `serve` binary and `sweep
/// --store` share.
#[derive(Debug, Clone, Default)]
pub struct Stores {
    /// On-disk trace store the in-memory trace cache falls through to.
    pub traces: Option<Arc<TraceStore>>,
    /// Persistent per-cell result cache.
    pub results: Option<Arc<ResultCache>>,
}

impl Stores {
    /// Open both stores under `dir` (`<dir>/traces`, `<dir>/results`),
    /// creating directories as needed.
    pub fn open(dir: impl AsRef<Path>) -> Result<Stores, String> {
        let dir = dir.as_ref();
        Ok(Stores {
            traces: Some(Arc::new(TraceStore::open(dir.join("traces"))?)),
            results: Some(Arc::new(ResultCache::open(dir.join("results"))?)),
        })
    }

    /// `true` when no persistent store is configured.
    pub fn is_empty(&self) -> bool {
        self.traces.is_none() && self.results.is_none()
    }
}

impl fmt::Display for Stores {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.traces, &self.results) {
            (None, None) => write!(f, "none"),
            (traces, results) => {
                let t = traces.as_ref().map(|s| s.dir().display().to_string());
                let r = results.as_ref().map(|s| s.dir().display().to_string());
                write!(
                    f,
                    "traces={} results={}",
                    t.as_deref().unwrap_or("none"),
                    r.as_deref().unwrap_or("none")
                )
            }
        }
    }
}

/// A unique scratch directory per call, for this crate's tests (no
/// tempfile crate in the offline build environment).
#[cfg(test)]
pub(crate) fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("vpsim-store-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_known_vectors() {
        // FIPS 180-4 test vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn trace_store_round_trips_and_counts() {
        let dir = scratch_dir("trace-rt");
        let store = TraceStore::open(&dir).unwrap();
        let mut b = vpsim_isa::ProgramBuilder::new();
        let (i, n) = (vpsim_isa::Reg::int(1), vpsim_isa::Reg::int(2));
        b.load_imm(n, 30);
        let top = b.bind_label();
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let program = b.build().unwrap();
        let trace = Trace::capture(&program, 50);
        assert!(store.load("w", 1, 7).is_none());
        store.save("w", 1, 7, 50, false, &trace);
        let stored = store.load("w", 1, 7).expect("saved entry loads");
        assert_eq!(*stored.trace, trace);
        assert_eq!(stored.budget, 50);
        assert!(!stored.complete);
        assert!(stored.covers(40) && stored.covers(50) && !stored.covers(51));
        // Distinct identities address distinct entries.
        assert!(store.load("w", 2, 7).is_none());
        assert!(store.load("w", 1, 8).is_none());
        assert!(store.load("x", 1, 7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_entry_replays_identically_to_owned_load() {
        let dir = scratch_dir("trace-map");
        let store = TraceStore::open(&dir).unwrap();
        let mut b = vpsim_isa::ProgramBuilder::new();
        let (i, n) = (vpsim_isa::Reg::int(1), vpsim_isa::Reg::int(2));
        b.load_imm(n, 50);
        let top = b.bind_label();
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let trace = Trace::capture(&b.build().unwrap(), 100);
        assert!(store.map("w", 1, 7).is_none());
        store.save("w", 1, 7, 100, false, &trace);
        let mapped = store.map("w", 1, 7).expect("saved entry maps");
        assert_eq!(mapped.budget(), 100);
        assert!(!mapped.complete());
        assert!(mapped.covers(100) && !mapped.covers(101));
        assert_eq!(mapped.len(), trace.len());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(mapped.is_mapped(), "64-bit unix entries are mmap-backed");
        // The borrowed view replays the exact owned stream, and the
        // materialized form is the exact owned trace.
        assert_eq!(mapped.view().cursor().collect::<Vec<_>>(), trace.cursor().collect::<Vec<_>>());
        assert_eq!(mapped.to_trace(), trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_evicted_on_map() {
        let dir = scratch_dir("trace-map-corrupt");
        let store = TraceStore::open(&dir).unwrap();
        let mut b = vpsim_isa::ProgramBuilder::new();
        b.load_imm(vpsim_isa::Reg::int(1), 3);
        b.halt();
        let trace = Trace::capture(&b.build().unwrap(), 10);
        store.save("w", 1, 7, 10, true, &trace);
        let path = store.path("w", 1, 7);
        let bytes = std::fs::read(&path).unwrap();
        // A flipped bit and a truncation must both refuse to map and
        // evict the entry.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert!(store.map("w", 1, 7).is_none());
        assert!(!path.exists(), "corrupt entry must be evicted");
        store.save("w", 1, 7, 10, true, &trace);
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(store.map("w", 1, 7).is_none());
        assert!(!path.exists(), "truncated entry must be evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_trace_entry_is_evicted_on_load() {
        let dir = scratch_dir("trace-corrupt");
        let store = TraceStore::open(&dir).unwrap();
        let mut b = vpsim_isa::ProgramBuilder::new();
        b.load_imm(vpsim_isa::Reg::int(1), 3);
        b.halt();
        let trace = Trace::capture(&b.build().unwrap(), 10);
        store.save("w", 1, 7, 10, true, &trace);
        let path = store.path("w", 1, 7);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load("w", 1, 7).is_none(), "corrupt entry must not load");
        assert!(!path.exists(), "corrupt entry must be evicted");
        // The store heals on the next save.
        store.save("w", 1, 7, 10, true, &trace);
        assert!(store.load("w", 1, 7).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_cache_round_trips_and_evicts_corruption() {
        let dir = scratch_dir("results");
        let cache = ResultCache::open(&dir).unwrap();
        let mut result = RunResult::default();
        result.metrics.cycles = 1234;
        result.metrics.instructions = 999;
        result.vp_squashes = 55;
        let key = hex(&sha256(b"some cell"));
        assert!(cache.load(&key).is_none());
        cache.save(&key, &result);
        assert_eq!(cache.load(&key), Some(result));
        let path = cache.path(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load(&key).is_none());
        assert!(!path.exists(), "corrupt entry must be evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_treated_as_corrupt() {
        let dir = scratch_dir("truncated");
        let cache = ResultCache::open(&dir).unwrap();
        let key = hex(&sha256(b"cell"));
        cache.save(&key, &RunResult::default());
        let path = cache.path(&key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load(&key).is_none());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_keys_gain_sampling_identity_only_when_sampling_is_on() {
        let job = SweepJob {
            index: 0,
            point: None,
            bench: vpsim_workloads::workload("gzip").unwrap(),
            config: vpsim_uarch::CoreConfig::default(),
        };
        let legacy = RunSettings::default();
        assert_eq!(legacy.sample, None, "defaults must stay unsampled");
        let base_key = cell_key(&legacy, &job);

        let mut sampled = legacy;
        sampled.sample = Some(vpsim_uarch::SampleConfig::default());
        let on_key = cell_key(&sampled, &job);
        assert_ne!(on_key, base_key, "a sampled cell is an estimate, not the full replay");

        // Every sampling knob is part of the identity.
        let tweaks: [fn(&mut vpsim_uarch::SampleConfig); 3] =
            [|s| s.intervals += 1, |s| s.period += 1, |s| s.warmup += 1];
        for tweak in tweaks {
            let mut t = sampled;
            tweak(t.sample.as_mut().unwrap());
            let key = cell_key(&t, &job);
            assert_ne!(key, on_key);
            assert_ne!(key, base_key);
        }

        // Turning sampling off restores the legacy key byte-for-byte, so
        // result stores written before sampling existed stay addressable.
        let mut off = sampled;
        off.sample = None;
        assert_eq!(cell_key(&off, &job), base_key);
    }

    #[test]
    fn stores_bundle_opens_both_and_displays() {
        let dir = scratch_dir("bundle");
        let stores = Stores::open(&dir).unwrap();
        assert!(!stores.is_empty());
        assert!(stores.traces.as_ref().unwrap().dir().ends_with("traces"));
        assert!(stores.results.as_ref().unwrap().dir().ends_with("results"));
        assert!(stores.to_string().contains("traces="));
        assert!(Stores::default().is_empty());
        assert_eq!(Stores::default().to_string(), "none");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
