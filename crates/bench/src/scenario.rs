//! The scenario layer: one declarative, round-trippable configuration
//! surface for the whole simulator.
//!
//! A [`Scenario`] names every tunable in one typed value — simulation
//! sizing ([`RunSettings`]), the sweep grid (predictor × confidence ×
//! recovery axes, or an explicit [`GridPoint`] list), the workload list,
//! and structural core overrides ([`CoreOverrides`]) on top of the Table 2
//! machine. A new experiment is therefore *data*: a `.vps` text file, a
//! named [`preset`], or a handful of `--set key=value` overrides — never a
//! code change.
//!
//! The text format is a dependency-free `key = value` file (`#` starts a
//! comment; the build container has no serde, and needs none):
//!
//! ```text
//! # compare VTAGE and the hybrid under both recovery schemes
//! measure = 200000
//! predictors = vtage, vtage-2dstr
//! confidence = fpc
//! recovery = squash, reissue
//! benchmarks = gzip, mcf, h264ref, lbm
//! core.fetch_width = 8
//! ```
//!
//! Rendering ([`Display`](std::fmt::Display)) and parsing
//! ([`FromStr`](std::str::FromStr)) are exact inverses:
//! `parse(render(s)) == s` for every valid scenario, so
//! `--dump-scenario` output is itself a loadable scenario file — the
//! reproducibility story in one artifact.
//!
//! # Examples
//!
//! ```
//! use vpsim_bench::scenario::Scenario;
//!
//! let text = "measure = 5000\nwarmup = 1000\npredictors = vtage\nbenchmarks = gzip";
//! let sc: Scenario = text.parse().unwrap();
//! assert_eq!(sc.settings.measure, 5_000);
//! // Round-trip: the rendered form parses back to the same value.
//! assert_eq!(sc.to_string().parse::<Scenario>().unwrap(), sc);
//! ```

use std::fmt;

use crate::runner::RunSettings;
use crate::sweep::{GridPoint, SchemeChoice, SweepResults, SweepSpec};
use vpsim_core::PredictorKind;
use vpsim_uarch::{CoreConfig, RecoveryPolicy, SampleConfig};
use vpsim_workloads::{all_benchmarks, all_microkernels, Benchmark};

/// Every key the text format and `--set` accept, quoted by parse errors.
const KEYS: &str = "warmup, measure, scale, seed, threads, trace_cache, sample, sample.intervals, \
                    sample.period, sample.warmup, predictors, confidence, recovery, points, \
                    benchmarks, core.<field>";

/// The `core.*` field names, quoted by parse errors.
const CORE_KEYS: &str = "fetch_width, taken_branches_per_cycle, frontend_depth, issue_width, \
                         retire_width, rob_entries, iq_entries, lq_entries, sq_entries, \
                         int_prf, fp_prf, store_set_entries";

/// Structural overrides on top of the Table 2 [`CoreConfig`]. `None` keeps
/// the paper default; only set fields are rendered into scenario files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreOverrides {
    /// Fetch/decode/rename width in µops.
    pub fetch_width: Option<usize>,
    /// Maximum taken branches fetched per cycle.
    pub taken_branches_per_cycle: Option<usize>,
    /// Front-end depth in cycles.
    pub frontend_depth: Option<u64>,
    /// Issue width.
    pub issue_width: Option<usize>,
    /// Retire width.
    pub retire_width: Option<usize>,
    /// Reorder buffer entries.
    pub rob_entries: Option<usize>,
    /// Issue queue entries.
    pub iq_entries: Option<usize>,
    /// Load queue entries.
    pub lq_entries: Option<usize>,
    /// Store queue entries.
    pub sq_entries: Option<usize>,
    /// Integer physical registers.
    pub int_prf: Option<usize>,
    /// Floating-point physical registers.
    pub fp_prf: Option<usize>,
    /// Store-set SSIT entries (must stay a power of two).
    pub store_set_entries: Option<usize>,
}

impl CoreOverrides {
    /// `true` when no field is overridden.
    pub fn is_empty(&self) -> bool {
        *self == CoreOverrides::default()
    }

    /// The overridden fields applied to `base`.
    pub fn apply(&self, mut base: CoreConfig) -> CoreConfig {
        if let Some(v) = self.fetch_width {
            base.fetch_width = v;
        }
        if let Some(v) = self.taken_branches_per_cycle {
            base.taken_branches_per_cycle = v;
        }
        if let Some(v) = self.frontend_depth {
            base.frontend_depth = v;
        }
        if let Some(v) = self.issue_width {
            base.issue_width = v;
        }
        if let Some(v) = self.retire_width {
            base.retire_width = v;
        }
        if let Some(v) = self.rob_entries {
            base.rob_entries = v;
        }
        if let Some(v) = self.iq_entries {
            base.iq_entries = v;
        }
        if let Some(v) = self.lq_entries {
            base.lq_entries = v;
        }
        if let Some(v) = self.sq_entries {
            base.sq_entries = v;
        }
        if let Some(v) = self.int_prf {
            base.int_prf = v;
        }
        if let Some(v) = self.fp_prf {
            base.fp_prf = v;
        }
        if let Some(v) = self.store_set_entries {
            base.store_set_entries = v;
        }
        base
    }

    /// Set one field by its `core.`-less name.
    fn set(&mut self, field: &str, value: &str) -> Result<(), String> {
        let n = parse_number(value).map_err(|e| format!("core.{field}: {e}"))?;
        let slot = match field {
            "fetch_width" => &mut self.fetch_width,
            "taken_branches_per_cycle" => &mut self.taken_branches_per_cycle,
            "frontend_depth" => {
                self.frontend_depth = Some(n);
                return Ok(());
            }
            "issue_width" => &mut self.issue_width,
            "retire_width" => &mut self.retire_width,
            "rob_entries" => &mut self.rob_entries,
            "iq_entries" => &mut self.iq_entries,
            "lq_entries" => &mut self.lq_entries,
            "sq_entries" => &mut self.sq_entries,
            "int_prf" => &mut self.int_prf,
            "fp_prf" => &mut self.fp_prf,
            "store_set_entries" => &mut self.store_set_entries,
            other => return Err(format!("unknown core field {other} (valid: {CORE_KEYS})")),
        };
        *slot = Some(n as usize);
        Ok(())
    }

    /// `(name, value)` pairs for the overridden fields, in canonical order.
    fn entries(&self) -> Vec<(&'static str, u64)> {
        let fields: [(&'static str, Option<u64>); 12] = [
            ("fetch_width", self.fetch_width.map(|v| v as u64)),
            ("taken_branches_per_cycle", self.taken_branches_per_cycle.map(|v| v as u64)),
            ("frontend_depth", self.frontend_depth),
            ("issue_width", self.issue_width.map(|v| v as u64)),
            ("retire_width", self.retire_width.map(|v| v as u64)),
            ("rob_entries", self.rob_entries.map(|v| v as u64)),
            ("iq_entries", self.iq_entries.map(|v| v as u64)),
            ("lq_entries", self.lq_entries.map(|v| v as u64)),
            ("sq_entries", self.sq_entries.map(|v| v as u64)),
            ("int_prf", self.int_prf.map(|v| v as u64)),
            ("fp_prf", self.fp_prf.map(|v| v as u64)),
            ("store_set_entries", self.store_set_entries.map(|v| v as u64)),
        ];
        fields.into_iter().filter_map(|(name, v)| v.map(|v| (name, v))).collect()
    }

    /// The invariants [`CoreConfig::validate`] would panic on, as errors.
    fn validate(&self) -> Result<(), String> {
        let widths = [
            ("fetch_width", self.fetch_width),
            ("taken_branches_per_cycle", self.taken_branches_per_cycle),
            ("issue_width", self.issue_width),
            ("retire_width", self.retire_width),
            ("rob_entries", self.rob_entries),
            ("iq_entries", self.iq_entries),
            ("lq_entries", self.lq_entries),
            ("sq_entries", self.sq_entries),
        ];
        for (name, v) in widths {
            if v == Some(0) {
                return Err(format!("core.{name} must be > 0"));
            }
        }
        if self.frontend_depth == Some(0) {
            return Err("core.frontend_depth must be >= 1".into());
        }
        for (name, v) in [("int_prf", self.int_prf), ("fp_prf", self.fp_prf)] {
            if let Some(v) = v {
                if v < 64 {
                    return Err(format!("core.{name} must be >= 64 to cover architectural state"));
                }
            }
        }
        if let Some(v) = self.store_set_entries {
            if !v.is_power_of_two() {
                return Err("core.store_set_entries must be a power of two".into());
            }
        }
        Ok(())
    }
}

/// One fully-specified simulator configuration point set: sizing, grid,
/// workloads, and core overrides. See the [module docs](self) for the text
/// format and the round-trip guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Simulation sizing, seed and worker-thread count.
    pub settings: RunSettings,
    /// Predictor axis of the sweep grid.
    pub predictors: Vec<PredictorKind>,
    /// Confidence axis.
    pub schemes: Vec<SchemeChoice>,
    /// Recovery axis.
    pub recoveries: Vec<RecoveryPolicy>,
    /// Explicit grid points (`points = …`), overriding the three axes.
    /// `Some(vec![])` runs the no-VP baseline alone; `points = auto`
    /// restores the cartesian axes.
    pub points: Option<Vec<GridPoint>>,
    /// Workloads: Table 3 benchmarks and/or `k:*` microkernels.
    pub benches: Vec<Benchmark>,
    /// Structural overrides on the Table 2 core.
    pub core: CoreOverrides,
}

impl Default for Scenario {
    /// The paper's headline grid: Table 2 core, the four main predictors
    /// under recovery-matched FPC and squash-at-commit, all 19 benchmarks,
    /// default sizing.
    fn default() -> Self {
        Scenario {
            settings: RunSettings::default(),
            predictors: PredictorKind::PAPER_SET.to_vec(),
            schemes: vec![SchemeChoice::Fpc],
            recoveries: vec![RecoveryPolicy::SquashAtCommit],
            points: None,
            benches: all_benchmarks(),
            core: CoreOverrides::default(),
        }
    }
}

impl Scenario {
    /// Start a fluent [`ScenarioBuilder`] from the paper defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder(Scenario::default())
    }

    /// Apply one `key = value` assignment (the same keys the text format
    /// uses; unknown keys list every valid spelling).
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        let value = value.trim();
        let num = |what: &str| parse_number(value).map_err(|e: String| format!("{what}: {e}"));
        match key {
            "warmup" => self.settings.warmup = num("warmup")?,
            "measure" => self.settings.measure = num("measure")?,
            "scale" => self.settings.scale = num("scale")? as usize,
            "seed" => self.settings.seed = num("seed")?,
            "threads" => self.settings.threads = num("threads")? as usize,
            "trace_cache" => {
                self.settings.trace_cache = match value.to_ascii_lowercase().as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    other => return Err(format!("trace_cache: {other} is not on|off")),
                }
            }
            "sample" => match value.to_ascii_lowercase().as_str() {
                "on" | "true" | "1" => {
                    self.settings.sample.get_or_insert_with(SampleConfig::default);
                }
                "off" | "false" | "0" => self.settings.sample = None,
                other => return Err(format!("sample: {other} is not on|off")),
            },
            "sample.intervals" => {
                self.settings.sample.get_or_insert_with(SampleConfig::default).intervals =
                    num("sample.intervals")?
            }
            "sample.period" => {
                self.settings.sample.get_or_insert_with(SampleConfig::default).period =
                    num("sample.period")?
            }
            "sample.warmup" => {
                self.settings.sample.get_or_insert_with(SampleConfig::default).warmup =
                    num("sample.warmup")?
            }
            "predictors" => {
                self.predictors = parse_list(value).map_err(|e| format!("predictors: {e}"))?
            }
            "confidence" => {
                self.schemes = parse_list(value).map_err(|e| format!("confidence: {e}"))?
            }
            "recovery" => {
                self.recoveries = parse_list(value).map_err(|e| format!("recovery: {e}"))?
            }
            "points" => {
                self.points = if value == "auto" {
                    None
                } else {
                    Some(parse_list(value).map_err(|e| format!("points: {e}"))?)
                }
            }
            "benchmarks" => {
                self.benches = parse_list(value).map_err(|e| format!("benchmarks: {e}"))?
            }
            _ => match key.strip_prefix("core.") {
                Some(field) => self.core.set(field, value)?,
                None => return Err(format!("unknown scenario key {key} (valid: {KEYS})")),
            },
        }
        Ok(())
    }

    /// Apply one `key=value` override in `--set` syntax.
    pub fn set(&mut self, assignment: &str) -> Result<(), String> {
        let (key, value) = assignment
            .split_once('=')
            .ok_or_else(|| format!("--set {assignment}: expected key=value"))?;
        self.apply(key.trim(), value)
    }

    /// Overlay a scenario text onto `self`: keys present in `text` replace
    /// the corresponding fields, everything else is kept. `#` starts a
    /// comment, blank lines are ignored.
    pub fn apply_text(&mut self, text: &str) -> Result<(), String> {
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", i + 1))?;
            self.apply(key.trim(), value).map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(())
    }

    /// Overlay a scenario file onto `self` (see [`Scenario::apply_text`]).
    pub fn apply_file(&mut self, path: &str) -> Result<(), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read scenario {path}: {e}"))?;
        self.apply_text(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Load a scenario file on top of the defaults and validate it.
    pub fn load(path: &str) -> Result<Scenario, String> {
        let mut sc = Scenario::default();
        sc.apply_file(path)?;
        sc.validate()?;
        Ok(sc)
    }

    /// Check every invariant: sizing ([`RunSettings::validate`]), a
    /// non-empty workload list, and the core-override bounds.
    pub fn validate(&self) -> Result<(), String> {
        self.settings.validate()?;
        if self.benches.is_empty() {
            return Err("benchmarks must name at least one workload".into());
        }
        self.core.validate()
    }

    /// The grid points this scenario denotes (explicit list, or the
    /// cartesian product of the three axes).
    pub fn grid_points(&self) -> Vec<GridPoint> {
        self.to_spec().points()
    }

    /// The fully-resolved core configuration (Table 2 + overrides, seeded
    /// from the settings).
    pub fn core_config(&self) -> CoreConfig {
        self.core.apply(CoreConfig::default()).with_seed(self.settings.seed)
    }

    /// Lower to the sweep engine's [`SweepSpec`].
    pub fn to_spec(&self) -> SweepSpec {
        SweepSpec {
            settings: self.settings,
            predictors: self.predictors.clone(),
            schemes: self.schemes.clone(),
            recoveries: self.recoveries.clone(),
            points: self.points.clone(),
            benches: self.benches.clone(),
            core: self.core.apply(CoreConfig::default()),
            stores: crate::store::Stores::default(),
        }
    }

    /// The canonical identity hash of this scenario for the persistent
    /// service layer: hex SHA-256 over the canonical rendered text with
    /// the execution-only keys (`threads`, `trace_cache`) removed — they
    /// change how a sweep runs, never what it produces. Rendering is
    /// canonical and `parse(render(s)) == s`, so the hash is invariant
    /// under `.vps` render → parse round trips.
    pub fn cache_hash(&self) -> String {
        let mut identity = String::from("vpsim-scenario/v1\n");
        for line in self.to_string().lines() {
            if line.starts_with("threads =") || line.starts_with("trace_cache =") {
                continue;
            }
            identity.push_str(line);
            identity.push('\n');
        }
        crate::store::hex(&crate::store::sha256(identity.as_bytes()))
    }

    /// Run the scenario on the deterministic parallel sweep engine.
    /// Output is bit-identical for every `settings.threads` value.
    pub fn run(&self) -> SweepResults {
        self.to_spec().run()
    }

    /// Replace this scenario's grid (axes and explicit points) with
    /// `grid`'s, keeping sizing, workloads and core overrides — how the
    /// `paper` experiments impose their per-figure grids on top of the
    /// user's scenario.
    pub fn with_grid_of(&self, grid: &Scenario) -> Scenario {
        Scenario {
            predictors: grid.predictors.clone(),
            schemes: grid.schemes.clone(),
            recoveries: grid.recoveries.clone(),
            points: grid.points.clone(),
            ..self.clone()
        }
    }
}

impl fmt::Display for Scenario {
    /// Render the canonical text form: every sizing key, the grid, the
    /// workload list, and only the core fields that are overridden.
    /// [`FromStr`](std::str::FromStr) parses this back to an equal value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_kv(f, "warmup", &self.settings.warmup.to_string())?;
        write_kv(f, "measure", &self.settings.measure.to_string())?;
        write_kv(f, "scale", &self.settings.scale.to_string())?;
        write_kv(f, "seed", &self.settings.seed.to_string())?;
        write_kv(f, "threads", &self.settings.threads.to_string())?;
        write_kv(f, "trace_cache", if self.settings.trace_cache { "on" } else { "off" })?;
        // Sampling keys render only when sampling is on, so scenarios that
        // never mention sampling keep their exact pre-sampling canonical
        // text (and therefore their cache_hash identity).
        if let Some(sample) = self.settings.sample {
            write_kv(f, "sample", "on")?;
            write_kv(f, "sample.intervals", &sample.intervals.to_string())?;
            write_kv(f, "sample.period", &sample.period.to_string())?;
            write_kv(f, "sample.warmup", &sample.warmup.to_string())?;
        }
        write_kv(f, "predictors", &join(self.predictors.iter().map(|k| lower(k.label()))))?;
        write_kv(f, "confidence", &join(self.schemes.iter().map(|s| s.label())))?;
        write_kv(f, "recovery", &join(self.recoveries.iter().map(|r| r.to_string())))?;
        if let Some(points) = &self.points {
            write_kv(f, "points", &join(points.iter().map(|p| lower(&p.label()))))?;
        }
        write_kv(f, "benchmarks", &join(self.benches.iter().map(|b| b.name.to_string())))?;
        for (name, value) in self.core.entries() {
            write_kv(f, &format!("core.{name}"), &value.to_string())?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Scenario {
    type Err = String;

    /// Parse a scenario text on top of the defaults and validate it.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut sc = Scenario::default();
        sc.apply_text(s)?;
        sc.validate()?;
        Ok(sc)
    }
}

/// Fluent construction of [`Scenario`]s, starting from the paper defaults.
/// Each setter *replaces* the corresponding field.
///
/// # Examples
///
/// ```
/// use vpsim_bench::scenario::Scenario;
/// use vpsim_core::PredictorKind;
///
/// let sc = Scenario::builder()
///     .measure(10_000)
///     .predictors(&[PredictorKind::Vtage])
///     .benchmarks(&["gzip", "k:tight"])
///     .build()
///     .unwrap();
/// assert_eq!(sc.grid_points().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder(Scenario);

impl ScenarioBuilder {
    /// Warm-up instructions per run.
    pub fn warmup(mut self, n: u64) -> Self {
        self.0.settings.warmup = n;
        self
    }

    /// Measured instructions per run.
    pub fn measure(mut self, n: u64) -> Self {
        self.0.settings.measure = n;
        self
    }

    /// Workload footprint multiplier.
    pub fn scale(mut self, n: usize) -> Self {
        self.0.settings.scale = n;
        self
    }

    /// RNG seed for workload data and predictor randomness.
    pub fn seed(mut self, n: u64) -> Self {
        self.0.settings.seed = n;
        self
    }

    /// Worker threads (1 = serial; output is thread-count invariant).
    pub fn threads(mut self, n: usize) -> Self {
        self.0.settings.threads = n;
        self
    }

    /// Capture-once/replay-many trace cache (on by default; output is
    /// byte-identical either way).
    pub fn trace_cache(mut self, on: bool) -> Self {
        self.0.settings.trace_cache = on;
        self
    }

    /// Opt into sampled replay with the given knobs (off by default).
    pub fn sample(mut self, sample: SampleConfig) -> Self {
        self.0.settings.sample = Some(sample);
        self
    }

    /// Predictor axis.
    pub fn predictors(mut self, kinds: &[PredictorKind]) -> Self {
        self.0.predictors = kinds.to_vec();
        self
    }

    /// Confidence axis.
    pub fn schemes(mut self, schemes: &[SchemeChoice]) -> Self {
        self.0.schemes = schemes.to_vec();
        self
    }

    /// Recovery axis.
    pub fn recoveries(mut self, recoveries: &[RecoveryPolicy]) -> Self {
        self.0.recoveries = recoveries.to_vec();
        self
    }

    /// Explicit grid points, overriding the three axes.
    pub fn points(mut self, points: Vec<GridPoint>) -> Self {
        self.0.points = Some(points);
        self
    }

    /// Workload list by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name — the builder is for code, where names
    /// are static; parse a scenario text for data-driven lists.
    pub fn benchmarks(mut self, names: &[&str]) -> Self {
        self.0.benches = names.iter().map(|n| n.parse().expect("known workload name")).collect();
        self
    }

    /// Edit the core overrides in place.
    pub fn core(mut self, edit: impl FnOnce(&mut CoreOverrides)) -> Self {
        edit(&mut self.0.core);
        self
    }

    /// Validate and return the scenario.
    pub fn build(self) -> Result<Scenario, String> {
        self.0.validate()?;
        Ok(self.0)
    }
}

/// Shared CLI plumbing for the three binaries: split `--scenario FILE` /
/// `--preset NAME` out of `args` (at most one of the two; repeats are
/// rejected) and resolve the base scenario. A scenario file is overlaid
/// onto `base`, so keys the file omits keep the binary's defaults; a
/// preset replaces `base` except for its worker-thread count, which is an
/// execution detail, not part of a preset's identity. Returns the
/// resolved scenario, the remaining arguments in order, and whether a
/// selector was present.
pub fn resolve_cli_base(
    mut base: Scenario,
    args: &[String],
) -> Result<(Scenario, Vec<String>, bool), String> {
    let mut rest = Vec::new();
    let mut found: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            sel @ ("--scenario" | "--preset") => {
                let value = it.next().ok_or_else(|| format!("{sel} requires a value"))?;
                match found {
                    Some(prev) if prev == sel => return Err(format!("{sel} given twice")),
                    Some(prev) => return Err(format!("{sel} cannot be combined with {prev}")),
                    None => found = Some(sel),
                }
                if sel == "--scenario" {
                    base.apply_file(value)?;
                } else {
                    let threads = base.settings.threads;
                    base = preset(value)?;
                    base.settings.threads = threads;
                }
            }
            other => rest.push(other.to_string()),
        }
    }
    Ok((base, rest, found.is_some()))
}

// ---------------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------------

/// A named, built-in scenario: the paper's experiment grids plus off-paper
/// design-space variants. `(name, description, constructor)`.
type Preset = (&'static str, &'static str, fn() -> Scenario);

fn paper_defaults() -> Scenario {
    Scenario::default()
}

fn smoke() -> Scenario {
    Scenario::builder()
        .warmup(2_000)
        .measure(10_000)
        .predictors(&[PredictorKind::Vtage])
        .benchmarks(&["gzip", "mcf"])
        .build()
        .expect("valid preset")
}

/// Memory-stress CI grid: VTAGE on the cache-hostile workloads (the two
/// memory-bound Table 3 analogues plus the pointer-chasing and blocked
/// matmul microkernels), sized like `smoke` so the perf-smoke CI step stays
/// cheap while exercising the LSQ and hierarchy hot paths.
fn mem_smoke() -> Scenario {
    Scenario::builder()
        .warmup(2_000)
        .measure(10_000)
        .predictors(&[PredictorKind::Vtage])
        .benchmarks(&["mcf", "art", "k:chase", "k:matmul"])
        .build()
        .expect("valid preset")
}

fn point(kind: PredictorKind, scheme: SchemeChoice, recovery: RecoveryPolicy) -> GridPoint {
    GridPoint { kind, scheme, recovery }
}

fn fig3() -> Scenario {
    let p = point(PredictorKind::Oracle, SchemeChoice::Fpc, RecoveryPolicy::SquashAtCommit);
    Scenario::builder().points(vec![p]).build().expect("valid preset")
}

/// The IPC diagnostics grid is deliberately the Figure 3 grid (baseline +
/// one oracle point); give it its own constructor so the two presets can
/// evolve independently. `ipc_diagnostics` reads `points[0]` as the
/// oracle suite.
fn ipc() -> Scenario {
    fig3()
}

fn fig45(recovery: RecoveryPolicy, fpc: bool) -> Scenario {
    let scheme = if fpc { SchemeChoice::Fpc } else { SchemeChoice::Baseline };
    Scenario::builder().schemes(&[scheme]).recoveries(&[recovery]).build().expect("valid preset")
}

fn fig4a() -> Scenario {
    fig45(RecoveryPolicy::SquashAtCommit, false)
}

fn fig4b() -> Scenario {
    fig45(RecoveryPolicy::SquashAtCommit, true)
}

fn fig5a() -> Scenario {
    fig45(RecoveryPolicy::SelectiveReissue, false)
}

fn fig5b() -> Scenario {
    fig45(RecoveryPolicy::SelectiveReissue, true)
}

fn fig6() -> Scenario {
    Scenario::builder()
        .predictors(&[PredictorKind::Vtage])
        .schemes(&[SchemeChoice::Baseline, SchemeChoice::Fpc])
        .build()
        .expect("valid preset")
}

fn fig7() -> Scenario {
    Scenario::builder()
        .predictors(&[
            PredictorKind::TwoDeltaStride,
            PredictorKind::Fcm4,
            PredictorKind::Vtage,
            PredictorKind::FcmStride,
            PredictorKind::VtageStride,
        ])
        .build()
        .expect("valid preset")
}

fn accuracy() -> Scenario {
    Scenario::builder()
        .schemes(&[SchemeChoice::Baseline, SchemeChoice::Fpc])
        .build()
        .expect("valid preset")
}

fn recovery() -> Scenario {
    Scenario::builder()
        .predictors(&[PredictorKind::Vtage])
        .recoveries(&[RecoveryPolicy::SquashAtCommit, RecoveryPolicy::SelectiveReissue])
        .build()
        .expect("valid preset")
}

fn counters() -> Scenario {
    use PredictorKind::{Lvp, SagLvp, Vtage};
    use SchemeChoice::{Baseline, FpcVector, Full};
    let squash = RecoveryPolicy::SquashAtCommit;
    // The §5 counter study is not rectangular: the reissue FPC vector is
    // deliberately run under squash-at-commit recovery, hence the pinned
    // vectors instead of the recovery-matched `fpc`.
    let fpc_squash = FpcVector([0, 4, 4, 4, 4, 5, 5]);
    let fpc_reissue = FpcVector([0, 3, 3, 3, 3, 4, 4]);
    Scenario::builder()
        .points(vec![
            point(Vtage, Full(3), squash),
            point(Vtage, Full(6), squash),
            point(Vtage, Full(7), squash),
            point(Vtage, fpc_squash, squash),
            point(Vtage, fpc_reissue, squash),
            point(Lvp, Full(3), squash),
            point(Lvp, fpc_squash, squash),
            point(SagLvp, Baseline, squash),
        ])
        .build()
        .expect("valid preset")
}

fn ablation_extended() -> Scenario {
    Scenario::builder()
        .predictors(&[
            PredictorKind::PerPathStride,
            PredictorKind::DFcm4,
            PredictorKind::GDiffVtage,
            PredictorKind::VtageStride,
        ])
        .build()
        .expect("valid preset")
}

fn backtoback() -> Scenario {
    Scenario::builder().points(Vec::new()).build().expect("valid preset")
}

fn narrow_core() -> Scenario {
    Scenario::builder()
        .predictors(&[PredictorKind::VtageStride])
        .core(|c| {
            c.fetch_width = Some(4);
            c.issue_width = Some(4);
            c.retire_width = Some(4);
            c.rob_entries = Some(128);
            c.iq_entries = Some(64);
            c.lq_entries = Some(24);
            c.sq_entries = Some(24);
            c.int_prf = Some(128);
            c.fp_prf = Some(128);
        })
        .build()
        .expect("valid preset")
}

fn wide_core() -> Scenario {
    Scenario::builder()
        .predictors(&[PredictorKind::VtageStride])
        .core(|c| {
            c.fetch_width = Some(16);
            c.taken_branches_per_cycle = Some(4);
            c.issue_width = Some(16);
            c.retire_width = Some(16);
            c.rob_entries = Some(512);
            c.iq_entries = Some(256);
            c.lq_entries = Some(96);
            c.sq_entries = Some(96);
            c.int_prf = Some(512);
            c.fp_prf = Some(512);
        })
        .build()
        .expect("valid preset")
}

fn fpc_sweep() -> Scenario {
    Scenario::builder()
        .predictors(&[PredictorKind::Vtage])
        .schemes(&[
            SchemeChoice::Baseline,
            SchemeChoice::Full(6),
            SchemeChoice::Full(7),
            SchemeChoice::FpcVector([0, 4, 4, 4, 4, 5, 5]),
            SchemeChoice::FpcVector([0, 3, 3, 3, 3, 4, 4]),
            SchemeChoice::FpcVector([0, 5, 5, 5, 5, 6, 6]),
        ])
        .build()
        .expect("valid preset")
}

fn scaled() -> Scenario {
    Scenario::builder()
        .scale(4)
        .predictors(&[PredictorKind::VtageStride])
        .benchmarks(&["mcf", "milc", "lbm", "art", "applu", "gcc"])
        .build()
        .expect("valid preset")
}

fn kernels() -> Scenario {
    Scenario { benches: all_microkernels(), ..Scenario::default() }
}

const PRESETS: &[Preset] = &[
    (
        "paper-grid",
        "the headline grid: 4 predictors x FPC x squash, all 19 benchmarks",
        paper_defaults,
    ),
    ("smoke", "tiny CI grid: VTAGE on gzip+mcf, 2k warm-up + 10k measured", smoke),
    ("mem-smoke", "memory-stress CI grid: VTAGE on mcf/art/k:chase/k:matmul", mem_smoke),
    ("fig3", "oracle speedup upper bound (Figure 3)", fig3),
    ("fig4a", "squash-at-commit, baseline counters (Figure 4a)", fig4a),
    ("fig4b", "squash-at-commit, FPC (Figure 4b)", fig4b),
    ("fig5a", "selective reissue, baseline counters (Figure 5a)", fig5a),
    ("fig5b", "selective reissue, FPC (Figure 5b)", fig5b),
    ("fig6", "VTAGE, baseline vs FPC counters (Figure 6)", fig6),
    ("fig7", "hybrid predictors vs their components (Figure 7)", fig7),
    ("accuracy", "per-predictor accuracy, baseline vs FPC (section 8.2)", accuracy),
    ("recovery", "VTAGE under squash-at-commit vs selective reissue (section 8.2.4)", recovery),
    ("counters", "counter width vs FPC vectors on VTAGE and LVP (section 5)", counters),
    ("ablation-extended", "extended predictors vs the headline hybrid", ablation_extended),
    ("backtoback", "no-VP baseline alone (section 3.2 back-to-back statistic)", backtoback),
    ("ipc", "baseline + oracle IPC diagnostics", ipc),
    (
        "narrow-core",
        "off-paper: 4-wide core with halved windows, hybrid VTAGE+2D-Stride",
        narrow_core,
    ),
    (
        "wide-core",
        "off-paper: 16-wide core with doubled windows, hybrid VTAGE+2D-Stride",
        wide_core,
    ),
    ("fpc-sweep", "off-paper: alternative FPC vectors vs full counters on VTAGE", fpc_sweep),
    ("scaled", "off-paper: 4x workload footprints on the memory-heavy benchmarks", scaled),
    ("kernels", "off-paper: the k:* microkernel suite under the paper grid", kernels),
];

/// Look up a built-in preset by name; unknown names list the registry.
///
/// # Examples
///
/// ```
/// use vpsim_bench::scenario::preset;
///
/// let sc = preset("smoke").unwrap();
/// assert_eq!(sc.settings.measure, 10_000);
/// assert!(preset("no-such-preset").is_err());
/// ```
pub fn preset(name: &str) -> Result<Scenario, String> {
    PRESETS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, build)| build())
        .ok_or_else(|| format!("unknown preset {name} (valid: {})", preset_names().join(", ")))
}

/// Every preset name, in registry order.
pub fn preset_names() -> Vec<&'static str> {
    PRESETS.iter().map(|(n, _, _)| *n).collect()
}

/// `(name, description)` pairs for `--list-presets` style help output.
pub fn presets() -> Vec<(&'static str, &'static str)> {
    PRESETS.iter().map(|(n, d, _)| (*n, *d)).collect()
}

// ---------------------------------------------------------------------------
// Text-format helpers
// ---------------------------------------------------------------------------

/// Parse a decimal or `0x`-prefixed hexadecimal number.
fn parse_number(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("bad number {s}"))
}

/// Parse a comma-separated list; an empty value is an empty list.
fn parse_list<T: std::str::FromStr<Err = String>>(value: &str) -> Result<Vec<T>, String> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value.split(',').map(|item| item.trim().parse()).collect()
}

fn join(items: impl Iterator<Item = String>) -> String {
    items.collect::<Vec<_>>().join(", ")
}

fn lower(s: &str) -> String {
    s.to_ascii_lowercase()
}

/// `key = value`, or `key =` for an empty value (no trailing space).
fn write_kv(f: &mut fmt::Formatter<'_>, key: &str, value: &str) -> fmt::Result {
    if value.is_empty() {
        writeln!(f, "{key} =")
    } else {
        writeln!(f, "{key} = {value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_grid() {
        let sc = Scenario::default();
        assert_eq!(sc.predictors, PredictorKind::PAPER_SET.to_vec());
        assert_eq!(sc.benches.len(), 19);
        assert_eq!(sc.grid_points().len(), 4);
        sc.validate().unwrap();
    }

    #[test]
    fn text_round_trips_through_parse_and_render() {
        let sc = Scenario::builder()
            .warmup(123)
            .measure(456)
            .seed(0xDEAD)
            .threads(3)
            .predictors(&[PredictorKind::Vtage, PredictorKind::Lvp])
            .schemes(&[SchemeChoice::Fpc, SchemeChoice::FpcVector([0, 1, 2, 3, 4, 5, 6])])
            .recoveries(&[RecoveryPolicy::SelectiveReissue])
            .benchmarks(&["gzip", "k:matmul"])
            .core(|c| {
                c.fetch_width = Some(4);
                c.int_prf = Some(96);
            })
            .build()
            .unwrap();
        let text = sc.to_string();
        assert_eq!(text.parse::<Scenario>().unwrap(), sc, "\n{text}");
    }

    #[test]
    fn cache_hash_is_invariant_under_round_trip_and_execution_keys() {
        let sc = preset("smoke").unwrap();
        let hash = sc.cache_hash();
        assert_eq!(hash.len(), 64, "hex SHA-256");
        // The satellite guarantee: a scenario and its render→parse round
        // trip hash identically.
        let parsed: Scenario = sc.to_string().parse().unwrap();
        assert_eq!(parsed.cache_hash(), hash);
        // Execution-only keys do not change the identity…
        let mut exec = sc.clone();
        exec.settings.threads = 13;
        exec.settings.trace_cache = false;
        assert_eq!(exec.cache_hash(), hash);
        // …but every result-affecting key does.
        for tweak in [
            "measure=10001",
            "seed=0x2015",
            "scale=2",
            "benchmarks=gzip",
            "predictors=lvp",
            "core.fetch_width=4",
        ] {
            let mut other = sc.clone();
            other.set(tweak).unwrap();
            assert_ne!(other.cache_hash(), hash, "{tweak} must change the hash");
        }
    }

    #[test]
    fn sampling_keys_round_trip_and_auto_enable() {
        let mut sc = Scenario::default();
        assert!(sc.settings.sample.is_none(), "sampling is off by default");
        assert!(!sc.to_string().contains("sample"), "off ⇒ no sample lines rendered");
        // Setting any sub-key enables sampling with the other knobs at
        // their defaults.
        sc.set("sample.intervals=30").unwrap();
        let sample = sc.settings.sample.unwrap();
        assert_eq!(sample.intervals, 30);
        assert_eq!(sample.period, SampleConfig::default().period);
        sc.apply_text("sample.period = 5000\nsample.warmup = 1000").unwrap();
        let sample = sc.settings.sample.unwrap();
        assert_eq!((sample.intervals, sample.period, sample.warmup), (30, 5_000, 1_000));
        assert_eq!(sc.to_string().parse::<Scenario>().unwrap(), sc, "\n{sc}");
        // `sample = on` keeps existing knobs; `off` clears them.
        sc.apply("sample", "on").unwrap();
        assert_eq!(sc.settings.sample.unwrap().intervals, 30);
        sc.apply("sample", "off").unwrap();
        assert!(sc.settings.sample.is_none());
        // Plain `sample = on` from scratch uses the defaults.
        sc.apply("sample", "on").unwrap();
        assert_eq!(sc.settings.sample, Some(SampleConfig::default()));
        let err = sc.apply("sample", "maybe").unwrap_err();
        assert!(err.contains("on|off"), "{err}");
    }

    #[test]
    fn sampling_keys_change_the_hash_and_legacy_hashes_are_stable() {
        let sc = preset("smoke").unwrap();
        let hash = sc.cache_hash();
        // The committed pre-sampling identity of the smoke preset: proves
        // scenarios that never mention sampling hash exactly as they did
        // before the sampling keys existed.
        assert_eq!(hash, "3e765f7ae0584cf6c09cf99be60cd642898f7b04777462d8899807ac4412c845");
        // Toggling sampling on, or changing any sampling knob, changes the
        // identity — a sampled result must never be served from a full
        // run's cache cell (or vice versa).
        let mut on = sc.clone();
        on.set("sample=on").unwrap();
        assert_ne!(on.cache_hash(), hash);
        let base = on.cache_hash();
        for tweak in ["sample.intervals=21", "sample.period=9999", "sample.warmup=1"] {
            let mut other = on.clone();
            other.set(tweak).unwrap();
            assert_ne!(other.cache_hash(), base, "{tweak} must change the hash");
            assert_ne!(other.cache_hash(), hash, "{tweak} must differ from non-sampled");
        }
        // Turning sampling back off restores the legacy identity exactly.
        let mut off = on.clone();
        off.set("sample=off").unwrap();
        assert_eq!(off.cache_hash(), hash);
    }

    #[test]
    fn sampling_validation_rejects_zero_knobs() {
        for (line, needle) in
            [("sample.intervals = 0", "sample.intervals"), ("sample.period = 0", "sample.period")]
        {
            let err = format!("{line}\n").parse::<Scenario>().unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // Zero detailed warmup is legal (purely functional warming).
        "sample.warmup = 0\n".parse::<Scenario>().unwrap();
    }

    #[test]
    fn explicit_and_empty_points_round_trip() {
        let squash = RecoveryPolicy::SquashAtCommit;
        for points in [
            Vec::new(),
            vec![
                point(PredictorKind::Oracle, SchemeChoice::Fpc, squash),
                point(PredictorKind::Lvp, SchemeChoice::Full(6), squash),
            ],
        ] {
            let sc = Scenario::builder().points(points).build().unwrap();
            assert_eq!(sc.to_string().parse::<Scenario>().unwrap(), sc);
        }
        // `points = auto` restores the cartesian axes.
        let mut sc = Scenario::builder().points(Vec::new()).build().unwrap();
        assert_eq!(sc.grid_points().len(), 0);
        sc.set("points=auto").unwrap();
        assert_eq!(sc, Scenario::default());
    }

    #[test]
    fn trace_cache_key_round_trips_and_rejects_garbage() {
        let mut sc = Scenario::default();
        assert!(sc.settings.trace_cache, "cache is on by default");
        sc.apply_text("trace_cache = off").unwrap();
        assert!(!sc.settings.trace_cache);
        assert!(sc.to_string().contains("trace_cache = off"));
        assert_eq!(sc.to_string().parse::<Scenario>().unwrap(), sc);
        for (spelling, want) in [("on", true), ("true", true), ("0", false), ("OFF", false)] {
            sc.apply("trace_cache", spelling).unwrap();
            assert_eq!(sc.settings.trace_cache, want, "{spelling}");
        }
        let err = sc.apply("trace_cache", "maybe").unwrap_err();
        assert!(err.contains("on|off"), "{err}");
        let err = sc.apply_text("tracecache = on").unwrap_err();
        assert!(err.contains("trace_cache"), "unknown keys list the right spelling: {err}");
    }

    #[test]
    fn comments_blank_lines_and_layering_behave() {
        let mut sc = Scenario::default();
        sc.apply_text("# header\n\nmeasure = 777 # trailing comment\n  seed = 0x10  \n").unwrap();
        assert_eq!(sc.settings.measure, 777);
        assert_eq!(sc.settings.seed, 16);
        // Untouched keys keep their previous values.
        assert_eq!(sc.predictors, PredictorKind::PAPER_SET.to_vec());
        // Later assignments win.
        sc.apply_text("measure = 888").unwrap();
        assert_eq!(sc.settings.measure, 888);
    }

    #[test]
    fn errors_carry_line_numbers_and_valid_spellings() {
        let mut sc = Scenario::default();
        let err = sc.apply_text("warmup = 1\nbogus = 2").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains("benchmarks"), "{err}");
        let err = sc.apply_text("predictors = quantum").unwrap_err();
        assert!(err.contains("vtage") && err.contains("sag-lvp"), "{err}");
        let err = sc.apply_text("benchmarks = nosuch").unwrap_err();
        assert!(err.contains("gzip") && err.contains("k:tight"), "{err}");
        let err = sc.apply_text("core.alu_count = 3").unwrap_err();
        assert!(err.contains("fetch_width"), "{err}");
        let err = sc.apply_text("threads 4").unwrap_err();
        assert!(err.contains("key = value"), "{err}");
    }

    #[test]
    fn validation_rejects_zero_sizing_and_bad_cores() {
        for (line, needle) in [
            ("threads = 0", "threads"),
            ("measure = 0", "measure"),
            ("scale = 0", "scale"),
            ("benchmarks =", "benchmarks"),
            ("core.rob_entries = 0", "rob_entries"),
            ("core.int_prf = 32", "int_prf"),
            ("core.store_set_entries = 1000", "power of two"),
        ] {
            let err = format!("{line}\n").parse::<Scenario>().unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn set_layering_matches_file_spelling() {
        let mut a = Scenario::default();
        a.set("core.fetch_width=4").unwrap();
        a.set("predictors=vtage").unwrap();
        let b: Scenario = "core.fetch_width = 4\npredictors = vtage".parse().unwrap();
        assert_eq!(a, b);
        assert!(a.set("fetch_width").unwrap_err().contains("key=value"));
    }

    #[test]
    fn core_overrides_apply_onto_table2() {
        let sc: Scenario = "core.fetch_width = 4\ncore.rob_entries = 128".parse().unwrap();
        let core = sc.core_config();
        assert_eq!(core.fetch_width, 4);
        assert_eq!(core.rob_entries, 128);
        // Non-overridden fields keep the Table 2 defaults.
        assert_eq!(core.iq_entries, CoreConfig::default().iq_entries);
        assert_eq!(core.seed, sc.settings.seed);
        core.validate();
    }

    #[test]
    fn every_preset_is_valid_and_round_trips() {
        for name in preset_names() {
            let sc = preset(name).unwrap();
            sc.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let rendered = sc.to_string();
            let reparsed: Scenario =
                rendered.parse().unwrap_or_else(|e| panic!("{name}: {e}\n{rendered}"));
            assert_eq!(reparsed, sc, "{name}");
        }
        assert!(preset("fig9").unwrap_err().contains("paper-grid"));
    }

    #[test]
    fn preset_grids_match_their_experiments() {
        // The figure presets expand to the grids the experiment functions
        // historically hard-coded.
        assert_eq!(preset("fig4b").unwrap().grid_points().len(), 4);
        assert_eq!(preset("fig6").unwrap().grid_points().len(), 2);
        assert_eq!(preset("fig7").unwrap().grid_points().len(), 5);
        assert_eq!(preset("accuracy").unwrap().grid_points().len(), 8);
        assert_eq!(preset("counters").unwrap().grid_points().len(), 8);
        assert_eq!(preset("backtoback").unwrap().grid_points().len(), 0);
        assert_eq!(preset("recovery").unwrap().grid_points().len(), 2);
        // `accuracy` interleaves (kind, scheme) with kind outermost.
        let pts = preset("accuracy").unwrap().grid_points();
        assert_eq!(pts[0].kind, PredictorKind::Lvp);
        assert_eq!(pts[0].scheme, SchemeChoice::Baseline);
        assert_eq!(pts[1].kind, PredictorKind::Lvp);
        assert_eq!(pts[1].scheme, SchemeChoice::Fpc);
    }

    #[test]
    fn with_grid_of_keeps_sizing_and_core() {
        let mut base = Scenario::default();
        base.set("measure=1234").unwrap();
        base.set("core.fetch_width=4").unwrap();
        base.set("benchmarks=gzip").unwrap();
        let merged = base.with_grid_of(&preset("fig6").unwrap());
        assert_eq!(merged.settings.measure, 1234);
        assert_eq!(merged.core.fetch_width, Some(4));
        assert_eq!(merged.benches.len(), 1);
        assert_eq!(merged.grid_points(), preset("fig6").unwrap().grid_points());
    }

    #[test]
    fn scenario_run_matches_equivalent_sweep_spec() {
        let sc: Scenario =
            "warmup = 500\nmeasure = 2000\npredictors = vtage\nbenchmarks = gzip".parse().unwrap();
        let from_scenario = sc.run();
        let from_spec = sc.to_spec().run();
        assert_eq!(from_scenario.table().to_csv(), from_spec.table().to_csv());
        assert_eq!(from_scenario.baseline.rows[0].1, from_spec.baseline.rows[0].1);
    }
}
