//! Shared machinery for running benchmark × configuration sweeps.

use vpsim_core::{ConfidenceScheme, PredictorKind};
use vpsim_isa::Trace;
use vpsim_stats::mean;
use vpsim_stats::stall::StallReport;
use vpsim_uarch::tap::{PipeEventSink, StallTally};
use vpsim_uarch::{
    CoreConfig, RecoveryPolicy, RunResult, SampleConfig, SampledResult, Simulator, VpConfig,
};
use vpsim_workloads::{Benchmark, WorkloadParams};

/// Simulation sizing for a sweep.
///
/// Paper scale is 50 M warm-up + 50 M measured per Simpoint slice; the
/// defaults here (50 k + 200 k) keep a full `paper all` run to minutes
/// while preserving every qualitative trend. Use `--warmup`/`--measure`
/// to run at larger scales.
///
/// # Examples
///
/// ```
/// use vpsim_bench::RunSettings;
/// use vpsim_workloads::benchmark;
///
/// let s = RunSettings { warmup: 1_000, measure: 5_000, ..RunSettings::default() };
/// let r = s.run_baseline(&benchmark("gzip").unwrap());
/// assert_eq!(r.metrics.instructions, 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSettings {
    /// Committed instructions simulated before measurement starts.
    pub warmup: u64,
    /// Committed instructions measured.
    pub measure: u64,
    /// Workload scale multiplier.
    pub scale: usize,
    /// Seed for workload data and predictor randomness.
    pub seed: u64,
    /// Worker threads used by grid execution ([`crate::sweep::run_grid`]);
    /// `1` runs serially on the calling thread. Parallel output is
    /// bit-identical to serial, so this only affects wall-clock time.
    pub threads: usize,
    /// Capture-once / replay-many: when `true` (the default), grid
    /// execution captures each workload's dynamic trace once (into
    /// [`crate::trace_cache::TraceCache::global`]) and replays it for
    /// every timing configuration instead of re-running the functional
    /// executor inline per job. Results are byte-identical either way;
    /// this only trades memory (a few MB per workload) for wall-clock
    /// time. `false` restores pure inline execution (`--no-trace-cache`).
    pub trace_cache: bool,
    /// Opt-in sampled replay (`--sample` / scenario key `sample`): when
    /// set, trace-driven runs measure only the configured number of
    /// intervals in detail and fast-forward functionally between them
    /// (see `vpsim_uarch::sampling`). `None` (the default) replays every
    /// µop — byte-identical to the pre-sampling behaviour.
    pub sample: Option<SampleConfig>,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            warmup: 50_000,
            measure: 200_000,
            scale: 1,
            seed: 0x2014,
            threads: 1,
            trace_cache: true,
            sample: None,
        }
    }
}

impl RunSettings {
    /// Check the sizing invariants and return the first violation: a
    /// measurement window and workload scale of zero are meaningless, and a
    /// zero worker count is rejected rather than silently clamped (`1`
    /// means "run serially on the calling thread").
    ///
    /// Scenario loading ([`crate::scenario::Scenario::validate`]) and the
    /// binaries surface these errors before any simulation starts.
    ///
    /// # Examples
    ///
    /// ```
    /// use vpsim_bench::RunSettings;
    ///
    /// assert!(RunSettings::default().validate().is_ok());
    /// let broken = RunSettings { threads: 0, ..RunSettings::default() };
    /// assert!(broken.validate().unwrap_err().contains("threads"));
    /// ```
    pub fn validate(&self) -> Result<(), String> {
        if self.measure == 0 {
            return Err("measure must be > 0 (committed instructions to measure)".into());
        }
        if self.scale == 0 {
            return Err("scale must be > 0 (workload footprint multiplier)".into());
        }
        if self.threads == 0 {
            return Err("threads must be >= 1 (1 runs serially on the calling thread)".into());
        }
        if let Some(sample) = self.sample {
            if sample.intervals == 0 {
                return Err("sample.intervals must be > 0 (intervals replayed in detail)".into());
            }
            if sample.period == 0 {
                return Err("sample.period must be > 0 (interval length in µops)".into());
            }
        }
        Ok(())
    }

    /// Workload generation parameters.
    pub fn params(&self) -> WorkloadParams {
        WorkloadParams { scale: self.scale, seed: self.seed }
    }

    /// The Table 2 core configuration with this sweep's seed.
    pub fn core(&self) -> CoreConfig {
        CoreConfig::default().with_seed(self.seed)
    }

    /// Run one benchmark under one configuration on the inline streaming
    /// path (the functional executor runs inside the timing loop).
    pub fn run(&self, bench: &Benchmark, config: CoreConfig) -> RunResult {
        let program = (bench.build)(&self.params());
        Simulator::new(config).run_with_warmup(&program, self.warmup, self.measure)
    }

    /// The capture length that makes replay byte-identical to [`Self::run`]
    /// under `config`: the measurement window plus the core's maximum
    /// fetch-ahead (see [`CoreConfig::trace_budget`]).
    pub fn trace_budget(&self, config: &CoreConfig) -> u64 {
        config.trace_budget(self.warmup, self.measure)
    }

    /// Capture `bench`'s dynamic trace, `budget` µops long (or the whole
    /// program if shorter) — the capture half of capture-once/replay-many.
    pub fn capture(&self, bench: &Benchmark, budget: u64) -> Trace {
        let program = (bench.build)(&self.params());
        Trace::capture(&program, budget)
    }

    /// Replay a captured trace under one configuration. With
    /// [`Self::sample`] unset this is byte-identical to [`Self::run`] on
    /// the benchmark the trace was captured from, given a sufficient
    /// capture budget ([`Self::trace_budget`]). With sampling on, the
    /// result is the combined counters of the sampled intervals
    /// ([`SampledResult::combined`]) — an estimate, not the full replay.
    pub fn run_trace(&self, trace: &Trace, config: CoreConfig) -> RunResult {
        match self.sample {
            Some(_) => self.run_trace_sampled(trace, config).combined(),
            None => Simulator::new(config).run_trace(trace, self.warmup, self.measure),
        }
    }

    /// [`Self::run_trace`] over a [`crate::trace_cache::SharedTrace`]:
    /// owned traces replay through the decoded cursor, mapped store
    /// entries replay straight from the borrowed view — byte-identical
    /// either way (the cursors yield the same stream). Sampled mode needs
    /// an owned `&Trace` to seek in, so a mapped trace is materialized
    /// first in that case.
    pub fn run_shared(
        &self,
        trace: &crate::trace_cache::SharedTrace,
        config: CoreConfig,
    ) -> RunResult {
        use crate::trace_cache::SharedTrace;
        match (trace, self.sample) {
            (SharedTrace::Owned(trace), _) => self.run_trace(trace, config),
            (SharedTrace::Mapped(mapped), None) => {
                Simulator::new(config).run_source(mapped.view().cursor(), self.warmup, self.measure)
            }
            (SharedTrace::Mapped(_), Some(_)) => self.run_trace(&trace.to_owned_trace(), config),
        }
    }

    /// [`Self::run_shared`] with a pipeline event sink attached (the
    /// unsampled analogue of [`Self::run_trace_with_sink`]).
    pub fn run_shared_with_sink<T: PipeEventSink>(
        &self,
        trace: &crate::trace_cache::SharedTrace,
        config: CoreConfig,
        sink: &mut T,
    ) -> RunResult {
        use crate::trace_cache::SharedTrace;
        match trace {
            SharedTrace::Owned(trace) => self.run_trace_with_sink(trace, config, sink),
            SharedTrace::Mapped(mapped) => Simulator::new(config).run_source_with_sink(
                mapped.view().cursor(),
                self.warmup,
                self.measure,
                sink,
            ),
        }
    }

    /// Sampled replay with full per-interval visibility: the
    /// [`SampledResult`] carries one [`RunResult`] per replayed interval
    /// plus the fast-forward accounting the sweep's `--timing-json`
    /// reports. Uses [`Self::sample`], or [`SampleConfig::default`] when
    /// unset.
    pub fn run_trace_sampled(&self, trace: &Trace, config: CoreConfig) -> SampledResult {
        let sample = self.sample.unwrap_or_default();
        Simulator::new(config).run_sampled(trace, self.warmup, self.measure, sample)
    }

    /// Run one benchmark under one configuration, resolving through the
    /// trace layer when [`Self::trace_cache`] is on (capture once into the
    /// process-wide cache, then replay) and through the inline streaming
    /// executor otherwise. Both paths produce byte-identical results.
    ///
    /// Sampled mode ([`Self::sample`]) always goes through a trace —
    /// fast-forward needs a captured stream to seek in — so with the trace
    /// cache off the trace is captured privately for this job.
    pub fn run_job(&self, bench: &Benchmark, config: CoreConfig) -> RunResult {
        if self.trace_cache {
            let budget = self.trace_budget(&config);
            let (trace, _) = crate::trace_cache::TraceCache::global().get(self, bench, budget);
            self.run_trace(&trace, config)
        } else if self.sample.is_some() {
            let trace = self.capture(bench, self.trace_budget(&config));
            self.run_trace(&trace, config)
        } else {
            self.run(bench, config)
        }
    }

    /// [`Self::run`] with a pipeline event sink attached (see
    /// [`vpsim_uarch::tap`]). With a [`vpsim_uarch::tap::NullSink`] this is
    /// exactly [`Self::run`]; any enabled sink observes the same simulation
    /// without perturbing its result.
    pub fn run_with_sink<T: PipeEventSink>(
        &self,
        bench: &Benchmark,
        config: CoreConfig,
        sink: &mut T,
    ) -> RunResult {
        let program = (bench.build)(&self.params());
        Simulator::new(config).run_source_with_sink(
            vpsim_isa::Executor::new(&program),
            self.warmup,
            self.measure,
            sink,
        )
    }

    /// [`Self::run_trace`] with a pipeline event sink attached.
    pub fn run_trace_with_sink<T: PipeEventSink>(
        &self,
        trace: &Trace,
        config: CoreConfig,
        sink: &mut T,
    ) -> RunResult {
        Simulator::new(config).run_trace_with_sink(trace, self.warmup, self.measure, sink)
    }

    /// [`Self::run_job`] with a pipeline event sink attached: resolves
    /// through the trace cache exactly like `run_job`, so a tapped run
    /// observes the same simulation the untapped sweep executed.
    /// [`Self::sample`] is ignored here — per-cycle attribution of a
    /// sampled estimate would attribute cycles that were never simulated,
    /// so tapped runs always replay the full windows.
    pub fn run_job_with_sink<T: PipeEventSink>(
        &self,
        bench: &Benchmark,
        config: CoreConfig,
        sink: &mut T,
    ) -> RunResult {
        if self.trace_cache {
            let budget = self.trace_budget(&config);
            let (trace, _) = crate::trace_cache::TraceCache::global().get(self, bench, budget);
            self.run_trace_with_sink(&trace, config, sink)
        } else {
            self.run_with_sink(bench, config, sink)
        }
    }

    /// Run one job with a [`StallTally`] attached and return the result
    /// together with the measured-region stall report. The `RunResult` is
    /// byte-identical to [`Self::run_job`] on the same inputs.
    pub fn run_job_tapped(
        &self,
        bench: &Benchmark,
        config: CoreConfig,
    ) -> (RunResult, StallReport) {
        let mut tally = StallTally::default();
        let result = self.run_job_with_sink(bench, config, &mut tally);
        (result, tally.measured())
    }

    /// Run one benchmark with no value prediction (the speedup baseline).
    pub fn run_baseline(&self, bench: &Benchmark) -> RunResult {
        self.run(bench, self.core())
    }

    /// Run one benchmark with the given predictor/scheme/recovery.
    pub fn run_vp(
        &self,
        bench: &Benchmark,
        kind: PredictorKind,
        scheme: ConfidenceScheme,
        recovery: RecoveryPolicy,
    ) -> RunResult {
        let vp = VpConfig { kind, scheme, recovery };
        self.run(bench, self.core().with_vp(vp))
    }
}

/// Per-benchmark results of one configuration across the suite.
#[derive(Debug, Clone)]
pub struct SuiteResults {
    /// `(benchmark name, result)` pairs in Table 3 order.
    pub rows: Vec<(&'static str, RunResult)>,
}

impl SuiteResults {
    /// Speedups over the matching baseline rows.
    pub fn speedups(&self, baselines: &SuiteResults) -> Vec<f64> {
        self.rows
            .iter()
            .zip(&baselines.rows)
            .map(|((na, a), (nb, b))| {
                assert_eq!(na, nb, "row order mismatch");
                vpsim_stats::speedup(&b.metrics, &a.metrics)
            })
            .collect()
    }

    /// Geometric-mean speedup over the baseline.
    pub fn gmean_speedup(&self, baselines: &SuiteResults) -> f64 {
        mean::geometric(&self.speedups(baselines)).unwrap_or(1.0)
    }
}

/// Run every benchmark in `benches` under the configuration produced by
/// `make_config`, on `settings.threads` workers.
///
/// This is the single-configuration face of [`crate::sweep::run_grid`];
/// experiments that compare several configurations should pass them to
/// `run_grid` in one batch so the whole grid shares the worker pool.
pub fn sweep(
    settings: &RunSettings,
    benches: &[Benchmark],
    make_config: impl Fn() -> CoreConfig,
) -> SuiteResults {
    crate::sweep::run_grid(settings, benches, &[make_config()])
        .pop()
        .expect("one configuration in, one suite out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpsim_workloads::benchmark;

    fn tiny() -> RunSettings {
        RunSettings { warmup: 2_000, measure: 10_000, seed: 7, ..RunSettings::default() }
    }

    #[test]
    fn baseline_and_vp_runs_complete() {
        let s = tiny();
        let b = benchmark("gzip").unwrap();
        let base = s.run_baseline(&b);
        assert_eq!(base.metrics.instructions, 10_000);
        let vp = s.run_vp(
            &b,
            PredictorKind::Vtage,
            ConfidenceScheme::fpc_squash(),
            RecoveryPolicy::SquashAtCommit,
        );
        assert_eq!(vp.metrics.instructions, 10_000);
        assert!(vp.vp.eligible > 0);
    }

    #[test]
    fn run_job_is_byte_identical_on_both_paths() {
        let s = tiny();
        let b = benchmark("h264ref").unwrap();
        let config = s
            .core()
            .with_vp(VpConfig::enabled(PredictorKind::Vtage, RecoveryPolicy::SquashAtCommit));
        let inline = RunSettings { trace_cache: false, ..s }.run_job(&b, config.clone());
        let replayed = RunSettings { trace_cache: true, ..s }.run_job(&b, config.clone());
        assert_eq!(inline, replayed);
        assert_eq!(inline, s.run(&b, config));
    }

    #[test]
    fn explicit_capture_and_replay_match_inline() {
        let s = tiny();
        let b = benchmark("gzip").unwrap();
        let trace = s.capture(&b, s.trace_budget(&s.core()));
        assert_eq!(s.run_trace(&trace, s.core()), s.run_baseline(&b));
    }

    #[test]
    fn suite_speedups_align_rows() {
        let s = tiny();
        let benches: Vec<_> = ["gzip", "h264ref"].iter().map(|n| benchmark(n).unwrap()).collect();
        let base = sweep(&s, &benches, || s.core());
        let vp = sweep(&s, &benches, || {
            s.core().with_vp(VpConfig::enabled(
                PredictorKind::VtageStride,
                RecoveryPolicy::SquashAtCommit,
            ))
        });
        let speedups = vp.speedups(&base);
        assert_eq!(speedups.len(), 2);
        assert!(speedups.iter().all(|&x| x > 0.5 && x < 3.0), "{speedups:?}");
        let g = vp.gmean_speedup(&base);
        assert!(g > 0.5 && g < 3.0);
    }
}
