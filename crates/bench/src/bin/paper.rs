//! `paper` — regenerate every table and figure of Perais & Seznec,
//! HPCA 2014, on the vpsim substrate.
//!
//! ```text
//! Usage: paper <experiment> [options]
//!
//! Experiments:
//!   table1           Predictor layout summary (Table 1)
//!   table2           Simulator configuration (Table 2)
//!   table3           Benchmark suite (Table 3)
//!   sec3-model       §3.1 analytic recovery-cost example
//!   sec3-backtoback  §3.2 back-to-back fetch statistic
//!   sec4-regfile     §4 register-file port cost model
//!   fig3             Oracle speedup upper bound
//!   fig4             Speedup, squash-at-commit (a: baseline counters, b: FPC)
//!   fig5             Speedup, selective reissue (a: baseline counters, b: FPC)
//!   fig6             VTAGE speedup/coverage, baseline vs FPC
//!   fig7             Hybrid predictors: speedup and coverage
//!   accuracy         §8.2 accuracy, baseline vs FPC
//!   recovery         §8.2.4 squash-at-commit vs selective reissue (VTAGE)
//!   ipc              Diagnostics: baseline IPC + substrate statistics
//!   ablation-vtage   VTAGE component-count sweep (offline evaluation)
//!   ablation-extended  PP-Str / D-FCM / gDiff-VTAGE vs the hybrid
//!   locality         Value-locality breakdown per benchmark (offline)
//!   counters         §5 counter width vs FPC (VTAGE)
//!   all              Every paper artifact above (extensions excluded)
//!
//! Options:
//!   --scenario FILE  Load sizing/benchmarks/core overrides from a file
//!   --preset NAME    Start from a named scenario preset
//!   --set KEY=VALUE  Override one scenario key (repeatable)
//!   --dump-scenario  Print the resolved scenario and exit
//!   --warmup N       Warm-up instructions per run   [default 50000]
//!   --measure N      Measured instructions per run  [default 200000]
//!   --scale N        Workload footprint multiplier  [default 1]
//!   --seed N         RNG seed                       [default 0x2014]
//!   --threads N      Worker threads for the simulation grids
//!                    [default: all hardware threads]
//!   --benchmarks a,b Comma-separated subset of Table 3 names
//!   --csv            Emit CSV instead of aligned text
//!   --no-trace-cache Re-execute workloads functionally per grid cell
//!                    instead of capture-once/replay-many (byte-identical
//!                    output; sugar for --set trace_cache=off)
//!   --sample         Interval sampling: every simulation-backed grid cell
//!                    fast-forwards between systematically selected
//!                    intervals and replays only those in detail — the
//!                    tables become sampled estimates (sugar for --set
//!                    sample=on; tune with --set sample.intervals=K,
//!                    sample.period=N, sample.warmup=W)
//!   --stall-report   Run the resolved scenario grid with the pipeline
//!                    event tap attached and print per-cell stall
//!                    attribution (may be given with no experiment)
//! ```
//!
//! Each experiment imposes its own figure grid (a named
//! `vpsim_bench::scenario` preset — `sweep --preset fig6` runs the same
//! configurations), so a scenario's `predictors`/`confidence`/`recovery`
//! axes are ignored here; its sizing, benchmark list and `core.*`
//! overrides all apply. Every simulation-backed experiment runs on the
//! `vpsim_bench::sweep` engine; `--threads` changes wall-clock time only,
//! never a byte of output.

use std::process::ExitCode;
use vpsim_bench::experiments as exp;
use vpsim_bench::scenario::{resolve_cli_base, Scenario};
use vpsim_stats::table::Table;
use vpsim_uarch::RecoveryPolicy;

struct Options {
    scenario: Scenario,
    csv: bool,
    dump: bool,
    stall_report: bool,
}

fn parse_args(args: &[String]) -> Result<(Vec<String>, Options), String> {
    let mut base = Scenario::default();
    base.settings.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (mut scenario, rest, _) = resolve_cli_base(base, args)?;
    let mut csv = false;
    let mut dump = false;
    let mut stall_report = false;
    let mut experiments = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--set" => scenario.set(val()?)?,
            "--csv" => csv = true,
            "--dump-scenario" => dump = true,
            "--stall-report" => stall_report = true,
            "--no-trace-cache" => scenario.apply("trace_cache", "off")?,
            "--sample" => scenario.apply("sample", "on")?,
            flag @ ("--warmup" | "--measure" | "--scale" | "--seed" | "--threads"
            | "--benchmarks") => scenario.apply(&flag[2..], val()?)?,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            experiment => experiments.push(experiment.to_string()),
        }
    }
    scenario.validate()?;
    Ok((experiments, Options { scenario, csv, dump, stall_report }))
}

fn emit(title: &str, table: &Table, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("== {title} ==");
        println!("{table}");
    }
}

fn run_experiment(name: &str, o: &Options) -> Result<(), String> {
    let sc = &o.scenario;
    match name {
        "table1" => emit("Table 1: predictor layout", &exp::table1(), o.csv),
        "table2" => emit("Table 2: simulator configuration", &exp::table2(), o.csv),
        "table3" => emit("Table 3: benchmark suite", &exp::table3(&sc.benches), o.csv),
        "sec3-model" => {
            emit("§3.1 analytic example (net cycles per Kinst)", &exp::sec3_model(), o.csv)
        }
        "sec3-backtoback" => {
            emit("§3.2 back-to-back eligible fetches", &exp::sec3_backtoback(sc), o.csv)
        }
        "sec4-regfile" => emit("§4 register-file port cost", &exp::sec4_regfile(), o.csv),
        "fig3" => emit("Figure 3: oracle speedup upper bound", &exp::fig3(sc), o.csv),
        "fig4" => {
            emit(
                "Figure 4(a): squash-at-commit, baseline counters",
                &exp::fig45(sc, RecoveryPolicy::SquashAtCommit, false),
                o.csv,
            );
            emit(
                "Figure 4(b): squash-at-commit, FPC",
                &exp::fig45(sc, RecoveryPolicy::SquashAtCommit, true),
                o.csv,
            );
        }
        "fig5" => {
            emit(
                "Figure 5(a): selective reissue, baseline counters",
                &exp::fig45(sc, RecoveryPolicy::SelectiveReissue, false),
                o.csv,
            );
            emit(
                "Figure 5(b): selective reissue, FPC",
                &exp::fig45(sc, RecoveryPolicy::SelectiveReissue, true),
                o.csv,
            );
        }
        "fig6" => emit("Figure 6: VTAGE, baseline vs FPC", &exp::fig6(sc), o.csv),
        "fig7" => emit("Figure 7: hybrid predictors", &exp::fig7(sc), o.csv),
        "accuracy" => emit("§8.2 accuracy, baseline vs FPC", &exp::accuracy(sc), o.csv),
        "recovery" => {
            emit("§8.2.4 recovery comparison (VTAGE, FPC)", &exp::recovery_comparison(sc), o.csv)
        }
        "ipc" => emit("Diagnostics: IPC and substrate stats", &exp::ipc_diagnostics(sc), o.csv),
        "ablation-vtage" => {
            emit("Ablation: VTAGE component count (offline)", &exp::ablation_vtage(sc), o.csv)
        }
        "ablation-extended" => emit(
            "Ablation: extended predictors (PP-Str, D-FCM, gDiff)",
            &exp::ablation_extended(sc),
            o.csv,
        ),
        "locality" => emit("Value locality per benchmark (offline)", &exp::locality(sc), o.csv),
        "counters" => emit("§5 counter width vs FPC (VTAGE)", &exp::counters(sc), o.csv),
        "all" => {
            for e in [
                "table1",
                "table2",
                "table3",
                "sec3-model",
                "sec4-regfile",
                "sec3-backtoback",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "accuracy",
                "recovery",
            ] {
                run_experiment(e, o)?;
            }
        }
        other => return Err(format!("unknown experiment {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: paper <experiment> [options]; see the source header for details");
        return ExitCode::FAILURE;
    }
    match parse_args(&args) {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Ok((experiments, options)) => {
            if options.dump {
                print!("{}", options.scenario);
                return ExitCode::SUCCESS;
            }
            if experiments.is_empty() && !options.stall_report {
                eprintln!("error: no experiment named");
                return ExitCode::FAILURE;
            }
            for e in &experiments {
                if let Err(msg) = run_experiment(e, &options) {
                    eprintln!("error: {msg}");
                    return ExitCode::FAILURE;
                }
            }
            if options.stall_report {
                // Per-cell stall attribution over the scenario's own grid
                // (conservation-checked inside run_stall_report).
                let results = options.scenario.to_spec().run_stall_report();
                emit("Stall attribution (measured window)", &results.table(), options.csv);
            }
            ExitCode::SUCCESS
        }
    }
}
